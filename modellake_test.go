package modellake

import (
	"strings"
	"testing"
)

// TestPublicAPIRoundTrip exercises the re-exported surface end to end: train
// a model, open a lake, ingest, search, query, cite.
func TestPublicAPIRoundTrip(t *testing.T) {
	lk, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()

	dom := NewDomain("legal", 8, 3, 100)
	ds := dom.Sample("legal/v1", 200, 0.4, NewRNG(1))
	lk.RegisterDataset(ds)

	net := NewMLP([]int{8, 16, 3}, 2)
	if _, err := Train(net, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Name: "legal-clf",
		Net:  net,
		Hist: &History{DatasetID: ds.ID, DatasetDomain: "legal", Transformation: "pretrain"},
	}
	c := &Card{Name: "legal-clf", Domain: "legal", Task: "classification",
		TrainingData: ds.ID, Description: "a legal classifier", License: "apache-2.0"}
	rec, err := lk.Ingest(m, c, RegisterOptions{Name: "legal-clf"})
	if err != nil {
		t.Fatal(err)
	}

	if hits := lk.SearchKeyword("legal", 5); len(hits) != 1 || hits[0].ID != rec.ID {
		t.Fatalf("keyword hits = %v", hits)
	}
	res, err := lk.Query("FIND MODELS WHERE TRAINED ON DATASET 'legal/v1'")
	if err != nil || len(res.Hits) != 1 {
		t.Fatalf("query = %v, %v", res, err)
	}
	cite, err := lk.Cite(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cite.String(), "legal-clf") {
		t.Fatalf("citation = %q", cite)
	}
}

// TestGenerateLakePublic checks the generator surface used by examples.
func TestGenerateLakePublic(t *testing.T) {
	spec := DefaultLakeSpec(9)
	spec.NumBases = 2
	spec.ChildrenPerBase = 2
	pop, err := GenerateLake(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Members) != 6 || len(pop.Edges) == 0 {
		t.Fatalf("population: %d members, %d edges", len(pop.Members), len(pop.Edges))
	}
	h := NewHandle(pop.Members[0].Model)
	if _, err := h.Weights(); err != nil {
		t.Fatal(err)
	}
}

// TestAdvisePublicAPI checks the re-exported advisor path.
func TestAdvisePublicAPI(t *testing.T) {
	lk, err := Open(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	spec := DefaultLakeSpec(11)
	spec.NumBases = 2
	spec.ChildrenPerBase = 2
	pop, err := GenerateLake(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pop.Members {
		if _, err := lk.Ingest(m.Model, m.Card, RegisterOptions{Name: m.Truth.Name}); err != nil {
			t.Fatal(err)
		}
	}
	var examples []TaskExample
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	for i := 0; i < 8; i++ {
		x, y := ds.Example(i)
		examples = append(examples, TaskExample{X: x.Clone(), Y: y})
	}
	advice, err := Advise(lk, examples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	if !strings.Contains(advice.Markdown(), "Model recommendation") {
		t.Fatal("advice markdown malformed")
	}
}

module modellake

go 1.22

package watermark

import (
	"testing"

	"modellake/internal/attribution"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, 2); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	if _, err := New(1, 1, 2); err == nil {
		t.Fatal("gamma 1 accepted")
	}
	if _, err := New(1, 0.5, -1); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := New(1, 0.5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGreenFractionMatchesGamma(t *testing.T) {
	w, _ := New(42, 0.25, 2)
	green, total := 0, 0
	for prev := 0; prev < 50; prev++ {
		for tok := 0; tok < 200; tok++ {
			total++
			if w.isGreen(prev, tok) {
				green++
			}
		}
	}
	frac := float64(green) / float64(total)
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("green fraction = %v, want ~0.25", frac)
	}
}

func TestWatermarkedTextDetected(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(1))
	w, _ := New(7, 0.5, 4)
	toks := lm.Sample(xrand.New(2), 0, 200, 1.0, w.Bias())
	det := w.Detect(0, toks)
	if !det.IsWatermarked(4) {
		t.Fatalf("watermarked text not detected: z=%v", det.ZScore)
	}
	if det.PValue > 1e-4 {
		t.Fatalf("p-value = %v, want tiny", det.PValue)
	}
}

func TestUnwatermarkedTextNotFlagged(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(3))
	w, _ := New(7, 0.5, 4)
	toks := lm.Sample(xrand.New(4), 0, 200, 1.0, nil)
	det := w.Detect(0, toks)
	if det.IsWatermarked(4) {
		t.Fatalf("clean text flagged: z=%v", det.ZScore)
	}
}

func TestWrongKeyDoesNotDetect(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(5))
	wRight, _ := New(7, 0.5, 4)
	wWrong, _ := New(8, 0.5, 4)
	toks := lm.Sample(xrand.New(6), 0, 200, 1.0, wRight.Bias())
	if wWrong.Detect(0, toks).IsWatermarked(4) {
		t.Fatal("wrong key detected the watermark")
	}
}

func TestDetectionStrengthGrowsWithLength(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(7))
	w, _ := New(9, 0.5, 3)
	zs := make([]float64, 0, 3)
	for _, n := range []int{20, 100, 400} {
		toks := lm.Sample(xrand.New(8), 0, n, 1.0, w.Bias())
		zs = append(zs, w.Detect(0, toks).ZScore)
	}
	if !(zs[0] < zs[1] && zs[1] < zs[2]) {
		t.Fatalf("z-scores not increasing with length: %v", zs)
	}
}

func TestDetectionAUCSeparatesPopulations(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(9))
	w, _ := New(11, 0.5, 3)
	var scores []float64
	var labels []bool
	for i := 0; i < 30; i++ {
		marked := lm.Sample(xrand.New(uint64(100+i)), 0, 80, 1.0, w.Bias())
		scores = append(scores, w.Detect(0, marked).ZScore)
		labels = append(labels, true)
		clean := lm.Sample(xrand.New(uint64(200+i)), 0, 80, 1.0, nil)
		scores = append(scores, w.Detect(0, clean).ZScore)
		labels = append(labels, false)
	}
	if auc := attribution.AUC(scores, labels); auc < 0.99 {
		t.Fatalf("watermark AUC = %v, want >= 0.99", auc)
	}
}

func TestEmptySequence(t *testing.T) {
	w, _ := New(1, 0.5, 2)
	det := w.Detect(0, nil)
	if det.Tokens != 0 || det.ZScore != 0 || det.PValue != 1 {
		t.Fatalf("empty detection = %+v", det)
	}
	if det.IsWatermarked(4) {
		t.Fatal("empty sequence flagged")
	}
}

func TestDeltaZeroIsNoOp(t *testing.T) {
	// Strength 0 should leave the sampling distribution untouched, so
	// detection stays at chance.
	lm := nn.NewBigramLM(32, xrand.New(10))
	w, _ := New(13, 0.5, 0)
	a := lm.Sample(xrand.New(11), 0, 100, 1.0, w.Bias())
	b := lm.Sample(xrand.New(11), 0, 100, 1.0, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("delta=0 bias changed sampling")
		}
	}
}

func TestSubstitutionAttackDegradesDetection(t *testing.T) {
	lm := nn.NewBigramLM(64, xrand.New(20))
	w, _ := New(21, 0.5, 3)
	marked := lm.Sample(xrand.New(22), 0, 300, 1.0, w.Bias())
	var prev float64 = 1e18
	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		attacked := SubstituteTokens(marked, frac, 64, xrand.New(23))
		z := w.Detect(0, attacked).ZScore
		if z >= prev+1 {
			t.Fatalf("z did not degrade with substitution: frac=%v z=%v prev=%v", frac, z, prev)
		}
		prev = z
	}
	// Full substitution destroys the watermark.
	destroyed := SubstituteTokens(marked, 1.0, 64, xrand.New(24))
	if w.Detect(0, destroyed).IsWatermarked(4) {
		t.Fatal("fully substituted text still detected")
	}
	// Zero substitution is the identity.
	same := SubstituteTokens(marked, 0, 64, xrand.New(25))
	for i := range marked {
		if same[i] != marked[i] {
			t.Fatal("frac=0 changed tokens")
		}
	}
	// Moderate substitution should survive detection (robustness).
	moderate := SubstituteTokens(marked, 0.25, 64, xrand.New(26))
	if !w.Detect(0, moderate).IsWatermarked(4) {
		t.Fatal("25% substitution defeated a 300-token watermark")
	}
}

// Package watermark implements the green-list statistical watermark for
// generated token streams (Kirchenbauer et al.), which the Model Lakes paper
// cites as a mechanism for model/data citation: generated content can be
// traced back to the model that produced it.
//
// At each sampling step, the previous token and a secret key pseudo-randomly
// partition the vocabulary into a "green" fraction γ; green logits get a
// +δ boost. The detector, knowing the key, counts the fraction of green
// tokens and reports a one-sided z-score against the null hypothesis of
// unwatermarked text.
package watermark

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Watermarker holds the secret key and strength parameters.
type Watermarker struct {
	Key   uint64
	Gamma float64 // green-list fraction, 0 < Gamma < 1 (default 0.5)
	Delta float64 // logit boost for green tokens (default 2.0)
}

// New returns a watermarker with validated parameters.
func New(key uint64, gamma, delta float64) (*Watermarker, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("watermark: gamma %v out of (0,1)", gamma)
	}
	if delta < 0 {
		return nil, fmt.Errorf("watermark: negative delta %v", delta)
	}
	return &Watermarker{Key: key, Gamma: gamma, Delta: delta}, nil
}

// isGreen reports whether token tok is on the green list in the context of
// the previous token.
func (w *Watermarker) isGreen(prev, tok int) bool {
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:8], w.Key)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(prev)))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(int64(tok)))
	h.Write(buf[:])
	// Map the hash to [0,1) and compare with gamma.
	u := float64(h.Sum64()>>11) / (1 << 53)
	return u < w.Gamma
}

// Bias returns the logit-bias hook to install into a sampler: it raises the
// logits of green-listed tokens by Delta.
func (w *Watermarker) Bias() nn.LogitBias {
	return func(prev int, logits tensor.Vector) {
		for tok := range logits {
			if w.isGreen(prev, tok) {
				logits[tok] += w.Delta
			}
		}
	}
}

// Detection is the detector's verdict on a token sequence.
type Detection struct {
	Tokens     int     // scored transitions
	GreenCount int     // observed green tokens
	ZScore     float64 // one-sided z against the γ null
	PValue     float64 // normal-approximation p-value
}

// Detect scores a token sequence. start is the token that preceded seq[0]
// during generation (use the same convention as the sampler). Sequences
// shorter than 1 yield a zero detection.
func (w *Watermarker) Detect(start int, seq []int) Detection {
	d := Detection{}
	prev := start
	for _, tok := range seq {
		d.Tokens++
		if w.isGreen(prev, tok) {
			d.GreenCount++
		}
		prev = tok
	}
	if d.Tokens == 0 {
		d.PValue = 1
		return d
	}
	n := float64(d.Tokens)
	expected := w.Gamma * n
	sd := math.Sqrt(n * w.Gamma * (1 - w.Gamma))
	if sd > 0 {
		d.ZScore = (float64(d.GreenCount) - expected) / sd
	}
	d.PValue = 0.5 * math.Erfc(d.ZScore/math.Sqrt2)
	return d
}

// IsWatermarked applies the standard decision rule: z-score above the
// threshold (4.0 is the paper's default, ~3e-5 false-positive rate).
func (d Detection) IsWatermarked(zThreshold float64) bool {
	return d.ZScore >= zThreshold
}

// SubstituteTokens models the paraphrase/substitution attack on a
// watermarked sequence: each token is independently replaced by a uniform
// vocabulary token with probability frac. It returns a new slice. Detection
// strength should degrade smoothly with frac — the robustness curve the
// watermarking literature reports.
func SubstituteTokens(seq []int, frac float64, vocab int, rng *xrand.RNG) []int {
	out := make([]int, len(seq))
	copy(out, seq)
	for i := range out {
		if rng.Float64() < frac {
			out[i] = rng.Intn(vocab)
		}
	}
	return out
}

package attribution

import (
	"fmt"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// LinearProbe is a linear classifier trained on a model's hidden activations
// to test whether a concept is linearly represented there — the probing-
// classifiers family of global explanations.
type LinearProbe struct {
	Layer int // which hidden layer's activations are probed
	net   *nn.MLP
}

// ProbeConfig configures probe training.
type ProbeConfig struct {
	Layer  int
	Epochs int
	LR     float64
	Seed   uint64
}

// TrainProbe fits a linear probe on the activations of model m at the given
// hidden layer, predicting the labels of ds. It returns the probe and its
// training accuracy (the usual probing statistic).
func TrainProbe(m *nn.MLP, ds *data.Dataset, cfg ProbeConfig) (*LinearProbe, float64, error) {
	if m.LayerCount() < 2 {
		return nil, 0, fmt.Errorf("attribution: model has no hidden layers to probe")
	}
	if cfg.Layer < 0 || cfg.Layer >= m.LayerCount()-1 {
		return nil, 0, fmt.Errorf("attribution: probe layer %d out of range [0,%d)", cfg.Layer, m.LayerCount()-1)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	// Extract activations once.
	hiddenDim := m.Sizes[cfg.Layer+1]
	acts := &data.Dataset{
		ID:         ds.ID + "#probe",
		Domain:     ds.Domain,
		X:          tensor.NewMatrix(ds.Len(), hiddenDim),
		Y:          append([]int(nil), ds.Y...),
		NumClasses: ds.NumClasses,
	}
	for i := 0; i < ds.Len(); i++ {
		x, _ := ds.Example(i)
		h := m.HiddenActivations(x)[cfg.Layer]
		copy(acts.X.Row(i), h)
	}
	probeNet := nn.NewMLP([]int{hiddenDim, ds.NumClasses}, nn.ReLU, xrand.New(cfg.Seed))
	tc := nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 16, LR: cfg.LR, Seed: cfg.Seed}
	if _, err := nn.Train(probeNet, acts, tc); err != nil {
		return nil, 0, err
	}
	probe := &LinearProbe{Layer: cfg.Layer, net: probeNet}
	return probe, probeNet.Accuracy(acts), nil
}

// Predict classifies the concept from model m's activations for input x.
func (p *LinearProbe) Predict(m *nn.MLP, x tensor.Vector) (int, error) {
	hs := m.HiddenActivations(x)
	if p.Layer >= len(hs) {
		return 0, fmt.Errorf("attribution: probe layer %d missing on this model", p.Layer)
	}
	return p.net.Predict(hs[p.Layer]), nil
}

// Accuracy evaluates the probe on a fresh dataset through model m.
func (p *LinearProbe) Accuracy(m *nn.MLP, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("attribution: empty probe dataset")
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		pred, err := p.Predict(m, x)
		if err != nil {
			return 0, err
		}
		if pred == y {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

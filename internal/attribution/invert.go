package attribution

import (
	"fmt"

	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// InvertConfig tunes model inversion.
type InvertConfig struct {
	Steps int     // gradient steps (default 200)
	LR    float64 // step size (default 0.5)
	L2    float64 // pull toward the origin to keep inputs plausible (default 0.01)
	Seed  uint64
}

// Invert synthesizes an input the model classifies as target with high
// confidence — model inversion, the §5 interpretability tool ("recover an
// input prompt given an output"). Starting from small random noise, it
// ascends the target-class log-probability by input gradients.
//
// It returns the synthesized input and the model's final confidence in the
// target class.
func Invert(m *nn.MLP, target int, cfg InvertConfig) (tensor.Vector, float64, error) {
	if target < 0 || target >= m.OutputDim() {
		return nil, 0, fmt.Errorf("attribution: inversion target %d out of range [0,%d)", target, m.OutputDim())
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 200
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.5
	}
	if cfg.L2 < 0 {
		cfg.L2 = 0
	} else if cfg.L2 == 0 {
		cfg.L2 = 0.01
	}
	rng := xrand.New(cfg.Seed)
	x := tensor.NewVector(m.InputDim())
	for i := range x {
		x[i] = 0.1 * rng.NormFloat64()
	}
	for step := 0; step < cfg.Steps; step++ {
		// ∂(-log p[target])/∂x: descend it to ascend the target probability.
		g := m.InputGradient(x, target)
		for i := range x {
			x[i] -= cfg.LR * (g[i] + cfg.L2*x[i])
		}
	}
	return x, m.Probs(x)[target], nil
}

package attribution

import (
	"math"
	"testing"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func smallSetup(t *testing.T, n int, seed uint64) (*nn.MLP, *data.Dataset, nn.TrainConfig) {
	t.Helper()
	dom := data.NewDomain("attr", 6, 2, seed)
	ds := dom.Sample("attr/v1", n, 0.5, xrand.New(seed+1))
	cfg := nn.TrainConfig{Epochs: 40, BatchSize: 8, LR: 0.1, Seed: seed}
	m := nn.NewMLP([]int{6, 8, 2}, nn.ReLU, xrand.New(seed+2))
	if _, err := nn.Train(m, ds, cfg); err != nil {
		t.Fatal(err)
	}
	return m, ds, cfg
}

func TestGradientInfluenceCorrelatesWithLOO(t *testing.T) {
	// The E3 claim in miniature: the cheap gradient estimator must rank
	// training examples similarly to exact leave-one-out retraining.
	const n = 24
	dom := data.NewDomain("loo", 6, 2, 31)
	ds := dom.Sample("loo/v1", n, 0.6, xrand.New(32))
	cfg := LOOConfig{
		Arch:     []int{6, 8, 2},
		Act:      nn.ReLU,
		Train:    nn.TrainConfig{Epochs: 30, BatchSize: 8, LR: 0.1, Seed: 7},
		InitSeed: 9,
	}
	full, err := retrain(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Test point near class 0's mean.
	x := dom.Mean(0).Clone()
	y := 0

	loo, err := LeaveOneOut(cfg, ds, x, y)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := GradientInfluence(full, ds, x, y)
	if err != nil {
		t.Fatal(err)
	}
	rho := tensor.SpearmanCorrelation(inf, loo)
	if rho < 0.3 {
		t.Fatalf("influence-vs-LOO Spearman = %.3f, want >= 0.3", rho)
	}
	// And both should beat a random ordering on top-k overlap.
	if ov := OverlapAtK(inf, loo, 5); ov < 0.4 {
		t.Fatalf("top-5 overlap = %v, want >= 0.4", ov)
	}
}

func TestGradientInfluenceSignMakesSense(t *testing.T) {
	// Same-class nearby examples should on average have higher influence on
	// a test point than opposite-class examples.
	m, ds, _ := smallSetup(t, 100, 41)
	dom := data.NewDomain("attr", 6, 2, 41)
	x := dom.Mean(1).Clone()
	inf, err := GradientInfluence(m, ds, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	var same, other float64
	var nSame, nOther int
	for i := 0; i < ds.Len(); i++ {
		if ds.Y[i] == 1 {
			same += inf[i]
			nSame++
		} else {
			other += inf[i]
			nOther++
		}
	}
	if same/float64(nSame) <= other/float64(nOther) {
		t.Fatalf("same-class mean influence %v <= other-class %v",
			same/float64(nSame), other/float64(nOther))
	}
}

func TestGradientInfluenceValidation(t *testing.T) {
	m, ds, _ := smallSetup(t, 20, 43)
	if _, err := GradientInfluence(m, ds, tensor.Vector{1}, 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 2}
	x := make(tensor.Vector, 6)
	if _, err := GradientInfluence(m, empty, x, 0); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestTopKAndOverlap(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.7}
	top := TopK(vals, 2)
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopK = %v", top)
	}
	if got := OverlapAtK(vals, vals, 3); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
	if got := OverlapAtK(vals, []float64{0.9, 0.1, 0.7, 0.5}, 1); got != 0 {
		t.Fatalf("disjoint top-1 overlap = %v", got)
	}
	if OverlapAtK(vals, vals, 0) != 0 {
		t.Fatal("k=0 overlap should be 0")
	}
	if len(TopK(vals, 100)) != 4 {
		t.Fatal("TopK should clamp k")
	}
}

func TestSaliencyHighlightsInformativeFeatures(t *testing.T) {
	// Build a dataset where only feature 0 matters; saliency must rank it
	// first.
	rng := xrand.New(51)
	n := 200
	ds := &data.Dataset{ID: "sal", X: tensor.NewMatrix(n, 4), Y: make([]int, n), NumClasses: 2}
	for i := 0; i < n; i++ {
		y := i % 2
		ds.Y[i] = y
		row := ds.X.Row(i)
		row[0] = float64(2*y-1)*2 + 0.2*rng.NormFloat64()
		for j := 1; j < 4; j++ {
			row[j] = rng.NormFloat64()
		}
	}
	m := nn.NewMLP([]int{4, 8, 2}, nn.Tanh, xrand.New(52))
	if _, err := nn.Train(m, ds, nn.TrainConfig{Epochs: 30, BatchSize: 8, LR: 0.1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	x, y := ds.Example(0)
	sal, err := Saliency(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if sal.ArgMax() != 0 {
		t.Fatalf("saliency = %v, want feature 0 dominant", sal)
	}
	occ, err := Occlusion(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if occ.ArgMax() != 0 {
		t.Fatalf("occlusion = %v, want feature 0 dominant", occ)
	}
}

func TestSaliencyValidation(t *testing.T) {
	m, _, _ := smallSetup(t, 20, 61)
	if _, err := Saliency(m, tensor.Vector{1}, 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Occlusion(m, tensor.Vector{1}, 0); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	perfect := AUC([]float64{1, 2, 3, 4}, []bool{false, false, true, true})
	if perfect != 1 {
		t.Fatalf("perfect AUC = %v", perfect)
	}
	inverted := AUC([]float64{4, 3, 2, 1}, []bool{false, false, true, true})
	if inverted != 0 {
		t.Fatalf("inverted AUC = %v", inverted)
	}
	ties := AUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false})
	if math.Abs(ties-0.5) > 1e-12 {
		t.Fatalf("all-ties AUC = %v, want 0.5", ties)
	}
	if AUC([]float64{1}, []bool{true}) != 0 {
		t.Fatal("single-class AUC should be 0")
	}
}

func TestMembershipAUCGrowsWithOverfitting(t *testing.T) {
	// A hard, noisy task: overlapping classes plus 25% label noise means a
	// long-trained model memorizes its training set, opening a loss gap the
	// attack exploits.
	dom := data.NewDomain("mem", 8, 2, 71)
	train := dom.Sample("mem/train", 40, 3.0, xrand.New(72))
	held := dom.Sample("mem/held", 40, 3.0, xrand.New(73))
	rng := xrand.New(99)
	for i := range train.Y {
		if rng.Float64() < 0.25 {
			train.Y[i] = 1 - train.Y[i]
		}
	}

	auc := func(epochs int) float64 {
		m := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(74))
		cfg := nn.TrainConfig{Epochs: epochs, BatchSize: 8, LR: 0.1, Seed: 75}
		if _, err := nn.Train(m, train, cfg); err != nil {
			t.Fatal(err)
		}
		a, err := MembershipAUC(m, train, held)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	under := auc(2)
	over := auc(300)
	if over <= under+0.1 {
		t.Fatalf("membership AUC did not grow with overfitting: %v -> %v", under, over)
	}
	if over < 0.65 {
		t.Fatalf("overfit AUC = %v, want >= 0.65", over)
	}
}

func TestMembershipValidation(t *testing.T) {
	m, ds, _ := smallSetup(t, 20, 81)
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 2}
	if _, err := MembershipAUC(m, empty, ds); err == nil {
		t.Fatal("empty members accepted")
	}
	if _, err := MembershipAUC(m, ds, empty); err == nil {
		t.Fatal("empty non-members accepted")
	}
}

func TestLinearProbeFindsDomainConcept(t *testing.T) {
	m, ds, _ := smallSetup(t, 200, 91)
	probe, trainAcc, err := TrainProbe(m, ds, ProbeConfig{Layer: 0, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	if trainAcc < 0.9 {
		t.Fatalf("probe training accuracy = %v, want >= 0.9 (class is linearly decodable)", trainAcc)
	}
	fresh := data.NewDomain("attr", 6, 2, 91).Sample("attr/fresh", 100, 0.5, xrand.New(93))
	acc, err := probe.Accuracy(m, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("probe held-out accuracy = %v, want >= 0.85", acc)
	}
}

func TestProbeValidation(t *testing.T) {
	m, ds, _ := smallSetup(t, 20, 95)
	if _, _, err := TrainProbe(m, ds, ProbeConfig{Layer: 5}); err == nil {
		t.Fatal("bad layer accepted")
	}
	shallow := nn.NewMLP([]int{6, 2}, nn.ReLU, xrand.New(1))
	if _, _, err := TrainProbe(shallow, ds, ProbeConfig{}); err == nil {
		t.Fatal("layerless model accepted")
	}
	probe, _, err := TrainProbe(m, ds, ProbeConfig{Layer: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 2}
	if _, err := probe.Accuracy(m, empty); err == nil {
		t.Fatal("empty probe dataset accepted")
	}
}

func BenchmarkGradientInfluence(b *testing.B) {
	dom := data.NewDomain("bench", 8, 2, 1)
	ds := dom.Sample("bench/v1", 100, 0.5, xrand.New(2))
	m := nn.NewMLP([]int{8, 16, 2}, nn.ReLU, xrand.New(3))
	x, y := ds.Example(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GradientInfluence(m, ds, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInvertSynthesizesTargetClassInput(t *testing.T) {
	m, ds, _ := smallSetup(t, 200, 151)
	_ = ds
	for target := 0; target < 2; target++ {
		x, conf, err := Invert(m, target, InvertConfig{Seed: uint64(target) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if m.Predict(x) != target {
			t.Fatalf("inverted input classified as %d, want %d", m.Predict(x), target)
		}
		if conf < 0.9 {
			t.Fatalf("inversion confidence = %v, want >= 0.9", conf)
		}
	}
}

func TestInvertedInputResemblesClassRegion(t *testing.T) {
	// The synthesized input should sit closer to its class mean than to the
	// other class mean — inversion recovers the learned concept, not noise.
	dom := data.NewDomain("attr", 6, 2, 151) // matches smallSetup's domain seed
	m, _, _ := smallSetup(t, 200, 151)
	for target := 0; target < 2; target++ {
		x, _, err := Invert(m, target, InvertConfig{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		// Compare direction (inversion magnitude is unconstrained).
		xn := x.Clone()
		xn.Normalize()
		own := dom.Mean(target).Clone()
		own.Normalize()
		other := dom.Mean(1 - target).Clone()
		other.Normalize()
		if tensor.L2Distance(xn, own) >= tensor.L2Distance(xn, other) {
			t.Fatalf("inverted class-%d input points toward the wrong class mean", target)
		}
	}
}

func TestInvertValidation(t *testing.T) {
	m, _, _ := smallSetup(t, 20, 153)
	if _, _, err := Invert(m, 99, InvertConfig{}); err == nil {
		t.Fatal("bad target accepted")
	}
}

// Package attribution implements the model-attribution task of §3: tracing
// model behaviour back to training data and to model internals, with the
// paper's three lenses:
//
//   - History: training-data attribution. GradientInfluence is the tractable
//     estimator (TracIn-style gradient dot products); LeaveOneOut retrains
//     without each example and is the exact-but-costly ground truth that is
//     only feasible because lake models are small.
//   - Extrinsics: sensitivity analysis (input-gradient saliency, occlusion)
//     and membership inference ("was d in D?") which observes only losses.
//   - Intrinsics: representation analysis via linear probes on hidden
//     activations.
package attribution

import (
	"fmt"
	"sort"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// GradientInfluence estimates the influence of every training example on the
// model's loss at the test point: influence_i = ∇_θ L(x_i, y_i) · ∇_θ L(x, y).
// Positive influence means the example pushed the model toward the test
// prediction. This is the single-checkpoint TracIn estimator.
func GradientInfluence(m *nn.MLP, train *data.Dataset, x tensor.Vector, y int) ([]float64, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("attribution: empty training set")
	}
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("attribution: test input dim %d != model %d", len(x), m.InputDim())
	}
	testGrad := m.GradVector(x, y)
	out := make([]float64, train.Len())
	for i := 0; i < train.Len(); i++ {
		xi, yi := train.Example(i)
		out[i] = m.GradVector(xi, yi).Dot(testGrad)
	}
	return out, nil
}

// LOOConfig configures exact leave-one-out retraining.
type LOOConfig struct {
	Arch  []int
	Act   nn.Activation
	Train nn.TrainConfig
	// InitSeed seeds the weight initialization; all retrained models share
	// it so the only varying factor is the removed example.
	InitSeed uint64
}

// LeaveOneOut computes exact influence ground truth: for each training
// example i, retrain the model without it and report
// loss_without_i(x, y) − loss_full(x, y). Positive values mean the example
// helped the prediction (removing it hurts). This is the quantity the
// paper's training-data-attribution question asks for directly — "which d,
// if they were not present, would cause the decision to change the most?" —
// and it costs a full retraining per example.
func LeaveOneOut(cfg LOOConfig, train *data.Dataset, x tensor.Vector, y int) ([]float64, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("attribution: empty training set")
	}
	full, err := retrain(cfg, train)
	if err != nil {
		return nil, err
	}
	baseLoss := full.ExampleLoss(x, y)
	out := make([]float64, train.Len())
	for i := 0; i < train.Len(); i++ {
		reduced := train.WithoutIndex(i)
		m, err := retrain(cfg, reduced)
		if err != nil {
			return nil, err
		}
		out[i] = m.ExampleLoss(x, y) - baseLoss
	}
	return out, nil
}

func retrain(cfg LOOConfig, ds *data.Dataset) (*nn.MLP, error) {
	m := nn.NewMLP(cfg.Arch, cfg.Act, xrand.New(cfg.InitSeed))
	if _, err := nn.Train(m, ds, cfg.Train); err != nil {
		return nil, fmt.Errorf("attribution: retrain: %w", err)
	}
	return m, nil
}

// TopK returns the indices of the k largest values, descending.
func TopK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

// OverlapAtK returns |TopK(a) ∩ TopK(b)| / k — how well an influence
// estimator recovers the ground truth's most influential examples.
func OverlapAtK(a, b []float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	sa := TopK(a, k)
	sb := TopK(b, k)
	inB := map[int]bool{}
	for _, i := range sb {
		inB[i] = true
	}
	hits := 0
	for _, i := range sa {
		if inB[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Saliency returns the absolute input gradient |∂L/∂x| at (x, y): which
// input features the prediction is most sensitive to (local explanation).
func Saliency(m *nn.MLP, x tensor.Vector, y int) (tensor.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("attribution: input dim %d != model %d", len(x), m.InputDim())
	}
	g := m.InputGradient(x, y)
	for i, v := range g {
		if v < 0 {
			g[i] = -v
		}
	}
	return g, nil
}

// Occlusion measures, for each input feature, the loss increase when that
// feature is zeroed — a mask-based local explanation.
func Occlusion(m *nn.MLP, x tensor.Vector, y int) (tensor.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("attribution: input dim %d != model %d", len(x), m.InputDim())
	}
	base := m.ExampleLoss(x, y)
	out := tensor.NewVector(len(x))
	work := x.Clone()
	for i := range x {
		orig := work[i]
		work[i] = 0
		out[i] = m.ExampleLoss(work, y) - base
		work[i] = orig
	}
	return out, nil
}

package attribution

import (
	"testing"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func TestConceptDirectionSeparatesClasses(t *testing.T) {
	m, ds, _ := smallSetup(t, 200, 161)
	dir, err := ConceptDirection(m, ds, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := dir.Norm(); d < 0.999 || d > 1.001 {
		t.Fatalf("direction norm = %v, want 1", d)
	}
	// Concept scores of class-1 examples exceed class-0 examples on average
	// and separate almost perfectly.
	var s1, s0 float64
	var n1, n0, ordered, pairs int
	scores := make([]float64, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		x, _ := ds.Example(i)
		s, err := ConceptScore(m, x, 0, dir)
		if err != nil {
			t.Fatal(err)
		}
		scores[i] = s
		if ds.Y[i] == 1 {
			s1 += s
			n1++
		} else {
			s0 += s
			n0++
		}
	}
	if s1/float64(n1) <= s0/float64(n0) {
		t.Fatalf("concept score means not ordered: %v vs %v", s1/float64(n1), s0/float64(n0))
	}
	for i := 0; i < ds.Len(); i++ {
		for j := 0; j < ds.Len(); j++ {
			if ds.Y[i] == 1 && ds.Y[j] == 0 {
				pairs++
				if scores[i] > scores[j] {
					ordered++
				}
			}
		}
	}
	if auc := float64(ordered) / float64(pairs); auc < 0.95 {
		t.Fatalf("concept readout AUC = %v, want >= 0.95", auc)
	}
}

func TestSteeringFlipsPredictions(t *testing.T) {
	m, ds, _ := smallSetup(t, 200, 163)
	dir, err := ConceptDirection(m, ds, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Take class-0 inputs and steer them toward concept 1.
	flipped, total := 0, 0
	for i := 0; i < ds.Len() && total < 30; i++ {
		x, y := ds.Example(i)
		if y != 0 || m.Predict(x) != 0 {
			continue
		}
		total++
		probs, err := Steer(m, x, 0, dir, 8.0)
		if err != nil {
			t.Fatal(err)
		}
		if probs.ArgMax() == 1 {
			flipped++
		}
	}
	if total == 0 {
		t.Fatal("no class-0 inputs to steer")
	}
	if frac := float64(flipped) / float64(total); frac < 0.8 {
		t.Fatalf("steering flipped only %.0f%% of inputs", frac*100)
	}
	// Zero-strength steering is a no-op on the prediction.
	x, _ := ds.Example(0)
	probs, err := Steer(m, x, 0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if probs.ArgMax() != m.Predict(x) {
		t.Fatal("alpha=0 steering changed the prediction")
	}
}

func TestConceptValidation(t *testing.T) {
	m, ds, _ := smallSetup(t, 40, 165)
	if _, err := ConceptDirection(m, ds, 9, 0); err == nil {
		t.Fatal("bad layer accepted")
	}
	if _, err := ConceptDirection(m, ds, 0, 9); err == nil {
		t.Fatal("bad concept accepted")
	}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 2}
	if _, err := ConceptDirection(m, empty, 0, 0); err == nil {
		t.Fatal("empty dataset accepted")
	}
	shallow := nn.NewMLP([]int{6, 2}, nn.ReLU, xrand.New(1))
	if _, err := ConceptDirection(shallow, ds, 0, 0); err == nil {
		t.Fatal("layerless model accepted")
	}
	dir := make(tensor.Vector, 8)
	if _, err := Steer(m, tensor.Vector{1}, 0, dir, 1); err == nil {
		t.Fatal("bad input dim accepted")
	}
	if _, err := Steer(m, make(tensor.Vector, 6), 0, make(tensor.Vector, 3), 1); err == nil {
		t.Fatal("bad direction length accepted")
	}
	if _, err := ConceptScore(m, make(tensor.Vector, 6), 5, dir); err == nil {
		t.Fatal("bad layer accepted in ConceptScore")
	}
}

func TestForwardFromHiddenConsistent(t *testing.T) {
	// Resuming from the unmodified activation must reproduce the normal
	// forward pass exactly.
	m, ds, _ := smallSetup(t, 20, 167)
	x, _ := ds.Example(0)
	want := m.Logits(x)
	h := m.HiddenActivations(x)[0]
	got, err := m.ForwardFromHidden(0, h)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(want, got) > 1e-12 {
		t.Fatalf("ForwardFromHidden diverges from Logits: %v vs %v", got, want)
	}
	if _, err := m.ForwardFromHidden(9, h); err == nil {
		t.Fatal("bad layer accepted")
	}
	if _, err := m.ForwardFromHidden(0, h[:2]); err == nil {
		t.Fatal("bad width accepted")
	}
}

package attribution

import (
	"fmt"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
)

// ConceptDirection extracts a linear concept direction at a hidden layer in
// the style of representation engineering (§4 Privacy and Safety, citing Zou
// et al.): the difference between the mean activations of examples carrying
// the concept (label == concept) and those not carrying it, normalized to
// unit length. Steering along this direction pushes the model toward the
// concept class; probing along it reads the concept out.
func ConceptDirection(m *nn.MLP, ds *data.Dataset, layer, concept int) (tensor.Vector, error) {
	if m.LayerCount() < 2 {
		return nil, fmt.Errorf("attribution: model has no hidden layers")
	}
	if layer < 0 || layer >= m.LayerCount()-1 {
		return nil, fmt.Errorf("attribution: layer %d out of range [0,%d)", layer, m.LayerCount()-1)
	}
	if concept < 0 || concept >= ds.NumClasses {
		return nil, fmt.Errorf("attribution: concept %d out of range [0,%d)", concept, ds.NumClasses)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("attribution: empty dataset")
	}
	width := m.Sizes[layer+1]
	pos := tensor.NewVector(width)
	neg := tensor.NewVector(width)
	var nPos, nNeg int
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		h := m.HiddenActivations(x)[layer]
		if y == concept {
			pos.AddScaled(1, h)
			nPos++
		} else {
			neg.AddScaled(1, h)
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("attribution: concept %d needs both positive and negative examples", concept)
	}
	pos.Scale(1 / float64(nPos))
	neg.Scale(1 / float64(nNeg))
	dir := pos.Clone()
	dir.AddScaled(-1, neg)
	if dir.Normalize() == 0 {
		return nil, fmt.Errorf("attribution: degenerate concept direction")
	}
	return dir, nil
}

// Steer runs x through the model with its layer-`layer` activation shifted
// by alpha·direction, returning the resulting class probabilities — the
// representation-engineering intervention: positive alpha pushes the model
// toward the concept the direction encodes.
func Steer(m *nn.MLP, x tensor.Vector, layer int, direction tensor.Vector, alpha float64) (tensor.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("attribution: input dim %d != model %d", len(x), m.InputDim())
	}
	hs := m.HiddenActivations(x)
	if layer < 0 || layer >= len(hs) {
		return nil, fmt.Errorf("attribution: layer %d out of range [0,%d)", layer, len(hs))
	}
	h := hs[layer].Clone()
	if len(direction) != len(h) {
		return nil, fmt.Errorf("attribution: direction length %d != layer width %d", len(direction), len(h))
	}
	h.AddScaled(alpha, direction)
	logits, err := m.ForwardFromHidden(layer, h)
	if err != nil {
		return nil, err
	}
	probs := logits.Clone()
	nn.Softmax(probs)
	return probs, nil
}

// ConceptScore reads the concept out of a single input: the projection of
// its layer activation onto the concept direction. Higher means the model
// represents the input as carrying the concept.
func ConceptScore(m *nn.MLP, x tensor.Vector, layer int, direction tensor.Vector) (float64, error) {
	if len(x) != m.InputDim() {
		return 0, fmt.Errorf("attribution: input dim %d != model %d", len(x), m.InputDim())
	}
	hs := m.HiddenActivations(x)
	if layer < 0 || layer >= len(hs) {
		return 0, fmt.Errorf("attribution: layer %d out of range [0,%d)", layer, len(hs))
	}
	if len(direction) != len(hs[layer]) {
		return 0, fmt.Errorf("attribution: direction length mismatch")
	}
	return hs[layer].Dot(direction), nil
}

package attribution

import (
	"fmt"
	"sort"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
)

// MembershipScore returns the membership-inference score for a single point:
// the negated loss. Members (points the model trained on) tend to have lower
// loss, hence higher score. This is the standard loss-threshold attack.
func MembershipScore(m *nn.MLP, x tensor.Vector, y int) float64 {
	return -m.ExampleLoss(x, y)
}

// MembershipAUC runs the loss-threshold attack against a model: members is
// (a sample of) the true training data, nonMembers is held-out data from the
// same distribution. It returns the ROC-AUC of distinguishing the two — 0.5
// means the attack learns nothing, 1.0 means training data is fully exposed.
func MembershipAUC(m *nn.MLP, members, nonMembers *data.Dataset) (float64, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return 0, fmt.Errorf("attribution: membership needs both member and non-member samples")
	}
	scores := make([]float64, 0, members.Len()+nonMembers.Len())
	labels := make([]bool, 0, members.Len()+nonMembers.Len())
	for i := 0; i < members.Len(); i++ {
		x, y := members.Example(i)
		scores = append(scores, MembershipScore(m, x, y))
		labels = append(labels, true)
	}
	for i := 0; i < nonMembers.Len(); i++ {
		x, y := nonMembers.Example(i)
		scores = append(scores, MembershipScore(m, x, y))
		labels = append(labels, false)
	}
	return AUC(scores, labels), nil
}

// AUC computes the area under the ROC curve for scores with binary labels
// (true = positive). Ties are handled by the rank-sum (Mann-Whitney)
// formulation.
func AUC(scores []float64, labels []bool) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Fractional ranks with tie averaging.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var posRankSum float64
	var nPos, nNeg int
	for i, lab := range labels {
		if lab {
			posRankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (posRankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// Package search implements the model-search task of §3 in all its
// formulations:
//
//   - Keyword search over model cards (BM25 over an inverted index) — the
//     status-quo baseline whose dependence on documentation quality the
//     paper critiques.
//   - Content-based search over model embeddings (weight-space or
//     behavioural) through the ANN indexer — the paper's vision.
//   - Model-as-query related-model search (Lu et al.).
//   - Task search: given labeled examples of a task Q, rank models by how
//     well their observable behaviour fits it.
//   - Reciprocal-rank fusion for hybrid metadata+content ranking.
package search

import (
	"sort"
	"sync"

	"modellake/internal/data"
)

// Hit is a ranked search result. Score semantics depend on the searcher but
// are always higher-is-better.
type Hit struct {
	ID    string
	Score float64
}

// KeywordIndex is a BM25 inverted index over model-card text.
type KeywordIndex struct {
	mu        sync.RWMutex
	postings  map[string]map[string]int // token -> docID -> term frequency
	docLens   map[string]int
	totalLen  int
	k1, bBM25 float64
}

// NewKeywordIndex returns an empty index with standard BM25 parameters
// (k1 = 1.2, b = 0.75).
func NewKeywordIndex() *KeywordIndex {
	return &KeywordIndex{
		postings: make(map[string]map[string]int),
		docLens:  make(map[string]int),
		k1:       1.2,
		bBM25:    0.75,
	}
}

// Add indexes text under docID, replacing any previous document with the
// same ID.
func (ki *KeywordIndex) Add(docID, text string) {
	ki.mu.Lock()
	defer ki.mu.Unlock()
	if _, ok := ki.docLens[docID]; ok {
		ki.removeLocked(docID)
	}
	toks := data.Tokenize(text)
	ki.docLens[docID] = len(toks)
	ki.totalLen += len(toks)
	for _, tok := range toks {
		m := ki.postings[tok]
		if m == nil {
			m = make(map[string]int)
			ki.postings[tok] = m
		}
		m[docID]++
	}
}

// Remove drops a document from the index.
func (ki *KeywordIndex) Remove(docID string) {
	ki.mu.Lock()
	defer ki.mu.Unlock()
	ki.removeLocked(docID)
}

func (ki *KeywordIndex) removeLocked(docID string) {
	n, ok := ki.docLens[docID]
	if !ok {
		return
	}
	ki.totalLen -= n
	delete(ki.docLens, docID)
	for tok, m := range ki.postings {
		if _, ok := m[docID]; ok {
			delete(m, docID)
			if len(m) == 0 {
				delete(ki.postings, tok)
			}
		}
	}
}

// Len returns the number of indexed documents.
func (ki *KeywordIndex) Len() int {
	ki.mu.RLock()
	defer ki.mu.RUnlock()
	return len(ki.docLens)
}

// scorePool recycles the per-query score accumulator across searches; a
// fresh map per query was the dominant allocation of keyword search.
var scorePool = sync.Pool{
	New: func() any { return make(map[string]float64) },
}

// Search returns up to k documents ranked by BM25 relevance to the query.
// Documents matching no query token are omitted — exactly the failure mode
// of metadata search: what is undocumented cannot be found.
func (ki *KeywordIndex) Search(query string, k int) []Hit {
	ki.mu.RLock()
	defer ki.mu.RUnlock()
	n := len(ki.docLens)
	if n == 0 || k <= 0 {
		return nil
	}
	avgLen := float64(ki.totalLen) / float64(n)
	if avgLen == 0 {
		avgLen = 1
	}
	scores := scorePool.Get().(map[string]float64)
	defer func() {
		clear(scores)
		scorePool.Put(scores)
	}()
	for _, tok := range data.Tokenize(query) {
		m := ki.postings[tok]
		if len(m) == 0 {
			continue
		}
		idf := bm25IDF(n, len(m))
		for docID, tf := range m {
			dl := float64(ki.docLens[docID])
			scores[docID] += bm25Term(idf, float64(tf), dl, avgLen, ki.k1, ki.bBM25)
		}
	}
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sortHits(hits)
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// sortHits orders by descending score, breaking ties by ID for determinism.
func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// FuseRRF combines several rankings with reciprocal-rank fusion:
// score(d) = Σ_r 1/(c + rank_r(d)). It is the hybrid metadata+embedding
// ranking mechanism suggested in §5. c defaults to 60 when <= 0.
func FuseRRF(c float64, rankings ...[]Hit) []Hit {
	if c <= 0 {
		c = 60
	}
	scores := map[string]float64{}
	for _, ranking := range rankings {
		for rank, hit := range ranking {
			scores[hit.ID] += 1 / (c + float64(rank+1))
		}
	}
	out := make([]Hit, 0, len(scores))
	for id, s := range scores {
		out = append(out, Hit{ID: id, Score: s})
	}
	sortHits(out)
	return out
}

//go:build race

package search

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-bound tests skip, since instrumentation adds its own allocs.
const raceEnabled = true

package search

import "math"

// Block-max pruned BM25 top-k over postings segments.
//
// The scorer is WAND-shaped: per-term cursors walk the segment's blocks in
// ordinal (== docID) order, and before any document is scored the sum of
// the matching blocks' upper bounds is compared against the current k-th
// best score. A block's bound is the largest BM25 contribution any posting
// in it can make — computed from the block's max term frequency at document
// length zero, since the contribution is monotone increasing in tf and
// decreasing in dl. When the summed bound cannot beat the heap's worst
// entry, whole blocks are skipped without ever being decoded.
//
// Pruning never changes the answer: documents that do get scored are scored
// by exactly the same float64 expression, in exactly the same per-document
// token order, as the exhaustive map scorer — so the returned top-k is
// bitwise-identical (IDs, order, score bits, tie-breaks) to scoring every
// document. Skipped documents are provably unable to enter the top-k under
// the strict (score desc, ID asc) total order: a candidate displaces the
// heap's worst entry only when its score strictly exceeds it or ties with a
// smaller ID, and pruning requires bound < worst-score strictly, which the
// boundSlack margin makes safe against the bound expression's own rounding.

// boundSlack inflates block upper bounds multiplicatively. The bound and
// the real contribution are both ~5-flop expressions whose relative
// rounding error is below 2^-50 ≈ 1e-15; a 1e-9 relative margin dwarfs it
// while costing effectively no pruning power, since competing documents'
// scores differ at far coarser granularity.
const boundSlack = 1 + 1e-9

// bm25IDF is the shared inverse-document-frequency term. Every scorer in
// the package (exhaustive map, mem tier, segment) must go through this and
// bm25Term so each per-document float operation has identical operands and
// order — the bitwise-equivalence contract.
func bm25IDF(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// bm25Term is one token's contribution to one document's score.
func bm25Term(idf, tf, dl, avgLen, k1, b float64) float64 {
	num := tf * (k1 + 1)
	den := tf + k1*(1-b+b*dl/avgLen)
	return idf * num / den
}

// bm25Bound is the largest value bm25Term can take over a block: tf at the
// block max, dl at zero, inflated by boundSlack.
func bm25Bound(idf, maxTF, k1, b float64) float64 {
	num := maxTF * (k1 + 1)
	den := maxTF + k1*(1-b)
	return idf * num / den * boundSlack
}

// kwCandidate is one entry in the bounded top-k heap.
type kwCandidate struct {
	id    string
	score float64
}

// better reports whether a outranks b under the result total order:
// higher score first, ties broken by ascending ID. IDs are unique, so the
// order is strict.
func better(a, b kwCandidate) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// kwHeap keeps the k best candidates seen so far; the root is the worst
// retained entry, so thresholding and eviction are O(log k).
type kwHeap struct {
	items []kwCandidate
	k     int
}

func (h *kwHeap) reset(k int) {
	h.items = h.items[:0]
	h.k = k
}

func (h *kwHeap) full() bool { return len(h.items) >= h.k }

// worst returns the score a candidate must beat (or tie with a smaller ID)
// to enter a full heap.
func (h *kwHeap) worst() float64 { return h.items[0].score }

func (h *kwHeap) offer(id string, score float64) {
	c := kwCandidate{id: id, score: score}
	if len(h.items) < h.k {
		h.items = append(h.items, c)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !better(h.items[parent], h.items[i]) {
				break
			}
			h.items[parent], h.items[i] = h.items[i], h.items[parent]
			i = parent
		}
		return
	}
	if !better(c, h.items[0]) {
		return
	}
	h.items[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h.items) && better(h.items[worst], h.items[l]) {
			worst = l
		}
		if r < len(h.items) && better(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// drain appends the heap's contents to hits (unordered) and empties it.
func (h *kwHeap) drain(hits []Hit) []Hit {
	for _, c := range h.items {
		hits = append(hits, Hit{ID: c.id, Score: c.score})
	}
	h.items = h.items[:0]
	return hits
}

// ordExhausted marks a cursor with no postings left.
const ordExhausted = int64(math.MaxInt64)

// segCursor walks one query token's postings within a segment. cur is the
// cursor's current ordinal; while the current block is undecoded, cur is a
// lower bound (the first ordinal the block could contain that the cursor
// still cares about) and is corrected on decode. That laziness is what lets
// pruning step over blocks without reading them.
type segCursor struct {
	ti      int     // index into the query token list (for token-order sums)
	term    int     // term index within the segment
	idf     float64 // global idf of the token
	blk     int     // current block, 0-based within the term's run
	nBlocks int
	cur     int64 // current ordinal (lower bound while undecoded)
	decoded bool
	pos     int     // position within the decoded block
	n       int     // postings in the decoded block
	bound   float64 // bm25Bound of the current block
	ords    [postingsBlockSize]uint32
	tfs     [postingsBlockSize]uint32
}

// kwScratch is the pooled per-search workspace: idf table, per-shard map
// accumulator for the mem tier, the top-k heap, segment cursors, a disk
// read buffer, and block counters flushed to metrics once per search.
type kwScratch struct {
	idf     []float64
	acc     map[string]float64
	heap    kwHeap
	cursors []segCursor
	buf     []byte
	scanned int64
	skipped int64
}

// setBlock points c at block blk, undecoded, with cur as the lower bound
// of the next ordinal of interest.
func (c *segCursor) setBlock(seg *PostingsSegment, blk int, seek int64) {
	if blk >= c.nBlocks {
		c.cur = ordExhausted
		c.decoded = false
		return
	}
	c.blk = blk
	c.decoded = false
	lb := seg.prevLastOrd(c.term, blk) + 1
	if seek > lb {
		lb = seek
	}
	c.cur = lb
	c.bound = 0 // recomputed lazily by blockBound (bounds are always > 0)
}

// blockBound returns the bound of c's current block, computing it on first
// use per block.
func (c *segCursor) blockBound(seg *PostingsSegment, k1, b float64) float64 {
	if c.bound == 0 {
		bm := seg.blocks[int(seg.tmeta[c.term].firstBlock)+c.blk]
		c.bound = bm25Bound(c.idf, float64(bm.maxTF), k1, b)
	}
	return c.bound
}

// decode materializes c's current block and advances pos to the first
// ordinal >= the cursor's lower bound, correcting cur upward.
func (c *segCursor) decode(seg *PostingsSegment, sc *kwScratch) error {
	n, grown, err := seg.decodeBlock(c.term, c.blk, c.ords[:], c.tfs[:], sc.buf)
	if err != nil {
		return err
	}
	sc.buf = grown
	sc.scanned++
	c.n = n
	c.decoded = true
	seek := c.cur
	c.pos = 0
	for c.pos < c.n && int64(c.ords[c.pos]) < seek {
		c.pos++
	}
	if c.pos == c.n {
		// Possible only when seek exceeds every ordinal in the block,
		// which advanceTo prevents; step to the next block defensively.
		c.setBlock(seg, c.blk+1, seek)
		return nil
	}
	c.cur = int64(c.ords[c.pos])
	return nil
}

// next advances a decoded cursor past its current posting.
func (c *segCursor) next(seg *PostingsSegment) {
	c.pos++
	if c.pos < c.n {
		c.cur = int64(c.ords[c.pos])
		return
	}
	c.setBlock(seg, c.blk+1, 0)
}

// advanceTo moves the cursor to the first posting with ordinal >= target,
// skipping whole blocks — undecoded ones are counted as pruned.
func (c *segCursor) advanceTo(seg *PostingsSegment, target int64, sc *kwScratch) {
	tm := seg.tmeta[c.term]
	blk := c.blk
	for blk < c.nBlocks && int64(seg.blocks[int(tm.firstBlock)+blk].lastOrd) < target {
		if blk == c.blk && c.decoded {
			// current block was already paid for
		} else {
			sc.skipped++
		}
		blk++
	}
	if blk != c.blk || !c.decoded {
		c.setBlock(seg, blk, target)
		return
	}
	// Still inside the decoded current block: walk pos forward.
	for c.pos < c.n && int64(c.ords[c.pos]) < target {
		c.pos++
	}
	if c.pos == c.n {
		c.setBlock(seg, c.blk+1, target)
		return
	}
	c.cur = int64(c.ords[c.pos])
}

// scoreSegment runs the block-max pruned scorer over one shard's segment,
// offering every surviving document to the heap with its exact BM25 score.
// tokens/idf are the query in tokenize order (idf zero marks tokens with no
// global matches); avgLen and the heap are shared with the mem-tier pass.
func scoreSegment(seg *PostingsSegment, tokens []string, sc *kwScratch, avgLen, k1, b float64) error {
	// One cursor per query token present in this segment, in token order.
	// Duplicate query tokens get duplicate cursors, which keeps the
	// per-document contribution sequence identical to the exhaustive
	// scorer's token-order accumulation.
	cursors := sc.cursors[:0]
	for ti := range tokens {
		if sc.idf[ti] == 0 {
			continue
		}
		t, ok := seg.termIndex(tokens[ti])
		if !ok {
			continue
		}
		cursors = append(cursors, segCursor{
			ti:      ti,
			term:    t,
			idf:     sc.idf[ti],
			nBlocks: int(seg.tmeta[t].nBlocks),
		})
		c := &cursors[len(cursors)-1]
		c.setBlock(seg, 0, 0)
	}
	sc.cursors = cursors
	if len(cursors) == 0 {
		return nil
	}
	heap := &sc.heap

	for {
		// Pivot: the smallest current ordinal across live cursors. While a
		// cursor's block is undecoded its cur is a lower bound, which can
		// only make the matching set larger — an overestimate that costs a
		// decode, never a wrong skip.
		pivot := ordExhausted
		for i := range cursors {
			if cursors[i].cur < pivot {
				pivot = cursors[i].cur
			}
		}
		if pivot == ordExhausted {
			break
		}

		// Upper-bound the score any document in the matching range can
		// reach: the sum of matching cursors' current block bounds.
		ub := 0.0
		for i := range cursors {
			if cursors[i].cur == pivot {
				ub += cursors[i].blockBound(seg, k1, b)
			}
		}
		if heap.full() && ub*boundSlack < heap.worst() {
			// No document up to the matching blocks' horizon can enter the
			// top-k: every posting in [pivot, skipEnd] lives in a matching
			// cursor's current block (non-matching cursors resume strictly
			// after skipEnd), so its score is bounded by ub.
			skipEnd := ordExhausted
			for i := range cursors {
				c := &cursors[i]
				if c.cur == pivot {
					last := int64(seg.blocks[int(seg.tmeta[c.term].firstBlock)+c.blk].lastOrd)
					if last < skipEnd {
						skipEnd = last
					}
				} else if c.cur != ordExhausted && c.cur-1 < skipEnd {
					skipEnd = c.cur - 1
				}
			}
			for i := range cursors {
				if cursors[i].cur <= skipEnd {
					cursors[i].advanceTo(seg, skipEnd+1, sc)
				}
			}
			continue
		}

		// Survivor: decode any matching cursors still lazy. A decode can
		// push a cursor's cur past pivot (its lower bound was optimistic),
		// invalidating the matching set — recompute the pivot then.
		moved := false
		for i := range cursors {
			c := &cursors[i]
			if c.cur == pivot && !c.decoded {
				if err := c.decode(seg, sc); err != nil {
					return err
				}
				if c.cur != pivot {
					moved = true
				}
			}
		}
		if moved {
			continue
		}

		// Exact rescore in token order — cursors were built in token order,
		// so this sum is the same float64 sequence the exhaustive scorer
		// produces for this document.
		dl := float64(seg.docLens[pivot])
		score := 0.0
		for i := range cursors {
			c := &cursors[i]
			if c.cur == pivot {
				score += bm25Term(c.idf, float64(c.tfs[c.pos]), dl, avgLen, k1, b)
			}
		}
		heap.offer(seg.docIDs[pivot], score)
		for i := range cursors {
			if cursors[i].cur == pivot {
				cursors[i].next(seg)
			}
		}
	}
	return nil
}

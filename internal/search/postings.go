package search

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"sort"
)

// This file implements the immutable postings segment behind the sharded
// keyword index: a compact, mergeable replacement for the nested
// map[token]map[docID]tf tier. A segment holds a shard's documents as
//
//   - a sorted document table (docID, token length, CRC-64 of the source
//     text) — the ordinal of a document in this table is its docID ord,
//     so ordinal order is exactly ID order;
//   - a sorted terms dictionary, each term owning a run of blocks;
//   - per-term postings split into blocks of up to postingsBlockSize
//     entries, each block delta/varint-encoded (ord gaps, then raw tf)
//     and carrying metadata (last ord, max tf, count, byte extent) that
//     the block-max scorer reads without decoding the block.
//
// Blocks live behind a blockSource: a byte slice for in-RAM segments, or
// pread against the published segment file when the lake runs with
// DiskResidentPostings — the same two-tier shape as the MLVF vector
// segments in internal/index.
//
// The per-document text CRC is what makes a disk segment adoptable after
// reopen: the lake verifies every covered document's current card text
// against the stored CRC, so a segment is only ever trusted when it still
// describes exactly the text the registry holds.

// postingsBlockSize is the maximum number of postings per block. 128 keeps
// decode scratch small (two 512-byte arrays) while giving block-max pruning
// enough granularity to skip meaningful work.
const postingsBlockSize = 128

// kwCRCTable is the CRC-64 polynomial shared by document-text checksums and
// the segment file walk — same choice (ECMA) as the MLVF vector segments.
var kwCRCTable = crc64.MakeTable(crc64.ECMA)

// textCRC is the per-document freshness checksum stored in segments.
func textCRC(text string) uint64 {
	return crc64.Checksum([]byte(text), kwCRCTable)
}

// TextCRC exposes the per-document checksum so the lake can verify a
// published segment against the registry's current card texts on reopen.
func TextCRC(text string) uint64 { return textCRC(text) }

// blockMeta describes one encoded postings block without decoding it.
type blockMeta struct {
	lastOrd uint32 // ordinal of the last posting in the block
	maxTF   uint32 // maximum term frequency in the block (block-max bound input)
	count   uint32 // postings in the block (1..postingsBlockSize)
	off     int64  // byte offset of the encoded block within the blob
	length  int32  // encoded byte length
}

// termMeta is one dictionary entry: the term's document frequency and its
// run of blocks.
type termMeta struct {
	df         uint32
	firstBlock int32
	nBlocks    int32
}

// blockSource serves encoded block bytes. ramBlocks returns subslices of an
// in-memory blob; fileBlocks preads the published segment file.
type blockSource interface {
	// readBlock returns length bytes at off, using scratch if it needs a
	// destination buffer. The returned slice is only valid until the next
	// readBlock with the same scratch.
	readBlock(off int64, length int32, scratch []byte) ([]byte, error)
	// memBytes is the heap held by the source (0 for disk-resident blocks).
	memBytes() int64
	// close releases any file handle.
	close() error
}

type ramBlocks []byte

func (b ramBlocks) readBlock(off int64, length int32, _ []byte) ([]byte, error) {
	end := off + int64(length)
	if off < 0 || end > int64(len(b)) {
		return nil, fmt.Errorf("%w: block extent [%d,%d) outside blob of %d bytes", ErrBadPostings, off, end, len(b))
	}
	return b[off:end], nil
}

func (b ramBlocks) memBytes() int64 { return int64(len(b)) }
func (b ramBlocks) close() error    { return nil }

// PostingsSegment is an immutable, compact inverted index over one keyword
// shard's documents. It is built by merging the shard's live map tier with
// the previous segment, optionally published to disk, and scored by the
// block-max pruned scorer in blockmax.go.
type PostingsSegment struct {
	docIDs   []string // sorted ascending; index == ordinal
	docLens  []uint32 // token count per document
	docCRCs  []uint64 // textCRC of the indexed text per document
	totalLen int64    // sum of docLens
	terms    []string // sorted ascending
	tmeta    []termMeta
	blocks   []blockMeta
	src      blockSource
}

// DocCount returns the number of documents in the segment.
func (seg *PostingsSegment) DocCount() int { return len(seg.docIDs) }

// contains reports whether the segment holds docID.
func (seg *PostingsSegment) contains(docID string) bool {
	i := sort.SearchStrings(seg.docIDs, docID)
	return i < len(seg.docIDs) && seg.docIDs[i] == docID
}

// termIndex locates tok in the dictionary.
func (seg *PostingsSegment) termIndex(tok string) (int, bool) {
	i := sort.SearchStrings(seg.terms, tok)
	if i < len(seg.terms) && seg.terms[i] == tok {
		return i, true
	}
	return -1, false
}

// df returns tok's document frequency within the segment (0 if absent).
func (seg *PostingsSegment) df(tok string) int {
	if i, ok := seg.termIndex(tok); ok {
		return int(seg.tmeta[i].df)
	}
	return 0
}

// prevLastOrd returns the delta base for block blk of term t: the last
// ordinal of the preceding block, or -1 at the start of the term's run.
func (seg *PostingsSegment) prevLastOrd(t, blk int) int64 {
	if blk == 0 {
		return -1
	}
	return int64(seg.blocks[int(seg.tmeta[t].firstBlock)+blk-1].lastOrd)
}

// decodeBlock decodes block blk of term t into ords/tfs (each sized at
// least blockMeta.count) and returns the posting count. scratch is the
// disk-read buffer, returned possibly grown.
func (seg *PostingsSegment) decodeBlock(t, blk int, ords, tfs []uint32, scratch []byte) (int, []byte, error) {
	bm := seg.blocks[int(seg.tmeta[t].firstBlock)+blk]
	raw, err := seg.src.readBlock(bm.off, bm.length, scratch)
	if err != nil {
		return 0, scratch, err
	}
	if cap(scratch) < len(raw) {
		scratch = raw[:0:len(raw)] // remember grown buffer for the caller
	}
	prev := seg.prevLastOrd(t, blk)
	pos := 0
	for i := 0; i < int(bm.count); i++ {
		gap, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return 0, scratch, fmt.Errorf("%w: truncated ord gap in block", ErrBadPostings)
		}
		pos += n
		tf, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return 0, scratch, fmt.Errorf("%w: truncated tf in block", ErrBadPostings)
		}
		pos += n
		prev += int64(gap)
		if prev >= int64(len(seg.docIDs)) || tf == 0 {
			return 0, scratch, fmt.Errorf("%w: posting ord %d / tf %d out of range", ErrBadPostings, prev, tf)
		}
		ords[i] = uint32(prev)
		tfs[i] = uint32(tf)
	}
	if pos != len(raw) {
		return 0, scratch, fmt.Errorf("%w: %d trailing bytes in block", ErrBadPostings, len(raw)-pos)
	}
	if uint32(prev) != bm.lastOrd {
		return 0, scratch, fmt.Errorf("%w: block last ord %d, metadata says %d", ErrBadPostings, prev, bm.lastOrd)
	}
	return int(bm.count), scratch, nil
}

// forEachPosting decodes every posting of term t in ordinal order — the
// segment-to-map path used by merges and demotes.
func (seg *PostingsSegment) forEachPosting(t int, fn func(ord, tf uint32)) error {
	var ords, tfs [postingsBlockSize]uint32
	var scratch []byte
	tm := seg.tmeta[t]
	for blk := 0; blk < int(tm.nBlocks); blk++ {
		n, grown, err := seg.decodeBlock(t, blk, ords[:], tfs[:], scratch)
		if err != nil {
			return err
		}
		scratch = grown
		for i := 0; i < n; i++ {
			fn(ords[i], tfs[i])
		}
	}
	return nil
}

// memBytes estimates the heap retained by the segment: the doc table,
// dictionary, block metadata, and (for in-RAM segments) the block blob.
func (seg *PostingsSegment) memBytes() int64 {
	if seg == nil {
		return 0
	}
	const strHeader = 16 // string header per entry
	n := int64(0)
	for _, id := range seg.docIDs {
		n += int64(len(id)) + strHeader
	}
	n += int64(len(seg.docLens))*4 + int64(len(seg.docCRCs))*8
	for _, t := range seg.terms {
		n += int64(len(t)) + strHeader
	}
	n += int64(len(seg.tmeta))*12 + int64(len(seg.blocks))*24
	n += seg.src.memBytes()
	return n
}

// segmentBuilder accumulates a segment in memory. Terms must be added in
// sorted order with postings in ascending ordinal order.
type segmentBuilder struct {
	seg  PostingsSegment
	blob []byte
	tmp  [2 * binary.MaxVarintLen64]byte
}

func (b *segmentBuilder) addTerm(term string, ords, tfs []uint32) {
	tm := termMeta{
		df:         uint32(len(ords)),
		firstBlock: int32(len(b.seg.blocks)),
	}
	prev := int64(-1)
	for start := 0; start < len(ords); start += postingsBlockSize {
		end := start + postingsBlockSize
		if end > len(ords) {
			end = len(ords)
		}
		bm := blockMeta{off: int64(len(b.blob)), count: uint32(end - start)}
		for i := start; i < end; i++ {
			gap := int64(ords[i]) - prev
			prev = int64(ords[i])
			n := binary.PutUvarint(b.tmp[:], uint64(gap))
			n += binary.PutUvarint(b.tmp[n:], uint64(tfs[i]))
			b.blob = append(b.blob, b.tmp[:n]...)
			if tfs[i] > bm.maxTF {
				bm.maxTF = tfs[i]
			}
		}
		bm.lastOrd = uint32(prev)
		bm.length = int32(int64(len(b.blob)) - bm.off)
		b.seg.blocks = append(b.seg.blocks, bm)
		tm.nBlocks++
	}
	b.seg.terms = append(b.seg.terms, term)
	b.seg.tmeta = append(b.seg.tmeta, tm)
}

// finish seals the builder into an in-RAM segment.
func (b *segmentBuilder) finish() *PostingsSegment {
	b.seg.src = ramBlocks(b.blob)
	return &b.seg
}

// buildSegment merges a shard's live map tier with its previous segment
// (either may be empty/nil) into a fresh in-RAM segment. The two tiers
// hold disjoint document sets — that invariant is what keeps per-term
// document frequencies a simple sum. Reading the old segment can fail on
// a disk-resident source; the error aborts the build with no state changed.
func buildSegment(memPostings map[string]map[string]int, memLens map[string]int,
	memCRCs map[string]uint64, old *PostingsSegment) (*PostingsSegment, error) {

	// Document table: sorted union of both tiers. Ordinal == sorted rank.
	nOld := 0
	if old != nil {
		nOld = len(old.docIDs)
	}
	ids := make([]string, 0, nOld+len(memLens))
	if old != nil {
		ids = append(ids, old.docIDs...)
	}
	for id := range memLens {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("search: document %q present in both postings tiers", ids[i])
		}
	}
	ord := make(map[string]uint32, len(ids))
	for i, id := range ids {
		ord[id] = uint32(i)
	}

	b := &segmentBuilder{}
	b.seg.docIDs = ids
	b.seg.docLens = make([]uint32, len(ids))
	b.seg.docCRCs = make([]uint64, len(ids))
	for i, id := range ids {
		if dl, ok := memLens[id]; ok {
			b.seg.docLens[i] = uint32(dl)
			b.seg.docCRCs[i] = memCRCs[id]
			b.seg.totalLen += int64(dl)
		}
	}
	var remap []uint32 // old ordinal -> new ordinal
	if old != nil {
		remap = make([]uint32, len(old.docIDs))
		for i, id := range old.docIDs {
			no := ord[id]
			remap[i] = no
			b.seg.docLens[no] = old.docLens[i]
			b.seg.docCRCs[no] = old.docCRCs[i]
		}
		b.seg.totalLen += old.totalLen
	}

	// Terms: sorted union of the mem tier's tokens and the old dictionary.
	terms := make([]string, 0, len(memPostings)+func() int {
		if old != nil {
			return len(old.terms)
		}
		return 0
	}())
	for tok := range memPostings {
		terms = append(terms, tok)
	}
	if old != nil {
		for _, tok := range old.terms {
			if _, inMem := memPostings[tok]; !inMem {
				terms = append(terms, tok)
			}
		}
	}
	sort.Strings(terms)

	var ords, tfs []uint32
	for _, tok := range terms {
		ords, tfs = ords[:0], tfs[:0]
		if m := memPostings[tok]; len(m) > 0 {
			for id, tf := range m {
				ords = append(ords, ord[id])
				tfs = append(tfs, uint32(tf))
			}
		}
		if old != nil {
			if ot, ok := old.termIndex(tok); ok {
				if err := old.forEachPosting(ot, func(o, tf uint32) {
					ords = append(ords, remap[o])
					tfs = append(tfs, tf)
				}); err != nil {
					return nil, err
				}
			}
		}
		sort.Sort(&postingsByOrd{ords, tfs})
		b.addTerm(tok, ords, tfs)
	}
	return b.finish(), nil
}

// postingsByOrd sorts parallel (ord, tf) slices by ordinal.
type postingsByOrd struct{ ords, tfs []uint32 }

func (p *postingsByOrd) Len() int           { return len(p.ords) }
func (p *postingsByOrd) Less(i, j int) bool { return p.ords[i] < p.ords[j] }
func (p *postingsByOrd) Swap(i, j int) {
	p.ords[i], p.ords[j] = p.ords[j], p.ords[i]
	p.tfs[i], p.tfs[j] = p.tfs[j], p.tfs[i]
}

package search

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"modellake/internal/data"
	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/model"
	"modellake/internal/tensor"
)

// ContentSearcher is the content-based model search engine: models are
// embedded (weight-space, behavioural, or hybrid) and indexed in an ANN
// structure; queries are models, vectors, or free text routed to the right
// embedding space.
type ContentSearcher struct {
	embedder embedding.Embedder
	idx      index.Index
	mu       sync.RWMutex
	added    map[string]bool // IDs reserved for or present in the index
}

// NewContentSearcher builds a searcher over the given embedder and ANN
// index. The index must be empty and is owned by the searcher afterwards.
func NewContentSearcher(e embedding.Embedder, idx index.Index) *ContentSearcher {
	return &ContentSearcher{embedder: e, idx: idx, added: make(map[string]bool)}
}

// EmbedderName reports the underlying embedding space.
func (s *ContentSearcher) EmbedderName() string { return s.embedder.Name() }

// MemBytes estimates the heap retained by the underlying vector index, when
// the index can report it (every built-in index can; zero otherwise).
func (s *ContentSearcher) MemBytes() int64 {
	if mr, ok := s.idx.(interface{ MemBytes() int64 }); ok {
		return mr.MemBytes()
	}
	return 0
}

// reserve claims id before the (expensive) embedding runs, so a concurrent
// add of the same ID fails fast instead of embedding twice and losing the
// race at indexing time.
func (s *ContentSearcher) reserve(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.added[id] {
		return fmt.Errorf("search: %s already indexed", id)
	}
	s.added[id] = true
	return nil
}

// unreserve releases a claim whose embed or index step failed.
func (s *ContentSearcher) unreserve(id string) {
	s.mu.Lock()
	delete(s.added, id)
	s.mu.Unlock()
}

// Add embeds and indexes a model. The ID is reserved before embedding, so
// two concurrent adds of the same model do the expensive embed only once:
// the loser returns "already indexed" immediately.
func (s *ContentSearcher) Add(h *model.Handle) error {
	if err := s.reserve(h.ID()); err != nil {
		return err
	}
	v, err := s.embedder.Embed(h)
	if err != nil {
		s.unreserve(h.ID())
		return fmt.Errorf("search: embed %s: %w", h.ID(), err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.idx.Add(h.ID(), v); err != nil {
		delete(s.added, h.ID())
		return fmt.Errorf("search: index %s: %w", h.ID(), err)
	}
	return nil
}

// Reserve hints that about n models of dimension dim are about to be added,
// letting capacity-aware indexes (Flat) pre-size their packed storage. It is
// advisory: indexes without the hint ignore it, and n is not a cap.
func (s *ContentSearcher) Reserve(n, dim int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.idx.(interface{ Reserve(n, dim int) }); ok {
		r.Reserve(n, dim)
	}
}

// AddVector indexes a model under a precomputed embedding, skipping the
// embed step entirely — the fast path behind lake rehydration, where the
// vector was computed (by this searcher's own embedder) at ingest time and
// persisted alongside the registry record. The caller is responsible for the
// vector actually belonging to this searcher's embedding space; everything
// else (ID reservation, index insertion) matches Add exactly, so an
// AddVector call is indistinguishable from an Add that hit the embedding
// cache.
func (s *ContentSearcher) AddVector(id string, v tensor.Vector) error {
	if err := s.reserve(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.idx.Add(id, v); err != nil {
		delete(s.added, id)
		return fmt.Errorf("search: index %s: %w", id, err)
	}
	return nil
}

// index snapshots the current index under the read lock: Reindex swaps the
// index out atomically, and searches must not observe a half-assigned field.
func (s *ContentSearcher) index() index.Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx
}

// AdoptIndex atomically replaces the searcher's index with one built
// externally — a disk-resident segment validated on open, or a freshly
// rebuilt one — that already contains exactly ids. The ID reservation set is
// reset to match, so subsequent Add/AddVector calls behave as if each id had
// been added through the searcher. The previous index is abandoned
// unclosed: in-flight searches may still hold it, and a disk-resident
// index's file handle is released when the old index is collected (or by
// Close on the searcher before any swap happened).
func (s *ContentSearcher) AdoptIndex(idx index.Index, ids []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx = idx
	s.added = make(map[string]bool, len(ids))
	for _, id := range ids {
		s.added[id] = true
	}
}

// Close releases resources held by the current index — a disk-resident
// index keeps its segment file open for pread rescoring. Indexes without
// resources make this a no-op. Searches racing Close may fail.
func (s *ContentSearcher) Close() error {
	if c, ok := s.index().(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Len returns the number of indexed models.
func (s *ContentSearcher) Len() int { return s.index().Len() }

// EmbedQuery embeds a query model into this searcher's space without
// touching the index — the first half of SearchByModel, exposed so callers
// (the lake's query-result cache) can key on the vector before deciding
// whether the index scan is needed.
func (s *ContentSearcher) EmbedQuery(q *model.Handle) (tensor.Vector, error) {
	v, err := s.embedder.Embed(q)
	if err != nil {
		return nil, fmt.Errorf("search: embed query %s: %w", q.ID(), err)
	}
	return v, nil
}

// SearchByModel performs model-as-query related-model search: rank indexed
// models by embedding proximity to the query model. The query model itself
// (matched by ID) is excluded from the results.
func (s *ContentSearcher) SearchByModel(q *model.Handle, k int) ([]Hit, error) {
	return s.SearchByModelContext(context.Background(), q, k)
}

// SearchByModelContext is SearchByModel honoring a request context: a long
// flat scan is abandoned mid-stream when ctx is canceled.
func (s *ContentSearcher) SearchByModelContext(ctx context.Context, q *model.Handle, k int) ([]Hit, error) {
	v, err := s.EmbedQuery(q)
	if err != nil {
		return nil, err
	}
	raw, err := s.SearchByVectorContext(ctx, v, k+1)
	if err != nil {
		return nil, err
	}
	return ExcludeSelf(raw, q.ID(), k), nil
}

// ExcludeSelf drops the query model's own entry from raw hits and truncates
// to k — the post-processing step between a raw vector search (what the
// result cache stores) and a model-as-query answer.
func ExcludeSelf(raw []Hit, selfID string, k int) []Hit {
	hits := make([]Hit, 0, k)
	for _, r := range raw {
		if r.ID == selfID {
			continue
		}
		hits = append(hits, r)
		if len(hits) == k {
			break
		}
	}
	return hits
}

// SearchByVector ranks indexed models by proximity to a raw embedding
// vector.
func (s *ContentSearcher) SearchByVector(v tensor.Vector, k int) ([]Hit, error) {
	return s.SearchByVectorContext(context.Background(), v, k)
}

// SearchByVectorContext is SearchByVector honoring a request context.
func (s *ContentSearcher) SearchByVectorContext(ctx context.Context, v tensor.Vector, k int) ([]Hit, error) {
	res, err := s.index().Search(ctx, v, k)
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, len(res))
	for i, r := range res {
		hits[i] = Hit{ID: r.ID, Score: -r.Distance}
	}
	return hits, nil
}

// SearchMany answers a batch of vector queries, fanning them across a
// bounded worker pool — the read-path counterpart of AddAll. Results and
// errors are aligned with queries; a failed query carries its error without
// aborting the batch, except that a canceled context fails every query still
// pending. parallelism <= 0 means GOMAXPROCS. Each individual answer is
// identical to a serial SearchByVectorContext call with the same arguments.
func (s *ContentSearcher) SearchMany(ctx context.Context, queries []tensor.Vector, k, parallelism int) ([][]Hit, []error) {
	hits := make([][]Hit, len(queries))
	errs := make([]error, len(queries))
	if len(queries) == 0 {
		return hits, errs
	}
	parallelism = normalizeParallelism(parallelism)
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				hits[i], errs[i] = s.SearchByVectorContext(ctx, queries[i], k)
			}
		}()
	}
	wg.Wait()
	return hits, errs
}

// TaskExample is one labeled example of the task function Q: X → Y from the
// paper's extrinsic search formalization.
type TaskExample struct {
	X tensor.Vector
	Y int
}

// TaskSearcher ranks models by behavioural fit to a task given as examples:
// score = mean probability the model assigns to the correct label. It only
// touches the extrinsic viewpoint, so it works on closed-weight models.
type TaskSearcher struct {
	mu     sync.RWMutex
	models []*model.Handle
}

// Add registers a model for task search.
func (t *TaskSearcher) Add(h *model.Handle) {
	t.mu.Lock()
	t.models = append(t.models, h)
	t.mu.Unlock()
}

// Reset atomically replaces the whole roster — the reindex path rebuilds
// the task-search population alongside the content indexes.
func (t *TaskSearcher) Reset(models []*model.Handle) {
	t.mu.Lock()
	t.models = append([]*model.Handle(nil), models...)
	t.mu.Unlock()
}

// Len returns the number of registered models.
func (t *TaskSearcher) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.models)
}

// Search returns up to k models ranked by mean correct-label probability on
// the examples. Models that cannot consume the examples (dimension mismatch,
// withheld extrinsics) are skipped.
func (t *TaskSearcher) Search(examples []TaskExample, k int) ([]Hit, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("search: task search needs at least one example")
	}
	t.mu.RLock()
	models := append([]*model.Handle(nil), t.models...)
	t.mu.RUnlock()
	var hits []Hit
	for _, h := range models {
		total, ok := 0.0, true
		for _, ex := range examples {
			p, err := h.Probs(ex.X)
			if err != nil || ex.Y < 0 || ex.Y >= len(p) {
				ok = false
				break
			}
			total += p[ex.Y]
		}
		if !ok {
			continue
		}
		hits = append(hits, Hit{ID: h.ID(), Score: total / float64(len(examples))})
	}
	sortHits(hits)
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits, nil
}

// DatasetAsTask converts a labeled dataset into task examples (up to n).
func DatasetAsTask(ds *data.Dataset, n int) []TaskExample {
	if n > ds.Len() {
		n = ds.Len()
	}
	out := make([]TaskExample, n)
	for i := 0; i < n; i++ {
		x, y := ds.Example(i)
		out[i] = TaskExample{X: x.Clone(), Y: y}
	}
	return out
}

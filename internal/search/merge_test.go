package search

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"modellake/internal/data"
	"modellake/internal/xrand"
)

// TestMergeTopKMatchesGlobalSort drives the scatter-gather merge with
// randomized scores (including exact ties) and checks it against a full sort
// of the union — bit-for-bit, order included.
func TestMergeTopKMatchesGlobalSort(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + int(rng.Uint64()%5)
		var union []Hit
		lists := make([][]Hit, nShards)
		id := 0
		for s := 0; s < nShards; s++ {
			n := int(rng.Uint64() % 20)
			for i := 0; i < n; i++ {
				// Quantized scores force cross-shard ties.
				h := Hit{ID: fmt.Sprintf("m-%03d", id), Score: -float64(int(rng.Uint64()%8)) / 4}
				id++
				lists[s] = append(lists[s], h)
				union = append(union, h)
			}
			sortHits(lists[s])
		}
		k := int(rng.Uint64() % 12)
		want := append([]Hit(nil), union...)
		sortHits(want)
		if k < len(want) {
			want = want[:k]
		}
		got := MergeTopK(k, lists...)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge mismatch\ngot  %v\nwant %v", trial, got, want)
		}
		for i := range got {
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("trial %d: score bits differ at %d", trial, i)
			}
		}
	}
}

// TestSearchWithStatsMatchesSingleIndex partitions a corpus across several
// ShardedKeywordIndex instances and checks that two-phase scoring (gather
// stats, merge, score locally, merge hits by score) reproduces a single
// index's Search bit-for-bit.
func TestSearchWithStatsMatchesSingleIndex(t *testing.T) {
	docs := map[string]string{
		"m-1": "bert transformer english sentiment",
		"m-2": "resnet vision classifier",
		"m-3": "bert large english qa transformer transformer",
		"m-4": "tiny sentiment english",
		"m-5": "audio wav2vec speech english",
		"m-6": "bert sentiment",
	}
	single := NewShardedKeywordIndex(4)
	parts := []*ShardedKeywordIndex{NewShardedKeywordIndex(4), NewShardedKeywordIndex(4), NewShardedKeywordIndex(4)}
	i := 0
	for id, text := range docs {
		single.Add(id, text)
		parts[i%len(parts)].Add(id, text)
		i++
	}
	for _, query := range []string{"bert english", "sentiment", "transformer transformer english", "nothing matches"} {
		want, err := single.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		tokens := data.Tokenize(query)
		var g KeywordStats
		for _, p := range parts {
			g.Merge(p.Stats(tokens))
		}
		var all []Hit
		for _, p := range parts {
			ph, err := p.SearchWithStats(query, g, 10)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, ph...)
		}
		sortHits(all)
		if len(all) > 10 {
			all = all[:10]
		}
		if len(want) == 0 && len(all) == 0 {
			continue
		}
		if !reflect.DeepEqual(all, want) {
			t.Fatalf("query %q: two-phase mismatch\ngot  %v\nwant %v", query, all, want)
		}
		for j := range want {
			if math.Float64bits(all[j].Score) != math.Float64bits(want[j].Score) {
				t.Fatalf("query %q: score bits differ at rank %d", query, j)
			}
		}
	}
}

package search

import "modellake/internal/index"

// MergeTopK merges per-shard vector-search rankings into the global top-k,
// through the same bounded-heap selector single-node searches use. Hit
// scores are the negated index distances (see SearchByVectorContext), and
// negation is exact in IEEE754, so converting back and forth preserves every
// bit: the merged hits are bitwise-identical to a single-node search over
// the union of the shards' populations.
func MergeTopK(k int, lists ...[]Hit) []Hit {
	rls := make([][]index.Result, len(lists))
	for i, l := range lists {
		rs := make([]index.Result, len(l))
		for j, h := range l {
			rs[j] = index.Result{ID: h.ID, Distance: -h.Score}
		}
		rls[i] = rs
	}
	merged := index.MergeTopK(k, rls...)
	out := make([]Hit, len(merged))
	for i, r := range merged {
		out[i] = Hit{ID: r.ID, Score: -r.Distance}
	}
	return out
}

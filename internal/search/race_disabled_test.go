//go:build !race

package search

const raceEnabled = false

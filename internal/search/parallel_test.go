package search

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/model"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// testEmbedders returns one embedder per embedding space, all deterministic,
// so the parallel-vs-serial property can be checked for every space the
// lake indexes.
func testEmbedders(dim int) map[string]embedding.Embedder {
	lookup := func(id string) (string, error) {
		return "synthetic card text for " + id, nil
	}
	weight := embedding.NewWeightEmbedder(16, 4, 7)
	behavior := embedding.NewBehaviorEmbedder(dim, 16, 8, 7)
	return map[string]embedding.Embedder{
		"weight":   weight,
		"behavior": behavior,
		"card":     &embedding.CardEmbedder{DimBuckets: 32, Lookup: lookup},
		"hybrid":   &embedding.HybridEmbedder{Parts: []embedding.Embedder{weight, behavior}},
	}
}

func shuffledHandles(pop []*model.Handle, rng *xrand.RNG) []*model.Handle {
	out := append([]*model.Handle(nil), pop...)
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestAddAllMatchesSerialTopK is the pipeline's core property: for every
// embedder, parallel AddAll over a *shuffled* copy of the model set yields
// exactly the same top-k hits — IDs and bitwise scores — as a serial Add
// loop over the original order. Run under -race this also exercises the
// worker pool for data races.
func TestAddAllMatchesSerialTopK(t *testing.T) {
	pop := buildPopulation(t, 31)
	handles := make([]*model.Handle, len(pop.Members))
	for i, m := range pop.Members {
		handles[i] = model.NewHandle(m.Model)
	}
	rng := xrand.New(99)
	const k = 5
	for name, emb := range testEmbedders(pop.Spec.Dim) {
		t.Run(name, func(t *testing.T) {
			serial := NewContentSearcher(emb, index.NewFlat(index.Cosine))
			for _, h := range handles {
				if err := serial.Add(h); err != nil {
					t.Fatal(err)
				}
			}
			for trial := 0; trial < 3; trial++ {
				parallel := NewContentSearcher(emb, index.NewFlat(index.Cosine))
				shuffled := shuffledHandles(handles, rng)
				for i, err := range parallel.AddAll(shuffled, 8) {
					if err != nil {
						t.Fatalf("AddAll[%d] (%s): %v", i, shuffled[i].ID(), err)
					}
				}
				if parallel.Len() != serial.Len() {
					t.Fatalf("parallel indexed %d, serial %d", parallel.Len(), serial.Len())
				}
				for _, q := range handles {
					want, err := serial.SearchByModel(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := parallel.SearchByModel(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("query %s: got %d hits, want %d", q.ID(), len(got), len(want))
					}
					for i := range want {
						if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
							t.Fatalf("query %s hit %d: parallel %+v != serial %+v",
								q.ID(), i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestAddAllIdenticalHNSWOrder pins the in-order-commit guarantee: with the
// same input order, parallel AddAll builds the identical HNSW graph a
// serial Add loop builds — approximate search results and all.
func TestAddAllIdenticalHNSWOrder(t *testing.T) {
	pop := buildPopulation(t, 32)
	emb := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 16, 8, 7)
	handles := make([]*model.Handle, len(pop.Members))
	for i, m := range pop.Members {
		handles[i] = model.NewHandle(m.Model)
	}
	cfg := index.HNSWConfig{M: 8, EfConstruction: 40, EfSearch: 16, Seed: 3}
	serial := NewContentSearcher(emb, index.NewHNSW(index.Cosine, cfg))
	for _, h := range handles {
		if err := serial.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	parallel := NewContentSearcher(emb, index.NewHNSW(index.Cosine, cfg))
	for i, err := range parallel.AddAll(handles, 6) {
		if err != nil {
			t.Fatalf("AddAll[%d]: %v", i, err)
		}
	}
	for _, q := range handles {
		want, err := serial.SearchByModel(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.SearchByModel(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: %d hits vs %d", q.ID(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %s hit %d: %+v != %+v (HNSW graphs diverged)", q.ID(), i, got[i], want[i])
			}
		}
	}
}

// TestAddAllReportsPerModelErrors: duplicates inside the batch and against
// the live index fail in their slot without sinking the rest.
func TestAddAllReportsPerModelErrors(t *testing.T) {
	pop := buildPopulation(t, 33)
	emb := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 8, 8, 7)
	cs := NewContentSearcher(emb, index.NewFlat(index.Cosine))
	h0 := model.NewHandle(pop.Members[0].Model)
	if err := cs.Add(h0); err != nil {
		t.Fatal(err)
	}
	batch := []*model.Handle{
		model.NewHandle(pop.Members[1].Model),
		h0, // duplicate vs index
		model.NewHandle(pop.Members[2].Model),
		model.NewHandle(pop.Members[1].Model), // duplicate within batch
	}
	errs := cs.AddAll(batch, 4)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("clean models failed: %v", errs)
	}
	if errs[1] == nil || errs[3] == nil {
		t.Fatalf("duplicates not reported: %v", errs)
	}
	if cs.Len() != 3 {
		t.Fatalf("index has %d entries, want 3", cs.Len())
	}
}

// gateEmbedder blocks inside Embed until released and counts invocations —
// the instrument for proving the duplicate-add race fix embeds only once.
type gateEmbedder struct {
	dim     int
	calls   atomic.Int32
	release chan struct{}
}

func (e *gateEmbedder) Name() string { return "gate" }
func (e *gateEmbedder) Dim() int     { return e.dim }
func (e *gateEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	e.calls.Add(1)
	<-e.release
	v := make(tensor.Vector, e.dim)
	v[0] = 1
	return v, nil
}

// TestConcurrentAddSameIDEmbedsOnce is the regression test for the
// duplicate-add race: two concurrent adds of the same ID used to both run
// the expensive embed, with one erroring only afterwards. The ID is now
// reserved before embedding, so the loser must return immediately — while
// the winner is still stuck inside Embed — and the embedder must run
// exactly once.
func TestConcurrentAddSameIDEmbedsOnce(t *testing.T) {
	pop := buildPopulation(t, 34)
	emb := &gateEmbedder{dim: 4, release: make(chan struct{})}
	cs := NewContentSearcher(emb, index.NewFlat(index.Cosine))
	h := model.NewHandle(pop.Members[0].Model)

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { results <- cs.Add(h) }()
	}
	// One Add must fail while the other is still blocked embedding.
	first := <-results
	if first == nil {
		t.Fatal("an Add completed before the embedder was released")
	}
	if !strings.Contains(first.Error(), "already indexed") {
		t.Fatalf("loser error = %v, want already-indexed", first)
	}
	close(emb.release)
	if err := <-results; err != nil {
		t.Fatalf("winner failed: %v", err)
	}
	if n := emb.calls.Load(); n != 1 {
		t.Fatalf("embedder ran %d times, want 1", n)
	}
	if cs.Len() != 1 {
		t.Fatalf("index has %d entries, want 1", cs.Len())
	}
}

// failingEmbedder fails for a chosen ID, to check reservation rollback.
type failingEmbedder struct {
	dim    int
	failID string
}

func (e *failingEmbedder) Name() string { return "failing" }
func (e *failingEmbedder) Dim() int     { return e.dim }
func (e *failingEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	if h.ID() == e.failID {
		return nil, errors.New("boom")
	}
	v := make(tensor.Vector, e.dim)
	v[0] = 1
	return v, nil
}

func TestAddReleasesReservationOnEmbedFailure(t *testing.T) {
	pop := buildPopulation(t, 35)
	h := model.NewHandle(pop.Members[0].Model)
	cs := NewContentSearcher(&failingEmbedder{dim: 4, failID: h.ID()}, index.NewFlat(index.Cosine))
	if err := cs.Add(h); err == nil {
		t.Fatal("embed failure not surfaced")
	}
	// The failed ID must not stay reserved: a later add of the same model
	// (e.g. after the transient cause clears) has to be possible.
	cs.embedder = &failingEmbedder{dim: 4, failID: "other"}
	if err := cs.Add(h); err != nil {
		t.Fatalf("retry after embed failure rejected: %v", err)
	}
}

// TestReindexMatchesOriginal rebuilds over a fresh index and checks searches
// are unchanged, while old searches keep working mid-rebuild.
func TestReindexMatchesOriginal(t *testing.T) {
	pop := buildPopulation(t, 36)
	emb := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 16, 8, 7)
	handles := make([]*model.Handle, len(pop.Members))
	for i, m := range pop.Members {
		handles[i] = model.NewHandle(m.Model)
	}
	cs := NewContentSearcher(emb, index.NewFlat(index.Cosine))
	for _, h := range handles {
		if err := cs.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	before, err := cs.SearchByModel(handles[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, err := range cs.Reindex(handles, index.NewFlat(index.Cosine), 4) {
		if err != nil {
			t.Fatalf("reindex[%d]: %v", i, err)
		}
	}
	after, err := cs.SearchByModel(handles[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Fatalf("reindex changed results:\n before %v\n after  %v", before, after)
	}
	// A non-empty target index must be refused.
	dirty := index.NewFlat(index.Cosine)
	if err := dirty.Add("x", tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	for _, err := range cs.Reindex(handles, dirty, 2) {
		if err == nil {
			t.Fatal("reindex into a non-empty index accepted")
		}
	}
}

// TestShardedKeywordIndexMatchesSingleLock: sharding changes the locking,
// never the ranking — hits and scores must be bitwise identical to the
// single-mutex KeywordIndex on the same corpus.
func TestShardedKeywordIndexMatchesSingleLock(t *testing.T) {
	rng := xrand.New(17)
	words := []string{"legal", "medical", "court", "patient", "model", "data",
		"finance", "bond", "statute", "therapy", "contract", "verdict"}
	doc := func() string {
		n := 5 + rng.Intn(40)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	single := NewKeywordIndex()
	sharded := NewShardedKeywordIndex(8)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("m%03d", i)
		text := doc()
		single.Add(id, text)
		sharded.Add(id, text)
	}
	// Replace and remove some documents so those paths are compared too.
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("m%03d", rng.Intn(200))
		text := doc()
		single.Add(id, text)
		sharded.Add(id, text)
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("m%03d", rng.Intn(200))
		single.Remove(id)
		sharded.Remove(id)
	}
	if single.Len() != sharded.Len() {
		t.Fatalf("Len: single %d, sharded %d", single.Len(), sharded.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := doc()[:20]
		want := single.Search(q, 10)
		got, err := sharded.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %q: %d hits vs %d", q, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %q hit %d: sharded %+v != single %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestShardedKeywordIndexConcurrent hammers adds/searches from many
// goroutines; -race is the assertion.
func TestShardedKeywordIndexConcurrent(t *testing.T) {
	ki := NewShardedKeywordIndex(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ki.Add(fmt.Sprintf("w%d-m%d", w, i), "legal court model data")
				if i%7 == 0 {
					ki.Search("legal model", 5)
					ki.Remove(fmt.Sprintf("w%d-m%d", w, i/2))
				}
			}
		}(w)
	}
	wg.Wait()
	if ki.Len() == 0 {
		t.Fatal("concurrent adds lost everything")
	}
}

// TestSearchManyMatchesSerial pins the batched read path: SearchMany over a
// worker pool must answer every query bitwise-identically to serial
// SearchByVectorContext calls, at any parallelism.
func TestSearchManyMatchesSerial(t *testing.T) {
	pop := buildPopulation(t, 53)
	cs := NewContentSearcher(testEmbedders(pop.Spec.Dim)["behavior"], index.NewFlat(index.Cosine))
	for _, m := range pop.Members {
		if err := cs.Add(model.NewHandle(m.Model)); err != nil {
			t.Fatal(err)
		}
	}
	var queries []tensor.Vector
	for _, m := range pop.Members[:8] {
		v, err := cs.EmbedQuery(model.NewHandle(m.Model))
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, v)
	}
	ctx := context.Background()
	const k = 5
	want := make([][]Hit, len(queries))
	for i, q := range queries {
		hits, err := cs.SearchByVectorContext(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = hits
	}
	for _, par := range []int{1, 2, 4, 16} {
		got, errs := cs.SearchMany(ctx, queries, k, par)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("par=%d query %d: %v", par, i, err)
			}
			if len(got[i]) != len(want[i]) {
				t.Fatalf("par=%d query %d: len %d != %d", par, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j].ID != want[i][j].ID || got[i][j].Score != want[i][j].Score {
					t.Fatalf("par=%d query %d hit %d: got %+v want %+v", par, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	// A canceled context fails every query with a context error.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, errs := cs.SearchMany(canceled, queries, k, 4)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query %d: err = %v", i, err)
		}
	}
}

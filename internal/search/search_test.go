package search

import (
	"fmt"
	"testing"

	"modellake/internal/card"
	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/xrand"
)

func TestKeywordSearchRelevance(t *testing.T) {
	ki := NewKeywordIndex()
	ki.Add("legal-1", "statute court plaintiff contract legal summarization")
	ki.Add("medical-1", "patient diagnosis clinical dosage therapy")
	ki.Add("legal-2", "court appeal verdict legal")
	hits := ki.Search("legal court summarization", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].ID != "legal-1" {
		t.Fatalf("best hit = %v, want legal-1", hits[0])
	}
	for _, h := range hits {
		if h.ID == "medical-1" {
			t.Fatal("medical model matched a legal query")
		}
	}
}

func TestKeywordSearchMissingDocsInvisible(t *testing.T) {
	// The paper's core observation: an undocumented model cannot be found
	// by metadata search.
	ki := NewKeywordIndex()
	ki.Add("documented", "legal court statute")
	ki.Add("undocumented", "") // model exists but its card is empty
	hits := ki.Search("legal", 10)
	for _, h := range hits {
		if h.ID == "undocumented" {
			t.Fatal("undocumented model should be invisible to keyword search")
		}
	}
}

func TestKeywordIndexUpdateAndRemove(t *testing.T) {
	ki := NewKeywordIndex()
	ki.Add("m", "legal")
	if hits := ki.Search("legal", 5); len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	ki.Add("m", "medical") // replace
	if hits := ki.Search("legal", 5); len(hits) != 0 {
		t.Fatalf("stale postings: %v", hits)
	}
	if hits := ki.Search("medical", 5); len(hits) != 1 {
		t.Fatalf("update lost: %v", hits)
	}
	ki.Remove("m")
	if ki.Len() != 0 {
		t.Fatalf("Len after remove = %d", ki.Len())
	}
	ki.Remove("m") // idempotent
}

func TestKeywordSearchEmptyIndex(t *testing.T) {
	ki := NewKeywordIndex()
	if hits := ki.Search("anything", 5); hits != nil {
		t.Fatalf("hits on empty index: %v", hits)
	}
}

func TestBM25PrefersRareTerms(t *testing.T) {
	ki := NewKeywordIndex()
	// "common" appears everywhere; "oncology" in one card.
	for i := 0; i < 10; i++ {
		ki.Add(fmt.Sprintf("m%d", i), "common model data")
	}
	ki.Add("special", "common oncology model")
	hits := ki.Search("common oncology", 3)
	if hits[0].ID != "special" {
		t.Fatalf("rare term did not dominate: %v", hits)
	}
}

func TestFuseRRF(t *testing.T) {
	a := []Hit{{ID: "x", Score: 3}, {ID: "y", Score: 2}, {ID: "z", Score: 1}}
	b := []Hit{{ID: "y", Score: 9}, {ID: "x", Score: 8}}
	fused := FuseRRF(0, a, b)
	if len(fused) != 3 {
		t.Fatalf("fused = %v", fused)
	}
	// x: 1/61 + 1/62; y: 1/62 + 1/61 — tie broken by ID, x first.
	if fused[0].ID != "x" || fused[1].ID != "y" {
		t.Fatalf("fused order: %v", fused)
	}
	if fused[2].ID != "z" {
		t.Fatalf("z should be last: %v", fused)
	}
}

func buildPopulation(t *testing.T, seed uint64) *lakegen.Population {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = 4
	s.ChildrenPerBase = 4
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
	}
	return pop
}

func TestContentSearchFindsSameDomain(t *testing.T) {
	pop := buildPopulation(t, 21)
	be := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 32, 8, 5)
	cs := NewContentSearcher(be, index.NewFlat(index.Cosine))
	for _, m := range pop.Members {
		if err := cs.Add(model.NewHandle(m.Model)); err != nil {
			t.Fatal(err)
		}
	}
	// Query with each member; most top-3 neighbours should share its domain
	// family.
	good, total := 0, 0
	for qi, q := range pop.Members {
		hits, err := cs.SearchByModel(model.NewHandle(q.Model), 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			var idx int
			fmt.Sscanf(h.ID, "m%d", &idx)
			total++
			if pop.Members[idx].Truth.Family == pop.Members[qi].Truth.Family {
				good++
			}
		}
	}
	if frac := float64(good) / float64(total); frac < 0.8 {
		t.Fatalf("same-family fraction in top-3 = %.2f, want >= 0.8", frac)
	}
}

func TestContentSearchExcludesQueryModel(t *testing.T) {
	pop := buildPopulation(t, 22)
	be := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 16, 8, 5)
	cs := NewContentSearcher(be, index.NewFlat(index.Cosine))
	for _, m := range pop.Members {
		if err := cs.Add(model.NewHandle(m.Model)); err != nil {
			t.Fatal(err)
		}
	}
	q := model.NewHandle(pop.Members[0].Model)
	hits, err := cs.SearchByModel(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("got %d hits", len(hits))
	}
	for _, h := range hits {
		if h.ID == q.ID() {
			t.Fatal("query model returned as its own neighbour")
		}
	}
}

func TestContentSearchDuplicateAdd(t *testing.T) {
	pop := buildPopulation(t, 23)
	be := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 8, 8, 5)
	cs := NewContentSearcher(be, index.NewFlat(index.Cosine))
	h := model.NewHandle(pop.Members[0].Model)
	if err := cs.Add(h); err != nil {
		t.Fatal(err)
	}
	if err := cs.Add(h); err == nil {
		t.Fatal("duplicate add accepted")
	}
}

func TestContentSearchWorksWithoutCards(t *testing.T) {
	// Content search must keep working when documentation is empty — the
	// contrast to keyword search.
	pop := buildPopulation(t, 24)
	for _, m := range pop.Members {
		m.Card = &card.Card{ModelID: m.Model.ID, Name: m.Truth.Name} // no text
	}
	be := embedding.NewBehaviorEmbedder(pop.Spec.Dim, 16, 8, 5)
	cs := NewContentSearcher(be, index.NewFlat(index.Cosine))
	for _, m := range pop.Members {
		if err := cs.Add(model.NewHandle(m.Model)); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := cs.SearchByModel(model.NewHandle(pop.Members[1].Model), 3)
	if err != nil || len(hits) != 3 {
		t.Fatalf("content search degraded without cards: %v %v", hits, err)
	}
}

func TestTaskSearchRanksDomainExpertsFirst(t *testing.T) {
	pop := buildPopulation(t, 25)
	ts := &TaskSearcher{}
	for _, m := range pop.Members {
		ts.Add(model.NewHandle(m.Model))
	}
	// The task: the first base's domain data.
	base := pop.Members[0]
	ds := pop.Datasets[base.Truth.DatasetID]
	examples := DatasetAsTask(ds, 32)
	hits, err := ts.Search(examples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	var topIdx int
	fmt.Sscanf(hits[0].ID, "m%d", &topIdx)
	if pop.Members[topIdx].Truth.Family != base.Truth.Family {
		t.Fatalf("top task hit %s is from the wrong family", hits[0].ID)
	}
}

func TestTaskSearchValidation(t *testing.T) {
	ts := &TaskSearcher{}
	if _, err := ts.Search(nil, 5); err == nil {
		t.Fatal("empty example set accepted")
	}
}

func TestTaskSearchSkipsIncompatibleModels(t *testing.T) {
	pop := buildPopulation(t, 26)
	ts := &TaskSearcher{}
	ts.Add(model.NewHandle(pop.Members[0].Model))
	// A restricted handle with no extrinsics must simply be skipped.
	ts.Add(model.WithViews(pop.Members[1].Model, 0))
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	hits, err := ts.Search(DatasetAsTask(ds, 8), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("expected 1 scoreable model, got %v", hits)
	}
}

func BenchmarkKeywordSearch(b *testing.B) {
	ki := NewKeywordIndex()
	rng := xrand.New(1)
	words := []string{"legal", "medical", "court", "patient", "model", "data", "finance", "bond"}
	for i := 0; i < 1000; i++ {
		text := ""
		for j := 0; j < 30; j++ {
			text += words[rng.Intn(len(words))] + " "
		}
		ki.Add(fmt.Sprintf("m%d", i), text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ki.Search("legal court model", 10)
	}
}

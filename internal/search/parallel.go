package search

import (
	"fmt"
	"runtime"
	"sync"

	"modellake/internal/index"
	"modellake/internal/model"
	"modellake/internal/tensor"
)

// This file is the parallel half of the §5 indexer: embedding is the
// CPU-heavy ingest stage, so AddAll fans it out over a bounded worker pool
// while committing vectors to the index strictly in input order. In-order
// commit makes the batch path produce a byte-identical index to a serial
// Add loop — for HNSW the graph depends on insertion order, so this is what
// lets experiments swap serial for parallel ingest without changing any
// search result.

// normalizeParallelism clamps a worker count to [1, GOMAXPROCS] when it is
// unset (<= 0); explicit positive values are honored as given so tests can
// oversubscribe deliberately.
func normalizeParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// AddAll embeds hs concurrently with up to parallelism workers and indexes
// the results in input order. The returned slice is aligned with hs: a nil
// entry means that model was embedded and indexed, a non-nil entry carries
// that model's failure (duplicate ID, unembeddable viewpoint, index
// rejection). Failures do not abort the batch. parallelism <= 0 means
// GOMAXPROCS.
//
// AddAll over any permutation of a model set leaves the searcher able to
// answer exact-index queries identically to a serial Add loop; with the
// same input order the resulting index is identical even for approximate
// (insertion-order-sensitive) indexes.
func (s *ContentSearcher) AddAll(hs []*model.Handle, parallelism int) []error {
	errs := make([]error, len(hs))
	if len(hs) == 0 {
		return errs
	}
	parallelism = normalizeParallelism(parallelism)

	// Reserve every ID up front, in input order, so duplicates (within the
	// batch or against the live index) fail before any embedding work and
	// concurrent callers cannot sneak the same ID in mid-batch.
	embed := make([]bool, len(hs))
	for i, h := range hs {
		if err := s.reserve(h.ID()); err != nil {
			errs[i] = err
			continue
		}
		embed[i] = true
	}

	type slot struct {
		vec  tensor.Vector
		err  error
		done bool
	}
	slots := make([]slot, len(hs))
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	next := 0 // next index the workers will claim

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(hs) {
					return
				}
				var sl slot
				if embed[i] {
					v, err := s.embedder.Embed(hs[i])
					sl = slot{vec: v, err: err}
				}
				sl.done = true
				mu.Lock()
				slots[i] = sl
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// Committer: insert into the index in input order as soon as each
	// prefix of embeddings completes, overlapping indexing with the
	// embedding still in flight behind it.
	for i, h := range hs {
		if !embed[i] {
			continue
		}
		mu.Lock()
		for !slots[i].done {
			cond.Wait()
		}
		sl := slots[i]
		slots[i] = slot{done: true} // release the vector
		mu.Unlock()
		if sl.err != nil {
			s.unreserve(h.ID())
			errs[i] = fmt.Errorf("search: embed %s: %w", h.ID(), sl.err)
			continue
		}
		s.mu.Lock()
		err := s.idx.Add(h.ID(), sl.vec)
		if err != nil {
			delete(s.added, h.ID())
		}
		s.mu.Unlock()
		if err != nil {
			errs[i] = fmt.Errorf("search: index %s: %w", h.ID(), err)
		}
	}
	wg.Wait()
	return errs
}

// Reindex rebuilds the searcher from scratch over fresh (an empty index that
// the searcher owns afterwards), embedding hs with up to parallelism
// workers. The old index keeps serving searches until the rebuild is
// complete, then the new one is swapped in atomically. The returned slice is
// aligned with hs like AddAll's.
func (s *ContentSearcher) Reindex(hs []*model.Handle, fresh index.Index, parallelism int) []error {
	if fresh.Len() != 0 {
		errs := make([]error, len(hs))
		for i := range errs {
			errs[i] = fmt.Errorf("search: reindex target index is not empty")
		}
		return errs
	}
	staging := NewContentSearcher(s.embedder, fresh)
	errs := staging.AddAll(hs, parallelism)
	s.mu.Lock()
	s.idx = staging.idx
	s.added = staging.added
	s.mu.Unlock()
	return errs
}

package search

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"modellake/internal/fault"
)

// MLKP1 — the on-disk postings segment. One file per keyword shard:
//
//	header (88 bytes):
//	    magic "MLKP" | version | shardID | shardCount        4 × uint32
//	    docCount | termCount | blockCount | totalLen          4 × uint64
//	    metaLen | blobLen                                     2 × uint64
//	    metaCRC | blobCRC                                     2 × uint64   CRC-64/ECMA
//	    headerCRC                                             uint64       over the preceding 80 bytes
//	meta (metaLen bytes): the document table then the dictionary,
//	    varint-packed (see encodeMeta), covered by metaCRC
//	blob (blobLen bytes): concatenated encoded blocks, covered by blobCRC
//
// Publish is crash-safe the same way MLVF vector segments are: the bytes
// stream into a temp file in the target directory, the file is fsynced,
// closed, renamed into place, and the directory fsynced — all through the
// (nil-safe) fault.FS so the crash-window sweep can fail every one of those
// operations in turn. Open walks every byte of the file against the three
// CRCs before trusting any of it; damage of any kind yields ErrBadPostings
// and the caller rebuilds the segment from cards.
const (
	postingsMagic   = 0x4d4c4b50 // "MLKP"
	postingsVersion = 1
	postingsHdrLen  = 88
)

// ErrBadPostings marks a postings segment file that failed validation —
// torn, truncated, bit-flipped, or from a different shard layout. Segments
// are derived state: the caller responds by rebuilding from cards.
var ErrBadPostings = errors.New("search: bad postings segment")

type postingsHeader struct {
	shardID, shardCount uint32
	docCount, termCount uint64
	blockCount          uint64
	totalLen            uint64
	metaLen, blobLen    uint64
	metaCRC, blobCRC    uint64
}

func (h *postingsHeader) encode() []byte {
	buf := make([]byte, postingsHdrLen)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], postingsMagic)
	le.PutUint32(buf[4:], postingsVersion)
	le.PutUint32(buf[8:], h.shardID)
	le.PutUint32(buf[12:], h.shardCount)
	le.PutUint64(buf[16:], h.docCount)
	le.PutUint64(buf[24:], h.termCount)
	le.PutUint64(buf[32:], h.blockCount)
	le.PutUint64(buf[40:], h.totalLen)
	le.PutUint64(buf[48:], h.metaLen)
	le.PutUint64(buf[56:], h.blobLen)
	le.PutUint64(buf[64:], h.metaCRC)
	le.PutUint64(buf[72:], h.blobCRC)
	le.PutUint64(buf[80:], crc64.Checksum(buf[:80], kwCRCTable))
	return buf
}

func decodePostingsHeader(buf []byte) (postingsHeader, error) {
	var h postingsHeader
	if len(buf) != postingsHdrLen {
		return h, fmt.Errorf("%w: short header", ErrBadPostings)
	}
	le := binary.LittleEndian
	if got := le.Uint64(buf[80:]); got != crc64.Checksum(buf[:80], kwCRCTable) {
		return h, fmt.Errorf("%w: header checksum mismatch", ErrBadPostings)
	}
	if le.Uint32(buf[0:]) != postingsMagic {
		return h, fmt.Errorf("%w: bad magic", ErrBadPostings)
	}
	if v := le.Uint32(buf[4:]); v != postingsVersion {
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadPostings, v)
	}
	h.shardID = le.Uint32(buf[8:])
	h.shardCount = le.Uint32(buf[12:])
	h.docCount = le.Uint64(buf[16:])
	h.termCount = le.Uint64(buf[24:])
	h.blockCount = le.Uint64(buf[32:])
	h.totalLen = le.Uint64(buf[40:])
	h.metaLen = le.Uint64(buf[48:])
	h.blobLen = le.Uint64(buf[56:])
	h.metaCRC = le.Uint64(buf[64:])
	h.blobCRC = le.Uint64(buf[72:])
	return h, nil
}

// encodeMeta packs the document table and dictionary:
//
//	docs:  len(id) | id bytes | docLen          (uvarint, bytes, uvarint)
//	       docCRC                               (fixed 8 bytes, LE)
//	terms: len(term) | term bytes | df | nBlocks
//	       per block: lastOrd | maxTF | count | length   (uvarint each;
//	       offsets are implied by cumulative length in file order)
func encodeMeta(seg *PostingsSegment) []byte {
	var tmp [binary.MaxVarintLen64]byte
	var out []byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	for i, id := range seg.docIDs {
		putUv(uint64(len(id)))
		out = append(out, id...)
		putUv(uint64(seg.docLens[i]))
		var crc [8]byte
		binary.LittleEndian.PutUint64(crc[:], seg.docCRCs[i])
		out = append(out, crc[:]...)
	}
	for t, term := range seg.terms {
		tm := seg.tmeta[t]
		putUv(uint64(len(term)))
		out = append(out, term...)
		putUv(uint64(tm.df))
		putUv(uint64(tm.nBlocks))
		for b := 0; b < int(tm.nBlocks); b++ {
			bm := seg.blocks[int(tm.firstBlock)+b]
			putUv(uint64(bm.lastOrd))
			putUv(uint64(bm.maxTF))
			putUv(uint64(bm.count))
			putUv(uint64(bm.length))
		}
	}
	return out
}

// decodeMeta parses encodeMeta output into seg (everything but src),
// validating sortedness, counts, and that block extents exactly tile
// [0, blobLen).
func decodeMeta(buf []byte, h postingsHeader) (*PostingsSegment, error) {
	seg := &PostingsSegment{
		docIDs:   make([]string, 0, h.docCount),
		docLens:  make([]uint32, 0, h.docCount),
		docCRCs:  make([]uint64, 0, h.docCount),
		totalLen: int64(h.totalLen),
		terms:    make([]string, 0, h.termCount),
		tmeta:    make([]termMeta, 0, h.termCount),
		blocks:   make([]blockMeta, 0, h.blockCount),
	}
	pos := 0
	fail := func(what string) (*PostingsSegment, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadPostings, what)
	}
	getUv := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	getStr := func() (string, bool) {
		n, ok := getUv()
		if !ok || n > uint64(len(buf)-pos) {
			return "", false
		}
		s := string(buf[pos : pos+int(n)])
		pos += int(n)
		return s, true
	}
	var sumLens int64
	for i := uint64(0); i < h.docCount; i++ {
		id, ok := getStr()
		if !ok {
			return fail("truncated document table")
		}
		if len(seg.docIDs) > 0 && id <= seg.docIDs[len(seg.docIDs)-1] {
			return fail("document table not strictly sorted")
		}
		dl, ok := getUv()
		if !ok || dl > (1<<32-1) {
			return fail("bad document length")
		}
		if pos+8 > len(buf) {
			return fail("truncated document checksum")
		}
		crc := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		seg.docIDs = append(seg.docIDs, id)
		seg.docLens = append(seg.docLens, uint32(dl))
		seg.docCRCs = append(seg.docCRCs, crc)
		sumLens += int64(dl)
	}
	if sumLens != seg.totalLen {
		return fail("document lengths do not sum to totalLen")
	}
	var nextOff int64
	for t := uint64(0); t < h.termCount; t++ {
		term, ok := getStr()
		if !ok {
			return fail("truncated dictionary")
		}
		if len(seg.terms) > 0 && term <= seg.terms[len(seg.terms)-1] {
			return fail("dictionary not strictly sorted")
		}
		df, ok1 := getUv()
		nb, ok2 := getUv()
		if !ok1 || !ok2 || df == 0 || nb == 0 {
			return fail("bad term entry")
		}
		tm := termMeta{df: uint32(df), firstBlock: int32(len(seg.blocks)), nBlocks: int32(nb)}
		var nPostings uint64
		prevLast := int64(-1)
		for b := uint64(0); b < nb; b++ {
			lastOrd, ok1 := getUv()
			maxTF, ok2 := getUv()
			count, ok3 := getUv()
			length, ok4 := getUv()
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return fail("truncated block metadata")
			}
			if count == 0 || count > postingsBlockSize || maxTF == 0 ||
				lastOrd >= h.docCount || int64(lastOrd) <= prevLast ||
				length == 0 || int64(length) > int64(h.blobLen)-nextOff {
				return fail("block metadata out of range")
			}
			seg.blocks = append(seg.blocks, blockMeta{
				lastOrd: uint32(lastOrd),
				maxTF:   uint32(maxTF),
				count:   uint32(count),
				off:     nextOff,
				length:  int32(length),
			})
			nextOff += int64(length)
			nPostings += count
			prevLast = int64(lastOrd)
		}
		if nPostings != df {
			return fail("block counts do not sum to df")
		}
		seg.terms = append(seg.terms, term)
		seg.tmeta = append(seg.tmeta, tm)
	}
	if pos != len(buf) {
		return fail("trailing bytes after dictionary")
	}
	if uint64(len(seg.blocks)) != h.blockCount {
		return fail("block count mismatch")
	}
	if nextOff != int64(h.blobLen) {
		return fail("block extents do not tile the blob")
	}
	return seg, nil
}

// writeSegmentFile publishes seg (whose blocks must be in RAM) at path via
// temp + fsync + rename + directory fsync. It returns the byte offset of
// the blob within the file, which a disk-resident reopen needs for pread.
func writeSegmentFile(fsys *fault.FS, path string, seg *PostingsSegment, shardID, shardCount int) (int64, error) {
	blob, ok := seg.src.(ramBlocks)
	if !ok {
		return 0, errors.New("search: writeSegmentFile needs an in-RAM segment")
	}
	meta := encodeMeta(seg)
	h := postingsHeader{
		shardID:    uint32(shardID),
		shardCount: uint32(shardCount),
		docCount:   uint64(len(seg.docIDs)),
		termCount:  uint64(len(seg.terms)),
		blockCount: uint64(len(seg.blocks)),
		totalLen:   uint64(seg.totalLen),
		metaLen:    uint64(len(meta)),
		blobLen:    uint64(len(blob)),
		metaCRC:    crc64.Checksum(meta, kwCRCTable),
		blobCRC:    crc64.Checksum(blob, kwCRCTable),
	}
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	for _, chunk := range [][]byte{h.encode(), meta, blob} {
		if _, err := f.Write(chunk); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return 0, err
	}
	return postingsHdrLen + int64(len(meta)), nil
}

// fileBlocks serves blocks by pread against the published segment file.
type fileBlocks struct {
	f    *fault.File
	base int64 // file offset of the blob
}

func (fb *fileBlocks) readBlock(off int64, length int32, scratch []byte) ([]byte, error) {
	if cap(scratch) < int(length) {
		scratch = make([]byte, length)
	}
	buf := scratch[:length]
	if _, err := fb.f.ReadAt(buf, fb.base+off); err != nil {
		return nil, fmt.Errorf("%w: reading block: %v", ErrBadPostings, err)
	}
	return buf, nil
}

func (fb *fileBlocks) memBytes() int64 { return 0 }
func (fb *fileBlocks) close() error    { return fb.f.Close() }

// openSegmentFile loads and fully verifies a published segment. Every byte
// of the file is walked against the header, meta, and blob CRCs before any
// of it is trusted; structural invariants (sorted tables, block tiling) are
// re-checked on parse. With diskResident the blob stays on disk behind a
// retained read-only handle; otherwise the blob is kept in RAM and the file
// closed. shardID/shardCount guard against adopting a file written under a
// different shard layout, where per-shard document placement differs.
func openSegmentFile(fsys *fault.FS, path string, shardID, shardCount int, diskResident bool) (*PostingsSegment, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	keepOpen := false
	defer func() {
		if !keepOpen {
			f.Close()
		}
	}()

	hdrBuf := make([]byte, postingsHdrLen)
	if _, err := io.ReadFull(f, hdrBuf); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadPostings, err)
	}
	h, err := decodePostingsHeader(hdrBuf)
	if err != nil {
		return nil, err
	}
	if h.shardID != uint32(shardID) || h.shardCount != uint32(shardCount) {
		return nil, fmt.Errorf("%w: segment is shard %d/%d, index wants %d/%d",
			ErrBadPostings, h.shardID, h.shardCount, shardID, shardCount)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if want := postingsHdrLen + int64(h.metaLen) + int64(h.blobLen); st.Size() != want {
		return nil, fmt.Errorf("%w: file is %d bytes, header implies %d", ErrBadPostings, st.Size(), want)
	}

	meta := make([]byte, h.metaLen)
	if _, err := io.ReadFull(f, meta); err != nil {
		return nil, fmt.Errorf("%w: reading meta: %v", ErrBadPostings, err)
	}
	if crc64.Checksum(meta, kwCRCTable) != h.metaCRC {
		return nil, fmt.Errorf("%w: meta checksum mismatch", ErrBadPostings)
	}
	seg, err := decodeMeta(meta, h)
	if err != nil {
		return nil, err
	}

	// Walk the blob against its CRC. In disk-resident mode stream it
	// through a bounded buffer and discard; otherwise retain it.
	blobOff := postingsHdrLen + int64(h.metaLen)
	if diskResident {
		crc := crc64.New(kwCRCTable)
		if _, err := io.CopyBuffer(crc, io.LimitReader(f, int64(h.blobLen)), make([]byte, 256<<10)); err != nil {
			return nil, fmt.Errorf("%w: reading blob: %v", ErrBadPostings, err)
		}
		if crc.Sum64() != h.blobCRC {
			return nil, fmt.Errorf("%w: blob checksum mismatch", ErrBadPostings)
		}
		seg.src = &fileBlocks{f: f, base: blobOff}
		keepOpen = true
		return seg, nil
	}
	blob := make([]byte, h.blobLen)
	if _, err := io.ReadFull(f, blob); err != nil {
		return nil, fmt.Errorf("%w: reading blob: %v", ErrBadPostings, err)
	}
	if crc64.Checksum(blob, kwCRCTable) != h.blobCRC {
		return nil, fmt.Errorf("%w: blob checksum mismatch", ErrBadPostings)
	}
	seg.src = ramBlocks(blob)
	return seg, nil
}

package search

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/fault"
)

// kwVocab is a small vocabulary with deliberately skewed frequencies:
// early words are near-universal (stressing the common-term pruning case),
// late words are rare (stressing selective queries).
var kwVocab = []string{
	"model", "the", "trained", "data", "learning", "neural",
	"bert", "vision", "speech", "legal", "medical", "finance",
	"transformer", "resnet", "wav2vec", "sentiment", "summarization",
	"classifier", "qa", "translation", "ner", "detection",
	"quantized", "distilled", "lora", "adapter", "multilingual",
	"robustness", "fairness", "watermark", "provenance", "benchmark",
}

// kwRandomDoc draws a zipf-flavoured document so term frequencies vary and
// block max-tf values are meaningful.
func kwRandomDoc(rng *rand.Rand) string {
	n := 3 + rng.Intn(30)
	words := make([]string, n)
	for i := range words {
		// Squaring skews toward the head of the vocabulary.
		f := rng.Float64()
		words[i] = kwVocab[int(f*f*float64(len(kwVocab)))]
	}
	return strings.Join(words, " ")
}

func kwRandomQuery(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	words := make([]string, n)
	for i := range words {
		words[i] = kwVocab[rng.Intn(len(kwVocab))]
	}
	if rng.Intn(5) == 0 && n >= 2 {
		words[1] = words[0] // duplicate query tokens exercise cursor pairs
	}
	return strings.Join(words, " ")
}

// requireSameHits asserts bitwise identity: IDs, order, and score bits.
func requireSameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: rank %d differs\ngot:  %+v (bits %x)\nwant: %+v (bits %x)",
				label, i, got[i], math.Float64bits(got[i].Score), want[i], math.Float64bits(want[i].Score))
		}
	}
}

// TestPostingsSegmentRoundtrip builds segments from randomized map tiers
// (including multi-block terms and chained merges) and checks every posting
// decodes back exactly, through both the RAM and the disk block source.
func TestPostingsSegmentRoundtrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		docs := map[string]string{}
		nDocs := 100 + rng.Intn(300) // enough for several 128-posting blocks
		for i := 0; i < nDocs; i++ {
			docs[fmt.Sprintf("m-%04d", i)] = kwRandomDoc(rng)
		}
		// Reference postings via a plain map build.
		ref := NewKeywordIndex()
		mem := map[string]map[string]int{}
		lens := map[string]int{}
		crcs := map[string]uint64{}
		for id, text := range docs {
			ref.Add(id, text)
		}
		// Split docs across two generations to exercise merge-with-old.
		var gen1 *PostingsSegment
		i := 0
		for id, text := range docs {
			target := mem
			_ = target
			toks := strings.Fields(text)
			lens[id] = len(toks)
			crcs[id] = textCRC(text)
			for _, tok := range toks {
				if mem[tok] == nil {
					mem[tok] = map[string]int{}
				}
				mem[tok][id]++
			}
			i++
			if i == nDocs/2 {
				var err error
				gen1, err = buildSegment(mem, lens, crcs, nil)
				if err != nil {
					t.Fatal(err)
				}
				mem, lens, crcs = map[string]map[string]int{}, map[string]int{}, map[string]uint64{}
			}
		}
		seg, err := buildSegment(mem, lens, crcs, gen1)
		if err != nil {
			t.Fatal(err)
		}
		if seg.DocCount() != nDocs {
			t.Fatalf("doc count %d, want %d", seg.DocCount(), nDocs)
		}

		check := func(label string, s *PostingsSegment) {
			got := map[string]map[string]int{}
			for ti, term := range s.terms {
				got[term] = map[string]int{}
				prev := int64(-1)
				if err := s.forEachPosting(ti, func(ord, tf uint32) {
					if int64(ord) <= prev {
						t.Fatalf("%s: term %q postings not strictly increasing", label, term)
					}
					prev = int64(ord)
					got[term][s.docIDs[ord]] = int(tf)
				}); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			for term, m := range ref.postings {
				if len(got[term]) != len(m) {
					t.Fatalf("%s: term %q df %d, want %d", label, term, len(got[term]), len(m))
				}
				for id, tf := range m {
					if got[term][id] != tf {
						t.Fatalf("%s: term %q doc %s tf %d, want %d", label, term, id, got[term][id], tf)
					}
				}
			}
			if len(got) != len(ref.postings) {
				t.Fatalf("%s: %d terms, want %d", label, len(got), len(ref.postings))
			}
		}
		check("ram", seg)

		// Publish and reopen disk-resident: the same postings must decode
		// via pread.
		path := filepath.Join(t.TempDir(), "kw-00.seg")
		if _, err := writeSegmentFile(nil, path, seg, 0, 1); err != nil {
			t.Fatal(err)
		}
		dseg, err := openSegmentFile(nil, path, 0, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		defer dseg.src.close()
		check("disk", dseg)
		if dseg.src.memBytes() != 0 {
			t.Fatalf("disk segment reports %d blob bytes on heap", dseg.src.memBytes())
		}
		// And in-RAM reopen too.
		rseg, err := openSegmentFile(nil, path, 0, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		check("reopened-ram", rseg)
	}
}

// TestKeywordSegmentBitwiseEquivalence is the tentpole property test: across
// shard counts, merge thresholds (including merge-every-add and
// merge-disabled), disk residency, ingest orders, replacements, and
// removals, the segment-backed pruned scorer must return exactly — bitwise —
// what the exhaustive single-map KeywordIndex returns, for every k,
// including tie-heavy corpora.
func TestKeywordSegmentBitwiseEquivalence(t *testing.T) {
	type variant struct {
		name string
		cfg  KeywordConfig
		disk bool
	}
	dir := t.TempDir()
	variants := []variant{
		{name: "maps-only", cfg: KeywordConfig{Shards: 4, MergeThreshold: -1}},
		{name: "merge-1", cfg: KeywordConfig{Shards: 1, MergeThreshold: 1}},
		{name: "merge-3-sharded", cfg: KeywordConfig{Shards: 16, MergeThreshold: 3}},
		{name: "merge-16", cfg: KeywordConfig{Shards: 4, MergeThreshold: 16}},
		{name: "disk-merge-4", cfg: KeywordConfig{Shards: 4, MergeThreshold: 4}, disk: true},
		{name: "disk-merge-2-sharded", cfg: KeywordConfig{Shards: 16, MergeThreshold: 2}, disk: true},
	}
	for _, seed := range []int64{11, 22, 33} {
		for vi, v := range variants {
			v := v
			t.Run(fmt.Sprintf("seed-%d/%s", seed, v.name), func(t *testing.T) {
				if v.disk {
					v.cfg.Dir = filepath.Join(dir, fmt.Sprintf("s%d-v%d", seed, vi))
				}
				rng := rand.New(rand.NewSource(seed))
				oracle := NewKeywordIndex()
				idx := NewShardedKeywordIndexConfig(v.cfg)
				defer idx.Close()

				nDocs := 150 + rng.Intn(150)
				ids := make([]string, nDocs)
				for i := range ids {
					ids[i] = fmt.Sprintf("m-%04d", i)
				}
				apply := func(id, text string) {
					oracle.Add(id, text)
					if err := idx.Add(id, text); err != nil {
						t.Fatalf("Add(%s): %v", id, err)
					}
				}
				for _, id := range ids {
					text := kwRandomDoc(rng)
					if rng.Intn(6) == 0 && len(ids) > 10 {
						// Clone another doc's text to force exact score ties.
						text = kwRandomDoc(rand.New(rand.NewSource(seed ^ 0xbeef)))
					}
					apply(id, text)
				}
				// Replacements hit segment-resident docs (demote path) and
				// map-resident docs alike; removals likewise.
				for i := 0; i < 25; i++ {
					id := ids[rng.Intn(len(ids))]
					apply(id, kwRandomDoc(rng))
				}
				for i := 0; i < 15; i++ {
					id := ids[rng.Intn(len(ids))]
					oracle.Remove(id)
					if err := idx.Remove(id); err != nil {
						t.Fatalf("Remove(%s): %v", id, err)
					}
				}
				if oracle.Len() != idx.Len() {
					t.Fatalf("Len: oracle %d, index %d", oracle.Len(), idx.Len())
				}

				for q := 0; q < 40; q++ {
					query := kwRandomQuery(rng)
					for _, k := range []int{1, 3, 10, oracle.Len() + 5} {
						want := oracle.Search(query, k)
						got, err := idx.Search(query, k)
						if err != nil {
							t.Fatalf("Search(%q): %v", query, err)
						}
						requireSameHits(t, fmt.Sprintf("query %q k=%d", query, k), got, want)
					}
				}

				// Flush publishes everything; a fresh index adopting the
				// segments (disk variants) must answer identically with no
				// documents re-added at all.
				if v.disk {
					if err := idx.Flush(); err != nil {
						t.Fatal(err)
					}
					texts := map[string]uint64{}
					for id, n := range oracle.docLens {
						_ = n
						texts[id] = 0 // filled below from segment verification callback
					}
					reopened := NewShardedKeywordIndexConfig(v.cfg)
					defer reopened.Close()
					covered := reopened.AdoptSegments(func(docID string, crc uint64) bool {
						_, ok := texts[docID]
						return ok // every live doc's CRC is whatever was indexed; stale docs are gone from oracle
					})
					if len(covered) != oracle.Len() {
						t.Fatalf("adopted %d docs, oracle has %d", len(covered), oracle.Len())
					}
					for q := 0; q < 15; q++ {
						query := kwRandomQuery(rng)
						want := oracle.Search(query, 10)
						got, err := reopened.Search(query, 10)
						if err != nil {
							t.Fatal(err)
						}
						requireSameHits(t, fmt.Sprintf("reopened query %q", query), got, want)
					}
				}
			})
		}
	}
}

// TestKeywordBlockMaxActuallyPrunes pins that the scorer skips undecoded
// blocks on a selective query over a large corpus — the perf mechanism the
// bitwise tests deliberately cannot see. The corpus is shaped for pruning:
// "the" appears in every document (idf ~ 0, so its blocks can never compete)
// while "watermark" appears in 20 early-ordinal documents, so the heap
// saturates with strong candidates immediately and the thousands of
// remaining common-term postings span whole blocks the scorer never decodes.
func TestKeywordBlockMaxActuallyPrunes(t *testing.T) {
	idx := NewShardedKeywordIndexConfig(KeywordConfig{Shards: 2, MergeThreshold: 64})
	defer idx.Close()
	oracle := NewKeywordIndex()
	for i := 0; i < 4000; i++ {
		text := "the quick brown classifier"
		if i < 20 {
			text = "the watermark detection model"
		}
		id := fmt.Sprintf("m-%05d", i)
		oracle.Add(id, text)
		if err := idx.Add(id, text); err != nil {
			t.Fatal(err)
		}
	}
	before := mKwBlocksSkipped.Value()
	got, err := idx.Search("the watermark", 10)
	if err != nil {
		t.Fatal(err)
	}
	requireSameHits(t, "pruned query", got, oracle.Search("the watermark", 10))
	if skipped := mKwBlocksSkipped.Value() - before; skipped == 0 {
		t.Fatal("block-max scorer decoded every block; expected skips on a 4k-doc corpus")
	}
}

// TestKeywordSearchAllocs is the satellite allocation regression: both the
// exhaustive KeywordIndex (pooled score map) and the segment-backed sharded
// index (pooled scratch) must stay within a small per-query allocation
// budget that does not scale with corpus size.
func TestKeywordSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race instrumentation")
	}
	rng := rand.New(rand.NewSource(5))
	ki := NewKeywordIndex()
	idx := NewShardedKeywordIndexConfig(KeywordConfig{Shards: 4, MergeThreshold: 128})
	defer idx.Close()
	for i := 0; i < 2000; i++ {
		text := kwRandomDoc(rng)
		id := fmt.Sprintf("m-%05d", i)
		ki.Add(id, text)
		if err := idx.Add(id, text); err != nil {
			t.Fatal(err)
		}
	}
	query := "legal transformer sentiment model"
	// Warm the pools.
	ki.Search(query, 10)
	if _, err := idx.Search(query, 10); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() { ki.Search(query, 10) }); n > 40 {
		t.Fatalf("KeywordIndex.Search allocates %.1f/op; budget 40 (score map must be pooled)", n)
	}
	if n := testing.AllocsPerRun(50, func() { idx.Search(query, 10) }); n > 40 {
		t.Fatalf("ShardedKeywordIndex.Search allocates %.1f/op; budget 40 (scratch must be pooled)", n)
	}
}

// TestPostingsSegmentDamage corrupts a published segment byte by byte
// (sampled) plus truncation and wrong-shard cases: every damaged file must
// fail openSegmentFile with ErrBadPostings — never parse into garbage.
func TestPostingsSegmentDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mem := map[string]map[string]int{}
	lens := map[string]int{}
	crcs := map[string]uint64{}
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("m-%04d", i)
		text := kwRandomDoc(rng)
		toks := strings.Fields(text)
		lens[id] = len(toks)
		crcs[id] = textCRC(text)
		for _, tok := range toks {
			if mem[tok] == nil {
				mem[tok] = map[string]int{}
			}
			mem[tok][id]++
		}
	}
	seg, err := buildSegment(mem, lens, crcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "kw-00.seg")
	if _, err := writeSegmentFile(nil, path, seg, 0, 1); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	expectBad := func(label string) {
		t.Helper()
		s, err := openSegmentFile(nil, path, 0, 1, true)
		if err == nil {
			s.src.close()
			t.Fatalf("%s: damaged segment opened clean", label)
		}
	}
	// Flip a byte at a spread of offsets covering header, meta, and blob.
	for _, off := range []int{0, 5, 17, postingsHdrLen - 1, postingsHdrLen + 3, len(orig)/2 + 1, len(orig) - 1} {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		expectBad(fmt.Sprintf("bit flip at %d", off))
	}
	// Truncations at every region boundary and inside each region.
	for _, n := range []int{0, 10, postingsHdrLen, postingsHdrLen + 7, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		expectBad(fmt.Sprintf("truncated to %d", n))
	}
	// Restore intact, then demand a different shard layout: reject.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := openSegmentFile(nil, path, 1, 2, true); err == nil {
		s.src.close()
		t.Fatal("segment for shard 0/1 adopted as shard 1/2")
	}
	// And intact with the right identity still opens.
	s, err := openSegmentFile(nil, path, 0, 1, true)
	if err != nil {
		t.Fatalf("intact segment rejected: %v", err)
	}
	s.src.close()
}

// TestKeywordCrashWindowSweep fails every file operation of a disk-resident
// keyword workload in turn — clean, torn, and sticky — and asserts the
// crash-safety contract: the live index keeps answering bitwise-correctly
// (merge failures fall back to the map tier), and whatever segment files a
// "crashed" run leaves behind either fail Open or serve complete
// bitwise-correct answers after adoption, never garbage.
func TestKeywordCrashWindowSweep(t *testing.T) {
	const nDocs = 60
	docs := make(map[string]string, nDocs)
	rng := rand.New(rand.NewSource(13))
	ids := make([]string, nDocs)
	for i := range ids {
		ids[i] = fmt.Sprintf("m-%04d", i)
		docs[ids[i]] = kwRandomDoc(rng)
	}
	oracle := NewKeywordIndex()
	for _, id := range ids {
		oracle.Add(id, docs[id])
	}
	queries := []string{"legal transformer", "the model data", "watermark", "speech vision qa"}
	wantFor := map[string][]Hit{}
	for _, q := range queries {
		wantFor[q] = oracle.Search(q, 10)
	}

	workload := func(dir string, fsys *fault.FS) (*ShardedKeywordIndex, []error) {
		idx := NewShardedKeywordIndexConfig(KeywordConfig{
			Shards: 2, MergeThreshold: 8, Dir: dir, FS: fsys,
		})
		var errs []error
		for _, id := range ids {
			if err := idx.Add(id, docs[id]); err != nil {
				errs = append(errs, err)
			}
		}
		if err := idx.Flush(); err != nil {
			errs = append(errs, err)
		}
		return idx, errs
	}

	// Enumerate the workload's fault points.
	rec := &fault.Recorder{}
	idx, errs := workload(t.TempDir(), fault.New(rec))
	if len(errs) > 0 {
		t.Fatalf("clean run errored: %v", errs)
	}
	idx.Close()
	nOps := len(rec.Ops())
	if nOps == 0 {
		t.Fatal("recorder saw no segment IO; sweep is vacuous")
	}

	for n := 1; n <= nOps; n++ {
		for _, mode := range []struct {
			name   string
			script *fault.Script
		}{
			{"clean", &fault.Script{FailAt: n}},
			{"torn", &fault.Script{FailAt: n, Torn: 3}},
			{"sticky", &fault.Script{FailAt: n, Sticky: true}},
		} {
			dir := t.TempDir()
			idx, _ := workload(dir, fault.New(mode.script))
			// Contract 1: the live index answers bitwise-correctly no
			// matter which op failed — documents whose merge failed are
			// still served from the map tier.
			for _, q := range queries {
				got, err := idx.Search(q, 10)
				if err != nil {
					t.Fatalf("op %d (%s): live search %q: %v", n, mode.name, q, err)
				}
				requireSameHits(t, fmt.Sprintf("op %d (%s) live %q", n, mode.name, q), got, wantFor[q])
			}
			idx.Close()

			// Contract 2: reopen. Adopt whatever files survived (fault-free
			// FS now — the "disk" is healthy again), top up the uncovered
			// documents, and demand bitwise-correct answers.
			re := NewShardedKeywordIndexConfig(KeywordConfig{
				Shards: 2, MergeThreshold: 8, Dir: dir,
			})
			covered := map[string]bool{}
			for _, id := range re.AdoptSegments(func(docID string, crc uint64) bool {
				text, ok := docs[docID]
				return ok && textCRC(text) == crc
			}) {
				if covered[id] {
					t.Fatalf("op %d (%s): doc %s covered twice", n, mode.name, id)
				}
				covered[id] = true
			}
			for _, id := range ids {
				if !covered[id] {
					if err := re.Add(id, docs[id]); err != nil {
						t.Fatalf("op %d (%s): re-add %s: %v", n, mode.name, id, err)
					}
				}
			}
			for _, q := range queries {
				got, err := re.Search(q, 10)
				if err != nil {
					t.Fatalf("op %d (%s): reopened search %q: %v", n, mode.name, q, err)
				}
				requireSameHits(t, fmt.Sprintf("op %d (%s) reopened %q", n, mode.name, q), got, wantFor[q])
			}
			re.Close()
		}
	}
}

// TestAdoptSegmentsRejectsStaleDocs pins the freshness contract: if any
// covered document's text changed since the segment was published, the
// whole shard segment is rejected and its documents fall back to re-adds.
func TestAdoptSegmentsRejectsStaleDocs(t *testing.T) {
	dir := t.TempDir()
	docs := map[string]string{}
	rng := rand.New(rand.NewSource(21))
	idx := NewShardedKeywordIndexConfig(KeywordConfig{Shards: 2, MergeThreshold: 4, Dir: dir})
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("m-%04d", i)
		docs[id] = kwRandomDoc(rng)
		if err := idx.Add(id, docs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	idx.Close()

	// One document's text "changes" behind the segment's back.
	stale := "m-0007"
	docs[stale] = docs[stale] + " freshly edited"

	re := NewShardedKeywordIndexConfig(KeywordConfig{Shards: 2, MergeThreshold: 4, Dir: dir})
	defer re.Close()
	covered := re.AdoptSegments(func(docID string, crc uint64) bool {
		return textCRC(docs[docID]) == crc
	})
	for _, id := range covered {
		if id == stale {
			t.Fatal("stale document adopted from segment")
		}
	}
	// The stale doc's whole shard was rejected; the other shard may have
	// adopted. Re-add everything uncovered and verify against an oracle
	// built from the *current* texts.
	cov := map[string]bool{}
	for _, id := range covered {
		cov[id] = true
	}
	oracle := NewKeywordIndex()
	for id, text := range docs {
		oracle.Add(id, text)
		if !cov[id] {
			if err := re.Add(id, text); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, q := range []string{"legal", "the model", "watermark edited"} {
		got, err := re.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, "post-stale-adopt "+q, got, oracle.Search(q, 10))
	}
}

package search

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"modellake/internal/data"
	"modellake/internal/fault"
	"modellake/internal/obs"
)

// Keyword-index metrics. Lock-wait time in Search is the direct measure of
// shard contention: it grows when concurrent ingest holds write locks, which
// is exactly the convoy sharding exists to dilute. The block counters are
// the pruning scoreboard: scanned blocks were decoded and scored, skipped
// blocks were stepped over by the block-max bound without being read.
var (
	mKwSearches      = obs.Default().Counter("keyword_searches_total")
	mKwAdds          = obs.Default().Counter("keyword_adds_total")
	mKwLockWait      = obs.Default().Histogram("keyword_search_lock_wait_seconds", nil)
	mKwBlocksScanned = obs.Default().Counter("keyword_seg_blocks_scanned_total")
	mKwBlocksSkipped = obs.Default().Counter("keyword_seg_blocks_skipped_total")
	mKwMerges        = obs.Default().Counter("keyword_seg_merges_total")
	mKwMergeFails    = obs.Default().Counter("keyword_seg_merge_failures_total")
	mKwMergeDur      = obs.Default().Histogram("keyword_seg_merge_seconds", nil)
	mKwDemotes       = obs.Default().Counter("keyword_seg_demotes_total")
	mKwAdopted       = obs.Default().Counter("keyword_seg_adopted_total")
	mKwAdoptRejected = obs.Default().Counter("keyword_seg_adopt_rejected_total")
)

// DefaultKeywordShards is the shard count used when none is given. 16 is
// deliberately larger than the core counts we target (4–16): sharding cost
// is a few empty maps, while under-sharding reintroduces the single-lock
// convoy this structure exists to remove. Power of two keeps the hash→shard
// mapping a mask-friendly modulo.
const DefaultKeywordShards = 16

// DefaultKeywordMergeThreshold is how many documents a shard's live map
// tier accumulates before it is merged into the shard's compact postings
// segment. Merges are synchronous on the Add that crosses the threshold —
// the same self-regulating shape as the MLVF spill tail: ingest pays for
// its own compaction, so the map tier stays bounded without a background
// goroutine to coordinate with.
const DefaultKeywordMergeThreshold = 2048

// KeywordConfig configures a ShardedKeywordIndex beyond the defaults.
type KeywordConfig struct {
	// Shards is the lock-shard count; <= 0 selects DefaultKeywordShards.
	Shards int
	// MergeThreshold is the map-tier document count that triggers a merge
	// into the compact segment. Zero selects the default; negative
	// disables merging entirely (pure map tier — the pre-segment
	// behaviour, kept for benchmarks and comparison tests).
	MergeThreshold int
	// Dir, when non-empty, makes segments disk-resident: each merge
	// publishes a checksummed kw-NN.seg file under Dir and the block data
	// is served by pread instead of staying on heap. Segments are derived
	// state — a missing or damaged file is rebuilt from cards.
	Dir string
	// FS routes segment file IO for fault injection; nil is a passthrough.
	FS *fault.FS
}

// keywordShard is one lock's worth of the inverted index: a disjoint subset
// of the documents, chosen by hash of the document ID. Documents live in
// exactly one of two tiers — the live map tier (fresh adds) or the
// immutable compact segment — so global statistics are simple sums.
type keywordShard struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // token -> docID -> term frequency
	docLens  map[string]int
	docCRCs  map[string]uint64 // textCRC per doc, for segment freshness
	totalLen int               // mem tier only; seg keeps its own
	seg      *PostingsSegment  // nil until the first merge
	// nextMerge, when > 0, defers retrying a failed merge until the map
	// tier grows past it — otherwise a sticky disk fault would re-attempt
	// a full merge on every Add.
	nextMerge int
}

// ShardedKeywordIndex is a BM25 inverted index over model-card text, sharded
// by document so concurrent ingest streams do not serialize on one mutex.
// Each shard is two-tier: a small live map tier absorbing fresh adds, and a
// compact immutable postings segment (see postings.go) that the map tier is
// merged into as it grows. Scoring gathers the global statistics (document
// count, average length, per-token document frequency) across both tiers of
// every shard, scores the map tiers exhaustively, and runs the block-max
// pruned scorer over the segments — returning exactly the hits and scores a
// single-shard exhaustive KeywordIndex would: sharding and segmentation
// change the locking and the work, never the ranking.
type ShardedKeywordIndex struct {
	shards    []*keywordShard
	k1, bBM25 float64

	mergeThreshold int
	dir            string
	fsys           *fault.FS

	scratch sync.Pool // *kwScratch
}

// NewShardedKeywordIndex returns an empty index with standard BM25
// parameters (k1 = 1.2, b = 0.75) and default merge behaviour. shards <= 0
// selects DefaultKeywordShards.
func NewShardedKeywordIndex(shards int) *ShardedKeywordIndex {
	return NewShardedKeywordIndexConfig(KeywordConfig{Shards: shards})
}

// NewShardedKeywordIndexConfig returns an empty index configured by cfg.
func NewShardedKeywordIndexConfig(cfg KeywordConfig) *ShardedKeywordIndex {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultKeywordShards
	}
	if cfg.MergeThreshold == 0 {
		cfg.MergeThreshold = DefaultKeywordMergeThreshold
	}
	s := &ShardedKeywordIndex{
		shards:         make([]*keywordShard, cfg.Shards),
		k1:             1.2,
		bBM25:          0.75,
		mergeThreshold: cfg.MergeThreshold,
		dir:            cfg.Dir,
		fsys:           cfg.FS,
	}
	for i := range s.shards {
		s.shards[i] = &keywordShard{
			postings: make(map[string]map[string]int),
			docLens:  make(map[string]int),
			docCRCs:  make(map[string]uint64),
		}
	}
	s.scratch.New = func() any {
		return &kwScratch{acc: make(map[string]float64)}
	}
	return s
}

func (s *ShardedKeywordIndex) shardIndex(docID string) int {
	h := fnv.New32a()
	h.Write([]byte(docID))
	return int(h.Sum32() % uint32(len(s.shards)))
}

func (s *ShardedKeywordIndex) segPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("kw-%02d.seg", i))
}

// Add indexes text under docID, replacing any previous document with the
// same ID. Only docID's shard is locked, so adds of different documents
// proceed in parallel. Replacing a document that lives in the shard's
// segment demotes the segment back into the map tier first (segments are
// immutable and tombstone-free); a demote that fails — possible only with
// disk-resident blocks — leaves the index unchanged and is the only error
// Add can return. A failed merge is not an error: the document is safely
// in the map tier and the merge retries once the tier grows further.
func (s *ShardedKeywordIndex) Add(docID, text string) error {
	mKwAdds.Inc()
	i := s.shardIndex(docID)
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docLens[docID]; ok {
		sh.removeMemLocked(docID)
	} else if sh.seg != nil && sh.seg.contains(docID) {
		if err := sh.demoteLocked(); err != nil {
			return fmt.Errorf("replacing %s: %w", docID, err)
		}
		sh.removeMemLocked(docID)
	}
	toks := data.Tokenize(text)
	sh.docLens[docID] = len(toks)
	sh.docCRCs[docID] = textCRC(text)
	sh.totalLen += len(toks)
	for _, tok := range toks {
		m := sh.postings[tok]
		if m == nil {
			m = make(map[string]int)
			sh.postings[tok] = m
		}
		m[docID]++
	}
	if s.mergeThreshold > 0 && len(sh.docLens) >= s.mergeThreshold && len(sh.docLens) >= sh.nextMerge {
		if err := s.mergeShardLocked(i, sh); err != nil {
			mKwMergeFails.Inc()
			sh.nextMerge = len(sh.docLens) + s.mergeThreshold
		} else {
			sh.nextMerge = 0
		}
	}
	return nil
}

// Remove drops a document from the index. Removing a segment-resident
// document demotes the segment into the map tier first.
func (s *ShardedKeywordIndex) Remove(docID string) error {
	sh := s.shards[s.shardIndex(docID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docLens[docID]; !ok {
		if sh.seg == nil || !sh.seg.contains(docID) {
			return nil
		}
		if err := sh.demoteLocked(); err != nil {
			return fmt.Errorf("removing %s: %w", docID, err)
		}
	}
	sh.removeMemLocked(docID)
	return nil
}

func (sh *keywordShard) removeMemLocked(docID string) {
	n, ok := sh.docLens[docID]
	if !ok {
		return
	}
	sh.totalLen -= n
	delete(sh.docLens, docID)
	delete(sh.docCRCs, docID)
	for tok, m := range sh.postings {
		if _, ok := m[docID]; ok {
			delete(m, docID)
			if len(m) == 0 {
				delete(sh.postings, tok)
			}
		}
	}
}

// demoteLocked dissolves the shard's segment back into the map tier so a
// member document can be replaced or removed. The stale segment file (if
// any) is left in place: on reopen the per-document text CRCs no longer
// match the registry and the file is rejected and rebuilt — and if the
// same texts are re-added the file is simply correct again.
func (sh *keywordShard) demoteLocked() error {
	seg := sh.seg
	for t, term := range seg.terms {
		m := sh.postings[term]
		if m == nil {
			m = make(map[string]int, seg.tmeta[t].df)
			sh.postings[term] = m
		}
		if err := seg.forEachPosting(t, func(ord, tf uint32) {
			m[seg.docIDs[ord]] = int(tf)
		}); err != nil {
			return err
		}
	}
	for i, id := range seg.docIDs {
		sh.docLens[id] = int(seg.docLens[i])
		sh.docCRCs[id] = seg.docCRCs[i]
		sh.totalLen += int(seg.docLens[i])
	}
	seg.src.close()
	sh.seg = nil
	mKwDemotes.Inc()
	return nil
}

// mergeShardLocked builds a fresh segment from the shard's map tier plus
// its existing segment, publishes it to disk when the index is
// disk-resident, and resets the map tier. On any error the shard is left
// exactly as it was.
func (s *ShardedKeywordIndex) mergeShardLocked(i int, sh *keywordShard) error {
	start := time.Now()
	seg, err := buildSegment(sh.postings, sh.docLens, sh.docCRCs, sh.seg)
	if err != nil {
		return err
	}
	if s.dir != "" {
		path := s.segPath(i)
		blobOff, err := writeSegmentFile(s.fsys, path, seg, i, len(s.shards))
		if err != nil {
			return err
		}
		f, err := s.fsys.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return err
		}
		// Swap the just-written blocks out of RAM for pread on the
		// published file; the rest of the segment (dict, doc table,
		// block metadata) stays resident.
		seg.src = &fileBlocks{f: f, base: blobOff}
	}
	if sh.seg != nil {
		sh.seg.src.close()
	}
	sh.seg = seg
	sh.postings = make(map[string]map[string]int)
	sh.docLens = make(map[string]int)
	sh.docCRCs = make(map[string]uint64)
	sh.totalLen = 0
	mKwMerges.Inc()
	mKwMergeDur.Since(start)
	return nil
}

// Flush merges every shard's map tier into its segment. For a
// disk-resident index this publishes all postings, so a subsequent
// AdoptSegments covers the whole corpus; shards left with no documents at
// all have their stale segment file removed.
func (s *ShardedKeywordIndex) Flush() error {
	var firstErr error
	for i, sh := range s.shards {
		sh.mu.Lock()
		switch {
		case len(sh.docLens) > 0:
			if err := s.mergeShardLocked(i, sh); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("flushing keyword shard %d: %w", i, err)
			}
		case sh.seg == nil && s.dir != "":
			os.Remove(s.segPath(i))
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// AdoptSegments opens every published segment file under the index's Dir
// and adopts the ones that still describe the current corpus: verify is
// called with each covered document's ID and the CRC-64 of the text the
// segment indexed, and must report whether that is still the document's
// text. A file that is missing, damaged in any way, from a different shard
// layout, holding a misplaced document, or stale by CRC is skipped whole —
// its documents simply stay with the caller to re-add. Returns the IDs the
// adopted segments cover.
func (s *ShardedKeywordIndex) AdoptSegments(verify func(docID string, crc uint64) bool) []string {
	if s.dir == "" {
		return nil
	}
	var covered []string
	for i, sh := range s.shards {
		seg, err := openSegmentFile(s.fsys, s.segPath(i), i, len(s.shards), true)
		if err != nil {
			if !os.IsNotExist(err) {
				mKwAdoptRejected.Inc()
			}
			continue
		}
		ok := true
		for d, id := range seg.docIDs {
			if s.shardIndex(id) != i || !verify(id, seg.docCRCs[d]) {
				ok = false
				break
			}
		}
		if !ok {
			seg.src.close()
			mKwAdoptRejected.Inc()
			continue
		}
		sh.mu.Lock()
		if old := sh.seg; old != nil {
			old.src.close()
		}
		sh.seg = seg
		sh.mu.Unlock()
		covered = append(covered, seg.docIDs...)
		mKwAdopted.Inc()
	}
	return covered
}

// Close releases segment file handles. The index is unusable afterwards.
func (s *ShardedKeywordIndex) Close() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.seg != nil {
			sh.seg.src.close()
			sh.seg = nil
		}
		sh.mu.Unlock()
	}
	return nil
}

// SegmentCount returns how many shards currently hold a compact segment.
func (s *ShardedKeywordIndex) SegmentCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if sh.seg != nil {
			n++
		}
		sh.mu.RUnlock()
	}
	return n
}

// MemBytes estimates the heap retained by the index across both tiers —
// the number DiskResidentPostings exists to shrink. Map-tier sizes use the
// same per-entry overhead constants as the rest of the lake's residency
// accounting; segment sizes count the doc table, dictionary, block
// metadata, and (for in-RAM segments) the block blob.
func (s *ShardedKeywordIndex) MemBytes() int64 {
	const mapEntry = 48 // rough per-entry bucket overhead
	const strHeader = 16
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for tok, m := range sh.postings {
			n += int64(len(tok)) + strHeader + mapEntry
			for id := range m {
				n += int64(len(id)) + strHeader + 8 + mapEntry
			}
		}
		for id := range sh.docLens {
			n += int64(len(id)) + strHeader + 8 + mapEntry
		}
		n += int64(len(sh.docCRCs)) * (strHeader + 8 + mapEntry) // ids shared with docLens
		n += sh.seg.memBytes()
		sh.mu.RUnlock()
	}
	return n
}

// Len returns the number of indexed documents.
func (s *ShardedKeywordIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docLens)
		if sh.seg != nil {
			n += sh.seg.DocCount()
		}
		sh.mu.RUnlock()
	}
	return n
}

// KeywordStats are the corpus-wide BM25 statistics for one tokenized query:
// the document count, the total token length across documents, and the
// per-token document frequency (DF[i] belongs to the i-th query token, in
// tokenize order, duplicates included). They are the only global inputs BM25
// scoring needs, which is what makes cross-shard keyword search exact: a
// router gathers Stats from every lake shard, merges them with Merge, and
// each shard then scores its local documents under the merged stats — every
// per-document float operation happens in the same order with the same
// operands as a single index over the union would use.
type KeywordStats struct {
	Docs     int
	TotalLen int
	DF       []int
}

// Merge folds another shard's stats for the same token list into g.
func (g *KeywordStats) Merge(o KeywordStats) {
	g.Docs += o.Docs
	g.TotalLen += o.TotalLen
	if g.DF == nil {
		g.DF = make([]int, len(o.DF))
	}
	for i := range o.DF {
		g.DF[i] += o.DF[i]
	}
}

// lockAll read-locks every shard in shard order (so concurrent searches
// cannot deadlock), giving the caller a consistent global snapshot. The
// returned func releases the locks.
func (s *ShardedKeywordIndex) lockAll() func() {
	lockStart := time.Now()
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	mKwLockWait.Since(lockStart)
	return func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}
}

// statsLocked gathers this index's BM25 statistics for tokens across both
// tiers. Caller holds every shard read lock. Because a document lives in
// exactly one tier, each DF is the plain sum of the map tier's posting-list
// size and the segment dictionary's df.
func (s *ShardedKeywordIndex) statsLocked(tokens []string) KeywordStats {
	g := KeywordStats{DF: make([]int, len(tokens))}
	for _, sh := range s.shards {
		g.Docs += len(sh.docLens)
		g.TotalLen += sh.totalLen
		if sh.seg != nil {
			g.Docs += sh.seg.DocCount()
			g.TotalLen += int(sh.seg.totalLen)
		}
	}
	for i, tok := range tokens {
		for _, sh := range s.shards {
			g.DF[i] += len(sh.postings[tok])
			if sh.seg != nil {
				g.DF[i] += sh.seg.df(tok)
			}
		}
	}
	return g
}

// scoreLocked ranks this index's documents by BM25 under the given (possibly
// cluster-global) statistics. Caller holds every shard read lock.
//
// Map tiers are scored exhaustively with a pooled accumulator: the float
// accumulation per document runs in token order, so a document's score
// depends only on its own term frequencies, its length, and the global
// stats — never on which shard (or which index, or which tier) holds it.
// Segments are scored by the block-max pruned scorer, which scores the
// documents it does not prune with the identical bm25Term sequence. Both
// feed one bounded top-k heap whose strict (score desc, ID asc) order
// matches sortHits, so the result is bitwise-identical to exhaustive
// scoring.
func (s *ShardedKeywordIndex) scoreLocked(tokens []string, g KeywordStats, k int) ([]Hit, error) {
	n := g.Docs
	if n == 0 || k <= 0 {
		return nil, nil
	}
	avgLen := float64(g.TotalLen) / float64(n)
	if avgLen == 0 {
		avgLen = 1
	}
	sc := s.scratch.Get().(*kwScratch)
	defer s.putScratch(sc)

	sc.idf = sc.idf[:0]
	for i := range tokens {
		idf := 0.0 // zero marks "no matches anywhere" — log above is never 0 for df >= 1
		if g.DF[i] > 0 {
			idf = bm25IDF(n, g.DF[i])
		}
		sc.idf = append(sc.idf, idf)
	}
	sc.heap.reset(k)

	for _, sh := range s.shards {
		if len(sh.docLens) == 0 {
			continue
		}
		clear(sc.acc)
		for ti, tok := range tokens {
			if sc.idf[ti] == 0 {
				continue
			}
			for docID, tf := range sh.postings[tok] {
				dl := float64(sh.docLens[docID])
				sc.acc[docID] += bm25Term(sc.idf[ti], float64(tf), dl, avgLen, s.k1, s.bBM25)
			}
		}
		for id, score := range sc.acc {
			sc.heap.offer(id, score)
		}
	}
	for _, sh := range s.shards {
		if sh.seg == nil {
			continue
		}
		if err := scoreSegment(sh.seg, tokens, sc, avgLen, s.k1, s.bBM25); err != nil {
			return nil, err
		}
	}

	hits := sc.heap.drain(make([]Hit, 0, len(sc.heap.items)))
	sortHits(hits)
	return hits, nil
}

func (s *ShardedKeywordIndex) putScratch(sc *kwScratch) {
	mKwBlocksScanned.Add(uint64(sc.scanned))
	mKwBlocksSkipped.Add(uint64(sc.skipped))
	sc.scanned, sc.skipped = 0, 0
	s.scratch.Put(sc)
}

// Search returns up to k documents ranked by BM25 relevance to the query.
// All shards are read-locked for the duration of the scoring pass, giving
// each query a consistent global snapshot. The only error source is a
// failed block read on a disk-resident segment.
func (s *ShardedKeywordIndex) Search(query string, k int) ([]Hit, error) {
	mKwSearches.Inc()
	tokens := data.Tokenize(query)
	unlock := s.lockAll()
	defer unlock()
	return s.scoreLocked(tokens, s.statsLocked(tokens), k)
}

// Stats returns this index's BM25 statistics for an already-tokenized query
// — phase one of an exact cross-shard keyword search.
func (s *ShardedKeywordIndex) Stats(tokens []string) KeywordStats {
	unlock := s.lockAll()
	defer unlock()
	return s.statsLocked(tokens)
}

// SearchWithStats ranks this index's documents under externally gathered
// global statistics — phase two of an exact cross-shard keyword search. g
// must have been gathered (and merged) for data.Tokenize(query); with
// g == Stats(tokens) this is exactly Search.
func (s *ShardedKeywordIndex) SearchWithStats(query string, g KeywordStats, k int) ([]Hit, error) {
	mKwSearches.Inc()
	unlock := s.lockAll()
	defer unlock()
	return s.scoreLocked(data.Tokenize(query), g, k)
}

// KeywordBlockCounters returns the process-wide block-max scoreboard —
// cumulative decoded (scanned) and pruned-without-decode (skipped) block
// counts across every ShardedKeywordIndex. Benchmarks diff it around a
// query batch to report pruning effectiveness.
func KeywordBlockCounters() (scanned, skipped uint64) {
	return mKwBlocksScanned.Value(), mKwBlocksSkipped.Value()
}

package search

import (
	"hash/fnv"
	"math"
	"sync"
	"time"

	"modellake/internal/data"
	"modellake/internal/obs"
)

// Keyword-index metrics. Lock-wait time in Search is the direct measure of
// shard contention: it grows when concurrent ingest holds write locks, which
// is exactly the convoy sharding exists to dilute.
var (
	mKwSearches = obs.Default().Counter("keyword_searches_total")
	mKwAdds     = obs.Default().Counter("keyword_adds_total")
	mKwLockWait = obs.Default().Histogram("keyword_search_lock_wait_seconds", nil)
)

// DefaultKeywordShards is the shard count used when none is given. 16 is
// deliberately larger than the core counts we target (4–16): sharding cost
// is a few empty maps, while under-sharding reintroduces the single-lock
// convoy this structure exists to remove. Power of two keeps the hash→shard
// mapping a mask-friendly modulo.
const DefaultKeywordShards = 16

// keywordShard is one lock's worth of the inverted index: a disjoint subset
// of the documents, chosen by hash of the document ID.
type keywordShard struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // token -> docID -> term frequency
	docLens  map[string]int
	totalLen int
}

// ShardedKeywordIndex is a BM25 inverted index over model-card text, sharded
// by document so concurrent ingest streams do not serialize on one mutex.
// Scoring gathers the global statistics (document count, average length,
// per-token document frequency) across shards, so Search returns exactly the
// hits and scores a single-shard KeywordIndex would: sharding changes the
// locking, never the ranking.
type ShardedKeywordIndex struct {
	shards    []*keywordShard
	k1, bBM25 float64
}

// NewShardedKeywordIndex returns an empty index with standard BM25
// parameters (k1 = 1.2, b = 0.75). shards <= 0 selects
// DefaultKeywordShards.
func NewShardedKeywordIndex(shards int) *ShardedKeywordIndex {
	if shards <= 0 {
		shards = DefaultKeywordShards
	}
	s := &ShardedKeywordIndex{
		shards: make([]*keywordShard, shards),
		k1:     1.2,
		bBM25:  0.75,
	}
	for i := range s.shards {
		s.shards[i] = &keywordShard{
			postings: make(map[string]map[string]int),
			docLens:  make(map[string]int),
		}
	}
	return s
}

func (s *ShardedKeywordIndex) shardFor(docID string) *keywordShard {
	h := fnv.New32a()
	h.Write([]byte(docID))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Add indexes text under docID, replacing any previous document with the
// same ID. Only docID's shard is locked, so adds of different documents
// proceed in parallel.
func (s *ShardedKeywordIndex) Add(docID, text string) {
	mKwAdds.Inc()
	sh := s.shardFor(docID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.docLens[docID]; ok {
		sh.removeLocked(docID)
	}
	toks := data.Tokenize(text)
	sh.docLens[docID] = len(toks)
	sh.totalLen += len(toks)
	for _, tok := range toks {
		m := sh.postings[tok]
		if m == nil {
			m = make(map[string]int)
			sh.postings[tok] = m
		}
		m[docID]++
	}
}

// Remove drops a document from the index.
func (s *ShardedKeywordIndex) Remove(docID string) {
	sh := s.shardFor(docID)
	sh.mu.Lock()
	sh.removeLocked(docID)
	sh.mu.Unlock()
}

func (sh *keywordShard) removeLocked(docID string) {
	n, ok := sh.docLens[docID]
	if !ok {
		return
	}
	sh.totalLen -= n
	delete(sh.docLens, docID)
	for tok, m := range sh.postings {
		if _, ok := m[docID]; ok {
			delete(m, docID)
			if len(m) == 0 {
				delete(sh.postings, tok)
			}
		}
	}
}

// Len returns the number of indexed documents.
func (s *ShardedKeywordIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.docLens)
		sh.mu.RUnlock()
	}
	return n
}

// KeywordStats are the corpus-wide BM25 statistics for one tokenized query:
// the document count, the total token length across documents, and the
// per-token document frequency (DF[i] belongs to the i-th query token, in
// tokenize order, duplicates included). They are the only global inputs BM25
// scoring needs, which is what makes cross-shard keyword search exact: a
// router gathers Stats from every lake shard, merges them with Merge, and
// each shard then scores its local documents under the merged stats — every
// per-document float operation happens in the same order with the same
// operands as a single index over the union would use.
type KeywordStats struct {
	Docs     int
	TotalLen int
	DF       []int
}

// Merge folds another shard's stats for the same token list into g.
func (g *KeywordStats) Merge(o KeywordStats) {
	g.Docs += o.Docs
	g.TotalLen += o.TotalLen
	if g.DF == nil {
		g.DF = make([]int, len(o.DF))
	}
	for i := range o.DF {
		g.DF[i] += o.DF[i]
	}
}

// lockAll read-locks every shard in shard order (so concurrent searches
// cannot deadlock), giving the caller a consistent global snapshot. The
// returned func releases the locks.
func (s *ShardedKeywordIndex) lockAll() func() {
	lockStart := time.Now()
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	mKwLockWait.Since(lockStart)
	return func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}
}

// statsLocked gathers this index's BM25 statistics for tokens. Caller holds
// every shard read lock.
func (s *ShardedKeywordIndex) statsLocked(tokens []string) KeywordStats {
	g := KeywordStats{DF: make([]int, len(tokens))}
	for _, sh := range s.shards {
		g.Docs += len(sh.docLens)
		g.TotalLen += sh.totalLen
	}
	for i, tok := range tokens {
		for _, sh := range s.shards {
			g.DF[i] += len(sh.postings[tok])
		}
	}
	return g
}

// scoreLocked ranks this index's documents by BM25 under the given (possibly
// cluster-global) statistics. Caller holds every shard read lock. The float
// accumulation per document runs in token order, so a document's score
// depends only on its own term frequencies, its length, and the global
// stats — never on which shard (or which index) holds it.
func (s *ShardedKeywordIndex) scoreLocked(tokens []string, g KeywordStats, k int) []Hit {
	n := g.Docs
	if n == 0 || k <= 0 {
		return nil
	}
	avgLen := float64(g.TotalLen) / float64(n)
	if avgLen == 0 {
		avgLen = 1
	}
	scores := map[string]float64{}
	for ti, tok := range tokens {
		df := g.DF[ti]
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
		for _, sh := range s.shards {
			for docID, tf := range sh.postings[tok] {
				dl := float64(sh.docLens[docID])
				num := float64(tf) * (s.k1 + 1)
				den := float64(tf) + s.k1*(1-s.bBM25+s.bBM25*dl/avgLen)
				scores[docID] += idf * num / den
			}
		}
	}
	hits := make([]Hit, 0, len(scores))
	for id, sc := range scores {
		hits = append(hits, Hit{ID: id, Score: sc})
	}
	sortHits(hits)
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// Search returns up to k documents ranked by BM25 relevance to the query.
// All shards are read-locked for the duration of the scoring pass, giving
// each query a consistent global snapshot.
func (s *ShardedKeywordIndex) Search(query string, k int) []Hit {
	mKwSearches.Inc()
	unlock := s.lockAll()
	defer unlock()
	tokens := data.Tokenize(query)
	return s.scoreLocked(tokens, s.statsLocked(tokens), k)
}

// Stats returns this index's BM25 statistics for an already-tokenized query
// — phase one of an exact cross-shard keyword search.
func (s *ShardedKeywordIndex) Stats(tokens []string) KeywordStats {
	unlock := s.lockAll()
	defer unlock()
	return s.statsLocked(tokens)
}

// SearchWithStats ranks this index's documents under externally gathered
// global statistics — phase two of an exact cross-shard keyword search. g
// must have been gathered (and merged) for data.Tokenize(query); with
// g == Stats(tokens) this is exactly Search.
func (s *ShardedKeywordIndex) SearchWithStats(query string, g KeywordStats, k int) []Hit {
	mKwSearches.Inc()
	unlock := s.lockAll()
	defer unlock()
	return s.scoreLocked(data.Tokenize(query), g, k)
}

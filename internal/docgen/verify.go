package docgen

import (
	"fmt"

	"modellake/internal/data"
	"modellake/internal/model"
)

// ClaimVerdict grades a card claim against behavioural evidence.
type ClaimVerdict string

// Verdicts.
const (
	ClaimSupported    ClaimVerdict = "supported"
	ClaimRefuted      ClaimVerdict = "refuted"
	ClaimInconclusive ClaimVerdict = "inconclusive"
)

// VerifyTrainingClaim checks a card's "trained on dataset X" claim the only
// way a lake can without trusting documentation (§4 notes card verification
// is "notably in its infancy"): a model genuinely trained on X should
// perform far above chance on it. Returns the verdict and the measured
// accuracy.
//
// The thresholds are deliberately asymmetric: refutation requires near-chance
// performance (strong evidence of a lie), support requires clearly better
// than chance, and the band between is inconclusive (e.g. a model trained on
// a related dataset version).
func VerifyTrainingClaim(h *model.Handle, claimed *data.Dataset) (ClaimVerdict, float64, error) {
	if claimed == nil || claimed.Len() == 0 {
		return ClaimInconclusive, 0, fmt.Errorf("docgen: no dataset to verify against")
	}
	correct := 0
	for i := 0; i < claimed.Len(); i++ {
		x, y := claimed.Example(i)
		pred, err := h.Predict(x)
		if err != nil {
			return ClaimInconclusive, 0, fmt.Errorf("docgen: cannot probe model: %w", err)
		}
		if pred == y {
			correct++
		}
	}
	acc := float64(correct) / float64(claimed.Len())
	chance := 1.0 / float64(claimed.NumClasses)
	margin := 1 - chance
	switch {
	case acc >= chance+0.5*margin:
		return ClaimSupported, acc, nil
	case acc <= chance+0.15*margin:
		return ClaimRefuted, acc, nil
	default:
		return ClaimInconclusive, acc, nil
	}
}

// Package docgen implements the documentation-generation application of §6:
// drafting model cards automatically from lake analyses. Given a target
// model, the generator fills each card field from the viewpoint best able to
// supply it —
//
//   - architecture from the intrinsics,
//   - domain from a weight-space probe trained on the lake's documented
//     models, cross-checked by a behavioural nearest-neighbour vote,
//   - lineage (base model + transformation) from the recovered version
//     graph,
//   - training data from the recovered parent's documentation,
//   - metrics by running the lake's benchmarks,
//
// and records per-field evidence. When the inferred domain contradicts the
// card the uploader supplied, the draft carries a misinformation flag — the
// PoisonGPT defence the paper's documentation section calls for.
package docgen

import (
	"fmt"
	"sort"

	"modellake/internal/benchmark"
	"modellake/internal/card"
	"modellake/internal/embedding"
	"modellake/internal/model"
	"modellake/internal/tensor"
	"modellake/internal/version"
	"modellake/internal/weightspace"
)

// Peer is one lake resident visible to the generator.
type Peer struct {
	Handle *model.Handle
	Card   *card.Card // may be nil or incomplete
}

// Generator drafts cards from lake context.
type Generator struct {
	Peers      []Peer
	Graph      *version.Graph // recovered version graph over peer IDs
	Runner     *benchmark.Runner
	Benchmarks []*benchmark.Benchmark
	// Behavior embeds models for the nearest-neighbour domain vote; nil
	// disables the vote.
	Behavior *embedding.BehaviorEmbedder
	// NeighbourK is the k for the behavioural vote (default 3).
	NeighbourK int
	// ProbeSeed seeds weight-space probe training.
	ProbeSeed uint64
}

// Draft is a generated card plus its per-field evidence trail.
type Draft struct {
	Card     *card.Card
	Evidence map[string]string
	Flags    []string
}

// Draft generates a card draft for the target model. existing may carry the
// uploader's claims (possibly empty or false); the draft starts from it and
// fills the gaps rather than discarding truthful documentation.
func (g *Generator) Draft(target *model.Handle, existing *card.Card) (*Draft, error) {
	d := &Draft{Evidence: map[string]string{}}
	if existing != nil {
		d.Card = existing.Clone()
	} else {
		d.Card = &card.Card{Name: target.Name()}
	}
	d.Card.ModelID = target.ID()
	if d.Card.Name == "" {
		d.Card.Name = target.Name()
	}

	// Architecture: straight from the intrinsics.
	if arch, err := target.Arch(); err == nil {
		if d.Card.Architecture == "" {
			d.Card.Architecture = arch
			d.Evidence["architecture"] = "read from model intrinsics"
		} else if d.Card.Architecture != arch {
			d.Card.Architecture = arch
			d.Flags = append(d.Flags, fmt.Sprintf(
				"architecture claim %q contradicts intrinsics %q", existing.Architecture, arch))
		}
	}

	// Domain: weight-space probe + behavioural neighbour vote.
	probeDomain := g.probeDomain(target)
	voteDomain := g.neighbourDomain(target)
	inferred := probeDomain
	evidence := "weight-space probe"
	if inferred == "" {
		inferred = voteDomain
		evidence = "behavioural neighbour vote"
	} else if voteDomain != "" && voteDomain == probeDomain {
		evidence = "weight-space probe, confirmed by behavioural neighbours"
	}
	if inferred != "" {
		if d.Card.Domain == "" {
			d.Card.Domain = inferred
			d.Evidence["domain"] = evidence
		} else if d.Card.Domain != inferred && inferred == voteDomain && probeDomain == voteDomain {
			// Both independent analyses agree and contradict the claim.
			d.Flags = append(d.Flags, fmt.Sprintf(
				"declared domain %q contradicts lake analysis %q (%s)", d.Card.Domain, inferred, evidence))
		}
	}

	// Lineage from the recovered graph.
	if g.Graph != nil {
		parents := g.Graph.Parents(target.ID())
		sort.Strings(parents)
		if len(parents) > 0 {
			if d.Card.BaseModel == "" {
				d.Card.BaseModel = parents[0]
				d.Evidence["base_model"] = "recovered version graph"
			} else if !g.refersToAny(d.Card.BaseModel, parents) {
				d.Flags = append(d.Flags, fmt.Sprintf(
					"declared base %q not among recovered parents %v", d.Card.BaseModel, parents))
			}
			if d.Card.Transform == "" {
				for _, e := range g.Graph.Edges {
					if e.Child == target.ID() && e.Parent == parents[0] && e.Transform != "" {
						d.Card.Transform = e.Transform
						d.Evidence["transform"] = "weight-delta classification"
						break
					}
				}
			}
			// Training data: inherit the parent's documentation when the
			// target has none.
			if d.Card.TrainingData == "" {
				if pc := g.peerCard(parents[0]); pc != nil && pc.TrainingData != "" {
					d.Card.TrainingData = pc.TrainingData + " (inherited from recovered parent)"
					d.Evidence["training_data"] = "recovered parent's documentation"
				}
			}
		}
	}

	// Task: majority among behavioural neighbours' cards.
	if d.Card.Task == "" {
		if task := g.neighbourField(target, func(c *card.Card) string { return c.Task }); task != "" {
			d.Card.Task = task
			d.Evidence["task"] = "behavioural neighbour majority"
		}
	}

	// Metrics: run the lake benchmarks.
	if g.Runner != nil && len(g.Benchmarks) > 0 {
		if d.Card.Metrics == nil {
			d.Card.Metrics = map[string]float64{}
		}
		for _, b := range g.Benchmarks {
			s, err := g.Runner.Score(target, b)
			if err != nil {
				continue
			}
			key := b.ID + "/" + b.Metric
			if _, ok := d.Card.Metrics[key]; !ok {
				d.Card.Metrics[key] = s
			}
		}
		if len(d.Card.Metrics) > 0 {
			d.Evidence["metrics"] = "measured on lake benchmarks"
		}
	}

	// Boilerplate the remaining prose fields from the inferred domain.
	if d.Card.IntendedUse == "" && d.Card.Domain != "" {
		d.Card.IntendedUse = fmt.Sprintf("Classification of %s feature data.", d.Card.Domain)
		d.Evidence["intended_use"] = "templated from inferred domain"
	}
	if d.Card.Description == "" && d.Card.Domain != "" {
		d.Card.Description = fmt.Sprintf(
			"Auto-generated draft: a %s classifier (%s).", d.Card.Domain, d.Card.Architecture)
		d.Evidence["description"] = "templated from inferred fields"
	}
	if d.Card.Limitations == "" {
		d.Card.Limitations = "Auto-drafted documentation: domain, lineage and metrics are " +
			"lake-inferred, not author-provided — verify before production use."
		d.Evidence["limitations"] = "standard auto-draft disclaimer"
	}
	// Deliberately never auto-filled: License and Contact are legal/ownership
	// facts no analysis can infer.
	return d, nil
}

// refersToAny reports whether ref (a lake ID or a human model name, as cards
// may use either) denotes one of the peer IDs in ids.
func (g *Generator) refersToAny(ref string, ids []string) bool {
	for _, id := range ids {
		if ref == id {
			return true
		}
	}
	for _, p := range g.Peers {
		if p.Handle.Name() == ref {
			for _, id := range ids {
				if p.Handle.ID() == id {
					return true
				}
			}
		}
	}
	return false
}

func (g *Generator) peerCard(id string) *card.Card {
	for _, p := range g.Peers {
		if p.Handle.ID() == id {
			return p.Card
		}
	}
	return nil
}

// probeDomain trains a weight-space probe on peers with documented domains
// and applies it to the target. Returns "" when unusable.
func (g *Generator) probeDomain(target *model.Handle) string {
	var hs []*model.Handle
	var labels []string
	for _, p := range g.Peers {
		if p.Handle.ID() == target.ID() || p.Card == nil || p.Card.Domain == "" {
			continue
		}
		if !p.Handle.HasView(model.ViewIntrinsic) {
			continue
		}
		hs = append(hs, p.Handle)
		labels = append(labels, p.Card.Domain)
	}
	if len(hs) < 4 {
		return ""
	}
	probe, _, err := weightspace.TrainProbe(hs, labels, weightspace.ProbeConfig{Seed: g.ProbeSeed})
	if err != nil {
		return ""
	}
	domain, err := probe.Predict(target)
	if err != nil {
		return ""
	}
	return domain
}

// neighbourDomain votes the domain among the behaviourally nearest
// documented peers.
func (g *Generator) neighbourDomain(target *model.Handle) string {
	return g.neighbourField(target, func(c *card.Card) string { return c.Domain })
}

// neighbourField embeds the target and documented peers behaviourally and
// returns the majority value of field among the k nearest. Returns "" when
// the vote is impossible or empty.
func (g *Generator) neighbourField(target *model.Handle, field func(*card.Card) string) string {
	if g.Behavior == nil {
		return ""
	}
	k := g.NeighbourK
	if k <= 0 {
		k = 3
	}
	tv, err := g.Behavior.Embed(target)
	if err != nil {
		return ""
	}
	type scored struct {
		val  string
		dist float64
	}
	var all []scored
	for _, p := range g.Peers {
		if p.Handle.ID() == target.ID() || p.Card == nil {
			continue
		}
		v := field(p.Card)
		if v == "" {
			continue
		}
		pv, err := g.Behavior.Embed(p.Handle)
		if err != nil {
			continue
		}
		all = append(all, scored{val: v, dist: tensor.L2Distance(tv, pv)})
	}
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
	if k > len(all) {
		k = len(all)
	}
	votes := map[string]int{}
	for _, s := range all[:k] {
		votes[s.val]++
	}
	best, bestN := "", 0
	keys := make([]string, 0, len(votes))
	for v := range votes {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		if votes[v] > bestN {
			best, bestN = v, votes[v]
		}
	}
	return best
}

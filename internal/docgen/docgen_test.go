package docgen

import (
	"fmt"
	"strings"
	"testing"

	"modellake/internal/benchmark"
	"modellake/internal/card"
	"modellake/internal/embedding"
	"modellake/internal/kvstore"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/version"
)

// buildContext generates a lake, reconstructs its version graph, and wires a
// Generator whose peers carry the (possibly corrupted) published cards.
func buildContext(t *testing.T, seed uint64, dropProb float64) (*lakegen.Population, *Generator) {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = 4
	s.ChildrenPerBase = 6
	s.CardDropProb = dropProb
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []version.Node
	var peers []Peer
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
		m.Card.ModelID = m.Model.ID
		nodes = append(nodes, version.Node{ID: m.Model.ID, Net: m.Model.Net})
		peers = append(peers, Peer{Handle: model.NewHandle(m.Model), Card: m.Card})
	}
	graph, err := version.Reconstruct(nodes, version.Config{ClassifyEdges: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var benches []*benchmark.Benchmark
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			benches = append(benches, &benchmark.Benchmark{
				ID: m.Truth.DatasetID, DS: pop.Datasets[m.Truth.DatasetID], Metric: benchmark.MetricAccuracy,
			})
		}
	}
	gen := &Generator{
		Peers:      peers,
		Graph:      graph,
		Runner:     benchmark.NewRunner(kvstore.OpenMemory()),
		Benchmarks: benches,
		Behavior:   embedding.NewBehaviorEmbedder(pop.Spec.Dim, 32, 8, 9),
		ProbeSeed:  7,
	}
	return pop, gen
}

func TestDraftFillsMissingFields(t *testing.T) {
	pop, gen := buildContext(t, 301, 0.0)
	// Strip a derived member's card completely and regenerate it.
	var target *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth > 0 {
			target = m
			break
		}
	}
	bare := &card.Card{ModelID: target.Model.ID, Name: target.Truth.Name}
	d, err := gen.Draft(model.NewHandle(target.Model), bare)
	if err != nil {
		t.Fatal(err)
	}
	if d.Card.Architecture != target.Model.Net.ArchString() {
		t.Fatalf("architecture = %q", d.Card.Architecture)
	}
	if d.Card.Domain == "" {
		t.Fatal("domain not inferred")
	}
	if d.Card.BaseModel == "" {
		t.Fatal("base model not recovered")
	}
	if len(d.Card.Metrics) == 0 {
		t.Fatal("metrics not measured")
	}
	if d.Card.Completeness() <= bare.Completeness() {
		t.Fatal("draft did not improve completeness")
	}
	if len(d.Evidence) == 0 {
		t.Fatal("no evidence recorded")
	}
}

func TestDraftDomainAccuracy(t *testing.T) {
	// Across all derived members with emptied cards, the inferred domain
	// family should usually match the truth.
	pop, gen := buildContext(t, 302, 0.0)
	correct, total := 0, 0
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			continue
		}
		bare := &card.Card{ModelID: m.Model.ID, Name: m.Truth.Name}
		d, err := gen.Draft(model.NewHandle(m.Model), bare)
		if err != nil {
			t.Fatal(err)
		}
		if d.Card.Domain == "" {
			continue
		}
		total++
		// Compare domain families (legal-ft3 → legal).
		if baseOf(d.Card.Domain) == baseOf(m.Truth.Domain) {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no domains inferred")
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Fatalf("domain recovery accuracy = %.2f (%d/%d), want >= 0.7", acc, correct, total)
	}
}

func baseOf(domain string) string {
	if i := strings.IndexAny(domain, "-/"); i >= 0 {
		return domain[:i]
	}
	return domain
}

func TestDraftPreservesTruthfulClaims(t *testing.T) {
	pop, gen := buildContext(t, 303, 0.0)
	m := pop.Members[1]
	d, err := gen.Draft(model.NewHandle(m.Model), m.Card)
	if err != nil {
		t.Fatal(err)
	}
	if d.Card.Domain != m.Card.Domain {
		t.Fatalf("draft overwrote truthful domain %q with %q", m.Card.Domain, d.Card.Domain)
	}
	if d.Card.TrainingData != m.Card.TrainingData {
		t.Fatal("draft overwrote truthful training data")
	}
}

func TestDraftFlagsMisinformation(t *testing.T) {
	pop, gen := buildContext(t, 304, 0.0)
	// Poison a derived member's card with a wrong domain.
	var target *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth > 0 && baseOf(m.Truth.Domain) == "legal" {
			target = m
			break
		}
	}
	if target == nil {
		t.Skip("no legal derived member")
	}
	lying := card.InjectMisinformation(target.Card, "medical", "medical/v1")
	d, err := gen.Draft(model.NewHandle(target.Model), lying)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range d.Flags {
		if strings.Contains(f, "domain") {
			found = true
		}
	}
	if !found {
		t.Fatalf("misinformation not flagged; flags = %v", d.Flags)
	}
}

func TestDraftWithoutGraphOrBenchmarks(t *testing.T) {
	pop, gen := buildContext(t, 305, 0.0)
	gen.Graph = nil
	gen.Runner = nil
	gen.Benchmarks = nil
	m := pop.Members[2]
	d, err := gen.Draft(model.NewHandle(m.Model), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Card.ModelID != m.Model.ID {
		t.Fatal("model id not set")
	}
	// No graph → no lineage inference, but no crash either.
}

func TestDraftClosedWeightsModel(t *testing.T) {
	// A model with extrinsics only still gets a behavioural domain.
	pop, gen := buildContext(t, 306, 0.0)
	var target *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth > 0 {
			target = m
			break
		}
	}
	h := model.WithViews(target.Model, model.ViewExtrinsic)
	d, err := gen.Draft(h, &card.Card{ModelID: h.ID(), Name: target.Truth.Name})
	if err != nil {
		t.Fatal(err)
	}
	if d.Card.Domain == "" {
		t.Fatal("behavioural vote failed for closed-weights model")
	}
	if d.Card.Architecture != "" {
		t.Fatal("architecture should be unavailable for closed-weights model")
	}
}

func TestVerifyTrainingClaim(t *testing.T) {
	pop, _ := buildContext(t, 310, 0.0)
	base := pop.Members[0]
	ds := pop.Datasets[base.Truth.DatasetID]
	// True claim: the model was trained on ds.
	verdict, acc, err := VerifyTrainingClaim(model.NewHandle(base.Model), ds)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != ClaimSupported || acc < 0.8 {
		t.Fatalf("true claim verdict = %s (acc %v), want supported", verdict, acc)
	}
	// False claim: a model from another family claims this dataset.
	var liar *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Family != base.Truth.Family {
			liar = m
			break
		}
	}
	verdict, acc, err = VerifyTrainingClaim(model.NewHandle(liar.Model), ds)
	if err != nil {
		t.Fatal(err)
	}
	if verdict == ClaimSupported {
		t.Fatalf("false claim supported (acc %v)", acc)
	}
}

func TestVerifyTrainingClaimValidation(t *testing.T) {
	pop, _ := buildContext(t, 311, 0.0)
	h := model.NewHandle(pop.Members[0].Model)
	if _, _, err := VerifyTrainingClaim(h, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	// A closed model with no extrinsics is inconclusive with an error.
	closed := model.WithViews(pop.Members[0].Model, 0)
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	if v, _, err := VerifyTrainingClaim(closed, ds); err == nil || v != ClaimInconclusive {
		t.Fatalf("closed model: verdict=%v err=%v", v, err)
	}
}

package index

// Tests for the int8 quantized read tier. The contract under test is the
// tentpole property of the atlas-scale PR: a quantized index ranks a cheap
// int8 shortlist, exact-rescores it in float64, and the final top-k must be
// bitwise identical to the flat scan — same IDs, same order, same distance
// bits, same tie resolution — whenever the shortlist recalls the true
// top-k. The adversarial test below constructs lakes where a rescore factor
// of 1 provably misses, and checks the configured over-fetch recovers exact
// results on the same data.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func assertBitwiseEqual(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("%s pos=%d: got %v want %v", label, i, got[i], want[i])
		}
	}
}

// TestQuantizedMatchesFlatProperty drives the two-phase quantized search
// against the full-sort oracle across metrics, sizes, rescore factors, and
// k values, requiring bitwise identity on every seed. Seeds are fixed, so a
// failure reproduces deterministically.
func TestQuantizedMatchesFlatProperty(t *testing.T) {
	for _, metric := range []Metric{Cosine, L2} {
		for _, factor := range []int{4, 8} {
			for _, n := range []int{1, 2, 7, 100, 500} {
				vecs := randomVecs(t, n, 16, uint64(n)*7+uint64(metric)+uint64(factor))
				ids := make([]string, n)
				q8 := NewFlatQuantized(metric, QuantConfig{RescoreFactor: factor})
				for i, v := range vecs {
					ids[i] = fmt.Sprintf("id%04d", i)
					if err := q8.Add(ids[i], v); err != nil {
						t.Fatal(err)
					}
				}
				queries := randomVecs(t, 8, 16, uint64(n)+131)
				for _, k := range []int{1, 3, n, n + 5} {
					for qi, q := range queries {
						got, err := q8.Search(context.Background(), q, k)
						if err != nil {
							t.Fatal(err)
						}
						want := referenceSearch(metric, ids, vecs, q, k)
						assertBitwiseEqual(t,
							fmt.Sprintf("metric=%v factor=%d n=%d k=%d q=%d", metric, factor, n, k, qi),
							got, want)
					}
				}
			}
		}
	}
}

// TestQuantizedTieBreakMatchesFlat forces exact distance ties (duplicate
// vectors under fresh IDs). Identical rows quantize to identical codes, so
// ties survive the approximate phase and the exact rescore must resolve
// them by ID exactly like the flat scan does.
func TestQuantizedTieBreakMatchesFlat(t *testing.T) {
	base := randomVecs(t, 4, 8, 11)
	var vecs []tensor.Vector
	var ids []string
	q8 := NewFlatQuantized(Cosine, QuantConfig{})
	for copyN := 0; copyN < 5; copyN++ {
		for bi, b := range base {
			id := fmt.Sprintf("m%d-%d", bi, copyN)
			ids = append(ids, id)
			vecs = append(vecs, b.Clone())
			if err := q8.Add(id, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := randomVecs(t, 1, 8, 17)[0]
	for _, k := range []int{1, 4, 7, 10, 20} {
		got, err := q8.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwiseEqual(t, fmt.Sprintf("k=%d", k), got, referenceSearch(Cosine, ids, vecs, q, k))
	}
}

// heavyTailVecs returns vectors engineered to hurt per-row affine int8
// quantization: one coordinate per row is inflated ~200x, so the quant grid
// step is dominated by the outlier and the remaining coordinates collapse
// into a handful of codes. Neighbors that differ only in small coordinates
// become indistinguishable to the approximate phase.
func heavyTailVecs(t *testing.T, n, dim int, seed uint64) []tensor.Vector {
	t.Helper()
	rng := xrand.New(seed)
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		v[rng.Intn(dim)] *= 200
		vecs[i] = v
	}
	return vecs
}

// TestQuantizedRecallFallback is the recall safety net. On heavy-tailed
// lakes a shortlist of exactly k (RescoreFactor=1) provably misses part of
// the true top-k — the test requires at least one such miss to prove the
// adversarial construction has teeth — while the default over-fetch must
// still return bitwise-exact results on the very same lakes and queries.
func TestQuantizedRecallFallback(t *testing.T) {
	const (
		n, dim, k = 400, 8, 10
		attempts  = 50
	)
	missed := false
	for seed := uint64(1); seed <= attempts; seed++ {
		vecs := heavyTailVecs(t, n, dim, seed)
		ids := make([]string, n)
		tight := NewFlatQuantized(Cosine, QuantConfig{RescoreFactor: 1})
		wide := NewFlatQuantized(Cosine, QuantConfig{})
		for i, v := range vecs {
			ids[i] = fmt.Sprintf("id%04d", i)
			if err := tight.Add(ids[i], v); err != nil {
				t.Fatal(err)
			}
			if err := wide.Add(ids[i], v); err != nil {
				t.Fatal(err)
			}
		}
		queries := randomVecs(t, 10, dim, seed+7777)
		for qi, q := range queries {
			want := referenceSearch(Cosine, ids, vecs, q, k)
			got, err := tight.Search(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					missed = true
					break
				}
			}
			wgot, err := wide.Search(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseEqual(t, fmt.Sprintf("seed=%d q=%d (default factor)", seed, qi), wgot, want)
		}
		if missed {
			return
		}
	}
	t.Fatalf("no recall miss at RescoreFactor=1 in %d adversarial lakes; construction lost its teeth", attempts)
}

// TestQuantizedSearchAllocBounds pins the pooled two-phase read path: after
// warm-up a quantized search allocates only the result slice. Same bound and
// same race gate as TestSearchAllocBounds for the flat scan.
func TestQuantizedSearchAllocBounds(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds only hold in normal builds")
	}
	vecs := randomVecs(t, 2000, 32, 29)
	q8 := NewFlatQuantized(Cosine, QuantConfig{})
	for i, v := range vecs {
		if err := q8.Add(fmt.Sprintf("m%05d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	q := randomVecs(t, 1, 32, 37)[0]
	ctx := context.Background()
	for i := 0; i < 5; i++ { // warm the scratch pool
		if _, err := q8.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := q8.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("quantized search: %v allocs/op, want <= 2", n)
	}
}

package index

// The int8 quantized read tier behind the atlas-scale flat indexes
// (DESIGN.md §12). A quantized scan ranks every row by an approximate
// distance computed from int8 codes — 8 bytes of float64 per component
// become 1 byte — and selects an over-fetched shortlist of k·rescoreFactor
// candidates; the caller then rescores only the shortlist against the
// full-precision rows with the exact distFlat arithmetic and the exact
// (distance, ID) total order. Whenever the true top-k survives the
// shortlist cut (the recall condition the rescore factor buys), the final
// answer is bitwise identical to a full-precision flat scan.

import (
	"context"

	"modellake/internal/tensor"
)

// DefaultRescoreFactor is the shortlist over-fetch multiplier a quantized
// index uses when its config leaves it unset: the quantized phase keeps
// k·factor candidates for exact rescoring.
const DefaultRescoreFactor = 8

// QuantConfig tunes a quantized index tier.
type QuantConfig struct {
	// RescoreFactor is the shortlist over-fetch multiplier (k·factor
	// candidates survive the quantized phase). Values below 1 select
	// DefaultRescoreFactor. Factor 1 rescores exactly k candidates — legal
	// here so adversarial tests can exercise recall misses; the lake's
	// config validation imposes its own, higher floor.
	RescoreFactor int

	// SpillTailRows bounds the in-RAM full-precision tail of a
	// disk-resident index: once that many rows accumulate past the on-disk
	// segment, Add compacts segment + tail into a fresh segment file and
	// releases the tail, keeping resident memory flat under sustained
	// ingest. 0 selects DefaultSpillTailRows; negative disables spilling.
	// Pure in-RAM indexes ignore it.
	SpillTailRows int

	// PQSubspaces selects the product-quantized tier (DESIGN.md §14)
	// instead of the int8 tier, with this many one-byte subspace codes per
	// row. Zero keeps the int8 tier; NewFlatPQ treats non-positive values
	// as DefaultPQSubspaces. Values above the vector dimension are clamped
	// to it at training time.
	PQSubspaces int

	// PQTrainRows is the population at which a PQ tier trains its codebook
	// (untrained tiers serve the plain exact scan). At or below zero
	// selects DefaultPQTrainRows. Only meaningful with PQSubspaces.
	PQTrainRows int

	// Seed drives PQ codebook training (k-means init). Training is fully
	// deterministic in (seed, input); two indexes built from the same rows
	// and seed carry byte-identical codebooks.
	Seed uint64
}

func (c QuantConfig) withDefaults() QuantConfig {
	if c.RescoreFactor < 1 {
		c.RescoreFactor = DefaultRescoreFactor
	}
	if c.SpillTailRows == 0 {
		c.SpillTailRows = DefaultSpillTailRows
	}
	if c.PQSubspaces > 0 && c.PQTrainRows <= 0 {
		c.PQTrainRows = DefaultPQTrainRows
	}
	return c
}

// quantTier is the in-RAM int8 mirror of a flat index's rows: per-row codes
// plus the (min, scale, codesum) triple that dequantizes them. It is not
// itself synchronized — the owning index's lock covers it.
type quantTier struct {
	dim    int
	codes  []int8    // row i at codes[i*dim : (i+1)*dim]
	mins   []float64 // per-row affine offset
	scales []float64 // per-row affine scale
	sums   []int32   // per-row Σ codes, precomputed for the dot expansion
}

func (t *quantTier) add(row []float64) {
	if t.dim == 0 {
		t.dim = len(row)
	}
	n := len(t.codes)
	t.codes = append(t.codes, make([]int8, t.dim)...)
	min, scale, sum := tensor.QuantizeRowInt8(row, t.codes[n:n+t.dim])
	t.mins = append(t.mins, min)
	t.scales = append(t.scales, scale)
	t.sums = append(t.sums, sum)
}

// reserve pre-sizes the tier for n more rows of dimension dim.
// memBytes estimates the heap retained by the quantized tier. Nil-safe, so
// un-quantized indexes report zero without a branch at the call site.
func (t *quantTier) memBytes() int64 {
	if t == nil {
		return 0
	}
	return int64(len(t.codes)) + int64(len(t.mins))*8 + int64(len(t.scales))*8 + int64(len(t.sums))*4
}

func (t *quantTier) reserve(n, dim int) {
	if cap(t.codes)-len(t.codes) < n*dim {
		codes := make([]int8, len(t.codes), len(t.codes)+n*dim)
		copy(codes, t.codes)
		t.codes = codes
	}
	if cap(t.mins)-len(t.mins) < n {
		grow := func(xs []float64) []float64 {
			out := make([]float64, len(xs), len(xs)+n)
			copy(out, xs)
			return out
		}
		t.mins = grow(t.mins)
		t.scales = grow(t.scales)
		sums := make([]int32, len(t.sums), len(t.sums)+n)
		copy(sums, t.sums)
		t.sums = sums
	}
}

// quantQuery is a query quantized into the tier's code space, plus the
// query-side norms the approximate distances need.
type quantQuery struct {
	codes []int8
	min   float64
	scale float64
	sum   int32
	norm  float64 // Euclidean norm (Cosine)
	norm2 float64 // squared norm (L2)
}

// set quantizes q for a scan under the given metric. qNorm is the exact
// query norm the caller already computed via Metric.queryNorm.
func (qq *quantQuery) set(m Metric, q tensor.Vector, qNorm float64) {
	if cap(qq.codes) < len(q) {
		qq.codes = make([]int8, len(q))
	}
	qq.codes = qq.codes[:len(q)]
	qq.min, qq.scale, qq.sum = tensor.QuantizeRowInt8(q, qq.codes)
	qq.norm = qNorm
	if m == L2 {
		qq.norm2 = tensor.DotKernel(q, q)
	} else {
		qq.norm2 = 0
	}
}

// approxDot expands the int8 dot product of the query codes against row i
// back into an approximation of the float64 inner product:
//
//	Σ q̂·r̂ = qs·rs·(D + 128·Sq + 128·Sr + 128²·d)
//	       + qs·rmin·(Sq + 128·d) + rs·qmin·(Sr + 128·d) + d·qmin·rmin
//
// where D is the integer code dot, Sq/Sr the code sums, and d the dimension.
func (t *quantTier) approxDot(qq *quantQuery, i int) float64 {
	d := int64(t.dim)
	D := int64(tensor.DotInt8Kernel(qq.codes, t.codes[i*t.dim:(i+1)*t.dim]))
	sq, sr := int64(qq.sum), int64(t.sums[i])
	rs, rmin := t.scales[i], t.mins[i]
	return qq.scale*rs*float64(D+128*(sq+sr)+16384*d) +
		qq.scale*rmin*float64(sq+128*d) +
		rs*qq.min*float64(sr+128*d) +
		float64(d)*qq.min*rmin
}

// approxDist is the shortlist-ranking distance for row i. It only has to
// order candidates, so the L2 form stays squared (monotonic in the true
// distance, no sqrt) and Cosine mirrors distFlat's zero-norm convention.
func (t *quantTier) approxDist(m Metric, qq *quantQuery, i int, rowNorm float64) float64 {
	if m == Cosine {
		if qq.norm == 0 || rowNorm == 0 {
			return 1
		}
		return 1 - t.approxDot(qq, i)/(qq.norm*rowNorm)
	}
	return qq.norm2 + rowNorm*rowNorm - 2*t.approxDot(qq, i)
}

// quantScratch is the pooled per-search state of a two-phase scan: the
// quantized query, the shortlist selector (tie-break by row index — any
// deterministic order works, the rescore re-ranks), the final exact
// selector (tie-break by ID, matching the full-precision scan), and the
// parallel-rescore distance buffer.
type quantScratch struct {
	qq    quantQuery
	short topK
	sel   topK
	dists []float64
}

// NewFlatQuantized returns an empty exact index that serves searches through
// the two-phase quantized read path: an int8 scan selects k·RescoreFactor
// candidates, then the exact flat arithmetic rescores them. Results are
// bitwise identical to NewFlat whenever the true top-k survives the
// shortlist cut; when the shortlist covers the whole index the search
// degenerates to the plain exact scan and identity is unconditional.
func NewFlatQuantized(metric Metric, cfg QuantConfig) *Flat {
	f := NewFlat(metric)
	cfg = cfg.withDefaults()
	f.quant = &quantTier{}
	f.rescoreFactor = cfg.RescoreFactor
	f.qscratch.New = func() any { return new(quantScratch) }
	return f
}

// searchQuantized runs the two-phase scan. Caller holds f.mu.RLock and has
// validated q; n > 0, 0 < k ≤ n, and the shortlist is strictly smaller than
// n (otherwise the caller runs the plain exact scan).
func (f *Flat) searchQuantized(ctx context.Context, q tensor.Vector, qNorm float64, k, shortlist int) ([]Result, error) {
	n := len(f.ids)
	sc := f.qscratch.Get().(*quantScratch)
	sc.qq.set(f.metric, q, qNorm)
	sc.short.reset(shortlist, nil)
	for i := 0; i < n; i++ {
		if i%ctxCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				f.qscratch.Put(sc)
				return nil, err
			}
		}
		sc.short.offer(candidate{idx: i, dist: f.quant.approxDist(f.metric, &sc.qq, i, f.norms[i])})
	}
	cands := sc.short.extractAscending()
	sc.sel.reset(k, f.ids)
	f.rescoreCands(q, qNorm, cands, &sc.sel, &sc.dists)
	sel := sc.sel.extractAscending()
	out := make([]Result, len(sel))
	for i, c := range sel {
		out[i] = Result{ID: f.ids[c.idx], Distance: c.dist}
	}
	sc.sel.release()
	f.qscratch.Put(sc)
	return out, nil
}

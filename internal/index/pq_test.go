package index

// Tests for the product-quantized read tier. Same contract as the int8
// tier's suite: the two-phase ADC search must return results bitwise
// identical to the flat scan — same IDs, same order, same distance bits,
// same tie resolution — whenever the shortlist recalls the true top-k, and
// unconditionally while the tier is untrained or the shortlist covers the
// index. On top of that, codebook training must be bitwise deterministic in
// (seed, input) at any worker count, and the parallel exact-rescore must be
// indistinguishable from the serial one.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// TestPQMatchesFlatProperty drives the two-phase PQ search against the
// full-sort oracle across metrics, sizes, rescore factors, and k values,
// requiring bitwise identity on every seed. PQTrainRows is set to the
// population so every lake trains its codebook on all of its rows — the
// shape a built segment has — which is what makes identity hold even at
// factor 4; incremental-drift recall is covered by TestPQRecallFallback.
func TestPQMatchesFlatProperty(t *testing.T) {
	for _, metric := range []Metric{Cosine, L2} {
		for _, factor := range []int{4, 8} {
			for _, n := range []int{1, 7, 100, 300, 500} {
				vecs := randomVecs(t, n, 16, uint64(n)*13+uint64(metric)+uint64(factor))
				ids := make([]string, n)
				pq := NewFlatPQ(metric, QuantConfig{
					RescoreFactor: factor,
					PQSubspaces:   8,
					PQTrainRows:   n,
					Seed:          uint64(n) + 5,
				})
				for i, v := range vecs {
					ids[i] = fmt.Sprintf("id%04d", i)
					if err := pq.Add(ids[i], v); err != nil {
						t.Fatal(err)
					}
				}
				queries := randomVecs(t, 8, 16, uint64(n)+977)
				for _, k := range []int{1, 3, n, n + 5} {
					for qi, q := range queries {
						got, err := pq.Search(context.Background(), q, k)
						if err != nil {
							t.Fatal(err)
						}
						want := referenceSearch(metric, ids, vecs, q, k)
						assertBitwiseEqual(t,
							fmt.Sprintf("metric=%v factor=%d n=%d k=%d q=%d", metric, factor, n, k, qi),
							got, want)
					}
				}
			}
		}
	}
}

// TestPQTieBreakMatchesFlat forces exact distance ties (duplicate vectors
// under fresh IDs). Identical rows encode to identical codes, so ties
// survive the ADC phase and the exact rescore must resolve them by ID
// exactly like the flat scan does.
func TestPQTieBreakMatchesFlat(t *testing.T) {
	base := randomVecs(t, 4, 8, 19)
	var vecs []tensor.Vector
	var ids []string
	pq := NewFlatPQ(Cosine, QuantConfig{PQTrainRows: 8})
	for copyN := 0; copyN < 5; copyN++ {
		for bi, b := range base {
			id := fmt.Sprintf("m%d-%d", bi, copyN)
			ids = append(ids, id)
			vecs = append(vecs, b.Clone())
			if err := pq.Add(id, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := randomVecs(t, 1, 8, 23)[0]
	for _, k := range []int{1, 4, 7, 10, 20} {
		got, err := pq.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwiseEqual(t, fmt.Sprintf("k=%d", k), got, referenceSearch(Cosine, ids, vecs, q, k))
	}
}

// clusterClumpVecs returns vectors engineered to hurt product quantization:
// rows bunch into tight clusters whose within-cluster offsets live in
// coordinates the coarse subspace codebooks cannot resolve. With few, wide
// subspaces the 256 centroids per subspace are spent separating clusters,
// so near-neighbors inside one cluster collapse onto the same codes and the
// ADC phase cannot order them.
func clusterClumpVecs(t *testing.T, n, dim int, seed uint64) []tensor.Vector {
	t.Helper()
	rng := xrand.New(seed)
	const clusters = 8
	centers := make([]tensor.Vector, clusters)
	for c := range centers {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 10
		}
		centers[c] = v
	}
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		v := centers[rng.Intn(clusters)].Clone()
		for j := range v {
			v[j] += rng.NormFloat64() * 1e-3
		}
		vecs[i] = v
	}
	return vecs
}

// TestPQRecallFallback is the recall safety net for the PQ tier. On clumped
// lakes a shortlist of exactly k (RescoreFactor=1) provably misses part of
// the true top-k — at least one miss is required, proving the adversarial
// construction has teeth against the data-adaptive codebook — while the
// default over-fetch must still return bitwise-exact results on the very
// same lakes and queries.
func TestPQRecallFallback(t *testing.T) {
	const (
		n, dim, k = 400, 32, 10
		attempts  = 50
	)
	missed := false
	for seed := uint64(1); seed <= attempts; seed++ {
		vecs := clusterClumpVecs(t, n, dim, seed)
		ids := make([]string, n)
		mk := func(factor int) *Flat {
			return NewFlatPQ(Cosine, QuantConfig{
				RescoreFactor: factor,
				PQSubspaces:   2,
				PQTrainRows:   64,
				Seed:          seed,
			})
		}
		tight, wide := mk(1), mk(0)
		for i, v := range vecs {
			ids[i] = fmt.Sprintf("id%04d", i)
			if err := tight.Add(ids[i], v); err != nil {
				t.Fatal(err)
			}
			if err := wide.Add(ids[i], v); err != nil {
				t.Fatal(err)
			}
		}
		queries := randomVecs(t, 10, dim, seed+8888)
		for qi, q := range queries {
			want := referenceSearch(Cosine, ids, vecs, q, k)
			got, err := tight.Search(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					missed = true
					break
				}
			}
			wgot, err := wide.Search(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseEqual(t, fmt.Sprintf("seed=%d q=%d (default factor)", seed, qi), wgot, want)
		}
		if missed {
			return
		}
	}
	t.Fatalf("no recall miss at RescoreFactor=1 in %d adversarial lakes; construction lost its teeth", attempts)
}

// TestPQTrainingDeterministic pins the parallel-training contract: the same
// (seed, sample) trains byte-identical codebooks at any worker count and any
// GOMAXPROCS setting. This is what lets a spilled segment reuse a tier
// trained earlier and lets two machines rebuild identical side files.
func TestPQTrainingDeterministic(t *testing.T) {
	const nSample, dim, m = 600, 24, 6
	rng := xrand.New(42)
	sample := make([]float64, nSample*dim)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	ref := trainPQCodebook(sample, nSample, dim, m, 99, 1)
	check := func(label string, cb *pqCodebook) {
		t.Helper()
		if len(cb.cents) != len(ref.cents) {
			t.Fatalf("%s: cents len %d != %d", label, len(cb.cents), len(ref.cents))
		}
		for i := range cb.cents {
			if math.Float64bits(cb.cents[i]) != math.Float64bits(ref.cents[i]) {
				t.Fatalf("%s: centroid float %d differs: %x != %x",
					label, i, math.Float64bits(cb.cents[i]), math.Float64bits(ref.cents[i]))
			}
		}
	}
	for _, workers := range []int{2, 3, 8, 0} {
		check(fmt.Sprintf("workers=%d", workers),
			trainPQCodebook(sample, nSample, dim, m, 99, workers))
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	check("GOMAXPROCS=1", trainPQCodebook(sample, nSample, dim, m, 99, 0))
}

// TestParallelRescoreMatchesSerial forces the parallel exact-rescore path at
// tiny shortlists and requires bitwise-identical results at every worker
// count — the disjoint-write + serial-offer discipline under test is what
// keeps the identity guarantee intact above the parallelism threshold.
func TestParallelRescoreMatchesSerial(t *testing.T) {
	oldThresh, oldWorkers := rescoreParallelThreshold, rescoreMaxWorkers
	defer func() {
		rescoreParallelThreshold, rescoreMaxWorkers = oldThresh, oldWorkers
	}()

	const n, dim, k = 700, 16, 9
	vecs := randomVecs(t, n, dim, 321)
	build := func() *Flat {
		pq := NewFlatPQ(Cosine, QuantConfig{PQSubspaces: 4, PQTrainRows: 64, Seed: 3})
		for i, v := range vecs {
			if err := pq.Add(fmt.Sprintf("id%04d", i), v); err != nil {
				t.Fatal(err)
			}
		}
		return pq
	}
	idx := build()
	queries := randomVecs(t, 6, dim, 654)

	rescoreParallelThreshold, rescoreMaxWorkers = 1<<30, 1 // serial baseline
	want := make([][]Result, len(queries))
	for qi, q := range queries {
		res, err := idx.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = res
	}

	rescoreParallelThreshold = 1 // every shortlist takes the parallel path
	for _, workers := range []int{2, 3, 5, 8} {
		rescoreMaxWorkers = workers
		for qi, q := range queries {
			got, err := idx.Search(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseEqual(t, fmt.Sprintf("workers=%d q=%d", workers, qi), got, want[qi])
		}
	}
}

// TestPQSearchAllocBounds pins the pooled ADC read path: after warm-up a PQ
// search allocates only the result slice. Same bound and same race gate as
// the flat and int8 variants.
func TestPQSearchAllocBounds(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds only hold in normal builds")
	}
	vecs := randomVecs(t, 2000, 32, 31)
	pq := NewFlatPQ(Cosine, QuantConfig{})
	for i, v := range vecs {
		if err := pq.Add(fmt.Sprintf("m%05d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	q := randomVecs(t, 1, 32, 41)[0]
	ctx := context.Background()
	for i := 0; i < 5; i++ { // warm the scratch pool
		if _, err := pq.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := pq.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("pq search: %v allocs/op, want <= 2", n)
	}
}

func BenchmarkFlatPQSearch10k(b *testing.B) {
	pq := NewFlatPQ(L2, QuantConfig{PQTrainRows: 10000})
	for i, v := range randomVectors(10000, 32, 1) {
		pq.Add(fmt.Sprintf("v%d", i), v)
	}
	q := randomVectors(1, 32, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Search(context.Background(), q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Package index implements the lake's nearest-neighbour indexer (paper §5):
// a Hierarchical Navigable Small World (HNSW) graph for sublinear approximate
// search over model embeddings, plus an exact flat scan that serves both as
// the recall baseline and as the correct choice for small lakes.
//
// Both implementations satisfy Index, so experiments can swap them, and both
// are safe for concurrent use.
//
// The read path is engineered for allocation-free, cache-friendly scans:
// vectors live in one contiguous backing array per index (an offset per node
// instead of a pointer chase per candidate), Euclidean norms are precomputed
// at insert so a Cosine distance costs a single dot product, top-k selection
// is a bounded max-heap (O(n log k), zero per-candidate allocation), and the
// HNSW per-search scratch — the visited set and both beam heaps — is pooled
// and generation-stamped rather than reallocated per query.
package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"modellake/internal/obs"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// ANN metrics, labelled by index kind. candidates-scanned divided by
// searches gives the effective probe width: |lake| for the flat scan versus
// the beam-bounded visit count for HNSW — the sublinearity claim of paper §5
// read straight off the counters. The counters are resolved once at package
// init: a registry lookup per search would put map traffic and label
// rendering on the zero-alloc hot path.
var (
	flatSearches    = searchCounter("flat")
	flatCandidates  = candidateCounter("flat")
	hnswSearches    = searchCounter("hnsw")
	hnswCandidates  = candidateCounter("hnsw")
	quantSearches   = searchCounter("flat_quant")
	quantCandidates = candidateCounter("flat_quant")
	pqSearches      = searchCounter("flat_pq")
	pqCandidates    = candidateCounter("flat_pq")
	diskSearches    = searchCounter("disk_flat")
	diskCandidates  = candidateCounter("disk_flat")
)

func searchCounter(kind string) *obs.Counter {
	return obs.Default().Counter("ann_searches_total", obs.L("kind", kind))
}

func candidateCounter(kind string) *obs.Counter {
	return obs.Default().Counter("ann_candidates_scanned_total", obs.L("kind", kind))
}

// Sentinel errors.
var (
	ErrDuplicateID = errors.New("index: id already present")
	ErrBadVector   = errors.New("index: bad vector")
)

// Metric selects the distance function.
type Metric int

// Supported metrics.
const (
	L2 Metric = iota
	Cosine
)

// Distance returns the metric's distance between a and b (lower is closer).
// Cosine distance is 1 − cosine similarity.
func (m Metric) Distance(a, b tensor.Vector) float64 {
	switch m {
	case Cosine:
		return 1 - tensor.CosineSimilarity(a, b)
	default:
		return tensor.L2Distance(a, b)
	}
}

// queryNorm returns the query-side norm the metric needs per search: the
// Euclidean norm for Cosine (computed once, not once per candidate), unused
// zero for L2.
func (m Metric) queryNorm(q tensor.Vector) float64 {
	if m == Cosine {
		return q.Norm()
	}
	return 0
}

// distFlat is the flattened-storage distance: q against a stored row whose
// norm was precomputed at insert. The arithmetic — operand order included —
// matches Metric.Distance exactly, so results are bitwise identical to the
// clone-per-node layout this replaced.
func (m Metric) distFlat(q tensor.Vector, qNorm float64, row []float64, rowNorm float64) float64 {
	if m == Cosine {
		if qNorm == 0 || rowNorm == 0 {
			return 1
		}
		return 1 - tensor.DotKernel(q, row)/(qNorm*rowNorm)
	}
	return math.Sqrt(tensor.SquaredL2Kernel(q, row))
}

// Result is one search hit.
type Result struct {
	ID       string
	Distance float64
}

// Index is a nearest-neighbour index over string-identified vectors.
type Index interface {
	// Add inserts a vector under id.
	Add(id string, v tensor.Vector) error
	// Search returns the k nearest stored vectors to q, closest first. Long
	// scans honor ctx cancellation (checked about every thousand
	// candidates); nil ctx means no cancellation.
	Search(ctx context.Context, q tensor.Vector, k int) ([]Result, error)
	// Len returns the number of stored vectors.
	Len() int
}

// ctxCheckInterval is how many candidates a scan examines between
// cancellation checks — frequent enough that a timed-out request stops
// promptly, rare enough to stay invisible in the per-candidate cost.
const ctxCheckInterval = 1024

func validateVector(v tensor.Vector, wantDim int) error {
	if len(v) == 0 {
		return fmt.Errorf("%w: empty", ErrBadVector)
	}
	if wantDim != 0 && len(v) != wantDim {
		return fmt.Errorf("%w: dim %d != index dim %d", ErrBadVector, len(v), wantDim)
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: non-finite component", ErrBadVector)
		}
	}
	return nil
}

// candidate is a node index paired with its distance to the current query.
type candidate struct {
	idx  int
	dist float64
}

// topK selects the k smallest candidates under the total order (distance,
// then ID when ids is set, else node index). It is a max-heap holding at most
// k elements with the worst at the root, so a full scan costs O(n log k) and
// allocates nothing per candidate. Instances are pooled by their owners.
type topK struct {
	k   int
	ids []string // tie-break by ids[idx] when non-nil
	xs  []candidate
}

// worse reports whether a ranks strictly after b (farther, or tied and
// later in the tie-break order).
func (t *topK) worse(a, b candidate) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	if t.ids != nil {
		return t.ids[a.idx] > t.ids[b.idx]
	}
	return a.idx > b.idx
}

func (t *topK) reset(k int, ids []string) {
	t.k = k
	t.ids = ids
	t.xs = t.xs[:0]
}

// release drops references that would otherwise pin the owner's data while
// the scratch sits in a pool.
func (t *topK) release() { t.ids = nil }

// offer considers one candidate, keeping the k best seen so far.
func (t *topK) offer(c candidate) {
	if len(t.xs) < t.k {
		t.xs = append(t.xs, c)
		i := len(t.xs) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !t.worse(t.xs[i], t.xs[parent]) {
				break
			}
			t.xs[i], t.xs[parent] = t.xs[parent], t.xs[i]
			i = parent
		}
		return
	}
	if !t.worse(t.xs[0], c) {
		return // current worst still beats c
	}
	t.xs[0] = c
	t.siftDown(0, len(t.xs))
}

func (t *topK) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(t.xs[l], t.xs[worst]) {
			worst = l
		}
		if r < n && t.worse(t.xs[r], t.xs[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.xs[i], t.xs[worst] = t.xs[worst], t.xs[i]
		i = worst
	}
}

// extractAscending heap-sorts the selection in place and returns it ordered
// closest first. The topK must be reset before reuse.
func (t *topK) extractAscending() []candidate {
	for n := len(t.xs); n > 1; n-- {
		t.xs[0], t.xs[n-1] = t.xs[n-1], t.xs[0]
		t.siftDown(0, n-1)
	}
	return t.xs
}

// Flat is an exact linear-scan index. Vectors are stored row-major in one
// contiguous backing array (row i at data[i*dim : (i+1)*dim]) with their
// norms precomputed, so a scan walks memory sequentially and a Cosine
// candidate costs exactly one dot product.
type Flat struct {
	metric Metric
	mu     sync.RWMutex
	ids    []string
	data   []float64
	norms  []float64
	byID   map[string]struct{}
	dim    int

	// Optional approximate ranking tier — at most one is set. quant is the
	// int8 tier (NewFlatQuantized), pq the product-quantized tier
	// (NewFlatPQ); either way searches go through a two-phase approximate-
	// scan + exact-rescore path instead of the full-precision scan. Both
	// nil on a plain NewFlat index.
	quant         *quantTier
	pq            *pqTier
	rescoreFactor int

	topk      sync.Pool // *topK per-search scratch
	qscratch  sync.Pool // *quantScratch, set when quant != nil
	pqscratch sync.Pool // *pqScratch, set when pq != nil
}

// NewFlat returns an empty exact index.
func NewFlat(metric Metric) *Flat {
	f := &Flat{metric: metric, byID: make(map[string]struct{})}
	f.topk.New = func() any { return new(topK) }
	return f
}

// Add implements Index.
func (f *Flat) Add(id string, v tensor.Vector) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := validateVector(v, f.dim); err != nil {
		return err
	}
	if _, ok := f.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if f.dim == 0 {
		f.dim = len(v)
	}
	f.ids = append(f.ids, id)
	f.data = append(f.data, v...)
	f.norms = append(f.norms, v.Norm())
	f.byID[id] = struct{}{}
	if f.quant != nil {
		f.quant.add(v)
	}
	if f.pq != nil {
		if f.pq.trained() {
			f.pq.encode(v)
		} else if len(f.ids) >= f.pq.trainRows {
			f.trainPQLocked()
		}
	}
	return nil
}

// Reserve pre-sizes the backing storage for about n upcoming vectors of
// dimension dim, so a bulk load (lake rehydration) appends without repeated
// reallocation of the packed vector array. It is a pure capacity hint:
// contents and behaviour are unchanged, and n is not a cap.
func (f *Flat) Reserve(n, dim int) {
	if n <= 0 || dim <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if cap(f.ids)-len(f.ids) < n {
		ids := make([]string, len(f.ids), len(f.ids)+n)
		copy(ids, f.ids)
		f.ids = ids
		norms := make([]float64, len(f.norms), len(f.norms)+n)
		copy(norms, f.norms)
		f.norms = norms
	}
	if cap(f.data)-len(f.data) < n*dim {
		data := make([]float64, len(f.data), len(f.data)+n*dim)
		copy(data, f.data)
		f.data = data
	}
	if f.quant != nil {
		f.quant.reserve(n, dim)
	}
}

// Search implements Index.
func (f *Flat) Search(ctx context.Context, q tensor.Vector, k int) ([]Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := len(f.ids)
	if n == 0 {
		return nil, nil
	}
	if err := validateVector(q, f.dim); err != nil {
		return nil, err
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		flatSearches.Inc()
		return []Result{}, nil
	}
	qNorm := f.metric.queryNorm(q)
	if f.quant != nil {
		if shortlist := k * f.rescoreFactor; shortlist < n {
			quantSearches.Inc()
			quantCandidates.Add(uint64(n + shortlist))
			return f.searchQuantized(ctx, q, qNorm, k, shortlist)
		}
		// The shortlist would cover every row: the quantized phase cannot
		// narrow anything, so run the plain exact scan (identity is then
		// unconditional, not merely recall-dependent).
	}
	if f.pq.trained() {
		if shortlist := k * f.rescoreFactor; shortlist < n {
			pqSearches.Inc()
			pqCandidates.Add(uint64(n + shortlist))
			return f.searchPQ(ctx, q, qNorm, k, shortlist)
		}
		// Same degenerate case as above: a whole-index shortlist is just
		// the exact scan. An untrained tier (population below the training
		// threshold) also lands here.
	}
	flatSearches.Inc()
	flatCandidates.Add(uint64(n))
	t := f.topk.Get().(*topK)
	t.reset(k, f.ids)
	dim := f.dim
	for i := 0; i < n; i++ {
		if i%ctxCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				t.release()
				f.topk.Put(t)
				return nil, err
			}
		}
		row := f.data[i*dim : (i+1)*dim]
		t.offer(candidate{idx: i, dist: f.metric.distFlat(q, qNorm, row, f.norms[i])})
	}
	sel := t.extractAscending()
	out := make([]Result, len(sel))
	for i, c := range sel {
		out[i] = Result{ID: f.ids[c.idx], Distance: c.dist}
	}
	t.release()
	f.topk.Put(t)
	return out, nil
}

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// MemBytes estimates the heap retained by the index: ID strings, the
// full-precision rows, norms, and (when quantized) the int8 tier. The same
// 48-byte map-bucket and 16-byte string-header heuristics the keyword index
// uses, so tier reports add up consistently.
func (f *Flat) MemBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := idSliceBytes(f.ids) + int64(len(f.data))*8 + int64(len(f.norms))*8
	for id := range f.byID {
		n += int64(len(id)) + memStrHeader + memMapEntry
	}
	return n + f.quant.memBytes() + f.pq.memBytes()
}

// ResidentTierBytes reports the heap held by the approximate ranking tier
// alone — int8 codes and row params, or PQ codebook plus codes. Zero on a
// plain exact index. The scale experiment compares this number across tier
// choices, where MemBytes would drown it in IDs and full-precision rows.
func (f *Flat) ResidentTierBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.quant.memBytes() + f.pq.memBytes()
}

// MemBytes estimates the heap retained by the graph: vectors, norms, ID
// strings, and per-node link lists.
func (h *HNSW) MemBytes() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := int64(len(h.vecData))*8 + int64(len(h.norms))*8
	for _, node := range h.nodes {
		n += int64(len(node.id)) + memStrHeader
		for _, level := range node.links {
			n += int64(len(level)) * 4
		}
	}
	for id := range h.byID {
		n += int64(len(id)) + memStrHeader + 8 + memMapEntry
	}
	return n
}

// memMapEntry/memStrHeader are the rough per-entry accounting heuristics
// shared by every MemBytes estimator in the repo.
const (
	memMapEntry  = 48
	memStrHeader = 16
)

func idSliceBytes(ids []string) int64 {
	n := int64(len(ids)) * memStrHeader
	for _, id := range ids {
		n += int64(len(id))
	}
	return n
}

// HNSWConfig tunes the graph. Zero values select sensible defaults.
type HNSWConfig struct {
	M              int    // max links per node on upper layers (default 16)
	EfConstruction int    // candidate pool during insertion (default 200)
	EfSearch       int    // candidate pool during search (default 64)
	Seed           uint64 // level-assignment randomness
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// hnswNode holds a node's identity and adjacency; its vector lives at
// vecData[idx*dim : (idx+1)*dim] in the owning index.
type hnswNode struct {
	id    string
	links [][]int32 // links[level] = neighbour node indices
}

// HNSW is the approximate index.
type HNSW struct {
	metric Metric
	cfg    HNSWConfig
	mL     float64

	mu       sync.RWMutex
	nodes    []hnswNode
	vecData  []float64 // flattened node vectors, row-major
	norms    []float64 // precomputed Euclidean norms, aligned with nodes
	byID     map[string]int
	entry    int
	maxLevel int
	rng      *xrand.RNG
	dim      int

	scratch sync.Pool // *searchScratch
}

// NewHNSW returns an empty HNSW index.
func NewHNSW(metric Metric, cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	h := &HNSW{
		metric: metric,
		cfg:    cfg,
		mL:     1 / math.Log(float64(cfg.M)),
		byID:   make(map[string]int),
		entry:  -1,
		rng:    xrand.New(cfg.Seed),
	}
	h.scratch.New = func() any { return new(searchScratch) }
	return h
}

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}

func (h *HNSW) randomLevel() int {
	u := h.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(-math.Log(u) * h.mL)
}

// vec returns node i's vector as a view into the flat backing array.
func (h *HNSW) vec(i int) tensor.Vector {
	return tensor.Vector(h.vecData[i*h.dim : (i+1)*h.dim])
}

// distTo computes the metric distance from a query (with its precomputed
// query-side norm) to stored node i.
func (h *HNSW) distTo(q tensor.Vector, qNorm float64, i int) float64 {
	return h.metric.distFlat(q, qNorm, h.vecData[i*h.dim:(i+1)*h.dim], h.norms[i])
}

// searchScratch is the pooled per-search state: a generation-stamped visited
// set (one uint32 per node beats a map[int]struct{} by an order of magnitude
// and needs no clearing between searches) plus the two beam heaps and a
// bounded selector for link shrinking.
type searchScratch struct {
	visited []uint32
	gen     uint32
	cands   candHeap // min-heap: closest first
	results candHeap // max-heap: worst at root, popped when over ef
	sel     topK     // bounded selection workspace for shrinkLinks
}

// begin prepares the scratch for a search over n nodes.
func (sc *searchScratch) begin(n int) {
	if len(sc.visited) < n {
		sc.visited = append(sc.visited, make([]uint32, n-len(sc.visited))...)
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: stale stamps could collide, so clear once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.gen = 1
	}
	sc.cands.xs = sc.cands.xs[:0]
	sc.results.xs = sc.results.xs[:0]
}

// visit marks node i visited, reporting whether this is the first visit of
// the current search.
func (sc *searchScratch) visit(i int) bool {
	if sc.visited[i] == sc.gen {
		return false
	}
	sc.visited[i] = sc.gen
	return true
}

// Add implements Index.
func (h *HNSW) Add(id string, v tensor.Vector) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := validateVector(v, h.dim); err != nil {
		return err
	}
	if _, ok := h.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if h.dim == 0 {
		h.dim = len(v)
	}
	level := h.randomLevel()
	idx := len(h.nodes)
	h.nodes = append(h.nodes, hnswNode{id: id, links: make([][]int32, level+1)})
	h.vecData = append(h.vecData, v...)
	h.norms = append(h.norms, v.Norm())
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLevel = level
		return nil
	}

	// v may alias caller memory the caller mutates later; from here on use
	// the index's own copy, exactly as searches will.
	q := h.vec(idx)
	qNorm := h.metric.queryNorm(q)
	cur := h.entry
	curDist := h.distTo(q, qNorm, cur)
	// Greedy descent through layers above the new node's level.
	for l := h.maxLevel; l > level; l-- {
		cur, curDist = h.greedyStep(q, qNorm, cur, curDist, l)
	}
	// Insert at each level from min(level, maxLevel) down to 0.
	startLevel := level
	if startLevel > h.maxLevel {
		startLevel = h.maxLevel
	}
	sc := h.scratch.Get().(*searchScratch)
	ep := []candidate{{idx: cur, dist: curDist}}
	for l := startLevel; l >= 0; l-- {
		found, _ := h.searchLayer(sc, q, qNorm, ep, h.cfg.EfConstruction, l)
		maxConn := h.cfg.M
		if l == 0 {
			maxConn = 2 * h.cfg.M
		}
		neighbours := found
		if len(neighbours) > h.cfg.M {
			neighbours = neighbours[:h.cfg.M]
		}
		for _, nb := range neighbours {
			h.nodes[idx].links[l] = append(h.nodes[idx].links[l], int32(nb.idx))
			h.nodes[nb.idx].links[l] = append(h.nodes[nb.idx].links[l], int32(idx))
			if len(h.nodes[nb.idx].links[l]) > maxConn {
				h.shrinkLinks(sc, nb.idx, l, maxConn)
			}
		}
		ep = found
	}
	h.scratch.Put(sc)
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	return nil
}

// greedyStep walks to the closest neighbour of cur at layer l until no
// improvement, returning the final node and its distance.
func (h *HNSW) greedyStep(q tensor.Vector, qNorm float64, cur int, curDist float64, l int) (int, float64) {
	for {
		if l >= len(h.nodes[cur].links) {
			return cur, curDist
		}
		improved := false
		for _, nb := range h.nodes[cur].links[l] {
			d := h.distTo(q, qNorm, int(nb))
			if d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur, curDist
		}
	}
}

// searchLayer is the standard HNSW beam search at one layer. It returns up
// to ef candidates sorted by ascending distance, plus the number of distinct
// nodes visited (the probe count Search reports to the metrics). All working
// state lives in sc; only the returned slice is allocated.
func (h *HNSW) searchLayer(sc *searchScratch, q tensor.Vector, qNorm float64, entryPoints []candidate, ef, level int) ([]candidate, int) {
	sc.begin(len(h.nodes))
	visited := 0
	for _, ep := range entryPoints {
		if !sc.visit(ep.idx) {
			continue
		}
		visited++
		sc.cands.push(ep, false)
		sc.results.push(ep, true)
	}
	for sc.cands.len() > 0 {
		c := sc.cands.pop(false)
		if sc.results.len() >= ef && c.dist > sc.results.peek().dist {
			break
		}
		if level >= len(h.nodes[c.idx].links) {
			continue
		}
		for _, nb := range h.nodes[c.idx].links[level] {
			ni := int(nb)
			if !sc.visit(ni) {
				continue
			}
			visited++
			d := h.distTo(q, qNorm, ni)
			if sc.results.len() < ef || d < sc.results.peek().dist {
				sc.cands.push(candidate{idx: ni, dist: d}, false)
				sc.results.push(candidate{idx: ni, dist: d}, true)
				if sc.results.len() > ef {
					sc.results.pop(true)
				}
			}
		}
	}
	out := make([]candidate, sc.results.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = sc.results.pop(true)
	}
	return out, visited
}

// shrinkLinks truncates a node's neighbour list at a level to the maxConn
// closest neighbours via bounded top-k selection — O(n log maxConn), no
// allocation, no sort — writing the survivors back in ascending distance
// order (ties broken by neighbour index).
func (h *HNSW) shrinkLinks(sc *searchScratch, idx, level, maxConn int) {
	links := h.nodes[idx].links[level]
	if len(links) <= maxConn {
		return
	}
	q := h.vec(idx)
	qNorm := h.metric.queryNorm(q)
	sc.sel.reset(maxConn, nil)
	for _, nb := range links {
		sc.sel.offer(candidate{idx: int(nb), dist: h.distTo(q, qNorm, int(nb))})
	}
	kept := sc.sel.extractAscending()
	links = links[:len(kept)]
	for i, c := range kept {
		links[i] = int32(c.idx)
	}
	h.nodes[idx].links[level] = links
}

// Search implements Index.
func (h *HNSW) Search(ctx context.Context, q tensor.Vector, k int) ([]Result, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.nodes) == 0 {
		return nil, nil
	}
	if err := validateVector(q, h.dim); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	qNorm := h.metric.queryNorm(q)
	cur := h.entry
	curDist := h.distTo(q, qNorm, cur)
	for l := h.maxLevel; l > 0; l-- {
		cur, curDist = h.greedyStep(q, qNorm, cur, curDist, l)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	sc := h.scratch.Get().(*searchScratch)
	found, visited := h.searchLayer(sc, q, qNorm, []candidate{{idx: cur, dist: curDist}}, ef, 0)
	h.scratch.Put(sc)
	hnswSearches.Inc()
	hnswCandidates.Add(uint64(visited))
	if k > len(found) {
		k = len(found)
	}
	if k < 0 {
		k = 0
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{ID: h.nodes[found[i].idx].id, Distance: found[i].dist}
	}
	return out, nil
}

// candHeap is a binary heap over candidates ordered by distance. The max
// flag on each operation selects the comparison direction (false = min-heap,
// true = max-heap) so one reusable backing slice serves both beam heaps
// without a per-search comparator closure.
type candHeap struct {
	xs []candidate
}

func (h *candHeap) len() int        { return len(h.xs) }
func (h *candHeap) peek() candidate { return h.xs[0] }

func (h *candHeap) before(a, b candidate, max bool) bool {
	if max {
		return a.dist > b.dist
	}
	return a.dist < b.dist
}

func (h *candHeap) push(c candidate, max bool) {
	h.xs = append(h.xs, c)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.xs[i], h.xs[parent], max) {
			break
		}
		h.xs[i], h.xs[parent] = h.xs[parent], h.xs[i]
		i = parent
	}
}

func (h *candHeap) pop(max bool) candidate {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		first := i
		if l < len(h.xs) && h.before(h.xs[l], h.xs[first], max) {
			first = l
		}
		if r < len(h.xs) && h.before(h.xs[r], h.xs[first], max) {
			first = r
		}
		if first == i {
			break
		}
		h.xs[i], h.xs[first] = h.xs[first], h.xs[i]
		i = first
	}
	return top
}

// Package index implements the lake's nearest-neighbour indexer (paper §5):
// a Hierarchical Navigable Small World (HNSW) graph for sublinear approximate
// search over model embeddings, plus an exact flat scan that serves both as
// the recall baseline and as the correct choice for small lakes.
//
// Both implementations satisfy Index, so experiments can swap them, and both
// are safe for concurrent use.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"modellake/internal/obs"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// ANN metrics, labelled by index kind. candidates-scanned divided by
// searches gives the effective probe width: |lake| for the flat scan versus
// the beam-bounded visit count for HNSW — the sublinearity claim of paper §5
// read straight off the counters.
func searchCounter(kind string) *obs.Counter {
	return obs.Default().Counter("ann_searches_total", obs.L("kind", kind))
}

func candidateCounter(kind string) *obs.Counter {
	return obs.Default().Counter("ann_candidates_scanned_total", obs.L("kind", kind))
}

// Sentinel errors.
var (
	ErrDuplicateID = errors.New("index: id already present")
	ErrBadVector   = errors.New("index: bad vector")
)

// Metric selects the distance function.
type Metric int

// Supported metrics.
const (
	L2 Metric = iota
	Cosine
)

// Distance returns the metric's distance between a and b (lower is closer).
// Cosine distance is 1 − cosine similarity.
func (m Metric) Distance(a, b tensor.Vector) float64 {
	switch m {
	case Cosine:
		return 1 - tensor.CosineSimilarity(a, b)
	default:
		return tensor.L2Distance(a, b)
	}
}

// Result is one search hit.
type Result struct {
	ID       string
	Distance float64
}

// Index is a nearest-neighbour index over string-identified vectors.
type Index interface {
	// Add inserts a vector under id.
	Add(id string, v tensor.Vector) error
	// Search returns the k nearest stored vectors to q, closest first.
	Search(q tensor.Vector, k int) ([]Result, error)
	// Len returns the number of stored vectors.
	Len() int
}

func validateVector(v tensor.Vector, wantDim int) error {
	if len(v) == 0 {
		return fmt.Errorf("%w: empty", ErrBadVector)
	}
	if wantDim != 0 && len(v) != wantDim {
		return fmt.Errorf("%w: dim %d != index dim %d", ErrBadVector, len(v), wantDim)
	}
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: non-finite component", ErrBadVector)
		}
	}
	return nil
}

// Flat is an exact linear-scan index.
type Flat struct {
	metric Metric
	mu     sync.RWMutex
	ids    []string
	vecs   []tensor.Vector
	byID   map[string]struct{}
	dim    int
}

// NewFlat returns an empty exact index.
func NewFlat(metric Metric) *Flat {
	return &Flat{metric: metric, byID: make(map[string]struct{})}
}

// Add implements Index.
func (f *Flat) Add(id string, v tensor.Vector) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := validateVector(v, f.dim); err != nil {
		return err
	}
	if _, ok := f.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if f.dim == 0 {
		f.dim = len(v)
	}
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, v.Clone())
	f.byID[id] = struct{}{}
	return nil
}

// Search implements Index.
func (f *Flat) Search(q tensor.Vector, k int) ([]Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.vecs) == 0 {
		return nil, nil
	}
	if err := validateVector(q, f.dim); err != nil {
		return nil, err
	}
	searchCounter("flat").Inc()
	candidateCounter("flat").Add(uint64(len(f.vecs)))
	res := make([]Result, len(f.vecs))
	for i, v := range f.vecs {
		res[i] = Result{ID: f.ids[i], Distance: f.metric.Distance(q, v)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Distance != res[j].Distance {
			return res[i].Distance < res[j].Distance
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	if k < 0 {
		k = 0
	}
	return res[:k], nil
}

// Len implements Index.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// HNSWConfig tunes the graph. Zero values select sensible defaults.
type HNSWConfig struct {
	M              int    // max links per node on upper layers (default 16)
	EfConstruction int    // candidate pool during insertion (default 200)
	EfSearch       int    // candidate pool during search (default 64)
	Seed           uint64 // level-assignment randomness
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

type hnswNode struct {
	id    string
	vec   tensor.Vector
	links [][]int32 // links[level] = neighbour node indices
}

// HNSW is the approximate index.
type HNSW struct {
	metric Metric
	cfg    HNSWConfig
	mL     float64

	mu       sync.RWMutex
	nodes    []hnswNode
	byID     map[string]int
	entry    int
	maxLevel int
	rng      *xrand.RNG
	dim      int
}

// NewHNSW returns an empty HNSW index.
func NewHNSW(metric Metric, cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	return &HNSW{
		metric: metric,
		cfg:    cfg,
		mL:     1 / math.Log(float64(cfg.M)),
		byID:   make(map[string]int),
		entry:  -1,
		rng:    xrand.New(cfg.Seed),
	}
}

// Len implements Index.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}

func (h *HNSW) randomLevel() int {
	u := h.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(-math.Log(u) * h.mL)
}

// Add implements Index.
func (h *HNSW) Add(id string, v tensor.Vector) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := validateVector(v, h.dim); err != nil {
		return err
	}
	if _, ok := h.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if h.dim == 0 {
		h.dim = len(v)
	}
	level := h.randomLevel()
	node := hnswNode{id: id, vec: v.Clone(), links: make([][]int32, level+1)}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, node)
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLevel = level
		return nil
	}

	cur := h.entry
	curDist := h.metric.Distance(v, h.nodes[cur].vec)
	// Greedy descent through layers above the new node's level.
	for l := h.maxLevel; l > level; l-- {
		cur, curDist = h.greedyStep(v, cur, curDist, l)
	}
	// Insert at each level from min(level, maxLevel) down to 0.
	startLevel := level
	if startLevel > h.maxLevel {
		startLevel = h.maxLevel
	}
	ep := []candidate{{idx: cur, dist: curDist}}
	for l := startLevel; l >= 0; l-- {
		found, _ := h.searchLayer(v, ep, h.cfg.EfConstruction, l)
		maxConn := h.cfg.M
		if l == 0 {
			maxConn = 2 * h.cfg.M
		}
		neighbours := found
		if len(neighbours) > h.cfg.M {
			neighbours = neighbours[:h.cfg.M]
		}
		for _, nb := range neighbours {
			h.nodes[idx].links[l] = append(h.nodes[idx].links[l], int32(nb.idx))
			h.nodes[nb.idx].links[l] = append(h.nodes[nb.idx].links[l], int32(idx))
			if len(h.nodes[nb.idx].links[l]) > maxConn {
				h.shrinkLinks(nb.idx, l, maxConn)
			}
		}
		ep = found
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	return nil
}

// greedyStep walks to the closest neighbour of cur at layer l until no
// improvement, returning the final node and its distance.
func (h *HNSW) greedyStep(q tensor.Vector, cur int, curDist float64, l int) (int, float64) {
	for {
		if l >= len(h.nodes[cur].links) {
			return cur, curDist
		}
		improved := false
		for _, nb := range h.nodes[cur].links[l] {
			d := h.metric.Distance(q, h.nodes[nb].vec)
			if d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur, curDist
		}
	}
}

type candidate struct {
	idx  int
	dist float64
}

// searchLayer is the standard HNSW beam search at one layer. It returns up
// to ef candidates sorted by ascending distance, plus the number of distinct
// nodes visited (the probe count Search reports to the metrics).
func (h *HNSW) searchLayer(q tensor.Vector, entryPoints []candidate, ef, level int) ([]candidate, int) {
	visited := make(map[int]struct{}, ef*4)
	// candidates: min-heap by distance; results: max-heap (we keep the worst
	// at index 0 to pop when over capacity).
	cands := newHeap(func(a, b candidate) bool { return a.dist < b.dist })
	results := newHeap(func(a, b candidate) bool { return a.dist > b.dist })
	for _, ep := range entryPoints {
		if _, ok := visited[ep.idx]; ok {
			continue
		}
		visited[ep.idx] = struct{}{}
		cands.push(ep)
		results.push(ep)
	}
	for cands.len() > 0 {
		c := cands.pop()
		if results.len() >= ef && c.dist > results.peek().dist {
			break
		}
		if level >= len(h.nodes[c.idx].links) {
			continue
		}
		for _, nb := range h.nodes[c.idx].links[level] {
			ni := int(nb)
			if _, ok := visited[ni]; ok {
				continue
			}
			visited[ni] = struct{}{}
			d := h.metric.Distance(q, h.nodes[ni].vec)
			if results.len() < ef || d < results.peek().dist {
				cands.push(candidate{idx: ni, dist: d})
				results.push(candidate{idx: ni, dist: d})
				if results.len() > ef {
					results.pop()
				}
			}
		}
	}
	out := make([]candidate, results.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = results.pop()
	}
	return out, len(visited)
}

// shrinkLinks truncates a node's neighbour list at a level to the maxConn
// closest neighbours.
func (h *HNSW) shrinkLinks(idx, level, maxConn int) {
	links := h.nodes[idx].links[level]
	type linkDist struct {
		nb   int32
		dist float64
	}
	lds := make([]linkDist, len(links))
	for i, nb := range links {
		lds[i] = linkDist{nb, h.metric.Distance(h.nodes[idx].vec, h.nodes[nb].vec)}
	}
	sort.Slice(lds, func(i, j int) bool { return lds[i].dist < lds[j].dist })
	if len(lds) > maxConn {
		lds = lds[:maxConn]
	}
	out := make([]int32, len(lds))
	for i, ld := range lds {
		out[i] = ld.nb
	}
	h.nodes[idx].links[level] = out
}

// Search implements Index.
func (h *HNSW) Search(q tensor.Vector, k int) ([]Result, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.nodes) == 0 {
		return nil, nil
	}
	if err := validateVector(q, h.dim); err != nil {
		return nil, err
	}
	cur := h.entry
	curDist := h.metric.Distance(q, h.nodes[cur].vec)
	for l := h.maxLevel; l > 0; l-- {
		cur, curDist = h.greedyStep(q, cur, curDist, l)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	found, visited := h.searchLayer(q, []candidate{{idx: cur, dist: curDist}}, ef, 0)
	searchCounter("hnsw").Inc()
	candidateCounter("hnsw").Add(uint64(visited))
	if k > len(found) {
		k = len(found)
	}
	if k < 0 {
		k = 0
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{ID: h.nodes[found[i].idx].id, Distance: found[i].dist}
	}
	return out, nil
}

// binary heap over candidates with a custom less function.
type candHeap struct {
	less func(a, b candidate) bool
	xs   []candidate
}

func newHeap(less func(a, b candidate) bool) *candHeap { return &candHeap{less: less} }

func (h *candHeap) len() int        { return len(h.xs) }
func (h *candHeap) peek() candidate { return h.xs[0] }

func (h *candHeap) push(c candidate) {
	h.xs = append(h.xs, c)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.xs[i], h.xs[parent]) {
			break
		}
		h.xs[i], h.xs[parent] = h.xs[parent], h.xs[i]
		i = parent
	}
}

func (h *candHeap) pop() candidate {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.xs) && h.less(h.xs[l], h.xs[smallest]) {
			smallest = l
		}
		if r < len(h.xs) && h.less(h.xs[r], h.xs[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.xs[i], h.xs[smallest] = h.xs[smallest], h.xs[i]
		i = smallest
	}
	return top
}

package index

// MergeTopK selects the k best results across several already-ranked (or
// unranked) result lists, using the same bounded max-heap selector — and the
// same total order: ascending distance, ties broken by ascending ID — that
// every index search uses. A scatter-gather router that asks each shard for
// its local top-k and merges the per-shard lists through MergeTopK therefore
// returns bitwise-identical results to a single index holding the union of
// the shards' vectors: each distance was computed by the same code on the
// same bits, and the selection order is the same total order.
//
// Callers must ensure IDs are distinct across lists (shards partition the
// population); duplicate IDs are kept as distinct candidates.
func MergeTopK(k int, lists ...[]Result) []Result {
	if k <= 0 {
		return nil
	}
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	ids := make([]string, 0, n)
	dists := make([]float64, 0, n)
	for _, l := range lists {
		for _, r := range l {
			ids = append(ids, r.ID)
			dists = append(dists, r.Distance)
		}
	}
	if k > n {
		k = n
	}
	t := new(topK)
	t.reset(k, ids)
	for i := range ids {
		t.offer(candidate{idx: i, dist: dists[i]})
	}
	sel := t.extractAscending()
	out := make([]Result, len(sel))
	for i, c := range sel {
		out[i] = Result{ID: ids[c.idx], Distance: c.dist}
	}
	return out
}

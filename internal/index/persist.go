package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"modellake/internal/tensor"
)

// Binary persistence for HNSW graphs, so large indexes do not have to be
// rebuilt (E4 shows builds are ~1000× more expensive than searches). Format:
// header (magic, metric, config, dims, entry, maxLevel, node count), then
// per node: id, vector, per-level link lists. All little-endian.

const hnswMagic uint32 = 0x484e5357 // "HNSW"

// Save writes the index to w. The index is read-locked for the duration.
func (h *HNSW) Save(w io.Writer) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }

	writeU32(hnswMagic)
	writeU32(uint32(h.metric))
	writeU32(uint32(h.cfg.M))
	writeU32(uint32(h.cfg.EfConstruction))
	writeU32(uint32(h.cfg.EfSearch))
	writeU64(h.cfg.Seed)
	writeU32(uint32(h.dim))
	writeU32(uint32(int32(h.entry)))
	writeU32(uint32(h.maxLevel))
	writeU32(uint32(len(h.nodes)))
	for i, n := range h.nodes {
		writeU32(uint32(len(n.id)))
		bw.WriteString(n.id)
		for _, v := range h.vecData[i*h.dim : (i+1)*h.dim] {
			writeU64(math.Float64bits(v))
		}
		writeU32(uint32(len(n.links)))
		for _, links := range n.links {
			writeU32(uint32(len(links)))
			for _, nb := range links {
				writeU32(uint32(nb))
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// LoadHNSW reads an index previously written with Save. The RNG resumes from
// the persisted seed, so a loaded index keeps accepting inserts (level
// assignment stays deterministic per process, though not identical to an
// uninterrupted build).
func LoadHNSW(r io.Reader) (*HNSW, error) {
	br := bufio.NewReader(r)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("index: load header: %w", err)
	}
	if magic != hnswMagic {
		return nil, fmt.Errorf("index: bad HNSW magic %#x", magic)
	}
	metric, err := readU32()
	if err != nil {
		return nil, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	efC, err := readU32()
	if err != nil {
		return nil, err
	}
	efS, err := readU32()
	if err != nil {
		return nil, err
	}
	seed, err := readU64()
	if err != nil {
		return nil, err
	}
	dim, err := readU32()
	if err != nil {
		return nil, err
	}
	entry, err := readU32()
	if err != nil {
		return nil, err
	}
	maxLevel, err := readU32()
	if err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxNodes = 1 << 28
	if count > maxNodes || dim > 1<<20 || maxLevel > 64 {
		return nil, fmt.Errorf("index: implausible header (count=%d dim=%d maxLevel=%d)",
			count, dim, maxLevel)
	}
	h := NewHNSW(Metric(metric), HNSWConfig{
		M: int(m), EfConstruction: int(efC), EfSearch: int(efS), Seed: seed,
	})
	h.dim = int(dim)
	h.entry = int(int32(entry))
	h.maxLevel = int(maxLevel)
	h.nodes = make([]hnswNode, count)
	h.vecData = make([]float64, int(count)*int(dim))
	h.norms = make([]float64, count)
	for i := range h.nodes {
		idLen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: load node %d: %w", i, err)
		}
		if idLen > 1<<16 {
			return nil, fmt.Errorf("index: implausible id length %d", idLen)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(br, idBuf); err != nil {
			return nil, fmt.Errorf("index: load node %d id: %w", i, err)
		}
		id := string(idBuf)
		if _, dup := h.byID[id]; dup {
			return nil, fmt.Errorf("index: duplicate id %q in stream", id)
		}
		vec := h.vecData[i*int(dim) : (i+1)*int(dim)]
		for j := range vec {
			bits, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("index: load node %d vector: %w", i, err)
			}
			vec[j] = math.Float64frombits(bits)
		}
		h.norms[i] = tensor.Vector(vec).Norm()
		nLevels, err := readU32()
		if err != nil {
			return nil, err
		}
		if nLevels > 64 {
			return nil, fmt.Errorf("index: implausible level count %d", nLevels)
		}
		links := make([][]int32, nLevels)
		for l := range links {
			nLinks, err := readU32()
			if err != nil {
				return nil, err
			}
			if nLinks > count {
				return nil, fmt.Errorf("index: node %d level %d has %d links > %d nodes", i, l, nLinks, count)
			}
			links[l] = make([]int32, nLinks)
			for k := range links[l] {
				nb, err := readU32()
				if err != nil {
					return nil, err
				}
				if nb >= count {
					return nil, fmt.Errorf("index: link to node %d out of range", nb)
				}
				links[l][k] = int32(nb)
			}
		}
		h.nodes[i] = hnswNode{id: id, links: links}
		h.byID[id] = i
	}
	if count > 0 && (h.entry < 0 || h.entry >= int(count)) {
		return nil, fmt.Errorf("index: entry point %d out of range", h.entry)
	}
	return h, nil
}

package index

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"modellake/internal/fault"
	"modellake/internal/tensor"
)

// Binary persistence for HNSW graphs, so large indexes do not have to be
// rebuilt (E4 shows builds are ~1000× more expensive than searches). Format:
// header (magic, metric, config, dims, entry, maxLevel, node count), then
// per node: id, vector, per-level link lists. All little-endian.
//
// The second half of this file is DiskFlat, the disk-resident flat index
// behind the atlas-scale read path (DESIGN.md §12): full-precision rows stay
// on disk in a fixed-stride, page-cache-friendly segment and are only read
// back — via pread windows — to exact-rescore the shortlist an in-RAM int8
// quantized tier selects.

const hnswMagic uint32 = 0x484e5357 // "HNSW"

// Save writes the index to w. The index is read-locked for the duration.
func (h *HNSW) Save(w io.Writer) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }

	writeU32(hnswMagic)
	writeU32(uint32(h.metric))
	writeU32(uint32(h.cfg.M))
	writeU32(uint32(h.cfg.EfConstruction))
	writeU32(uint32(h.cfg.EfSearch))
	writeU64(h.cfg.Seed)
	writeU32(uint32(h.dim))
	writeU32(uint32(int32(h.entry)))
	writeU32(uint32(h.maxLevel))
	writeU32(uint32(len(h.nodes)))
	for i, n := range h.nodes {
		writeU32(uint32(len(n.id)))
		bw.WriteString(n.id)
		for _, v := range h.vecData[i*h.dim : (i+1)*h.dim] {
			writeU64(math.Float64bits(v))
		}
		writeU32(uint32(len(n.links)))
		for _, links := range n.links {
			writeU32(uint32(len(links)))
			for _, nb := range links {
				writeU32(uint32(nb))
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// LoadHNSW reads an index previously written with Save. The RNG resumes from
// the persisted seed, so a loaded index keeps accepting inserts (level
// assignment stays deterministic per process, though not identical to an
// uninterrupted build).
func LoadHNSW(r io.Reader) (*HNSW, error) {
	br := bufio.NewReader(r)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readU64 := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("index: load header: %w", err)
	}
	if magic != hnswMagic {
		return nil, fmt.Errorf("index: bad HNSW magic %#x", magic)
	}
	metric, err := readU32()
	if err != nil {
		return nil, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	efC, err := readU32()
	if err != nil {
		return nil, err
	}
	efS, err := readU32()
	if err != nil {
		return nil, err
	}
	seed, err := readU64()
	if err != nil {
		return nil, err
	}
	dim, err := readU32()
	if err != nil {
		return nil, err
	}
	entry, err := readU32()
	if err != nil {
		return nil, err
	}
	maxLevel, err := readU32()
	if err != nil {
		return nil, err
	}
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxNodes = 1 << 28
	if count > maxNodes || dim > 1<<20 || maxLevel > 64 {
		return nil, fmt.Errorf("index: implausible header (count=%d dim=%d maxLevel=%d)",
			count, dim, maxLevel)
	}
	h := NewHNSW(Metric(metric), HNSWConfig{
		M: int(m), EfConstruction: int(efC), EfSearch: int(efS), Seed: seed,
	})
	h.dim = int(dim)
	h.entry = int(int32(entry))
	h.maxLevel = int(maxLevel)
	h.nodes = make([]hnswNode, count)
	h.vecData = make([]float64, int(count)*int(dim))
	h.norms = make([]float64, count)
	for i := range h.nodes {
		idLen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: load node %d: %w", i, err)
		}
		if idLen > 1<<16 {
			return nil, fmt.Errorf("index: implausible id length %d", idLen)
		}
		idBuf := make([]byte, idLen)
		if _, err := io.ReadFull(br, idBuf); err != nil {
			return nil, fmt.Errorf("index: load node %d id: %w", i, err)
		}
		id := string(idBuf)
		if _, dup := h.byID[id]; dup {
			return nil, fmt.Errorf("index: duplicate id %q in stream", id)
		}
		vec := h.vecData[i*int(dim) : (i+1)*int(dim)]
		for j := range vec {
			bits, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("index: load node %d vector: %w", i, err)
			}
			vec[j] = math.Float64frombits(bits)
		}
		h.norms[i] = tensor.Vector(vec).Norm()
		nLevels, err := readU32()
		if err != nil {
			return nil, err
		}
		if nLevels > 64 {
			return nil, fmt.Errorf("index: implausible level count %d", nLevels)
		}
		links := make([][]int32, nLevels)
		for l := range links {
			nLinks, err := readU32()
			if err != nil {
				return nil, err
			}
			if nLinks > count {
				return nil, fmt.Errorf("index: node %d level %d has %d links > %d nodes", i, l, nLinks, count)
			}
			links[l] = make([]int32, nLinks)
			for k := range links[l] {
				nb, err := readU32()
				if err != nil {
					return nil, err
				}
				if nb >= count {
					return nil, fmt.Errorf("index: link to node %d out of range", nb)
				}
				links[l][k] = int32(nb)
			}
		}
		h.nodes[i] = hnswNode{id: id, links: links}
		h.byID[id] = i
	}
	if count > 0 && (h.entry < 0 || h.entry >= int(count)) {
		return nil, fmt.Errorf("index: entry point %d out of range", h.entry)
	}
	return h, nil
}

// DiskFlat segment format, all little-endian:
//
//	header (64 bytes):
//	  magic u32, version u32, metric u32, dim u32,
//	  count u64, idsLen u64, dataOff u64,
//	  idsCRC u64, dataCRC u64,
//	  headerCRC u64  (CRC-64/ECMA of the 56 bytes before it)
//	ids section (idsLen bytes): per row, u32 id length + id bytes
//	zero padding up to dataOff (the next 4 KiB boundary)
//	rows: count fixed-stride rows of dim float64 bits
//
// The header is written twice during a build — zeros first, the real bytes
// only after every row landed — so a crash at any point leaves either a
// temp file (invisible: the segment is published by rename) or a file whose
// header, ids CRC, data CRC, or size fails validation. Open never serves a
// segment that does not verify end to end; callers treat any open error as
// "rebuild from the durable vectors".

const (
	diskFlatMagic   uint32 = 0x4d4c5646 // "MLVF"
	diskFlatVersion uint32 = 1
	diskHeaderSize         = 64
	diskAlign              = 4096
)

// ErrBadSegment marks a DiskFlat segment that failed validation on Open —
// torn, truncated, corrupted, or written under a different configuration.
var ErrBadSegment = errors.New("index: bad vector segment")

var crcTable = crc64.MakeTable(crc64.ECMA)

// encodeIDSection serializes ids into the segment's ids-section bytes.
func encodeIDSection(ids []string) []byte {
	n := 0
	for _, id := range ids {
		n += 4 + len(id)
	}
	buf := make([]byte, 0, n)
	var lenb [4]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(id)))
		buf = append(buf, lenb[:]...)
		buf = append(buf, id...)
	}
	return buf
}

// SegmentChecksums computes the (idsCRC, dataCRC) pair a segment holding
// exactly these ids and rows would carry in its header. The lake uses it to
// decide whether an existing on-disk segment still matches the durable
// vector records it was derived from, without re-reading the segment rows.
func SegmentChecksums(ids []string, row func(i int) []float64) (idsCRC, dataCRC uint64) {
	idsCRC = crc64.Checksum(encodeIDSection(ids), crcTable)
	var buf []byte
	for i := range ids {
		r := row(i)
		if cap(buf) < len(r)*8 {
			buf = make([]byte, len(r)*8)
		}
		buf = buf[:len(r)*8]
		for j, x := range r {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(x))
		}
		dataCRC = crc64.Update(dataCRC, crcTable, buf)
	}
	return idsCRC, dataCRC
}

// diskHeader is the fixed-size segment header.
type diskHeader struct {
	metric  uint32
	dim     uint32
	count   uint64
	idsLen  uint64
	dataOff uint64
	idsCRC  uint64
	dataCRC uint64
}

func (h *diskHeader) encode() []byte {
	buf := make([]byte, diskHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], diskFlatMagic)
	binary.LittleEndian.PutUint32(buf[4:], diskFlatVersion)
	binary.LittleEndian.PutUint32(buf[8:], h.metric)
	binary.LittleEndian.PutUint32(buf[12:], h.dim)
	binary.LittleEndian.PutUint64(buf[16:], h.count)
	binary.LittleEndian.PutUint64(buf[24:], h.idsLen)
	binary.LittleEndian.PutUint64(buf[32:], h.dataOff)
	binary.LittleEndian.PutUint64(buf[40:], h.idsCRC)
	binary.LittleEndian.PutUint64(buf[48:], h.dataCRC)
	binary.LittleEndian.PutUint64(buf[56:], crc64.Checksum(buf[:56], crcTable))
	return buf
}

func decodeDiskHeader(buf []byte) (*diskHeader, error) {
	if len(buf) != diskHeaderSize {
		return nil, fmt.Errorf("%w: short header", ErrBadSegment)
	}
	if got := binary.LittleEndian.Uint64(buf[56:]); got != crc64.Checksum(buf[:56], crcTable) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSegment)
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != diskFlatMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadSegment, m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != diskFlatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSegment, v)
	}
	h := &diskHeader{
		metric:  binary.LittleEndian.Uint32(buf[8:]),
		dim:     binary.LittleEndian.Uint32(buf[12:]),
		count:   binary.LittleEndian.Uint64(buf[16:]),
		idsLen:  binary.LittleEndian.Uint64(buf[24:]),
		dataOff: binary.LittleEndian.Uint64(buf[32:]),
		idsCRC:  binary.LittleEndian.Uint64(buf[40:]),
		dataCRC: binary.LittleEndian.Uint64(buf[48:]),
	}
	if h.dim > 1<<20 || h.count > 1<<31 || h.dataOff < diskHeaderSize || h.idsLen > h.dataOff-diskHeaderSize {
		return nil, fmt.Errorf("%w: implausible header (dim=%d count=%d)", ErrBadSegment, h.dim, h.count)
	}
	return h, nil
}

// DiskFlat is the disk-resident exact index: an int8 quantized tier and the
// row norms live in RAM (9 bytes per component-row plus a few words per
// row), while the full-precision float64 rows stay in the on-disk segment
// and are pread back only to rescore the quantized shortlist. Search results
// are bitwise identical to an in-RAM Flat over the same vectors whenever the
// true top-k survives the shortlist cut — and unconditionally when the
// shortlist covers the whole index.
//
// Rows added after Open/Build live in an in-RAM full-precision tail; they
// are not written back to the segment (the lake's durable vec records are
// the source of truth, and the segment is rebuilt from them on the next
// reopen). DiskFlat is safe for concurrent use.
// DefaultSpillTailRows is the in-RAM tail bound a disk-resident index uses
// when its config leaves QuantConfig.SpillTailRows unset: after that many
// post-open Adds the tail is compacted into a fresh on-disk segment.
const DefaultSpillTailRows = 4096

type DiskFlat struct {
	metric        Metric
	cfg           QuantConfig // defaults applied; spills rebuild under it
	rescoreFactor int
	spillRows     int       // tail rows that trigger compaction; <=0 never
	path          string    // published segment path, target of spills
	fs            *fault.FS // filesystem the segment IO routes through

	mu      sync.RWMutex
	f       *fault.File // open segment, pread source for rescore windows
	closed  bool
	segN    int // rows in the on-disk segment
	dim     int
	dataOff int64
	ids     []string
	byID    map[string]struct{}
	norms   []float64
	quant   *quantTier // int8 ranking tier; nil in PQ mode
	pq      *pqTier    // PQ ranking tier; nil in int8 mode
	tail    []float64  // rows added after open, full precision, row-major
	idsCRC  uint64
	dataCRC uint64

	scratch sync.Pool // *diskScratch
}

// diskScratch is the pooled per-search state: the quantized query (or PQ
// query LUT), both selectors, and the pread window buffers a rescore decodes
// rows into.
type diskScratch struct {
	qq    quantQuery
	lut   []float64
	short topK
	sel   topK
	buf   []byte
	row   []float64
}

func newDiskFlat(metric Metric, cfg QuantConfig) *DiskFlat {
	cfg = cfg.withDefaults()
	d := &DiskFlat{
		metric:        metric,
		cfg:           cfg,
		rescoreFactor: cfg.RescoreFactor,
		spillRows:     cfg.SpillTailRows,
		byID:          make(map[string]struct{}),
	}
	if cfg.PQSubspaces > 0 {
		d.pq = newPQTier(cfg)
	} else {
		d.quant = &quantTier{}
	}
	d.scratch.New = func() any { return new(diskScratch) }
	return d
}

// BuildDiskFlat writes a segment holding the given rows to path and returns
// the open index over it. The write is crash-safe in the blob-store style:
// everything goes to a temp file in path's directory (header placeholder,
// ids, zero pad, then the rows streamed through row(i) one at a time), the
// finalized header is written only after the last row, and the file reaches
// path by fsync + rename + directory fsync. All IO routes through fs, so
// the crash-window sweep in the fault package applies; a nil fs uses the
// real filesystem. The in-RAM int8 tier and norms are built during the
// write, so the returned index never re-reads the segment; a PQ-mode build
// (cfg.PQSubspaces > 0) collects its bounded training sample during the
// write, trains after publish, and encodes the rows with one extra
// sequential pass, then persists codebook+codes in a crash-safe side file
// next to the segment.
func BuildDiskFlat(path string, fs *fault.FS, metric Metric, cfg QuantConfig, ids []string, row func(i int) []float64) (*DiskFlat, error) {
	return buildDiskFlat(path, fs, metric, cfg, ids, row, nil)
}

// buildDiskFlat is BuildDiskFlat plus tier reuse: a spill passes the
// already-trained PQ tier (whose codes cover every current row) so
// compaction does not retrain, only rebinds the side file to the new
// segment's checksums.
func buildDiskFlat(path string, fs *fault.FS, metric Metric, cfg QuantConfig, ids []string, row func(i int) []float64, reusePQ *pqTier) (*DiskFlat, error) {
	d := newDiskFlat(metric, cfg)
	dim := 0
	if len(ids) > 0 {
		dim = len(row(0))
	}
	d.dim = dim
	if d.quant != nil {
		d.quant.dim = dim
	}
	var pqIdxs []int
	var pqSample []float64
	pqNext := 0
	if d.pq != nil && reusePQ == nil && len(ids) >= d.pq.trainRows {
		pqIdxs = pqSampleIndices(len(ids))
		pqSample = make([]float64, 0, len(pqIdxs)*dim)
	}
	idsSec := encodeIDSection(ids)
	dataOff := int64(diskHeaderSize + len(idsSec))
	if rem := dataOff % diskAlign; rem != 0 {
		dataOff += diskAlign - rem
	}

	dir := filepath.Dir(path)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("index: segment dir: %w", err)
	}
	tmp, err := fs.CreateTemp(dir, ".seg-*")
	if err != nil {
		return nil, fmt.Errorf("index: segment temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (*DiskFlat, error) {
		tmp.Close()
		os.Remove(tmpName)
		return nil, err
	}

	// Placeholder header + ids + padding in one write: until the real
	// header lands at the end, the file is self-evidently invalid.
	prefix := make([]byte, dataOff)
	copy(prefix[diskHeaderSize:], idsSec)
	if _, err := tmp.Write(prefix); err != nil {
		return fail(fmt.Errorf("index: segment prefix: %w", err))
	}

	// Stream the rows through a chunk buffer, folding each into the data
	// CRC and the in-RAM tier as it goes.
	var dataCRC uint64
	chunk := make([]byte, 0, 1<<20)
	seen := make(map[string]struct{}, len(ids))
	for i, id := range ids {
		if _, dup := seen[id]; dup {
			return fail(fmt.Errorf("%w: %s", ErrDuplicateID, id))
		}
		seen[id] = struct{}{}
		r := row(i)
		if err := validateVector(r, dim); err != nil {
			return fail(fmt.Errorf("index: segment row %d: %w", i, err))
		}
		start := len(chunk)
		chunk = append(chunk, make([]byte, dim*8)...)
		for j, x := range r {
			binary.LittleEndian.PutUint64(chunk[start+j*8:], math.Float64bits(x))
		}
		d.norms = append(d.norms, tensor.Vector(r).Norm())
		if d.quant != nil {
			d.quant.add(r)
		}
		if pqIdxs != nil && pqNext < len(pqIdxs) && pqIdxs[pqNext] == i {
			pqSample = append(pqSample, r...)
			pqNext++
		}
		if len(chunk)+dim*8 > cap(chunk) {
			dataCRC = crc64.Update(dataCRC, crcTable, chunk)
			if _, err := tmp.Write(chunk); err != nil {
				return fail(fmt.Errorf("index: segment rows: %w", err))
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		dataCRC = crc64.Update(dataCRC, crcTable, chunk)
		if _, err := tmp.Write(chunk); err != nil {
			return fail(fmt.Errorf("index: segment rows: %w", err))
		}
	}

	hdr := diskHeader{
		metric: uint32(metric), dim: uint32(dim),
		count: uint64(len(ids)), idsLen: uint64(len(idsSec)),
		dataOff: uint64(dataOff),
		idsCRC:  crc64.Checksum(idsSec, crcTable), dataCRC: dataCRC,
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		return fail(fmt.Errorf("index: segment header seek: %w", err))
	}
	if _, err := tmp.Write(hdr.encode()); err != nil {
		return fail(fmt.Errorf("index: segment header: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("index: segment sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("index: segment close: %w", err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("index: segment publish: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return nil, fmt.Errorf("index: segment dir sync: %w", err)
	}

	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: segment reopen: %w", err)
	}
	d.f = f
	d.segN = len(ids)
	d.dataOff = dataOff
	d.ids = append([]string(nil), ids...)
	for _, id := range d.ids {
		d.byID[id] = struct{}{}
	}
	d.idsCRC, d.dataCRC = hdr.idsCRC, hdr.dataCRC
	d.path, d.fs = path, fs
	if d.pq != nil {
		if reusePQ != nil {
			d.pq = reusePQ
		} else if pqIdxs != nil {
			d.pq.trainFrom(pqSample, len(pqIdxs), dim, 0)
			if err := d.pqEncodeSegment(); err != nil {
				f.Close()
				return nil, err
			}
		}
		// Persist the trained tier next to the new segment; a build that
		// cannot publish its side file fails whole, so the crash sweep's
		// "reported success" invariant covers the side file too. (An
		// untrained tier — population below the threshold — has nothing
		// to persist.)
		if d.pq.trained() {
			if err := d.writePQSideFile(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return d, nil
}

// OpenDiskFlat opens and fully validates a segment previously written by
// BuildDiskFlat: header checksum, configuration match, exact file size, ids
// checksum, and a sequential pass over every row that verifies the data
// checksum while rebuilding the in-RAM quantized tier and norms. Any
// mismatch — torn header, truncated rows, flipped bytes, different metric —
// fails with an error wrapping ErrBadSegment; a validated open keeps the
// file handle for pread rescore windows.
func OpenDiskFlat(path string, fs *fault.FS, metric Metric, cfg QuantConfig) (*DiskFlat, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("index: open segment: %w", err)
	}
	d, err := loadDiskFlat(f, path, fs, metric, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func loadDiskFlat(f *fault.File, path string, fs *fault.FS, metric Metric, cfg QuantConfig) (*DiskFlat, error) {
	hbuf := make([]byte, diskHeaderSize)
	if _, err := io.ReadFull(f, hbuf); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSegment, err)
	}
	hdr, err := decodeDiskHeader(hbuf)
	if err != nil {
		return nil, err
	}
	if Metric(hdr.metric) != metric {
		return nil, fmt.Errorf("%w: metric %d != configured %d", ErrBadSegment, hdr.metric, metric)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("index: segment stat: %w", err)
	}
	wantSize := int64(hdr.dataOff) + int64(hdr.count)*int64(hdr.dim)*8
	if st.Size() != wantSize {
		return nil, fmt.Errorf("%w: size %d != %d", ErrBadSegment, st.Size(), wantSize)
	}

	idsSec := make([]byte, hdr.idsLen)
	if _, err := io.ReadFull(f, idsSec); err != nil {
		return nil, fmt.Errorf("%w: ids section: %v", ErrBadSegment, err)
	}
	if got := crc64.Checksum(idsSec, crcTable); got != hdr.idsCRC {
		return nil, fmt.Errorf("%w: ids checksum mismatch", ErrBadSegment)
	}
	d := newDiskFlat(metric, cfg)
	d.dim = int(hdr.dim)
	if d.quant != nil {
		d.quant.dim = d.dim
	}
	d.ids = make([]string, 0, hdr.count)
	for off := 0; off < len(idsSec); {
		if off+4 > len(idsSec) {
			return nil, fmt.Errorf("%w: truncated id length", ErrBadSegment)
		}
		n := int(binary.LittleEndian.Uint32(idsSec[off:]))
		off += 4
		if n < 0 || off+n > len(idsSec) {
			return nil, fmt.Errorf("%w: truncated id", ErrBadSegment)
		}
		id := string(idsSec[off : off+n])
		off += n
		if _, dup := d.byID[id]; dup {
			return nil, fmt.Errorf("%w: duplicate id %q", ErrBadSegment, id)
		}
		d.ids = append(d.ids, id)
		d.byID[id] = struct{}{}
	}
	if uint64(len(d.ids)) != hdr.count {
		return nil, fmt.Errorf("%w: %d ids != count %d", ErrBadSegment, len(d.ids), hdr.count)
	}

	// The alignment pad between the ids section and the rows is written as
	// zeros and covered by no checksum, so verify it byte-for-byte: a
	// segment is valid only if it is exactly what the build wrote.
	pad := make([]byte, int64(hdr.dataOff)-diskHeaderSize-int64(hdr.idsLen))
	if _, err := io.ReadFull(f, pad); err != nil {
		return nil, fmt.Errorf("%w: padding: %v", ErrBadSegment, err)
	}
	for _, b := range pad {
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero padding byte", ErrBadSegment)
		}
	}

	// One sequential pass over the rows: verify the data checksum while
	// building the quantized tier and norms.
	if _, err := f.Seek(int64(hdr.dataOff), io.SeekStart); err != nil {
		return nil, fmt.Errorf("index: segment seek: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	stride := d.dim * 8
	rowBuf := make([]byte, stride)
	row := make([]float64, d.dim)
	var dataCRC uint64
	d.norms = make([]float64, 0, hdr.count)
	if d.quant != nil {
		d.quant.reserve(int(hdr.count), d.dim)
	}
	var pqIdxs []int
	var pqSample []float64
	pqNext := 0
	if d.pq != nil && int(hdr.count) >= d.pq.trainRows {
		pqIdxs = pqSampleIndices(int(hdr.count))
		pqSample = make([]float64, 0, len(pqIdxs)*d.dim)
	}
	for i := 0; i < int(hdr.count); i++ {
		if _, err := io.ReadFull(br, rowBuf); err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadSegment, i, err)
		}
		dataCRC = crc64.Update(dataCRC, crcTable, rowBuf)
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(rowBuf[j*8:]))
		}
		if err := validateVector(row, d.dim); err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadSegment, i, err)
		}
		d.norms = append(d.norms, tensor.Vector(row).Norm())
		if d.quant != nil {
			d.quant.add(row)
		}
		if pqIdxs != nil && pqNext < len(pqIdxs) && pqIdxs[pqNext] == i {
			pqSample = append(pqSample, row...)
			pqNext++
		}
	}
	if dataCRC != hdr.dataCRC {
		return nil, fmt.Errorf("%w: data checksum mismatch", ErrBadSegment)
	}
	d.f = f
	d.segN = int(hdr.count)
	d.dataOff = int64(hdr.dataOff)
	d.idsCRC, d.dataCRC = hdr.idsCRC, hdr.dataCRC
	d.path, d.fs = path, fs

	// PQ adoption: the side file is pure derived acceleration, never
	// trusted further than its checksums. A valid one (bound to exactly
	// this segment's count and CRCs) restores codebook and codes without
	// retraining; anything else — missing, torn, stale, differently
	// configured — retrains from the sample just collected and re-encodes
	// the rows with one sequential pass, then republishes the side file on
	// a best-effort basis (an open must not fail because an acceleration
	// file could not be rewritten).
	if pqIdxs != nil && !d.adoptPQSideFile() {
		d.pq.trainFrom(pqSample, len(pqIdxs), d.dim, 0)
		if err := d.pqEncodeSegment(); err != nil {
			return nil, err
		}
		_ = d.writePQSideFile()
	}
	return d, nil
}

// Checksums returns the segment's stored (ids, data) checksums, the pair
// SegmentChecksums over the same ids/rows reproduces. Rows added after open
// (the in-RAM tail) are not reflected.
func (d *DiskFlat) Checksums() (idsCRC, dataCRC uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.idsCRC, d.dataCRC
}

// SegmentLen returns the number of rows in the on-disk segment (excluding
// the in-RAM tail).
func (d *DiskFlat) SegmentLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.segN
}

// Len implements Index.
func (d *DiskFlat) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// MemBytes estimates the heap retained by the index: IDs, norms, the
// quantized tier, and the full-precision tail — NOT the segment rows, which
// stay on disk and are pread per rescore window. The gap between this and a
// Flat of the same population is the point of disk residency.
func (d *DiskFlat) MemBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := idSliceBytes(d.ids) + int64(len(d.norms))*8 + int64(len(d.tail))*8
	for id := range d.byID {
		n += int64(len(id)) + memStrHeader + memMapEntry
	}
	return n + d.quant.memBytes() + d.pq.memBytes()
}

// ResidentTierBytes reports the heap held by the approximate ranking tier
// alone (int8 codes or PQ codebook+codes), the residency number the scale
// experiment compares across tier choices.
func (d *DiskFlat) ResidentTierBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.quant.memBytes() + d.pq.memBytes()
}

// Close releases the segment file handle. Searches after Close fail.
func (d *DiskFlat) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.f != nil {
		return d.f.Close()
	}
	return nil
}

// Add implements Index. The row joins the in-RAM full-precision tail (plus
// the quantized tier). The caller's durable store remains the source of
// truth, but the tail does not grow without bound: once it reaches the
// configured spill threshold, segment + tail are compacted into a fresh
// on-disk segment and the tail is released, so sustained ingest holds a
// bounded number of full-precision rows in RAM.
func (d *DiskFlat) Add(id string, v tensor.Vector) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("index: segment closed")
	}
	if err := validateVector(v, d.dim); err != nil {
		return err
	}
	if _, ok := d.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if d.dim == 0 {
		d.dim = len(v)
		if d.quant != nil {
			d.quant.dim = d.dim
		}
	}
	d.ids = append(d.ids, id)
	d.tail = append(d.tail, v...)
	d.norms = append(d.norms, v.Norm())
	if d.quant != nil {
		d.quant.add(v)
	}
	d.byID[id] = struct{}{}
	if d.pq != nil {
		if d.pq.trained() {
			d.pq.encode(v)
		} else if len(d.ids) >= d.pq.trainRows {
			if err := d.trainPQLocked(); err != nil {
				return fmt.Errorf("index: pq train: %w", err)
			}
		}
	}
	if d.spillRows > 0 && d.f != nil && len(d.tail) >= d.spillRows*d.dim {
		if err := d.spillLocked(); err != nil {
			return fmt.Errorf("index: segment spill: %w", err)
		}
	}
	return nil
}

// spillLocked compacts the in-RAM tail into the on-disk segment. The
// current rows — segment preads followed by the tail — stream through the
// same crash-safe build as the original segment (temp file, fsync, rename,
// dir fsync), so a crash mid-spill leaves the previous segment intact and
// readable through the still-open handle's inode. On success the struct
// swaps to the new file and drops the tail; the quantized tier, norms, and
// ids are unchanged because compaction only moves where the full-precision
// bytes live. Called with d.mu held; a failed spill is reported but leaves
// the index fully consistent (the row stays in the tail).
func (d *DiskFlat) spillLocked() error {
	stride := d.dim * 8
	buf := make([]byte, stride)
	segRow := make([]float64, d.dim)
	var readErr error
	row := func(i int) []float64 {
		if i >= d.segN {
			j := i - d.segN
			return d.tail[j*d.dim : (j+1)*d.dim]
		}
		if readErr != nil {
			return nil
		}
		if _, err := d.f.ReadAt(buf, d.dataOff+int64(i)*int64(stride)); err != nil {
			readErr = err
			return nil // shape mismatch makes the build fail before publish
		}
		for j := range segRow {
			segRow[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		return segRow
	}
	nd, err := buildDiskFlat(d.path, d.fs, d.metric, d.cfg, d.ids, row, d.pq)
	if readErr != nil {
		return readErr
	}
	if err != nil {
		return err
	}
	old := d.f
	d.f = nd.f
	d.segN = nd.segN
	d.dataOff = nd.dataOff
	d.idsCRC, d.dataCRC = nd.idsCRC, nd.dataCRC
	d.tail = nil
	old.Close()
	return nil
}

// rowAt materializes row i's full-precision vector: a view into the in-RAM
// tail, or a pread window into the segment decoded into sc's buffers.
func (d *DiskFlat) rowAt(sc *diskScratch, i int) ([]float64, error) {
	if i >= d.segN {
		j := i - d.segN
		return d.tail[j*d.dim : (j+1)*d.dim], nil
	}
	stride := d.dim * 8
	if cap(sc.buf) < stride {
		sc.buf = make([]byte, stride)
		sc.row = make([]float64, d.dim)
	}
	sc.buf = sc.buf[:stride]
	sc.row = sc.row[:d.dim]
	if _, err := d.f.ReadAt(sc.buf, d.dataOff+int64(i)*int64(stride)); err != nil {
		return nil, fmt.Errorf("index: segment read row %d: %w", i, err)
	}
	for j := range sc.row {
		sc.row[j] = math.Float64frombits(binary.LittleEndian.Uint64(sc.buf[j*8:]))
	}
	return sc.row, nil
}

// Search implements Index via the two-phase read path: the in-RAM quantized
// tier ranks every row and keeps a k·rescoreFactor shortlist, then only the
// shortlist rows are pread back from the segment and rescored with the
// exact flat-scan arithmetic and (distance, ID) total order. When the
// shortlist would cover the whole index, every row is rescored — a pure
// exact scan with unconditional bitwise identity to an in-RAM Flat.
func (d *DiskFlat) Search(ctx context.Context, q tensor.Vector, k int) ([]Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, errors.New("index: segment closed")
	}
	n := len(d.ids)
	if n == 0 {
		return nil, nil
	}
	if err := validateVector(q, d.dim); err != nil {
		return nil, err
	}
	diskSearches.Inc()
	if k > n {
		k = n
	}
	if k <= 0 {
		return []Result{}, nil
	}
	qNorm := d.metric.queryNorm(q)
	sc := d.scratch.Get().(*diskScratch)
	shortlist := k * d.rescoreFactor

	var cands []candidate
	if shortlist < n && (d.quant != nil || d.pq.trained()) {
		diskCandidates.Add(uint64(n + shortlist))
		usePQ := d.pq.trained()
		if usePQ {
			lutLen := d.pq.cb.m * PQCentroids
			if cap(sc.lut) < lutLen {
				sc.lut = make([]float64, lutLen)
			}
			sc.lut = sc.lut[:lutLen]
			d.pq.cb.buildLUT(d.metric, q, sc.lut)
		} else {
			sc.qq.set(d.metric, q, qNorm)
		}
		sc.short.reset(shortlist, nil)
		for i := 0; i < n; i++ {
			if i%ctxCheckInterval == 0 && ctx != nil {
				if err := ctx.Err(); err != nil {
					d.scratch.Put(sc)
					return nil, err
				}
			}
			var dist float64
			if usePQ {
				dist = d.pq.approxDist(d.metric, sc.lut, i, qNorm, d.norms[i])
			} else {
				dist = d.quant.approxDist(d.metric, &sc.qq, i, d.norms[i])
			}
			sc.short.offer(candidate{idx: i, dist: dist})
		}
		cands = sc.short.extractAscending()
	} else {
		// No trained ranking tier (PQ below its training threshold) or a
		// whole-index shortlist: rescore every row — the plain exact scan.
		diskCandidates.Add(uint64(n))
	}

	sc.sel.reset(k, d.ids)
	rescore := func(i int) error {
		row, err := d.rowAt(sc, i)
		if err != nil {
			return err
		}
		sc.sel.offer(candidate{idx: i, dist: d.metric.distFlat(q, qNorm, row, d.norms[i])})
		return nil
	}
	if cands != nil {
		for _, c := range cands {
			if err := rescore(c.idx); err != nil {
				sc.sel.release()
				d.scratch.Put(sc)
				return nil, err
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if i%ctxCheckInterval == 0 && ctx != nil {
				if err := ctx.Err(); err != nil {
					sc.sel.release()
					d.scratch.Put(sc)
					return nil, err
				}
			}
			if err := rescore(i); err != nil {
				sc.sel.release()
				d.scratch.Put(sc)
				return nil, err
			}
		}
	}
	sel := sc.sel.extractAscending()
	out := make([]Result, len(sel))
	for i, c := range sel {
		out[i] = Result{ID: d.ids[c.idx], Distance: c.dist}
	}
	sc.sel.release()
	d.scratch.Put(sc)
	return out, nil
}

package index

// Tests for the PQ tier on disk-resident segments. On top of the in-RAM PQ
// suite's identity contract, three disk-specific properties are pinned here:
// (1) a PQ-mode DiskFlat answers bitwise identically to the oracle through
// build, reopen, tail adds, and spills; (2) the MLPQ1 side file is pure
// derived acceleration — corrupt, stale, or missing side files never change
// answers or fail an open (the tier retrains from the verified segment
// rows), while segment corruption itself still refuses to open; and (3) the
// build-time crash sweep holds with the side-file IO in the op window.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"modellake/internal/fault"
)

func pqDiskCfg() QuantConfig {
	return QuantConfig{PQSubspaces: 8, PQTrainRows: 32, Seed: 77}
}

// TestDiskFlatPQMatchesFlatProperty pins the PQ-mode disk tier to the
// full-sort oracle across metrics and k values, through a close/reopen cycle
// (side-file adoption) and after in-RAM tail adds (encoded against the
// build-time codebook).
func TestDiskFlatPQMatchesFlatProperty(t *testing.T) {
	for _, metric := range []Metric{Cosine, L2} {
		const n, dim = 400, 16
		vecs := randomVecs(t, n+20, dim, 191+uint64(metric))
		ids := make([]string, n+20)
		for i := range ids {
			ids[i] = fmt.Sprintf("id%04d", i)
		}
		path := filepath.Join(t.TempDir(), "vec.seg")
		d := buildSegment(t, path, metric, pqDiskCfg(), ids[:n], vecs[:n])
		queries := randomVecs(t, 6, dim, 500+uint64(metric))
		check := func(label string, count int) {
			t.Helper()
			for _, k := range []int{1, 5, 20, count} {
				for qi, q := range queries {
					got, err := d.Search(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					want := referenceSearch(metric, ids[:count], vecs[:count], q, k)
					assertBitwiseEqual(t, fmt.Sprintf("%s metric=%v k=%d q=%d", label, metric, k, qi), got, want)
				}
			}
		}
		check("fresh build", n)
		if !d.pq.trained() {
			t.Fatal("built PQ segment left its tier untrained")
		}

		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		var err error
		d, err = OpenDiskFlat(path, nil, metric, pqDiskCfg())
		if err != nil {
			t.Fatal(err)
		}
		check("reopened", n)

		for i := n; i < n+20; i++ {
			if err := d.Add(ids[i], vecs[i]); err != nil {
				t.Fatal(err)
			}
		}
		check("with tail", n+20)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskFlatPQSideFile pins the side file's derived-state contract: a
// pristine side file adopts; a corrupt or missing one is ignored (open
// succeeds, answers identical, and open republishes a valid replacement);
// and a flipped byte in the segment itself still refuses to open — the
// side file never weakens segment verification.
func TestDiskFlatPQSideFile(t *testing.T) {
	const n, dim, k = 300, 16, 7
	vecs := randomVecs(t, n, dim, 83)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "vec.seg")
	d := buildSegment(t, path, Cosine, pqDiskCfg(), ids, vecs)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	side := pqSidePath(path)
	pristine, err := os.ReadFile(side)
	if err != nil {
		t.Fatalf("build did not publish a side file: %v", err)
	}
	q := randomVecs(t, 1, dim, 97)[0]
	want := referenceSearch(Cosine, ids, vecs, q, k)

	reopenAndCheck := func(label string, wantAdopt bool) {
		t.Helper()
		od, err := OpenDiskFlat(path, nil, Cosine, pqDiskCfg())
		if err != nil {
			t.Fatalf("%s: open: %v", label, err)
		}
		defer od.Close()
		if !od.pq.trained() {
			t.Fatalf("%s: reopened tier untrained", label)
		}
		// Adoption must be idempotent on the (possibly republished) side
		// file; a corrupt one was required to have been replaced by open's
		// best-effort rewrite before we got here.
		if got := od.adoptPQSideFile(); got != wantAdopt {
			t.Fatalf("%s: adoptPQSideFile = %v, want %v", label, got, wantAdopt)
		}
		res, err := od.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwiseEqual(t, label, res, want)
	}

	reopenAndCheck("pristine side file", true)

	// Flip one byte everywhere interesting: header, codebook, codes.
	for _, off := range []int{0, 20, 57, pqSideHeaderSize + 9, len(pristine) - 1} {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0x20
		if err := os.WriteFile(side, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(fmt.Sprintf("side flip@%d", off), true)
	}

	// Truncated and missing side files are equally ignorable.
	if err := os.WriteFile(side, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck("side truncated", true)
	if err := os.Remove(side); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck("side missing", true)

	// A valid side file bound to different segment contents (stale after an
	// out-of-band rebuild) must be rejected by the binding CRCs, then
	// replaced.
	otherPath := filepath.Join(dir, "other.seg")
	otherVecs := randomVecs(t, n, dim, 84)
	od := buildSegment(t, otherPath, Cosine, pqDiskCfg(), ids, otherVecs)
	if err := od.Close(); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(pqSidePath(otherPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(side, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck("side stale", true)

	// Segment corruption still refuses to open, side file or not.
	segBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), segBytes...)
	mut[len(mut)-3] ^= 0x40
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if bad, err := OpenDiskFlat(path, nil, Cosine, pqDiskCfg()); err == nil {
		bad.Close()
		t.Fatal("corrupt segment opened clean in PQ mode")
	} else if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("segment corruption: error %v does not wrap ErrBadSegment", err)
	}
}

// TestDiskFlatPQTailSpill drives post-open adds through a small spill
// threshold and requires identity throughout, plus the spill-time tier
// reuse: compaction must carry the trained codebook over by pointer instead
// of retraining.
func TestDiskFlatPQTailSpill(t *testing.T) {
	const n, dim, spill = 40, 16, 10
	total := 120
	vecs := randomVecs(t, total, dim, 155)
	ids := make([]string, total)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	cfg := pqDiskCfg()
	cfg.SpillTailRows = spill
	d := buildSegment(t, path, Cosine, cfg, ids[:n], vecs[:n])
	cb := d.pq.cb
	if cb == nil {
		t.Fatal("PQ tier untrained after build above PQTrainRows")
	}
	q := randomVecs(t, 1, dim, 177)[0]
	for i := n; i < total; i++ {
		if err := d.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
		if tailRows := d.Len() - d.SegmentLen(); tailRows > spill {
			t.Fatalf("after %d adds: tail %d rows exceeds spill threshold %d", i-n+1, tailRows, spill)
		}
		got, err := d.Search(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSearch(Cosine, ids[:i+1], vecs[:i+1], q, 7)
		assertBitwiseEqual(t, fmt.Sprintf("after add %d", i), got, want)
	}
	if d.SegmentLen() < total-spill {
		t.Fatalf("segment holds %d of %d rows; spill never ran", d.SegmentLen(), total)
	}
	if d.pq.cb != cb {
		t.Fatal("spill retrained the PQ codebook instead of reusing it")
	}
	if len(d.pq.codes) != d.Len()*cb.m {
		t.Fatalf("codes cover %d bytes, want %d rows x %d", len(d.pq.codes), d.Len(), cb.m)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskFlat(path, nil, Cosine, cfg)
	if err != nil {
		t.Fatalf("reopen after spills: %v", err)
	}
	defer d.Close()
	got, err := d.Search(context.Background(), q, 7)
	if err != nil {
		t.Fatal(err)
	}
	count := d.Len()
	assertBitwiseEqual(t, "reopened after spills", got, referenceSearch(Cosine, ids[:count], vecs[:count], q, 7))
}

// TestDiskFlatPQCrashSweep re-runs the build-time crash-window sweep with
// the PQ side-file IO inside the op window: a recorder pass enumerates every
// filesystem operation of a clean PQ-mode build (segment and side file),
// then each op point gets a torn write and a sticky failure. The invariant
// is the same as the plain sweep — the faulted build must report failure,
// recovery either refuses the leftovers or serves a provably complete
// segment with oracle-identical answers, and a rebuild over the debris
// converges — with the extra twist that a crash between segment publish and
// side-file publish must leave a segment that opens, retrains, and still
// answers exactly.
func TestDiskFlatPQCrashSweep(t *testing.T) {
	const n, dim, k = 60, 16, 5
	vecs := randomVecs(t, n, dim, 223)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	row := func(i int) []float64 { return vecs[i] }
	wantIDs, wantData := SegmentChecksums(ids, row)
	q := randomVecs(t, 1, dim, 421)[0]
	want := referenceSearch(Cosine, ids, vecs, q, k)

	rec := &fault.Recorder{}
	cleanDir := t.TempDir()
	d, err := BuildDiskFlat(filepath.Join(cleanDir, "vec.seg"), fault.New(rec), Cosine, pqDiskCfg(), ids, row)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	d.Close()
	if len(ops) < 10 {
		t.Fatalf("recorded only %d ops; the sweep would be vacuous: %v", len(ops), ops)
	}

	for _, mode := range []string{"torn", "sticky"} {
		for at := 1; at <= len(ops); at++ {
			script := &fault.Script{FailAt: at}
			if mode == "torn" {
				script.Torn = 7
			} else {
				script.Sticky = true
			}
			dir := t.TempDir()
			path := filepath.Join(dir, "vec.seg")
			_, err := BuildDiskFlat(path, fault.New(script), Cosine, pqDiskCfg(), ids, row)
			if err == nil {
				t.Fatalf("%s@%d (%v): build reported success despite injected fault", mode, at, ops[at-1])
			}

			od, err := OpenDiskFlat(path, nil, Cosine, pqDiskCfg())
			if err == nil {
				gotIDs, gotData := od.Checksums()
				if od.SegmentLen() != n || gotIDs != wantIDs || gotData != wantData {
					t.Fatalf("%s@%d (%v): opened a partial segment: len=%d crc=(%x,%x)",
						mode, at, ops[at-1], od.SegmentLen(), gotIDs, gotData)
				}
				if !od.pq.trained() {
					t.Fatalf("%s@%d: surviving segment opened with untrained tier", mode, at)
				}
				got, serr := od.Search(context.Background(), q, k)
				if serr != nil {
					t.Fatal(serr)
				}
				assertBitwiseEqual(t, fmt.Sprintf("%s@%d survivor", mode, at), got, want)
				od.Close()
			}

			rd, err := BuildDiskFlat(path, nil, Cosine, pqDiskCfg(), ids, row)
			if err != nil {
				t.Fatalf("%s@%d (%v): rebuild failed: %v", mode, at, ops[at-1], err)
			}
			got, serr := rd.Search(context.Background(), q, k)
			if serr != nil {
				t.Fatal(serr)
			}
			assertBitwiseEqual(t, fmt.Sprintf("%s@%d rebuilt", mode, at), got, want)
			rd.Close()
		}
	}
}

package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func randomVectors(n, dim int, seed uint64) []tensor.Vector {
	rng := xrand.New(seed)
	out := make([]tensor.Vector, n)
	for i := range out {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestFlatExactOrder(t *testing.T) {
	f := NewFlat(L2)
	f.Add("far", tensor.Vector{10, 0})
	f.Add("near", tensor.Vector{1, 0})
	f.Add("mid", tensor.Vector{5, 0})
	res, err := f.Search(context.Background(), tensor.Vector{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"near", "mid", "far"}
	for i, r := range res {
		if r.ID != want[i] {
			t.Fatalf("order = %v", res)
		}
	}
}

func TestFlatKClamping(t *testing.T) {
	f := NewFlat(L2)
	f.Add("a", tensor.Vector{1})
	res, err := f.Search(context.Background(), tensor.Vector{0}, 10)
	if err != nil || len(res) != 1 {
		t.Fatalf("res = %v, %v", res, err)
	}
	res, err = f.Search(context.Background(), tensor.Vector{0}, -1)
	if err != nil || len(res) != 0 {
		t.Fatalf("negative k: %v, %v", res, err)
	}
}

func TestFlatEmptySearch(t *testing.T) {
	f := NewFlat(L2)
	res, err := f.Search(context.Background(), tensor.Vector{0}, 5)
	if err != nil || res != nil {
		t.Fatalf("empty index search = %v, %v", res, err)
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	for _, idx := range []Index{NewFlat(L2), NewHNSW(L2, HNSWConfig{})} {
		if err := idx.Add("a", tensor.Vector{1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := idx.Add("a", tensor.Vector{3, 4}); !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("expected ErrDuplicateID, got %v", err)
		}
	}
}

func TestBadVectorsRejected(t *testing.T) {
	for _, idx := range []Index{NewFlat(L2), NewHNSW(L2, HNSWConfig{})} {
		if err := idx.Add("empty", nil); !errors.Is(err, ErrBadVector) {
			t.Fatalf("empty vector: %v", err)
		}
		if err := idx.Add("nan", tensor.Vector{math.NaN()}); !errors.Is(err, ErrBadVector) {
			t.Fatalf("NaN vector: %v", err)
		}
		if err := idx.Add("ok", tensor.Vector{1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := idx.Add("dim", tensor.Vector{1, 2, 3}); !errors.Is(err, ErrBadVector) {
			t.Fatalf("dim mismatch: %v", err)
		}
		if _, err := idx.Search(context.Background(), tensor.Vector{1}, 1); !errors.Is(err, ErrBadVector) {
			t.Fatalf("query dim mismatch: %v", err)
		}
	}
}

func TestCosineMetric(t *testing.T) {
	f := NewFlat(Cosine)
	f.Add("same-dir", tensor.Vector{2, 0})
	f.Add("orthogonal", tensor.Vector{0, 1})
	res, err := f.Search(context.Background(), tensor.Vector{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != "same-dir" {
		t.Fatalf("cosine order wrong: %v", res)
	}
	if math.Abs(res[0].Distance) > 1e-12 {
		t.Fatalf("parallel cosine distance = %v, want 0", res[0].Distance)
	}
}

func TestHNSWSingleElement(t *testing.T) {
	h := NewHNSW(L2, HNSWConfig{})
	h.Add("only", tensor.Vector{1, 2, 3})
	res, err := h.Search(context.Background(), tensor.Vector{0, 0, 0}, 5)
	if err != nil || len(res) != 1 || res[0].ID != "only" {
		t.Fatalf("res = %v, %v", res, err)
	}
}

func TestHNSWRecallVsFlat(t *testing.T) {
	const n, dim, queries, k = 2000, 16, 50, 10
	vecs := randomVectors(n, dim, 1)
	flat := NewFlat(L2)
	hnsw := NewHNSW(L2, HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 100, Seed: 2})
	for i, v := range vecs {
		id := fmt.Sprintf("v%04d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := hnsw.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	qs := randomVectors(queries, dim, 99)
	hits, total := 0, 0
	for _, q := range qs {
		exact, err := flat.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := hnsw.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[string]bool{}
		for _, r := range exact {
			truth[r.ID] = true
		}
		for _, r := range approx {
			if truth[r.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Fatalf("HNSW recall@%d = %v, want >= 0.9", k, recall)
	}
}

func TestHNSWResultsSorted(t *testing.T) {
	h := NewHNSW(L2, HNSWConfig{Seed: 3})
	for i, v := range randomVectors(500, 8, 4) {
		if err := h.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	q := randomVectors(1, 8, 5)[0]
	res, err := h.Search(context.Background(), q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatalf("results not sorted at %d: %v", i, res)
		}
	}
}

func TestHNSWDeterministicGivenSeed(t *testing.T) {
	build := func() []Result {
		h := NewHNSW(L2, HNSWConfig{Seed: 7})
		for i, v := range randomVectors(300, 8, 6) {
			if err := h.Add(fmt.Sprintf("v%d", i), v); err != nil {
				t.Fatal(err)
			}
		}
		res, err := h.Search(context.Background(), randomVectors(1, 8, 8)[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed builds disagree: %v vs %v", a, b)
		}
	}
}

func TestHNSWConcurrentAddSearch(t *testing.T) {
	h := NewHNSW(L2, HNSWConfig{Seed: 9})
	vecs := randomVectors(400, 8, 10)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(vecs); i += 4 {
				if err := h.Add(fmt.Sprintf("v%d", i), vecs[i]); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					if _, err := h.Search(context.Background(), vecs[i], 3); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != 400 {
		t.Fatalf("Len = %d, want 400", h.Len())
	}
}

func TestHNSWExactNeighborFound(t *testing.T) {
	// A stored vector queried exactly must come back first.
	h := NewHNSW(L2, HNSWConfig{Seed: 11})
	vecs := randomVectors(1000, 8, 12)
	for i, v := range vecs {
		if err := h.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	misses := 0
	for i := 0; i < 100; i++ {
		res, err := h.Search(context.Background(), vecs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != fmt.Sprintf("v%d", i) {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("%d/100 self-queries missed", misses)
	}
}

func BenchmarkFlatSearch10k(b *testing.B) {
	f := NewFlat(L2)
	for i, v := range randomVectors(10000, 32, 1) {
		f.Add(fmt.Sprintf("v%d", i), v)
	}
	q := randomVectors(1, 32, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Search(context.Background(), q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHNSWSearch10k(b *testing.B) {
	h := NewHNSW(L2, HNSWConfig{Seed: 1})
	for i, v := range randomVectors(10000, 32, 1) {
		h.Add(fmt.Sprintf("v%d", i), v)
	}
	q := randomVectors(1, 32, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Search(context.Background(), q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHNSWInsert(b *testing.B) {
	h := NewHNSW(L2, HNSWConfig{Seed: 1})
	vecs := randomVectors(b.N+1, 32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Add(fmt.Sprintf("v%d", i), vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

package index

// The product-quantized (PQ) read tier behind the atlas-scale flat indexes
// (DESIGN.md §14). Where the int8 tier spends one byte per vector component,
// PQ splits each row into m subspaces and encodes every subspace as the
// index of its nearest centroid in a trained 256-entry codebook — one byte
// per subspace, independent of the subspace width. A search precomputes one
// m×256 lookup table of query-to-centroid sub-distances (ADC, asymmetric
// distance computation), ranks every row with a pure gather-accumulate over
// that table, and keeps a k·rescoreFactor shortlist; the caller rescores the
// shortlist against the full-precision rows with the exact distFlat
// arithmetic and the exact (distance, ID) total order, the same two-phase
// discipline as the int8 tier. Codebook training is deterministic seeded
// Lloyd k-means, parallel over subspaces with per-subspace child RNGs, so
// the trained bytes are identical at any worker count.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"modellake/internal/obs"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

const (
	// PQCentroids is the per-subspace codebook size: one byte of code
	// addresses exactly 256 centroids.
	PQCentroids = tensor.PQLUTEntries
	// DefaultPQSubspaces is the subspace count a PQ index uses when its
	// config leaves PQSubspaces at or below zero.
	DefaultPQSubspaces = 8
	// DefaultPQTrainRows is the population at which a PQ tier trains its
	// codebook. Below it the tier stays untrained and searches run the
	// plain exact scan — an index that small has nothing to gain from an
	// approximate phase.
	DefaultPQTrainRows = 256
	// pqTrainSampleCap bounds the training sample: codebooks train on an
	// evenly strided sample of at most this many rows, so training cost and
	// transient memory stay flat as the population grows.
	pqTrainSampleCap = 16384
	// pqKMeansIters bounds the Lloyd iterations per subspace; training exits
	// early once assignments stop changing.
	pqKMeansIters = 12
)

// pqLUTBuilds counts per-query ADC lookup-table constructions — one per PQ
// search, across both the in-RAM and disk-resident indexes. Resolved at
// package init like the search counters, off the per-candidate hot path.
var pqLUTBuilds = obs.Default().Counter("ann_pq_lut_builds_total")

// pqBounds splits dim dimensions into at most m contiguous subspaces:
// subspace s covers [bounds[s], bounds[s+1]). The split is as even as
// integer arithmetic allows and never produces an empty subspace, so any
// dim ≥ 1 works with any configured m (m is clamped to dim).
func pqBounds(dim, m int) []int {
	if m > dim {
		m = dim
	}
	if m < 1 {
		m = 1
	}
	b := make([]int, m+1)
	for s := 0; s <= m; s++ {
		b[s] = s * dim / m
	}
	return b
}

// pqCodebook is a trained set of per-subspace centroids. Centroids are
// stored flat: subspace s occupies cents[PQCentroids*bounds[s] :
// PQCentroids*bounds[s+1]], centroid c of that subspace at offset c·subdim
// within it, so the whole codebook is PQCentroids·dim float64s regardless
// of how unevenly the subspaces split.
type pqCodebook struct {
	dim    int
	m      int   // effective subspace count (configured m clamped to dim)
	bounds []int // len m+1; subspace s covers dims [bounds[s], bounds[s+1])
	cents  []float64
}

func (cb *pqCodebook) subdim(s int) int { return cb.bounds[s+1] - cb.bounds[s] }

// encodeInto writes row's m codes: per subspace, the index of the nearest
// centroid under squared L2, ties to the lowest index (strict improvement
// only), so encoding is deterministic.
func (cb *pqCodebook) encodeInto(row []float64, codes []uint8) {
	for s := 0; s < cb.m; s++ {
		sub := row[cb.bounds[s]:cb.bounds[s+1]]
		sd := cb.subdim(s)
		base := PQCentroids * cb.bounds[s]
		best := 0
		bestD := tensor.SquaredL2Kernel(sub, cb.cents[base:base+sd])
		for c := 1; c < PQCentroids; c++ {
			d := tensor.SquaredL2Kernel(sub, cb.cents[base+c*sd:base+(c+1)*sd])
			if d < bestD {
				best, bestD = c, d
			}
		}
		codes[s] = uint8(best)
	}
}

// buildLUT fills lut (m·256 entries) with the query's per-centroid
// sub-distances: squared L2 sub-distances for L2 (their sum is monotonic in
// the true squared distance to the reconstruction, no sqrt needed for
// ranking), raw sub-dot products for Cosine (the scan divides by the norms
// per row, mirroring the int8 tier).
func (cb *pqCodebook) buildLUT(m Metric, q tensor.Vector, lut []float64) {
	for s := 0; s < cb.m; s++ {
		qs := q[cb.bounds[s]:cb.bounds[s+1]]
		sd := cb.subdim(s)
		base := PQCentroids * cb.bounds[s]
		out := lut[s*PQCentroids : (s+1)*PQCentroids]
		if m == Cosine {
			for c := 0; c < PQCentroids; c++ {
				out[c] = tensor.DotKernel(qs, cb.cents[base+c*sd:base+(c+1)*sd])
			}
		} else {
			for c := 0; c < PQCentroids; c++ {
				out[c] = tensor.SquaredL2Kernel(qs, cb.cents[base+c*sd:base+(c+1)*sd])
			}
		}
	}
	pqLUTBuilds.Inc()
}

// trainPQCodebook runs per-subspace Lloyd k-means over the flattened sample
// (nSample rows of dim float64s, row-major). Subspaces train concurrently on
// up to workers goroutines (≤0 means GOMAXPROCS), but every subspace is a
// fully serial computation seeded from its own child RNG and writes a
// disjoint centroid range, so the trained bytes are identical at any worker
// count and any GOMAXPROCS setting.
func trainPQCodebook(sample []float64, nSample, dim, m int, seed uint64, workers int) *pqCodebook {
	cb := &pqCodebook{dim: dim, bounds: pqBounds(dim, m)}
	cb.m = len(cb.bounds) - 1
	cb.cents = make([]float64, PQCentroids*dim)
	rngs := make([]*xrand.RNG, cb.m)
	root := xrand.New(seed)
	for s := range rngs {
		rngs[s] = root.Child(fmt.Sprintf("pq-sub-%d", s))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cb.m {
		workers = cb.m
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= cb.m {
					return
				}
				cb.trainSubspace(s, sample, nSample, rngs[s])
			}
		}()
	}
	wg.Wait()
	return cb
}

// trainSubspace runs Lloyd k-means for one subspace. Initial centroids are
// sample rows at seeded-permutation positions (wrapping when the sample is
// smaller than the codebook — the duplicate clusters simply empty out);
// assignment ties break to the lowest centroid index, accumulation runs in
// row order, and empty clusters keep their previous centroid, so every step
// is deterministic.
func (cb *pqCodebook) trainSubspace(s int, sample []float64, nSample int, rng *xrand.RNG) {
	sd := cb.subdim(s)
	lo := cb.bounds[s]
	cents := cb.cents[PQCentroids*lo : PQCentroids*lo+PQCentroids*sd]
	sub := func(i int) []float64 {
		off := i*cb.dim + lo
		return sample[off : off+sd]
	}
	perm := rng.Perm(nSample)
	for c := 0; c < PQCentroids; c++ {
		copy(cents[c*sd:(c+1)*sd], sub(perm[c%nSample]))
	}
	assign := make([]int32, nSample)
	sums := make([]float64, PQCentroids*sd)
	counts := make([]int, PQCentroids)
	for iter := 0; iter < pqKMeansIters; iter++ {
		changed := false
		for i := 0; i < nSample; i++ {
			r := sub(i)
			best := 0
			bestD := tensor.SquaredL2Kernel(r, cents[:sd])
			for c := 1; c < PQCentroids; c++ {
				d := tensor.SquaredL2Kernel(r, cents[c*sd:(c+1)*sd])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if int32(best) != assign[i] {
				assign[i] = int32(best)
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < nSample; i++ {
			c := int(assign[i])
			acc := sums[c*sd : (c+1)*sd]
			for j, x := range sub(i) {
				acc[j] += x
			}
			counts[c]++
		}
		for c := 0; c < PQCentroids; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			cent := cents[c*sd : (c+1)*sd]
			for j := range cent {
				cent[j] = sums[c*sd+j] * inv
			}
		}
	}
}

// pqSampleIndices returns the evenly strided row indices (at most
// pqTrainSampleCap of them) a codebook trains on when the population holds n
// rows.
func pqSampleIndices(n int) []int {
	k := n
	if k > pqTrainSampleCap {
		k = pqTrainSampleCap
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i * n / k
	}
	return out
}

// pqTier is the in-RAM product-quantized mirror of an index's rows: the
// trained codebook plus one byte of code per (row, subspace). Like quantTier
// it is not itself synchronized — the owning index's lock covers it.
type pqTier struct {
	m         int // configured subspace count (clamped to dim at training)
	trainRows int
	seed      uint64
	cb        *pqCodebook // nil until the population reaches trainRows
	codes     []uint8     // row i at codes[i*cb.m : (i+1)*cb.m]
}

func newPQTier(cfg QuantConfig) *pqTier {
	return &pqTier{m: cfg.PQSubspaces, trainRows: cfg.PQTrainRows, seed: cfg.Seed}
}

// trained reports whether the codebook exists yet. Nil-safe, so indexes
// without a PQ tier dispatch without a branch at the call site.
func (t *pqTier) trained() bool { return t != nil && t.cb != nil }

// memBytes estimates the heap retained by the PQ tier: codes plus codebook.
// Nil-safe like quantTier.memBytes.
func (t *pqTier) memBytes() int64 {
	if t == nil {
		return 0
	}
	n := int64(len(t.codes))
	if t.cb != nil {
		n += int64(len(t.cb.cents))*8 + int64(len(t.cb.bounds))*8
	}
	return n
}

// trainFrom trains the codebook from an already collected flattened sample.
func (t *pqTier) trainFrom(sample []float64, nSample, dim, workers int) {
	t.cb = trainPQCodebook(sample, nSample, dim, t.m, t.seed, workers)
}

// encode appends row's codes; the tier must be trained.
func (t *pqTier) encode(row []float64) {
	n := len(t.codes)
	t.codes = append(t.codes, make([]uint8, t.cb.m)...)
	t.cb.encodeInto(row, t.codes[n:n+t.cb.m])
}

// approxDist is the shortlist-ranking distance for row i under a query LUT.
// It only has to order candidates: L2 stays a sum of squared sub-distances
// (monotonic, no sqrt) and Cosine mirrors distFlat's zero-norm convention.
func (t *pqTier) approxDist(m Metric, lut []float64, i int, qNorm, rowNorm float64) float64 {
	acc := tensor.PQLUTKernel(t.codes[i*t.cb.m:(i+1)*t.cb.m], lut)
	if m == Cosine {
		if qNorm == 0 || rowNorm == 0 {
			return 1
		}
		return 1 - acc/(qNorm*rowNorm)
	}
	return acc
}

// pqScratch is the pooled per-search state of a PQ scan: the query LUT, the
// shortlist selector (tie-break by row index — the rescore re-ranks), the
// final exact selector (tie-break by ID), and the parallel-rescore distance
// buffer.
type pqScratch struct {
	lut   []float64
	short topK
	sel   topK
	dists []float64
}

// NewFlatPQ returns an empty exact index that serves searches through the
// two-phase product-quantized read path: an ADC scan over one-byte-per-
// subspace codes selects k·RescoreFactor candidates, then the exact flat
// arithmetic rescores them. Results are bitwise identical to NewFlat
// whenever the true top-k survives the shortlist cut; when the shortlist
// covers the whole index — and, before PQTrainRows rows accumulate and the
// codebook trains, always — the search degenerates to the plain exact scan
// and identity is unconditional.
func NewFlatPQ(metric Metric, cfg QuantConfig) *Flat {
	f := NewFlat(metric)
	if cfg.PQSubspaces <= 0 {
		cfg.PQSubspaces = DefaultPQSubspaces
	}
	cfg = cfg.withDefaults()
	f.pq = newPQTier(cfg)
	f.rescoreFactor = cfg.RescoreFactor
	f.pqscratch.New = func() any { return new(pqScratch) }
	return f
}

// trainPQLocked trains the PQ codebook from the rows accumulated so far and
// encodes all of them. Called with f.mu held, once, when the population
// first reaches the training threshold.
func (f *Flat) trainPQLocked() {
	n := len(f.ids)
	idxs := pqSampleIndices(n)
	sample := make([]float64, 0, len(idxs)*f.dim)
	for _, i := range idxs {
		sample = append(sample, f.data[i*f.dim:(i+1)*f.dim]...)
	}
	f.pq.trainFrom(sample, len(idxs), f.dim, 0)
	f.pq.codes = make([]uint8, 0, n*f.pq.cb.m)
	for i := 0; i < n; i++ {
		f.pq.encode(f.data[i*f.dim : (i+1)*f.dim])
	}
}

// searchPQ runs the two-phase ADC scan. Caller holds f.mu.RLock and has
// validated q; n > 0, 0 < k ≤ n, the tier is trained, and the shortlist is
// strictly smaller than n (otherwise the caller runs the plain exact scan).
func (f *Flat) searchPQ(ctx context.Context, q tensor.Vector, qNorm float64, k, shortlist int) ([]Result, error) {
	n := len(f.ids)
	sc := f.pqscratch.Get().(*pqScratch)
	lutLen := f.pq.cb.m * PQCentroids
	if cap(sc.lut) < lutLen {
		sc.lut = make([]float64, lutLen)
	}
	sc.lut = sc.lut[:lutLen]
	f.pq.cb.buildLUT(f.metric, q, sc.lut)
	sc.short.reset(shortlist, nil)
	for i := 0; i < n; i++ {
		if i%ctxCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				f.pqscratch.Put(sc)
				return nil, err
			}
		}
		sc.short.offer(candidate{idx: i, dist: f.pq.approxDist(f.metric, sc.lut, i, qNorm, f.norms[i])})
	}
	cands := sc.short.extractAscending()
	sc.sel.reset(k, f.ids)
	f.rescoreCands(q, qNorm, cands, &sc.sel, &sc.dists)
	sel := sc.sel.extractAscending()
	out := make([]Result, len(sel))
	for i, c := range sel {
		out[i] = Result{ID: f.ids[c.idx], Distance: c.dist}
	}
	sc.sel.release()
	f.pqscratch.Put(sc)
	return out, nil
}

// Parallel exact-rescore tuning. Shortlists below the threshold rescore
// serially (the common case — zero goroutines, zero allocations); above it
// the distance computations fan out over a small bounded pool. Package
// variables rather than config so tests can force the parallel path at tiny
// shortlists.
var (
	rescoreParallelThreshold = 4096
	rescoreMaxWorkers        = 8
)

// rescoreCands exact-rescores the shortlist into sel. Below the parallel
// threshold each candidate is scored and offered in shortlist order; above
// it, workers compute the exact distances into *dists — each writing a
// disjoint index range — and the offers still happen serially in the same
// shortlist order. Identical arithmetic, identical offer sequence: results
// are bitwise identical at any worker count (the same discipline as the
// parallel ingest path).
func (f *Flat) rescoreCands(q tensor.Vector, qNorm float64, cands []candidate, sel *topK, dists *[]float64) {
	dim := f.dim
	if len(cands) < rescoreParallelThreshold || rescoreMaxWorkers < 2 {
		for _, c := range cands {
			row := f.data[c.idx*dim : (c.idx+1)*dim]
			sel.offer(candidate{idx: c.idx, dist: f.metric.distFlat(q, qNorm, row, f.norms[c.idx])})
		}
		return
	}
	if cap(*dists) < len(cands) {
		*dists = make([]float64, len(cands))
	}
	ds := (*dists)[:len(cands)]
	workers := rescoreMaxWorkers
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	chunk := (len(cands) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				c := cands[j]
				row := f.data[c.idx*dim : (c.idx+1)*dim]
				ds[j] = f.metric.distFlat(q, qNorm, row, f.norms[c.idx])
			}
		}(lo, hi)
	}
	wg.Wait()
	for j, c := range cands {
		sel.offer(candidate{idx: c.idx, dist: ds[j]})
	}
}

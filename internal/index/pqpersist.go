package index

// PQ side-file persistence for disk-resident segments (DESIGN.md §14). A
// trained PQ tier — codebook plus one byte of code per (row, subspace) — is
// derived state: it can always be rebuilt from the segment rows by
// retraining, but at atlas scale that retrain (sampled k-means plus a full
// encode pass) is the dominant open cost. So a PQ-mode segment carries a
// sibling file in the MLVF1 family:
//
//	<segment>.pq, all little-endian:
//	  header (64 bytes):
//	    magic u32 "MLPQ", version u32, metric u32, dim u32,
//	    m u32, reserved u32 (zero),
//	    count u64, idsCRC u64, dataCRC u64,  (the bound segment's header CRCs)
//	    bodyCRC u64,                         (CRC-64/ECMA of the body)
//	    headerCRC u64                        (CRC-64/ECMA of the 56 bytes before it)
//	  body: centroids (PQCentroids·dim float64 bits), codes (count·m bytes)
//
// The (count, idsCRC, dataCRC) triple binds the side file to exactly one
// segment build; a side file that does not match the segment just opened —
// or whose checksums fail, or that is missing entirely — is ignored and the
// tier retrains, so a torn or stale side file can never change answers.
// Writes go through the same crash-safe temp + fsync + rename + dir-fsync
// path as the segment itself, routed through the fault-injectable FS.

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

const (
	pqSideMagic      uint32 = 0x4d4c5051 // "MLPQ"
	pqSideVersion    uint32 = 1
	pqSideHeaderSize        = 64
)

// pqSidePath is the side-file location for a segment path.
func pqSidePath(segPath string) string { return segPath + ".pq" }

// pqEncodeSegment encodes every segment row into the PQ tier with one
// sequential pass of pread windows (the tier's codes are reset first). The
// codebook must already be trained. Called with the index unshared (build)
// or with d.mu held.
func (d *DiskFlat) pqEncodeSegment() error {
	m := d.pq.cb.m
	d.pq.codes = make([]uint8, 0, d.segN*m)
	stride := d.dim * 8
	buf := make([]byte, stride)
	row := make([]float64, d.dim)
	for i := 0; i < d.segN; i++ {
		if _, err := d.f.ReadAt(buf, d.dataOff+int64(i)*int64(stride)); err != nil {
			return fmt.Errorf("index: pq encode row %d: %w", i, err)
		}
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		d.pq.encode(row)
	}
	return nil
}

// trainPQLocked trains the PQ codebook from the current population (segment
// rows via pread plus the in-RAM tail) and encodes every row. Called with
// d.mu held when Add pushes the population past the training threshold. On
// any read error the tier is left untrained — searches keep running the
// exact scan — and the error is reported.
func (d *DiskFlat) trainPQLocked() error {
	n := len(d.ids)
	stride := d.dim * 8
	buf := make([]byte, stride)
	row := make([]float64, d.dim)
	readRow := func(i int) ([]float64, error) {
		if i >= d.segN {
			j := i - d.segN
			return d.tail[j*d.dim : (j+1)*d.dim], nil
		}
		if _, err := d.f.ReadAt(buf, d.dataOff+int64(i)*int64(stride)); err != nil {
			return nil, fmt.Errorf("index: pq train row %d: %w", i, err)
		}
		for j := range row {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		return row, nil
	}
	idxs := pqSampleIndices(n)
	sample := make([]float64, 0, len(idxs)*d.dim)
	for _, i := range idxs {
		r, err := readRow(i)
		if err != nil {
			return err
		}
		sample = append(sample, r...)
	}
	d.pq.trainFrom(sample, len(idxs), d.dim, 0)
	d.pq.codes = make([]uint8, 0, n*d.pq.cb.m)
	for i := 0; i < n; i++ {
		r, err := readRow(i)
		if err != nil {
			d.pq.cb, d.pq.codes = nil, nil
			return err
		}
		d.pq.encode(r)
	}
	return nil
}

// writePQSideFile publishes the trained tier's codebook and segment-row
// codes crash-safely next to the segment. The side file only ever describes
// segment rows (the in-RAM tail is rebuilt from the durable vec records on
// reopen anyway), so it is written exactly where the segment itself is
// (re)built: at build, open-retrain, and spill time — all points where the
// tail is empty or just compacted away.
func (d *DiskFlat) writePQSideFile() error {
	cb := d.pq.cb
	codes := d.pq.codes[:d.segN*cb.m]
	body := make([]byte, len(cb.cents)*8+len(codes))
	for i, x := range cb.cents {
		binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(x))
	}
	copy(body[len(cb.cents)*8:], codes)

	hdr := make([]byte, pqSideHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:], pqSideMagic)
	binary.LittleEndian.PutUint32(hdr[4:], pqSideVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.metric))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(d.dim))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(cb.m))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(d.segN))
	binary.LittleEndian.PutUint64(hdr[32:], d.idsCRC)
	binary.LittleEndian.PutUint64(hdr[40:], d.dataCRC)
	binary.LittleEndian.PutUint64(hdr[48:], crc64.Checksum(body, crcTable))
	binary.LittleEndian.PutUint64(hdr[56:], crc64.Checksum(hdr[:56], crcTable))

	path := pqSidePath(d.path)
	dir := filepath.Dir(path)
	tmp, err := d.fs.CreateTemp(dir, ".pq-*")
	if err != nil {
		return fmt.Errorf("index: pq side temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(hdr); err != nil {
		return fail(fmt.Errorf("index: pq side header: %w", err))
	}
	if _, err := tmp.Write(body); err != nil {
		return fail(fmt.Errorf("index: pq side body: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("index: pq side sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("index: pq side close: %w", err)
	}
	if err := d.fs.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("index: pq side publish: %w", err)
	}
	if err := d.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("index: pq side dir sync: %w", err)
	}
	return nil
}

// adoptPQSideFile tries to restore the PQ tier from the segment's side file,
// reporting whether it succeeded. Adoption requires a full match: header
// checksum, magic, version, metric, dimension, the subspace count the
// current config would train, and the exact (count, idsCRC, dataCRC) binding
// to the segment just opened, plus the body checksum over codebook and
// codes. Anything less reports false and the caller retrains.
func (d *DiskFlat) adoptPQSideFile() bool {
	f, err := d.fs.OpenFile(pqSidePath(d.path), os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	hdr := make([]byte, pqSideHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return false
	}
	if binary.LittleEndian.Uint64(hdr[56:]) != crc64.Checksum(hdr[:56], crcTable) {
		return false
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pqSideMagic ||
		binary.LittleEndian.Uint32(hdr[4:]) != pqSideVersion ||
		binary.LittleEndian.Uint32(hdr[8:]) != uint32(d.metric) ||
		binary.LittleEndian.Uint32(hdr[12:]) != uint32(d.dim) {
		return false
	}
	m := int(binary.LittleEndian.Uint32(hdr[16:]))
	bounds := pqBounds(d.dim, d.pq.m)
	if m != len(bounds)-1 {
		return false
	}
	if binary.LittleEndian.Uint64(hdr[24:]) != uint64(d.segN) ||
		binary.LittleEndian.Uint64(hdr[32:]) != d.idsCRC ||
		binary.LittleEndian.Uint64(hdr[40:]) != d.dataCRC {
		return false
	}
	centsBytes := PQCentroids * d.dim * 8
	bodyLen := centsBytes + d.segN*m
	if st, err := f.Stat(); err != nil || st.Size() != int64(pqSideHeaderSize+bodyLen) {
		return false
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(f, body); err != nil {
		return false
	}
	if binary.LittleEndian.Uint64(hdr[48:]) != crc64.Checksum(body, crcTable) {
		return false
	}
	cents := make([]float64, PQCentroids*d.dim)
	for i := range cents {
		cents[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	d.pq.cb = &pqCodebook{dim: d.dim, m: m, bounds: bounds, cents: cents}
	d.pq.codes = append([]uint8(nil), body[centsBytes:]...)
	return true
}

package index

// Regression tests for the PR that rebuilt the read path: flattened vector
// storage, bounded top-k selection, pooled search scratch, and context
// cancellation. The equivalence tests pin the optimized scan to the naive
// reference it replaced (per-candidate Metric.Distance, full sort) down to
// the distance bits, including on exact ties; the allocation tests pin the
// "zero/near-zero allocs per search" property so a future change cannot
// quietly reintroduce per-candidate garbage.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// referenceSearch is the pre-optimization Flat.Search, kept as the oracle:
// distance per candidate on a standalone vector, full sort with the
// (distance, ID) total order, truncate.
func referenceSearch(m Metric, ids []string, vecs []tensor.Vector, q tensor.Vector, k int) []Result {
	out := make([]Result, len(ids))
	for i := range ids {
		out[i] = Result{ID: ids[i], Distance: m.Distance(q, vecs[i])}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func randomVecs(t *testing.T, n, dim int, seed uint64) []tensor.Vector {
	t.Helper()
	rng := xrand.New(seed)
	vecs := make([]tensor.Vector, n)
	for i := range vecs {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return vecs
}

// TestFlatMatchesReferenceProperty drives the bounded-top-k scan against the
// full-sort oracle across metrics, sizes, and k values, requiring bitwise
// identity: same IDs, same order, same distance bits.
func TestFlatMatchesReferenceProperty(t *testing.T) {
	for _, metric := range []Metric{Cosine, L2} {
		for _, n := range []int{1, 2, 7, 100, 500} {
			vecs := randomVecs(t, n, 16, uint64(n)*3+uint64(metric))
			ids := make([]string, n)
			f := NewFlat(metric)
			for i, v := range vecs {
				ids[i] = fmt.Sprintf("id%04d", i)
				if err := f.Add(ids[i], v); err != nil {
					t.Fatal(err)
				}
			}
			queries := randomVecs(t, 10, 16, uint64(n)+99)
			for _, k := range []int{1, 3, n, n + 5} {
				for qi, q := range queries {
					got, err := f.Search(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					want := referenceSearch(metric, ids, vecs, q, k)
					if len(got) != len(want) {
						t.Fatalf("metric=%v n=%d k=%d q=%d: len %d != %d", metric, n, k, qi, len(got), len(want))
					}
					for i := range got {
						if got[i].ID != want[i].ID ||
							math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
							t.Fatalf("metric=%v n=%d k=%d q=%d pos=%d: got %v want %v",
								metric, n, k, qi, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestFlatTieBreakMatchesReference forces exact distance ties (duplicate
// vectors under fresh IDs) and checks the heap's (distance, ID) order agrees
// with the reference sort — the case a careless top-k rewrite breaks first.
func TestFlatTieBreakMatchesReference(t *testing.T) {
	base := randomVecs(t, 4, 8, 11)
	var vecs []tensor.Vector
	var ids []string
	f := NewFlat(Cosine)
	// Five exact copies of each of four vectors: every distance appears five
	// times, so ordering inside each tie group is decided purely by ID.
	for copyN := 0; copyN < 5; copyN++ {
		for bi, b := range base {
			id := fmt.Sprintf("m%d-%d", bi, copyN)
			ids = append(ids, id)
			vecs = append(vecs, b.Clone())
			if err := f.Add(id, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := randomVecs(t, 1, 8, 17)[0]
	for _, k := range []int{1, 4, 7, 10, 20} {
		got, err := f.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSearch(Cosine, ids, vecs, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d != %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d pos=%d: got %v want %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestMetricDistanceZeroAlloc pins the kernel-backed metrics at zero heap
// allocations per call.
func TestMetricDistanceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds only hold in normal builds")
	}
	v := randomVecs(t, 2, 64, 5)
	for _, m := range []Metric{Cosine, L2} {
		if n := testing.AllocsPerRun(100, func() {
			_ = m.Distance(v[0], v[1])
		}); n != 0 {
			t.Fatalf("metric %v: %v allocs/op, want 0", m, n)
		}
	}
}

// TestSearchAllocBounds pins the pooled read path: after warm-up, a flat
// search allocates only the result slice, and an HNSW search only the result
// slice plus the beam output. The bounds are deliberately tight — doubling
// them is the signal this PR's property has been lost.
func TestSearchAllocBounds(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds only hold in normal builds")
	}
	vecs := randomVecs(t, 2000, 32, 23)
	flat := NewFlat(Cosine)
	hnsw := NewHNSW(Cosine, HNSWConfig{Seed: 1})
	for i, v := range vecs {
		id := fmt.Sprintf("m%05d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := hnsw.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	q := randomVecs(t, 1, 32, 31)[0]
	ctx := context.Background()
	// Warm-up settles the sync.Pool scratch.
	for i := 0; i < 4; i++ {
		if _, err := flat.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := hnsw.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := flat.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("Flat.Search: %v allocs/op, want <= 2", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := hnsw.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}); n > 4 {
		t.Fatalf("HNSW.Search: %v allocs/op, want <= 4", n)
	}
}

// TestSearchCanceledContext verifies both index kinds abort on an
// already-canceled context and surface context.Canceled.
func TestSearchCanceledContext(t *testing.T) {
	vecs := randomVecs(t, 3000, 8, 41)
	flat := NewFlat(Cosine)
	hnsw := NewHNSW(Cosine, HNSWConfig{Seed: 2})
	for i, v := range vecs {
		id := fmt.Sprintf("m%05d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := hnsw.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := vecs[0]
	if _, err := flat.Search(ctx, q, 5); err != context.Canceled {
		t.Fatalf("Flat.Search err = %v, want context.Canceled", err)
	}
	if _, err := hnsw.Search(ctx, q, 5); err != context.Canceled {
		t.Fatalf("HNSW.Search err = %v, want context.Canceled", err)
	}
	// A nil-cancellation context still works.
	if _, err := flat.Search(context.Background(), q, 5); err != nil {
		t.Fatal(err)
	}
}

// TestTopKSelectorMatchesSortWithTies exercises the internal bounded
// selector directly against a full sort over adversarial inputs with many
// duplicate distances.
func TestTopKSelectorMatchesSortWithTies(t *testing.T) {
	rng := xrand.New(7)
	ids := make([]string, 200)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%03d", i)
	}
	for trial := 0; trial < 50; trial++ {
		dists := make([]float64, len(ids))
		for i := range dists {
			// Quantize hard so ties are common.
			dists[i] = float64(int(rng.Float64()*8)) / 8
		}
		k := 1 + int(rng.Float64()*20)
		var tk topK
		tk.reset(k, ids)
		for i, d := range dists {
			tk.offer(candidate{idx: i, dist: d})
		}
		got := tk.extractAscending()
		want := make([]candidate, len(dists))
		for i, d := range dists {
			want[i] = candidate{idx: i, dist: d}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].dist != want[j].dist {
				return want[i].dist < want[j].dist
			}
			return ids[want[i].idx] < ids[want[j].idx]
		})
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

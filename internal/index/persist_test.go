package index

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func buildHNSW(t *testing.T, n int) *HNSW {
	t.Helper()
	h := NewHNSW(L2, HNSWConfig{Seed: 21})
	for i, v := range randomVectors(n, 16, 22) {
		if err := h.Add(fmt.Sprintf("v%04d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHNSWSaveLoadRoundTrip(t *testing.T) {
	h := buildHNSW(t, 500)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != h.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), h.Len())
	}
	// Identical graphs yield identical search results.
	for _, q := range randomVectors(20, 16, 23) {
		want, err := h.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("result counts differ: %d vs %d", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("results diverge at %d: %v vs %v", i, want[i], got[i])
			}
		}
	}
}

func TestLoadedHNSWAcceptsInserts(t *testing.T) {
	h := buildHNSW(t, 200)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	extra := randomVectors(50, 16, 24)
	for i, v := range extra {
		if err := loaded.Add(fmt.Sprintf("x%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if loaded.Len() != 250 {
		t.Fatalf("Len = %d, want 250", loaded.Len())
	}
	// New vectors are findable.
	res, err := loaded.Search(context.Background(), extra[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != "x000" {
		t.Fatalf("inserted vector not found: %v", res)
	}
	// Duplicate IDs from the stream are still rejected after load.
	if err := loaded.Add("v0000", extra[1]); err == nil {
		t.Fatal("duplicate id accepted after load")
	}
}

func TestLoadHNSWCorruptStreams(t *testing.T) {
	h := buildHNSW(t, 50)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every region must error, never panic.
	for _, cut := range []int{0, 3, 4, 10, 40, len(good) / 2, len(good) - 1} {
		if _, err := LoadHNSW(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d loaded silently", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := LoadHNSW(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Implausible node count (header bytes 40..44).
	bad2 := append([]byte(nil), good...)
	for i := 40; i < 44; i++ {
		bad2[i] = 0xff
	}
	if _, err := LoadHNSW(bytes.NewReader(bad2)); err == nil {
		t.Fatal("absurd node count accepted")
	}
	// Implausible max level (header bytes 36..40).
	bad3 := append([]byte(nil), good...)
	for i := 36; i < 40; i++ {
		bad3[i] = 0xff
	}
	if _, err := LoadHNSW(bytes.NewReader(bad3)); err == nil {
		t.Fatal("absurd max level accepted")
	}
}

func TestSaveLoadEmptyHNSW(t *testing.T) {
	h := NewHNSW(Cosine, HNSWConfig{Seed: 5})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	res, err := loaded.Search(context.Background(), randomVectors(1, 4, 1)[0], 3)
	if err != nil || res != nil {
		t.Fatalf("empty search: %v %v", res, err)
	}
}

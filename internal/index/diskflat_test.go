package index

// Tests for the disk-resident flat tier. Three properties carry the
// atlas-scale read path: (1) a DiskFlat answers every search bitwise
// identically to the in-RAM flat scan — including after close/reopen, after
// post-open tail adds, and across tail spills; (2) the segment build is
// crash-safe — the sweep below injects a torn or sticky write at every IO
// operation of the build and requires that Open afterwards either refuses
// the file or serves a provably complete segment, never a corrupt one; and
// (3) every way a segment file can rot (flipped byte anywhere, truncation)
// is detected at Open and reported as ErrBadSegment so the caller rebuilds
// from its durable store.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"modellake/internal/fault"
	"modellake/internal/tensor"
)

func buildSegment(t *testing.T, path string, metric Metric, cfg QuantConfig, ids []string, vecs []tensor.Vector) *DiskFlat {
	t.Helper()
	d, err := BuildDiskFlat(path, nil, metric, cfg, ids, func(i int) []float64 { return vecs[i] })
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskFlatMatchesFlatProperty pins the disk tier to the full-sort
// oracle across metrics and k values, through a close/reopen cycle and
// after in-RAM tail adds.
func TestDiskFlatMatchesFlatProperty(t *testing.T) {
	for _, metric := range []Metric{Cosine, L2} {
		const n, dim = 400, 16
		vecs := randomVecs(t, n+20, dim, 91+uint64(metric))
		ids := make([]string, n+20)
		for i := range ids {
			ids[i] = fmt.Sprintf("id%04d", i)
		}
		path := filepath.Join(t.TempDir(), "vec.seg")
		d := buildSegment(t, path, metric, QuantConfig{}, ids[:n], vecs[:n])
		queries := randomVecs(t, 6, dim, 300+uint64(metric))
		check := func(label string, count int) {
			t.Helper()
			for _, k := range []int{1, 5, 20, count} {
				for qi, q := range queries {
					got, err := d.Search(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					want := referenceSearch(metric, ids[:count], vecs[:count], q, k)
					assertBitwiseEqual(t, fmt.Sprintf("%s metric=%v k=%d q=%d", label, metric, k, qi), got, want)
				}
			}
		}
		check("fresh build", n)

		// Reopen must revalidate and answer identically.
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		var err error
		d, err = OpenDiskFlat(path, nil, metric, QuantConfig{})
		if err != nil {
			t.Fatal(err)
		}
		check("reopened", n)

		// Rows added after open live in the in-RAM tail and join the same
		// two-phase search.
		for i := n; i < n+20; i++ {
			if err := d.Add(ids[i], vecs[i]); err != nil {
				t.Fatal(err)
			}
		}
		check("with tail", n+20)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskFlatChecksumsRoundTrip pins the published checksum pair to the
// SegmentChecksums helper the lake uses to decide segment reuse.
func TestDiskFlatChecksumsRoundTrip(t *testing.T) {
	const n, dim = 64, 8
	vecs := randomVecs(t, n, dim, 7)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	d := buildSegment(t, path, Cosine, QuantConfig{}, ids, vecs)
	defer d.Close()
	wantIDs, wantData := SegmentChecksums(ids, func(i int) []float64 { return vecs[i] })
	gotIDs, gotData := d.Checksums()
	if gotIDs != wantIDs || gotData != wantData {
		t.Fatalf("checksums (%x,%x) != SegmentChecksums (%x,%x)", gotIDs, gotData, wantIDs, wantData)
	}
	if d.SegmentLen() != n || d.Len() != n {
		t.Fatalf("len %d/%d != %d", d.SegmentLen(), d.Len(), n)
	}
}

// TestDiskFlatTailSpill drives enough post-open adds through a small spill
// threshold to force several compactions and requires (a) the tail is
// actually bounded, (b) search stays bitwise identical to the oracle
// throughout, and (c) the compacted segment revalidates and reopens clean.
func TestDiskFlatTailSpill(t *testing.T) {
	const n, dim, spill = 30, 8, 10
	total := 150
	vecs := randomVecs(t, total, dim, 55)
	ids := make([]string, total)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	cfg := QuantConfig{SpillTailRows: spill}
	d := buildSegment(t, path, Cosine, cfg, ids[:n], vecs[:n])
	q := randomVecs(t, 1, dim, 77)[0]
	for i := n; i < total; i++ {
		if err := d.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
		if tailRows := d.Len() - d.SegmentLen(); tailRows > spill {
			t.Fatalf("after %d adds: tail %d rows exceeds spill threshold %d", i-n+1, tailRows, spill)
		}
		got, err := d.Search(context.Background(), q, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSearch(Cosine, ids[:i+1], vecs[:i+1], q, 7)
		assertBitwiseEqual(t, fmt.Sprintf("after add %d", i), got, want)
	}
	if d.SegmentLen() < total-spill {
		t.Fatalf("segment holds %d of %d rows; spill never ran", d.SegmentLen(), total)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskFlat(path, nil, Cosine, cfg)
	if err != nil {
		t.Fatalf("reopen after spills: %v", err)
	}
	defer d.Close()
	got, err := d.Search(context.Background(), q, 7)
	if err != nil {
		t.Fatal(err)
	}
	count := d.Len()
	assertBitwiseEqual(t, "reopened after spills", got, referenceSearch(Cosine, ids[:count], vecs[:count], q, 7))
}

// TestDiskFlatCrashSweep is the build-time crash-window sweep. A recorder
// pass enumerates every filesystem operation of a segment build; the sweep
// then re-runs the build once per operation with a torn write (a prefix of
// the bytes land) and once with a sticky failure injected at that point.
// After each simulated crash the invariant is checked from a clean
// filesystem: OpenDiskFlat either refuses the leftover file, or — when the
// fault hit after publish (dir sync, reopen) — serves a segment whose
// checksums, length, and search answers are exactly those of the completed
// build. A fresh build over the crash debris must then succeed and answer
// bitwise identically to the in-RAM oracle.
func TestDiskFlatCrashSweep(t *testing.T) {
	const n, dim, k = 60, 8, 5
	vecs := randomVecs(t, n, dim, 123)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	row := func(i int) []float64 { return vecs[i] }
	wantIDs, wantData := SegmentChecksums(ids, row)
	q := randomVecs(t, 1, dim, 321)[0]
	want := referenceSearch(Cosine, ids, vecs, q, k)

	// Pass 0: record the op sequence of a clean build.
	rec := &fault.Recorder{}
	cleanDir := t.TempDir()
	d, err := BuildDiskFlat(filepath.Join(cleanDir, "vec.seg"), fault.New(rec), Cosine, QuantConfig{}, ids, row)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops() // before Close, which also routes through the recorder
	d.Close()
	if len(ops) < 8 {
		t.Fatalf("recorded only %d ops; the sweep would be vacuous: %v", len(ops), ops)
	}

	for _, mode := range []string{"torn", "sticky"} {
		for at := 1; at <= len(ops); at++ {
			script := &fault.Script{FailAt: at}
			if mode == "torn" {
				script.Torn = 7
			} else {
				script.Sticky = true
			}
			dir := t.TempDir()
			path := filepath.Join(dir, "vec.seg")
			_, err := BuildDiskFlat(path, fault.New(script), Cosine, QuantConfig{}, ids, row)
			if err == nil {
				t.Fatalf("%s@%d (%v): build reported success despite injected fault", mode, at, ops[at-1])
			}

			// Crash simulated. Recovery sees a healthy filesystem.
			od, err := OpenDiskFlat(path, nil, Cosine, QuantConfig{})
			if err == nil {
				gotIDs, gotData := od.Checksums()
				if od.SegmentLen() != n || gotIDs != wantIDs || gotData != wantData {
					t.Fatalf("%s@%d (%v): opened a partial segment: len=%d crc=(%x,%x)",
						mode, at, ops[at-1], od.SegmentLen(), gotIDs, gotData)
				}
				got, serr := od.Search(context.Background(), q, k)
				if serr != nil {
					t.Fatal(serr)
				}
				assertBitwiseEqual(t, fmt.Sprintf("%s@%d survivor", mode, at), got, want)
				od.Close()
			}

			// Rebuild over the debris must converge to a good segment.
			rd, err := BuildDiskFlat(path, nil, Cosine, QuantConfig{}, ids, row)
			if err != nil {
				t.Fatalf("%s@%d (%v): rebuild failed: %v", mode, at, ops[at-1], err)
			}
			got, serr := rd.Search(context.Background(), q, k)
			if serr != nil {
				t.Fatal(serr)
			}
			assertBitwiseEqual(t, fmt.Sprintf("%s@%d rebuilt", mode, at), got, want)
			rd.Close()
		}
	}
}

// TestDiskFlatDetectsCorruption flips bytes across every region of a valid
// segment file — header, ids section, padding, first and last row — and
// truncates it, requiring OpenDiskFlat to refuse each variant with
// ErrBadSegment.
func TestDiskFlatDetectsCorruption(t *testing.T) {
	const n, dim = 50, 8
	vecs := randomVecs(t, n, dim, 44)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%04d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	d := buildSegment(t, path, Cosine, QuantConfig{}, ids, vecs)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dataOff := len(pristine) - n*dim*8

	reopen := func(label string) {
		t.Helper()
		od, err := OpenDiskFlat(path, nil, Cosine, QuantConfig{})
		if err == nil {
			od.Close()
			t.Fatalf("%s: corrupt segment opened clean", label)
		}
		if !errors.Is(err, ErrBadSegment) {
			t.Fatalf("%s: error %v does not wrap ErrBadSegment", label, err)
		}
	}
	for _, off := range []int{0, 8, 40, 63, 64, 100, dataOff - 1, dataOff, dataOff + 7, len(pristine) - 1} {
		mut := append([]byte(nil), pristine...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		reopen(fmt.Sprintf("flip@%d", off))
	}
	if err := os.WriteFile(path, pristine[:len(pristine)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	reopen("truncated")

	// Wrong metric is a configuration mismatch, same rejection.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	reopen2, err := OpenDiskFlat(path, nil, L2, QuantConfig{})
	if err == nil {
		reopen2.Close()
		t.Fatal("metric mismatch opened clean")
	}
	if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("metric mismatch: error %v does not wrap ErrBadSegment", err)
	}

	// And the pristine bytes still open, proving the harness corrupted the
	// right file rather than testing a permanently broken fixture.
	od, err := OpenDiskFlat(path, nil, Cosine, QuantConfig{})
	if err != nil {
		t.Fatalf("pristine reopen: %v", err)
	}
	od.Close()
}

// TestDiskFlatClosed pins the closed-handle contract.
func TestDiskFlatClosed(t *testing.T) {
	const n, dim = 10, 4
	vecs := randomVecs(t, n, dim, 3)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%02d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	d := buildSegment(t, path, Cosine, QuantConfig{}, ids, vecs)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := d.Search(context.Background(), vecs[0], 1); err == nil {
		t.Fatal("search after close succeeded")
	}
	if err := d.Add("late", vecs[0]); err == nil {
		t.Fatal("add after close succeeded")
	}
}

// TestDiskFlatSearchAllocBounds pins the pread-windowed two-phase search at
// the same near-zero allocation bound as the in-RAM paths.
func TestDiskFlatSearchAllocBounds(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bounds only hold in normal builds")
	}
	const n, dim = 2000, 32
	vecs := randomVecs(t, n, dim, 61)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%05d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	d := buildSegment(t, path, Cosine, QuantConfig{}, ids, vecs)
	defer d.Close()
	q := randomVecs(t, 1, dim, 67)[0]
	ctx := context.Background()
	for i := 0; i < 5; i++ { // warm the scratch pool
		if _, err := d.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		if _, err := d.Search(ctx, q, 10); err != nil {
			t.Fatal(err)
		}
	}); a > 2 {
		t.Fatalf("disk search: %v allocs/op, want <= 2", a)
	}
}

// TestDiskFlatDistanceBitsSanity guards the oracle itself: distances coming
// back from the disk tier must be real float64s, not NaNs that a broken
// comparison would sort arbitrarily.
func TestDiskFlatDistanceBitsSanity(t *testing.T) {
	const n, dim = 20, 8
	vecs := randomVecs(t, n, dim, 9)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("id%02d", i)
	}
	path := filepath.Join(t.TempDir(), "vec.seg")
	d := buildSegment(t, path, L2, QuantConfig{}, ids, vecs)
	defer d.Close()
	res, err := d.Search(context.Background(), vecs[3], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || res[0].ID != ids[3] || res[0].Distance != 0 {
		t.Fatalf("self-query: %+v", res)
	}
	for _, r := range res {
		if math.IsNaN(r.Distance) || math.IsInf(r.Distance, 0) {
			t.Fatalf("non-finite distance: %+v", r)
		}
	}
}

package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

type transientErr struct{}

func (transientErr) Error() string     { return "glitch" }
func (transientErr) IsTransient() bool { return true }

func TestSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return transientErr{}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestPermanentErrorShortCircuits(t *testing.T) {
	perm := errors.New("disk on fire")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Base: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 4, Base: time.Microsecond}, func() error {
		calls++
		return transientErr{}
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want exhaustion after 4", err, calls)
	}
	var tr transientErr
	if !errors.As(err, &tr) {
		t.Fatalf("exhaustion error does not wrap the cause: %v", err)
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{Attempts: 100, Base: time.Hour}, func() error {
		calls++
		cancel() // cancel while backing off after the first failure
		return transientErr{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestTransientClassifier(t *testing.T) {
	if Transient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	wrapped := errors.Join(errors.New("outer"), transientErr{})
	if !Transient(wrapped) {
		t.Fatal("wrapped transient error not recognized")
	}
}

// TestJitterSpreadsDelays measures the sleeps of many retried attempts and
// asserts they are neither deterministic (the stampede this knob exists to
// break) nor outside the ±Jitter envelope.
func TestJitterSpreadsDelays(t *testing.T) {
	base := 5 * time.Millisecond
	var sleeps []time.Duration
	for i := 0; i < 12; i++ {
		last := time.Now()
		attempt := 0
		_ = Do(context.Background(), Policy{Attempts: 2, Base: base, Jitter: 0.5}, func() error {
			if attempt++; attempt == 2 {
				sleeps = append(sleeps, time.Since(last))
			}
			last = time.Now()
			return transientErr{}
		})
	}
	distinct := map[time.Duration]bool{}
	for _, s := range sleeps {
		if s < base/2 {
			t.Fatalf("sleep %v below jitter floor %v", s, base/2)
		}
		distinct[s/time.Microsecond*time.Microsecond] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("sleeps look deterministic: %v", sleeps)
	}
}

// TestNegativeJitterDisables pins the escape hatch: Jitter < 0 restores the
// exact deterministic schedule (within scheduler noise, checked as a floor).
func TestNegativeJitterDisables(t *testing.T) {
	p := Policy{Attempts: 2, Base: 10 * time.Millisecond, Jitter: -1}
	start := time.Now()
	attempt := 0
	_ = Do(context.Background(), p, func() error { attempt++; return transientErr{} })
	if got := time.Since(start); got < 10*time.Millisecond {
		t.Fatalf("slept %v, want >= exact base 10ms", got)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2", attempt)
	}
}

// Package retry is the lake's shared exponential-backoff helper for
// transient-fault paths: storage glitches that an immediate or slightly
// delayed second attempt fixes (EINTR-class errors, injected transient
// faults from internal/fault). Permanent errors are returned immediately —
// retrying a checksum mismatch or a corrupt log only delays the loud
// failure the caller needs to see.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"modellake/internal/obs"
)

// Retry pressure is an early symptom of a degrading disk, so both the
// retries themselves and the exhausted policies are counted.
var (
	mRetries   = obs.Default().Counter("retry_attempts_retried_total")
	mExhausted = obs.Default().Counter("retry_exhausted_total")
)

// Policy configures Do. The zero value gets sensible defaults.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (default 3).
	Attempts int
	// Base is the delay before the second attempt (default 2ms).
	Base time.Duration
	// Max caps the backoff delay (default 250ms).
	Max time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Classify reports whether an error is worth retrying; nil means
	// Transient.
	Classify func(error) bool
	// Jitter spreads each sleep uniformly across
	// [delay·(1−Jitter), delay·(1+Jitter)). Without it the backoff is
	// deterministic, so the many router goroutines that hit one failed
	// shard retry in lockstep and stampede whatever replaced it. Zero
	// selects DefaultJitter; negative disables jitter (fixed schedules for
	// tests); values above 1 are clamped to 1. Only the sleep is
	// randomized — the underlying exponential schedule is unchanged.
	Jitter float64
}

// DefaultJitter is the ±20% spread applied when Policy.Jitter is zero.
const DefaultJitter = 0.2

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 250 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Classify == nil {
		p.Classify = Transient
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultJitter
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Transient reports whether err (or anything it wraps) advertises itself as
// retryable via an IsTransient() bool method. This is the default
// classifier: unknown errors are treated as permanent, because blind
// retries of a durability error can convert a loud failure into data loss.
func Transient(err error) bool {
	var t interface{ IsTransient() bool }
	return errors.As(err, &t) && t.IsTransient()
}

// Do runs fn until it succeeds, a permanent error occurs, the policy is
// exhausted, or ctx is done. The returned error is fn's last error (wrapped
// with the attempt count when the policy was exhausted) or ctx.Err().
func Do(ctx context.Context, p Policy, fn func() error) error {
	p = p.withDefaults()
	delay := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if !p.Classify(err) {
			return err
		}
		if attempt >= p.Attempts {
			mExhausted.Inc()
			return fmt.Errorf("retry: gave up after %d attempts: %w", attempt, err)
		}
		mRetries.Inc()
		sleep := delay
		if p.Jitter > 0 {
			sleep = time.Duration(float64(delay) * (1 + p.Jitter*(2*rand.Float64()-1)))
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.Max {
			delay = p.Max
		}
	}
}

package blob

import (
	"bytes"
	"fmt"
	"testing"

	"modellake/internal/fault"
)

// TestPutAllMatchesPut: the batch path returns the same content addresses as
// serial Puts and every blob reads back verified.
func TestPutAllMatchesPut(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			var s Store
			var err error
			if backend == "mem" {
				s = NewMemStore()
			} else {
				s, err = NewFileStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
			}
			payloads := make([][]byte, 20)
			for i := range payloads {
				payloads[i] = bytes.Repeat([]byte{byte(i)}, 64+i)
			}
			payloads[7] = payloads[3] // duplicate content dedups
			ids, err := s.PutAll(payloads)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(payloads) {
				t.Fatalf("got %d ids, want %d", len(ids), len(payloads))
			}
			for i, d := range payloads {
				if ids[i] != Sum(d) {
					t.Fatalf("id[%d] = %s, want %s", i, ids[i], Sum(d))
				}
				got, err := s.Get(ids[i])
				if err != nil || !bytes.Equal(got, d) {
					t.Fatalf("Get(%s) = %v, %v", ids[i], got, err)
				}
			}
			if ids[7] != ids[3] {
				t.Fatal("identical payloads got different addresses")
			}
		})
	}
}

// TestPutAllCoalescesShardFsyncs pins the batch win: N blobs cost one
// directory fsync per distinct shard, not one per blob.
func TestPutAllCoalescesShardFsyncs(t *testing.T) {
	rec := &fault.Recorder{}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Pick payloads that hash into a handful of shards, so there is actually
	// something to coalesce (random content would spread 24 blobs over ~24
	// of the 256 shards).
	const n, maxShards = 24, 4
	payloads := make([][]byte, 0, n)
	shards := map[string]bool{}
	for i := 0; len(payloads) < n; i++ {
		d := []byte(fmt.Sprintf("payload-%06d", i))
		shard := string(Sum(d)[:2])
		if !shards[shard] && len(shards) == maxShards {
			continue
		}
		shards[shard] = true
		payloads = append(payloads, d)
	}
	if _, err := s.PutAll(payloads); err != nil {
		t.Fatal(err)
	}
	dirSyncs := 0
	for _, op := range rec.Ops() {
		if op.Op == fault.OpSyncDir {
			dirSyncs++
		}
	}
	if dirSyncs != len(shards) {
		t.Fatalf("PutAll of %d blobs across %d shards did %d directory fsyncs; want one per shard",
			n, len(shards), dirSyncs)
	}
	// A serial Put loop would have paid one per blob.
	if dirSyncs >= n {
		t.Fatalf("coalescing is off: %d dir fsyncs for %d blobs", dirSyncs, n)
	}
}

// TestPutAllFaultFailsWholeBatch: an injected failure mid-batch surfaces as
// an error — no partial acknowledgement — while already-written blobs remain
// readable (content addressing makes leftovers harmless).
func TestPutAllFaultFailsWholeBatch(t *testing.T) {
	inj := &fault.Script{FailAt: 3, Match: fault.MatchOps(fault.OpSyncDir)}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(inj))
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("blob-%03d", i))
	}
	if _, err := s.PutAll(payloads); err == nil {
		t.Fatal("injected shard-dir fsync fault did not surface")
	}
	// Retry on a healthy disk succeeds and every blob lands.
	s2, err := NewFileStore(s.root)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s2.PutAll(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range payloads {
		if got, err := s2.Get(ids[i]); err != nil || !bytes.Equal(got, d) {
			t.Fatalf("Get after retry = %v, %v", got, err)
		}
	}
}

func BenchmarkFileStorePutAll(b *testing.B) {
	s, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range payloads {
			payloads[j] = []byte(fmt.Sprintf("payload-%d-%d", i, j))
		}
		if _, err := s.PutAll(payloads); err != nil {
			b.Fatal(err)
		}
	}
}

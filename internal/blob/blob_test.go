package blob

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"testing/quick"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "file": fs}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("model weights go here")
			id, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			if id != Sum(data) {
				t.Fatalf("id = %s, want content hash", id)
			}
			got, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("round trip changed data")
			}
		})
	}
}

func TestPutIdempotent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("dup")
			id1, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			id2, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			if id1 != id2 {
				t.Fatal("same content produced different ids")
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get(Sum([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("expected ErrNotFound, got %v", err)
			}
			if s.Has(Sum([]byte("never stored"))) {
				t.Fatal("Has reported a missing blob")
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := s.Put([]byte("bye"))
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
			if s.Has(id) {
				t.Fatal("blob survives Delete")
			}
			if err := s.Delete(id); err != nil {
				t.Fatalf("double delete should be a no-op: %v", err)
			}
		})
	}
}

func TestGetReturnsCopyMem(t *testing.T) {
	s := NewMemStore()
	id, _ := s.Put([]byte("abc"))
	v, _ := s.Get(id)
	v[0] = 'z'
	v2, _ := s.Get(id)
	if string(v2) != "abc" {
		t.Fatal("MemStore.Get exposed internal storage")
	}
}

func TestFileStoreDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Put([]byte("authentic weights"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored file directly (PoisonGPT-style swap).
	path := s.pathFor(id)
	if err := os.WriteFile(path, []byte("poisoned weights!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("expected ErrChecksum, got %v", err)
	}
}

func TestFileStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Put([]byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(id)
	if err != nil || string(got) != "persist me" {
		t.Fatalf("blob not persisted: %q %v", got, err)
	}
}

func TestMalformedIDs(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ab"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("short id Get: %v", err)
	}
	if s.Has("ab") {
		t.Fatal("short id Has should be false")
	}
	if err := s.Delete("ab"); err != nil {
		t.Fatalf("short id Delete: %v", err)
	}
}

// Property: any byte content round-trips through both stores.
func TestRoundTripProperty(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	f := func(data []byte) bool {
		for _, s := range []Store{mem, fs} {
			id, err := s.Put(data)
			if err != nil {
				return false
			}
			got, err := s.Get(id)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFileStorePut(b *testing.B) {
	s, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte("w"), 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		if _, err := s.Put(data); err != nil {
			b.Fatal(err)
		}
	}
}

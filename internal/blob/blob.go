// Package blob implements the content-addressed object store holding model
// weights (and any other large artifacts) in the lake. Objects are addressed
// by the lowercase hex SHA-256 of their contents, which gives deduplication
// for free and lets the registry detect tampered weights on read.
//
// Two backends satisfy the Store interface: an in-memory map for tests and
// ephemeral lakes, and a filesystem store that shards objects into two-level
// directories and writes atomically via temp-file + rename.
package blob

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"modellake/internal/fault"
	"modellake/internal/obs"
	"modellake/internal/retry"
)

// Blob-store metrics, aggregated across every store in the process. Put
// duration covers the whole durable write (including retries); the fsync
// histogram isolates the two fsyncs (data file + shard directory) that
// dominate it.
var (
	mPutDur      = obs.Default().Histogram("blob_put_duration_seconds", nil)
	mBlobFsync   = obs.Default().Histogram("blob_fsync_duration_seconds", nil)
	mBlobOpTotal = func(op string) *obs.Counter {
		return obs.Default().Counter("blob_ops_total", obs.L("op", op))
	}
	// Resolved once: the registry lookup behind mBlobOpTotal renders label
	// strings per call, which shows up on rehydration's per-model Get path.
	mOpPut    = mBlobOpTotal("put")
	mOpPutAll = mBlobOpTotal("putall")
	mOpGet    = mBlobOpTotal("get")
	mOpDelete = mBlobOpTotal("delete")
)

// Sentinel errors.
var (
	ErrNotFound = errors.New("blob: not found")
	ErrChecksum = errors.New("blob: checksum mismatch")
)

// ID is a content address: the hex SHA-256 of the blob.
type ID string

// Sum returns the content address of data.
func Sum(data []byte) ID {
	h := sha256.Sum256(data)
	return ID(hex.EncodeToString(h[:]))
}

// Store is a content-addressed blob store.
type Store interface {
	// Put stores data and returns its content address. Storing the same
	// bytes twice is idempotent.
	Put(data []byte) (ID, error)
	// PutAll stores every payload and returns their content addresses in
	// input order. When PutAll returns nil every blob is durable, but
	// backends may coalesce the per-shard durability work (directory
	// fsyncs) across the batch, so bulk ingest pays far fewer fsyncs than
	// one Put per blob.
	PutAll(data [][]byte) ([]ID, error)
	// Get returns the blob with the given address, verifying its checksum.
	Get(id ID) ([]byte, error)
	// Has reports whether the blob exists.
	Has(id ID) bool
	// Delete removes the blob. Deleting an absent blob is a no-op.
	Delete(id ID) error
	// Len returns the number of stored blobs.
	Len() int
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu   sync.RWMutex
	data map[ID][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[ID][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(data []byte) (ID, error) {
	id := Sum(data)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.data[id] = cp
	s.mu.Unlock()
	return id, nil
}

// PutAll implements Store.
func (s *MemStore) PutAll(data [][]byte) ([]ID, error) {
	ids := make([]ID, len(data))
	for i, d := range data {
		id, err := s.Put(d)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// Get implements Store.
func (s *MemStore) Get(id ID) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.data[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	if Sum(cp) != id {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, id)
	}
	return cp, nil
}

// Has implements Store.
func (s *MemStore) Has(id ID) bool {
	s.mu.RLock()
	_, ok := s.data[id]
	s.mu.RUnlock()
	return ok
}

// Delete implements Store.
func (s *MemStore) Delete(id ID) error {
	s.mu.Lock()
	delete(s.data, id)
	s.mu.Unlock()
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// FileStore is a filesystem-backed Store rooted at a directory. Blobs live at
// root/ab/cdef... (two-character shard). Writes are atomic and durable: data
// is written to a temp file in the same directory, fsynced, renamed into
// place, and the shard directory is fsynced so a crash cannot resurrect a
// pre-rename view. Transient IO faults during a write are retried with
// exponential backoff.
type FileStore struct {
	root string
	fsys *fault.FS  // nil = real filesystem
	mu   sync.Mutex // serializes writes; reads are lock-free
}

// putRetry is the backoff policy for transient write faults. Permanent
// errors short-circuit (see retry.Transient), so well-behaved failures cost
// nothing extra.
var putRetry = retry.Policy{Attempts: 3, Base: time.Millisecond}

// NewFileStore creates (if needed) and opens a file store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	return NewFileStoreFS(dir, nil)
}

// NewFileStoreFS is NewFileStore with IO routed through a fault-injectable
// filesystem (see internal/fault). A nil fsys uses the real filesystem.
func NewFileStoreFS(dir string, fsys *fault.FS) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: create root: %w", err)
	}
	return &FileStore{root: dir, fsys: fsys}, nil
}

func (s *FileStore) pathFor(id ID) string {
	return filepath.Join(s.root, string(id[:2]), string(id[2:]))
}

// Put implements Store.
func (s *FileStore) Put(data []byte) (ID, error) {
	mOpPut.Inc()
	id := Sum(data)
	path := s.pathFor(id)
	if _, err := os.Stat(path); err == nil {
		return id, nil // already stored; content-addressing makes this safe
	}
	start := time.Now()
	defer mPutDur.Since(start)
	s.mu.Lock()
	defer s.mu.Unlock()
	// The write sequence is idempotent (temp file + rename to a
	// content-addressed name), so transient faults can safely retry the
	// whole attempt.
	err := retry.Do(context.Background(), putRetry, func() error {
		return s.writeBlob(path, data)
	})
	if err != nil {
		return "", err
	}
	return id, nil
}

// PutAll implements Store. Each blob is written and renamed into place
// individually (so any prefix of the batch that survives a crash is still
// well-formed, content-addressed data), but the shard-directory fsyncs that
// make the renames durable are coalesced: one per distinct shard touched by
// the batch instead of one per blob. Nothing in the batch is acknowledged
// until every shard directory has been synced.
func (s *FileStore) PutAll(data [][]byte) ([]ID, error) {
	mOpPutAll.Inc()
	start := time.Now()
	defer mPutDur.Since(start)
	ids := make([]ID, len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	dirty := make(map[string]struct{})
	for i, d := range data {
		id := Sum(d)
		ids[i] = id
		path := s.pathFor(id)
		if _, err := os.Stat(path); err == nil {
			continue // already stored; content-addressing makes this safe
		}
		err := retry.Do(context.Background(), putRetry, func() error {
			return s.writeBlobFile(path, d)
		})
		if err != nil {
			return nil, err
		}
		dirty[filepath.Dir(path)] = struct{}{}
	}
	// Sort for a deterministic fsync order (stable fault-injection sweeps).
	dirs := make([]string, 0, len(dirty))
	for dir := range dirty {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		dir := dir
		err := retry.Do(context.Background(), putRetry, func() error {
			return s.syncShardDir(dir)
		})
		if err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// writeBlob performs one atomic, durable write attempt of data to path.
func (s *FileStore) writeBlob(path string, data []byte) error {
	if err := s.writeBlobFile(path, data); err != nil {
		return err
	}
	return s.syncShardDir(filepath.Dir(path))
}

// writeBlobFile writes data to path atomically (temp file + fsync + rename)
// but leaves the shard-directory fsync to the caller, so batch writers can
// coalesce it across many blobs in the same shard.
func (s *FileStore) writeBlobFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blob: shard dir: %w", err)
	}
	tmp, err := s.fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("blob: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("blob: write: %w", err)
	}
	fstart := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("blob: sync: %w", err)
	}
	mBlobFsync.Since(fstart)
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blob: close: %w", err)
	}
	if err := s.fsys.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blob: rename: %w", err)
	}
	return nil
}

// syncShardDir fsyncs a shard directory so renames into it are durable:
// without it a crash can lose the directory entry even though the data
// blocks were synced, silently dropping an acknowledged blob.
func (s *FileStore) syncShardDir(dir string) error {
	dstart := time.Now()
	if err := s.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("blob: sync shard dir: %w", err)
	}
	mBlobFsync.Since(dstart)
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id ID) ([]byte, error) {
	mOpGet.Inc()
	if len(id) < 3 {
		return nil, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	data, err := os.ReadFile(s.pathFor(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("blob: read %s: %w", id, err)
	}
	if Sum(data) != id {
		return nil, fmt.Errorf("%w: %s", ErrChecksum, id)
	}
	return data, nil
}

// Has implements Store.
func (s *FileStore) Has(id ID) bool {
	if len(id) < 3 {
		return false
	}
	_, err := os.Stat(s.pathFor(id))
	return err == nil
}

// Delete implements Store.
func (s *FileStore) Delete(id ID) error {
	mOpDelete.Inc()
	if len(id) < 3 {
		return nil
	}
	err := os.Remove(s.pathFor(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blob: delete %s: %w", id, err)
	}
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	n := 0
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		n += len(sub)
	}
	return n
}

// IDs returns a point-in-time snapshot of every stored blob's address. A
// directory listing per shard costs a few hundred syscalls total, so bulk
// existence checks (startup rehydration of a large lake) are far cheaper
// than one Stat per blob.
func (s *FileStore) IDs() []ID {
	var out []ID
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) != 2 {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range sub {
			if strings.HasPrefix(f.Name(), ".") {
				continue // in-flight temp file, not a committed blob
			}
			out = append(out, ID(e.Name()+f.Name()))
		}
	}
	return out
}

// IDs returns a point-in-time snapshot of every stored blob's address.
func (s *MemStore) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	return out
}

package blob

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/fault"
)

// The blob store's crash contract: a Put that returned an ID is durable and
// readable; a Put that returned an error left either nothing or a valid blob
// behind (content addressing makes a "partial success" indistinguishable from
// success only when the bytes are complete) — and never a checksum-corrupt
// object or a stray temp file.

func blobWorkload(s *FileStore) (acked, unacked map[ID][]byte) {
	acked = map[ID][]byte{}
	unacked = map[ID][]byte{}
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('A' + i)}, 64+i)
		if id, err := s.Put(data); err == nil {
			acked[id] = data
		} else {
			unacked[Sum(data)] = data
		}
	}
	return acked, unacked
}

func countBlobOps(t *testing.T) int {
	t.Helper()
	rec := &fault.Recorder{}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(rec))
	if err != nil {
		t.Fatal(err)
	}
	blobWorkload(s)
	return len(rec.Ops())
}

// TestBlobCrashSweep fails each IO operation of the workload in turn (as a
// permanent fault, so retry does not paper over it) and checks the contract
// on a clean reopen of the same directory.
func TestBlobCrashSweep(t *testing.T) {
	n := countBlobOps(t)
	if n < 10 {
		t.Fatalf("workload exercised only %d IO ops; sweep too small", n)
	}
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewFileStoreFS(dir, fault.New(&fault.Script{FailAt: i, Torn: 9}))
			if err != nil {
				t.Fatal(err)
			}
			acked, unacked := blobWorkload(s)

			clean, err := NewFileStore(dir)
			if err != nil {
				t.Fatalf("reopen after single fault must succeed: %v", err)
			}
			for id, data := range acked {
				got, err := clean.Get(id)
				if err != nil {
					t.Fatalf("acknowledged blob %s lost: %v", id, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("acknowledged blob %s corrupted", id)
				}
			}
			for id := range unacked {
				got, err := clean.Get(id)
				if err != nil && !errors.Is(err, ErrNotFound) {
					t.Fatalf("unacked blob %s must be absent or valid, got: %v", id, err)
				}
				if err == nil && Sum(got) != id {
					t.Fatalf("unacked blob %s surfaced corrupt", id)
				}
			}
			assertNoTempFiles(t, dir)
		})
	}
}

func assertNoTempFiles(t *testing.T, root string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Fatalf("stray temp file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlobPutRetriesTransientFaults: a transient write fault must be retried
// and the Put acknowledged, without the caller seeing the glitch.
func TestBlobPutRetriesTransientFaults(t *testing.T) {
	inj := &fault.Script{FailAt: 1, Transient: true, Match: fault.MatchOps(fault.OpWrite)}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(inj))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("retry me")
	id, err := s.Put(data)
	if err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	got, err := s.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob unreadable after retried put: %v", err)
	}
	if inj.Seen() < 2 {
		t.Fatalf("injector saw %d ops; the faulted write was never retried", inj.Seen())
	}
}

// TestBlobPermanentFaultFailsFast: a permanent fault must not burn retries.
func TestBlobPermanentFaultFailsFast(t *testing.T) {
	inj := &fault.Script{FailAt: 1, Sticky: true, Match: fault.MatchOps(fault.OpWrite)}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("doomed")); err == nil {
		t.Fatal("permanent fault did not surface")
	} else if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error does not carry the injected cause: %v", err)
	}
}

// TestBlobWriteFsyncsShardDirectory pins the durability fix: after the rename
// the shard directory itself is fsynced.
func TestBlobWriteFsyncsShardDirectory(t *testing.T) {
	rec := &fault.Recorder{}
	s, err := NewFileStoreFS(t.TempDir(), fault.New(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("durable blob")); err != nil {
		t.Fatal(err)
	}
	renameAt, syncDirAt := -1, -1
	for i, op := range rec.Ops() {
		switch op.Op {
		case fault.OpRename:
			renameAt = i
		case fault.OpSyncDir:
			syncDirAt = i
		}
	}
	if renameAt == -1 {
		t.Fatal("put performed no rename")
	}
	if syncDirAt < renameAt {
		t.Fatalf("no shard-directory fsync after rename (rename at %d, syncdir at %d)", renameAt, syncDirAt)
	}
}

package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary encoding of matrices: a little-endian header (magic, rows, cols)
// followed by rows*cols float64 values. The format is stable and versioned by
// magic so stored model weights remain readable.

const matrixMagic uint32 = 0x4d4c4b31 // "MLK1"

// ErrBadEncoding reports a malformed matrix byte stream.
var ErrBadEncoding = errors.New("tensor: bad matrix encoding")

// WriteMatrix writes m to w in the stable binary format.
func WriteMatrix(w io.Writer, m Matrix) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], matrixMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(m.Cols))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("tensor: write data: %w", err)
	}
	return nil
}

// ReadMatrix reads a matrix previously written with WriteMatrix.
func ReadMatrix(r io.Reader) (Matrix, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Matrix{}, fmt.Errorf("tensor: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != matrixMagic {
		return Matrix{}, fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:8]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:12]))
	const maxElems = 1 << 28 // 2 GiB of float64s; guards corrupt headers
	if rows < 0 || cols < 0 || rows*cols > maxElems {
		return Matrix{}, fmt.Errorf("%w: implausible shape %dx%d", ErrBadEncoding, rows, cols)
	}
	m := NewMatrix(rows, cols)
	buf := make([]byte, 8*len(m.Data))
	if _, err := io.ReadFull(r, buf); err != nil {
		return Matrix{}, fmt.Errorf("tensor: read data: %w", err)
	}
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return m, nil
}

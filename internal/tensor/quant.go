package tensor

// int8 scalar quantization for the atlas-scale read path (DESIGN.md §12).
// Each vector row is affinely mapped onto the int8 range with its own
// (min, scale) pair — code c represents min + scale·(c+128) — so a quantized
// dot product over two rows expands back to an approximate float64 dot
// product from one integer kernel pass plus a handful of flops. The
// quantized scan only ranks a shortlist; callers rescore it against the
// full-precision rows, so none of this arithmetic has to be exact — it has
// to be deterministic, which the fixed reduction order below guarantees.

import "math"

// QuantLevels is the number of representable int8 code points.
const QuantLevels = 255

// QuantizeRowInt8 quantizes row into codes (which must have len(row)) using
// a per-row affine map: value ≈ min + scale·(code+128). It returns the map
// parameters and the sum of the emitted codes (the per-row constant the
// dequantized dot product needs). A constant row quantizes with scale 0 and
// every code at -128, so dequantization reproduces it exactly.
func QuantizeRowInt8(row []float64, codes []int8) (min, scale float64, sum int32) {
	if len(row) == 0 {
		return 0, 0, 0
	}
	lo, hi := row[0], row[0]
	for _, x := range row[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		for i := range codes {
			codes[i] = -128
		}
		return lo, 0, -128 * int32(len(row))
	}
	scale = (hi - lo) / QuantLevels
	inv := 1 / scale
	for i, x := range row {
		c := int32(math.Round((x-lo)*inv)) - 128
		if c < -128 {
			c = -128
		} else if c > 127 {
			c = 127
		}
		codes[i] = int8(c)
		sum += c
	}
	return lo, scale, sum
}

// DotInt8Kernel returns the integer inner product of two int8 code rows of
// equal length (callers validate; the slice bound panics otherwise). Like
// DotKernel it is 4-way unrolled with independent accumulators and a fixed
// ((s0+s1)+(s2+s3)) reduction order, so results are deterministic across
// calls. Safe against int32 overflow for dimensions up to 2^15 (each
// product is at most 2^14 in magnitude).
func DotInt8Kernel(a, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

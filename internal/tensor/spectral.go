package tensor

import (
	"math"

	"modellake/internal/xrand"
)

// TopSingularValues estimates the k largest singular values of m using power
// iteration with deflation. It is used to estimate the effective rank of
// weight deltas: a LoRA update of rank r has only r significant singular
// values, while full fine-tuning perturbs the whole spectrum.
//
// iters controls the number of power-iteration steps per singular value;
// 30-50 is ample for the well-separated spectra this repository produces.
func TopSingularValues(m Matrix, k, iters int, rng *xrand.RNG) []float64 {
	if k <= 0 {
		return nil
	}
	maxRank := m.Rows
	if m.Cols < maxRank {
		maxRank = m.Cols
	}
	if k > maxRank {
		k = maxRank
	}
	work := m.Clone()
	out := make([]float64, 0, k)
	u := NewVector(work.Rows)
	v := NewVector(work.Cols)
	for s := 0; s < k; s++ {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		v.Normalize()
		sigma := 0.0
		for it := 0; it < iters; it++ {
			work.MatVec(u, v)   // u = A v
			un := u.Normalize() // ‖Av‖
			work.MatVecT(v, u)  // v = Aᵀ u
			sigma = v.Normalize()
			if un == 0 || sigma == 0 {
				break
			}
		}
		if sigma <= 0 || math.IsNaN(sigma) {
			break
		}
		out = append(out, sigma)
		// Deflate: A ← A − σ u vᵀ.
		work.AddOuter(-sigma, u, v)
	}
	return out
}

// EffectiveRank returns the number of singular values in sv that exceed
// tol * sv[0]. An empty spectrum has rank 0.
func EffectiveRank(sv []float64, tol float64) int {
	if len(sv) == 0 || sv[0] <= 0 {
		return 0
	}
	r := 0
	for _, s := range sv {
		if s > tol*sv[0] {
			r++
		}
	}
	return r
}

// RandomProjection is a fixed random linear map R^in → R^out used to sketch
// high-dimensional weight vectors into a small embedding. The projection is
// a seeded dense Gaussian matrix scaled by 1/sqrt(out), giving approximate
// inner-product preservation (Johnson–Lindenstrauss).
type RandomProjection struct {
	In, Out int
	m       Matrix
}

// NewRandomProjection builds a projection with a deterministic matrix derived
// from seed. The same (in, out, seed) always produces the same map, so
// embeddings computed by different processes are comparable.
func NewRandomProjection(in, out int, seed uint64) *RandomProjection {
	rng := xrand.New(seed)
	m := NewMatrix(out, in)
	scale := 1 / math.Sqrt(float64(out))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return &RandomProjection{In: in, Out: out, m: m}
}

// Apply projects x (length In) to a new vector of length Out. Inputs shorter
// than In are implicitly zero-padded; longer inputs are folded by summing
// chunks, so arbitrarily sized weight vectors map into the same space.
func (p *RandomProjection) Apply(x Vector) Vector {
	folded := NewVector(p.In)
	for i, v := range x {
		folded[i%p.In] += v
	}
	out := NewVector(p.Out)
	p.m.MatVec(out, folded)
	return out
}

package tensor

// The distance kernels behind the read path of the §5 indexer. Every vector
// search — flat scan or HNSW beam — reduces to dot products and squared
// differences over contiguous float64 slices, so these two loops dominate
// query latency at lake scale. Both are 4-way unrolled with independent
// accumulators (breaking the loop-carried dependence lets the CPU keep four
// FMAs in flight) and allocate nothing.
//
// The reduction order is fixed — ((s0+s1)+(s2+s3)) then the scalar tail — so
// results are deterministic across calls and across every caller that routes
// through them. Exact-equivalence tests in internal/index depend on that:
// a distance computed against flattened storage must be bitwise identical to
// one computed through Vector.Dot on a cloned slice.

// DotKernel returns the inner product of a and b, which must have equal
// length (callers validate; the slice bound below panics otherwise).
func DotKernel(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // one bounds check, then the loop body elides the rest
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// SquaredL2Kernel returns the squared Euclidean distance between a and b,
// which must have equal length.
func SquaredL2Kernel(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

package tensor

import (
	"testing"

	"modellake/internal/xrand"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := Vector{1, 2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !almostEqual(x[i], b[i], 1e-12) {
			t.Fatalf("Solve(I, b) = %v, want %v", x, b)
		}
	}
}

func TestSolveRandomSystem(t *testing.T) {
	rng := xrand.New(41)
	n := 6
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	// Make it diagonally dominant so it is well conditioned.
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	want := NewVector(n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := NewVector(n)
	a.MatVec(b, want)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("Solve mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, Vector{1, 1}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), Vector{1, 1}); err == nil {
		t.Fatal("expected non-square error")
	}
	if _, err := Solve(NewMatrix(2, 2), Vector{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	b := Vector{4, 9}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 4 || b[1] != 9 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestCovarianceOfRows(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 0, 0, 1})
	c := CovarianceOfRows(m, 0)
	// (1/2)(e1 e1ᵀ + e2 e2ᵀ) = I/2
	if !almostEqual(c.At(0, 0), 0.5, 1e-12) || !almostEqual(c.At(1, 1), 0.5, 1e-12) ||
		!almostEqual(c.At(0, 1), 0, 1e-12) {
		t.Fatalf("covariance = %v", c.Data)
	}
	cr := CovarianceOfRows(m, 0.1)
	if !almostEqual(cr.At(0, 0), 0.6, 1e-12) {
		t.Fatalf("ridge not applied: %v", cr.At(0, 0))
	}
}

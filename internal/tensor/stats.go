package tensor

import "math"

// Stats summarizes the distribution of a sample of float64 values. It is used
// by the weight-space embedders and by the version-direction heuristics
// (kurtosis drift under fine-tuning).
type Stats struct {
	N        int
	Mean     float64
	Variance float64 // population variance
	Skewness float64
	Kurtosis float64 // excess kurtosis (normal = 0)
	Min, Max float64
	AbsMean  float64
}

// Summarize computes distribution statistics for xs in a single pass over the
// central moments. An empty input yields the zero Stats.
func Summarize(xs []float64) Stats {
	n := len(xs)
	if n == 0 {
		return Stats{}
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)

	var m2, m3, m4, absSum float64
	min, max := xs[0], xs[0]
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
		absSum += math.Abs(x)
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)

	s := Stats{
		N:        n,
		Mean:     mean,
		Variance: m2,
		Min:      min,
		Max:      max,
		AbsMean:  absSum / float64(n),
	}
	if m2 > 0 {
		sd := math.Sqrt(m2)
		s.Skewness = m3 / (sd * sd * sd)
		s.Kurtosis = m4/(m2*m2) - 3
	}
	return s
}

// SpearmanCorrelation returns the Spearman rank correlation between xs and
// ys, which must have equal nonzero length. Ties receive fractional ranks.
func SpearmanCorrelation(xs, ys []float64) float64 {
	rx := ranks(xs)
	ry := ranks(ys)
	return PearsonCorrelation(rx, ry)
}

// PearsonCorrelation returns the Pearson correlation coefficient of xs and
// ys, or 0 when either input has zero variance.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("tensor: correlation length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks returns fractional ranks (1-based, ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free sort by value; n is small in our uses, but use an
	// O(n log n) sort for safety.
	sortIdx(idx, xs)
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func sortIdx(idx []int, key []float64) {
	// Simple bottom-up merge sort to avoid importing sort for a closure.
	n := len(idx)
	buf := make([]int, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if key[idx[i]] <= key[idx[j]] {
					buf[k] = idx[i]
					i++
				} else {
					buf[k] = idx[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = idx[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = idx[j]
				j++
				k++
			}
			copy(idx[lo:hi], buf[lo:hi])
		}
	}
}

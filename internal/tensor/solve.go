package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a (numerically) singular linear system.
var ErrSingular = errors.New("tensor: singular matrix")

// Solve returns x with a*x = b using Gaussian elimination with partial
// pivoting. a must be square and is not modified.
func Solve(a Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("tensor: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("tensor: Solve rhs length %d != %d", len(b), n)
	}
	// Augmented working copies.
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := m.Row(pivot), m.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		row := m.Row(col)
		for j := col + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[col] = s / row[col]
	}
	return x, nil
}

// CovarianceOfRows returns the (ridge-regularized) second-moment matrix of
// the rows of m: (1/n) Σ row·rowᵀ + lambda·I. It is the context statistic
// used by covariance-aware model editing.
func CovarianceOfRows(m Matrix, lambda float64) Matrix {
	c := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		c.AddOuter(1, m.Row(i), m.Row(i))
	}
	if m.Rows > 0 {
		c.Scale(1 / float64(m.Rows))
	}
	for j := 0; j < m.Cols; j++ {
		c.Set(j, j, c.At(j, j)+lambda)
	}
	return c
}

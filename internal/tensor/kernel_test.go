package tensor

import (
	"math"
	"testing"

	"modellake/internal/xrand"
)

// naiveDot is the scalar loop the unrolled kernel replaced; the kernel must
// agree with it to within accumulation reordering.
func naiveDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveSqL2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func randSlice(n int, seed uint64) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestKernelsMatchNaiveAtEveryLength(t *testing.T) {
	// Lengths 0..19 cover every unroll remainder; long lengths exercise the
	// unrolled body.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 19, 64, 100, 257} {
		a := randSlice(n, uint64(n)+1)
		b := randSlice(n, uint64(n)+1000)
		if got, want := DotKernel(a, b), naiveDot(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("DotKernel n=%d: got %v want %v", n, got, want)
		}
		if got, want := SquaredL2Kernel(a, b), naiveSqL2(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("SquaredL2Kernel n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestKernelsDeterministic(t *testing.T) {
	a, b := randSlice(37, 7), randSlice(37, 8)
	d1, d2 := DotKernel(a, b), DotKernel(a, b)
	if d1 != d2 {
		t.Fatalf("DotKernel not deterministic: %v vs %v", d1, d2)
	}
	l1, l2 := SquaredL2Kernel(a, b), SquaredL2Kernel(a, b)
	if l1 != l2 {
		t.Fatalf("SquaredL2Kernel not deterministic: %v vs %v", l1, l2)
	}
}

func TestDotRoutedThroughKernel(t *testing.T) {
	a, b := Vector(randSlice(21, 3)), Vector(randSlice(21, 4))
	if got, want := a.Dot(b), DotKernel(a, b); got != want {
		t.Fatalf("Vector.Dot = %v, kernel = %v", got, want)
	}
	if got, want := L2Distance(a, b), math.Sqrt(SquaredL2Kernel(a, b)); got != want {
		t.Fatalf("L2Distance = %v, kernel sqrt = %v", got, want)
	}
}

func TestKernelsZeroAlloc(t *testing.T) {
	a, b := Vector(randSlice(33, 5)), Vector(randSlice(33, 6))
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink += a.Dot(b) }); n != 0 {
		t.Fatalf("Dot allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { sink += L2Distance(a, b) }); n != 0 {
		t.Fatalf("L2Distance allocates %v per run", n)
	}
	_ = sink
}

func BenchmarkDotKernel32(b *testing.B) {
	x, y := Vector(randSlice(32, 1)), Vector(randSlice(32, 2))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += DotKernel(x, y)
	}
	_ = sink
}

func BenchmarkSquaredL2Kernel32(b *testing.B) {
	x, y := Vector(randSlice(32, 1)), Vector(randSlice(32, 2))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += SquaredL2Kernel(x, y)
	}
	_ = sink
}

func BenchmarkPQLUTKernel8(b *testing.B) {
	codes := make([]uint8, 8)
	for i := range codes {
		codes[i] = uint8(i * 31)
	}
	lut := randSlice(8*PQLUTEntries, 3)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += PQLUTKernel(codes, lut)
	}
	_ = sink
}

package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"modellake/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	n := v.Normalize()
	if n != 5 {
		t.Fatalf("returned norm = %v, want 5", n)
	}
	if !almostEqual(v.Norm(), 1, 1e-12) {
		t.Fatalf("normalized norm = %v, want 1", v.Norm())
	}
	z := Vector{0, 0}
	if z.Normalize() != 0 {
		t.Fatal("zero vector norm should be 0")
	}
}

func TestArgMax(t *testing.T) {
	if got := (Vector{1, 5, 3}).ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := (Vector{}).ArgMax(); got != -1 {
		t.Fatalf("ArgMax(empty) = %d, want -1", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity(Vector{1, 0}, Vector{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("cos(same) = %v", got)
	}
	if got := CosineSimilarity(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("cos(orthogonal) = %v", got)
	}
	if got := CosineSimilarity(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Fatalf("cos with zero vector = %v, want 0", got)
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(2)
	m.MatVec(dst, Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec = %v, want [6 15]", dst)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := NewVector(3)
	m.MatVecT(dst, Vector{1, 1})
	want := Vector{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatVecT = %v, want %v", dst, want)
		}
	}
}

func TestMatMulAgainstTranspose(t *testing.T) {
	rng := xrand.New(5)
	a := NewMatrix(4, 3)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := NewMatrix(3, 5)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	c := MatMul(a, b)
	// (AB)ᵀ == Bᵀ Aᵀ
	lhs := c.Transpose()
	rhs := MatMul(b.Transpose(), a.Transpose())
	for i := range lhs.Data {
		if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-12) {
			t.Fatalf("transpose identity violated at %d", i)
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

func TestSubAndFrobenius(t *testing.T) {
	a := NewMatrix(1, 2)
	copy(a.Data, []float64{3, 4})
	b := NewMatrix(1, 2)
	d := Sub(a, b)
	if got := d.FrobeniusNorm(); got != 5 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrix(1, 1)
	c := a.Clone()
	c.Data[0] = 7
	if a.Data[0] != 0 {
		t.Fatal("Clone shares storage")
	}
	v := Vector{1}
	cv := v.Clone()
	cv[0] = 9
	if v[0] != 1 {
		t.Fatal("Vector Clone shares storage")
	}
}

// Property: MatVec distributes over vector addition.
func TestMatVecLinearityProperty(t *testing.T) {
	rng := xrand.New(99)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		rows := 1 + r.Intn(6)
		cols := 1 + r.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		x := NewVector(cols)
		y := NewVector(cols)
		for i := 0; i < cols; i++ {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		sum := x.Clone()
		sum.AddScaled(1, y)
		d1 := NewVector(rows)
		m.MatVec(d1, sum)
		dx := NewVector(rows)
		dy := NewVector(rows)
		m.MatVec(dx, x)
		m.MatVec(dy, y)
		for i := range d1 {
			if !almostEqual(d1[i], dx[i]+dy[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if !almostEqual(s.Variance, 2, 1e-12) {
		t.Fatalf("variance = %v, want 2", s.Variance)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize should be zero")
	}
}

func TestKurtosisOfNormalNearZero(t *testing.T) {
	rng := xrand.New(31)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := Summarize(xs)
	if math.Abs(s.Kurtosis) > 0.1 {
		t.Fatalf("normal excess kurtosis = %v, want ~0", s.Kurtosis)
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := SpearmanCorrelation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect monotone spearman = %v, want 1", got)
	}
	rev := []float64{10, 8, 6, 4, 2}
	if got := SpearmanCorrelation(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("reversed spearman = %v, want -1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2}
	ys := []float64{5, 5, 9}
	got := SpearmanCorrelation(xs, ys)
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("tied spearman = %v, want 1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := PearsonCorrelation([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("zero-variance pearson = %v, want 0", got)
	}
}

func TestTopSingularValuesRankOne(t *testing.T) {
	// A = u vᵀ has exactly one nonzero singular value = ‖u‖‖v‖.
	u := Vector{1, 2, 2} // norm 3
	v := Vector{3, 4}    // norm 5
	a := NewMatrix(3, 2)
	a.AddOuter(1, u, v)
	sv := TopSingularValues(a, 2, 60, xrand.New(1))
	if len(sv) == 0 || !almostEqual(sv[0], 15, 1e-6) {
		t.Fatalf("top singular value = %v, want 15", sv)
	}
	if len(sv) > 1 && sv[1] > 1e-6 {
		t.Fatalf("second singular value = %v, want ~0", sv[1])
	}
	if r := EffectiveRank(sv, 1e-3); r != 1 {
		t.Fatalf("effective rank = %d, want 1", r)
	}
}

func TestTopSingularValuesDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, 3)
	a.Set(2, 2, 1)
	sv := TopSingularValues(a, 3, 80, xrand.New(2))
	want := []float64{5, 3, 1}
	if len(sv) != 3 {
		t.Fatalf("got %d singular values, want 3", len(sv))
	}
	for i := range want {
		if !almostEqual(sv[i], want[i], 1e-4) {
			t.Fatalf("sv = %v, want %v", sv, want)
		}
	}
}

func TestEffectiveRankEmpty(t *testing.T) {
	if EffectiveRank(nil, 0.1) != 0 {
		t.Fatal("rank of empty spectrum should be 0")
	}
	if EffectiveRank([]float64{0}, 0.1) != 0 {
		t.Fatal("rank of zero spectrum should be 0")
	}
}

func TestRandomProjectionDeterminism(t *testing.T) {
	p1 := NewRandomProjection(16, 4, 7)
	p2 := NewRandomProjection(16, 4, 7)
	x := make(Vector, 16)
	for i := range x {
		x[i] = float64(i)
	}
	a := p1.Apply(x)
	b := p2.Apply(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("projections with the same seed differ")
		}
	}
}

func TestRandomProjectionFolding(t *testing.T) {
	p := NewRandomProjection(4, 2, 3)
	short := Vector{1, 2}
	long := Vector{1, 2, 0, 0, 0, 0} // folds to the same as short padded
	a := p.Apply(short)
	b := p.Apply(long)
	for i := range a {
		if !almostEqual(a[i], b[i], 1e-12) {
			t.Fatal("folding inconsistent with zero padding")
		}
	}
}

func TestRandomProjectionPreservesSimilarity(t *testing.T) {
	// JL-style sanity check: nearby vectors stay nearer than far vectors.
	rng := xrand.New(77)
	p := NewRandomProjection(256, 32, 9)
	base := make(Vector, 256)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	near := base.Clone()
	for i := range near {
		near[i] += 0.01 * rng.NormFloat64()
	}
	far := make(Vector, 256)
	for i := range far {
		far[i] = rng.NormFloat64()
	}
	pb, pn, pf := p.Apply(base), p.Apply(near), p.Apply(far)
	if L2Distance(pb, pn) >= L2Distance(pb, pf) {
		t.Fatal("projection did not preserve relative distances")
	}
}

func TestMatrixEncodeRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	m := NewMatrix(5, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, m.Rows, m.Cols)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("round trip changed data")
		}
	}
}

func TestReadMatrixBadMagic(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	var buf bytes.Buffer
	m := NewMatrix(2, 2)
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMatrix(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func BenchmarkMatVec128(b *testing.B) {
	m := NewMatrix(128, 128)
	rng := xrand.New(1)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := NewVector(128)
	dst := NewVector(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(dst, x)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	m := NewMatrix(64, 64)
	rng := xrand.New(1)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(m, m)
	}
}

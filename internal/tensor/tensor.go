// Package tensor implements the dense linear-algebra substrate for the model
// lake: vectors, row-major matrices, the handful of BLAS-like kernels needed
// for neural-network training, plus statistics and spectral helpers used by
// the lake tasks (weight-delta rank estimation, random-projection sketching).
//
// Everything is float64 and allocation-explicit; hot paths take destination
// arguments where it matters. Matrices are value types holding a shared
// backing slice; Clone produces deep copies.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	return DotKernel(v, w)
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// AddScaled adds alpha*w to v in place. It panics on length mismatch.
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// ArgMax returns the index of the largest element, or -1 for an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Normalize scales v to unit Euclidean norm in place. Zero vectors are left
// unchanged. It returns the original norm.
func (v Vector) Normalize() float64 {
	n := v.Norm()
	if n > 0 {
		v.Scale(1 / n)
	}
	return n
}

// CosineSimilarity returns the cosine of the angle between v and w, or 0 if
// either vector is zero.
func CosineSimilarity(v, w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// L2Distance returns the Euclidean distance between v and w.
func L2Distance(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: L2Distance length mismatch %d vs %d", len(v), len(w)))
	}
	return math.Sqrt(SquaredL2Kernel(v, w))
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector aliasing the matrix storage.
func (m Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	out := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to zero.
func (m Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AddScaled adds alpha*other to m in place. Shapes must match.
func (m Matrix) AddScaled(alpha float64, other Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha in place.
func (m Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols. dst may not alias x.
func (m Matrix) MatVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MatVecT computes dst = mᵀ * x. dst must have length m.Cols and x length
// m.Rows.
func (m Matrix) MatVecT(dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVecT shape mismatch m=%dx%d x=%d dst=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuter adds alpha * a ⊗ b to m in place, where a has length m.Rows and b
// has length m.Cols.
func (m Matrix) AddOuter(alpha float64, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch m=%dx%d a=%d b=%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += ai * b[j]
		}
	}
}

// MatMul returns a*b as a new matrix. a.Cols must equal b.Rows.
func MatMul(a, b Matrix) Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Sub returns a-b as a new matrix.
func Sub(a, b Matrix) Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %dx%d vs %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := a.Clone()
	out.AddScaled(-1, b)
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Transpose returns mᵀ as a new matrix.
func (m Matrix) Transpose() Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

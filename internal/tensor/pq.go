package tensor

// Product-quantization ADC accumulation for the atlas-scale read path
// (DESIGN.md §14). A PQ-coded row is one byte per subspace; a query is
// turned into a lookup table of 256 precomputed sub-distances per subspace,
// and ranking a row is a pure gather-accumulate over that table — no
// per-candidate float multiply at all. Like the other kernels, none of this
// has to be exact (callers rescore a shortlist against the full-precision
// rows); it has to be deterministic, which the fixed reduction order
// guarantees.

// PQLUTEntries is the per-subspace lookup-table width: one byte of code
// addresses exactly 256 centroids.
const PQLUTEntries = 256

// PQLUTKernel accumulates the ADC distance of one coded row: subspace s
// contributes lut[s*256+codes[s]]. lut must hold len(codes)*256 entries
// (callers validate; the slice index panics otherwise). 4-way unrolled with
// independent accumulators and a fixed ((s0+s1)+(s2+s3)) reduction order,
// matching DotKernel, so results are deterministic across calls.
func PQLUTKernel(codes []uint8, lut []float64) float64 {
	n := len(codes)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += lut[i*PQLUTEntries+int(codes[i])]
		s1 += lut[(i+1)*PQLUTEntries+int(codes[i+1])]
		s2 += lut[(i+2)*PQLUTEntries+int(codes[i+2])]
		s3 += lut[(i+3)*PQLUTEntries+int(codes[i+3])]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += lut[i*PQLUTEntries+int(codes[i])]
	}
	return s
}

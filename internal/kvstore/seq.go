package kvstore

import (
	"encoding/binary"
	"errors"
	"sync"
)

// Sequence hands out monotonically increasing uint64 IDs backed by a single
// key in the store. Instead of persisting every increment (one durable
// write per ID), it leases blocks: when the in-memory cursor passes the
// durable high-water mark, one Put persists cursor+block-1 and the next
// block of IDs is handed out from memory. After a crash the sequence
// resumes from the last persisted high-water mark, so IDs may skip (at most
// one block) but can never repeat — which is the only property callers
// (registry IDs, provenance records) rely on.
//
// The mutex is held across the lease Put, so lease records for one key
// always reach the log in increasing order and replay recovers the highest
// lease regardless of how group commit interleaved other writers.
//
// The on-disk encoding (8-byte little-endian) matches the pre-lease
// counter, so a store written by an older build resumes seamlessly.
type Sequence struct {
	mu     sync.Mutex
	kv     *Store
	key    string
	block  uint64
	next   uint64 // next ID to hand out
	leased uint64 // durable high-water mark: IDs ≤ leased are safe to use
	loaded bool
}

// NewSequence returns a sequence over key in kv, leasing block IDs per
// durable write. A block of 0 or 1 persists every increment.
func NewSequence(kv *Store, key string, block uint64) *Sequence {
	if block == 0 {
		block = 1
	}
	return &Sequence{kv: kv, key: key, block: block}
}

// Next returns the next ID, persisting a new lease when the current one is
// exhausted.
func (q *Sequence) Next() (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.loaded {
		b, err := q.kv.Get(q.key)
		if err == nil && len(b) == 8 {
			q.leased = binary.LittleEndian.Uint64(b)
		} else if err != nil && !errors.Is(err, ErrNotFound) {
			return 0, err
		}
		q.next = q.leased + 1
		q.loaded = true
	}
	if q.next > q.leased {
		lease := q.next + q.block - 1
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], lease)
		if err := q.kv.Put(q.key, buf[:]); err != nil {
			return 0, err
		}
		q.leased = lease
	}
	id := q.next
	q.next++
	return id, nil
}

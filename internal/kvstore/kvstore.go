// Package kvstore implements a small embedded key-value store used as the
// durable metadata layer of the model lake (registry records, provenance
// journal, cached benchmark scores).
//
// The design is a classic append-only log with an in-memory index:
//
//   - Every mutation (put or delete) is appended to a single log file as a
//     length-prefixed, CRC32-checksummed record and the file is optionally
//     fsynced.
//   - Open replays the log to rebuild the in-memory state. A torn final
//     record (e.g. from a crash mid-append) is detected and truncated away;
//     corruption anywhere earlier is reported as ErrCorrupt rather than
//     silently dropped.
//   - Compact rewrites the log with only live records.
//
// Keys are ordered byte strings; Scan iterates a prefix in sorted order,
// which the registry uses for typed namespaces ("model/", "prov/", ...).
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"modellake/internal/fault"
	"modellake/internal/obs"
)

// Store-level metrics, aggregated across every open store in the process.
// Append and fsync latency are timed separately: append latency tracks the
// page-cache write path while fsync latency is the real durability cost.
var (
	mAppendDur = obs.Default().Histogram("kvstore_append_duration_seconds", nil)
	mFsyncDur  = obs.Default().Histogram("kvstore_fsync_duration_seconds", nil)
	mRollbacks = obs.Default().Counter("kvstore_rollbacks_total")
)

func opCounter(op string) *obs.Counter {
	return obs.Default().Counter("kvstore_ops_total", obs.L("op", op))
}

// Sentinel errors.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrCorrupt  = errors.New("kvstore: corrupt log")
	ErrClosed   = errors.New("kvstore: store is closed")
	// ErrFailed marks a store whose log hit an IO error that could not be
	// rolled back; mutations fail fast rather than risk mid-log corruption.
	ErrFailed = errors.New("kvstore: store failed")
)

const (
	opPut    byte = 1
	opDelete byte = 2

	// headerSize is the fixed prefix of every record:
	// payloadLen(4) + crc(4).
	headerSize = 8
	// maxRecordSize guards against absurd lengths from corrupt headers.
	maxRecordSize = 64 << 20
)

// Store is a durable string-keyed byte store. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	data   map[string][]byte
	path   string      // empty for a purely in-memory store
	f      *fault.File // nil for in-memory
	fsys   *fault.FS   // nil = real filesystem
	size   int64       // end offset of the last fully acknowledged record
	sync   bool
	closed bool
	ioErr  error // poison: set when a failed append could not be rolled back
}

// Options configures Open.
type Options struct {
	// Sync forces an fsync after every mutation. Slower but crash-durable.
	Sync bool
	// FS routes all file IO, letting tests inject faults at every write
	// point (see internal/fault). Nil uses the real filesystem.
	FS *fault.FS
}

// OpenMemory returns an in-memory store with no durability. It is handy for
// tests and ephemeral lakes.
func OpenMemory() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Open opens (or creates) the store logged at path.
func Open(path string, opts Options) (*Store, error) {
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	s := &Store{data: make(map[string][]byte), path: path, f: f, fsys: opts.FS, sync: opts.Sync}
	validLen, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate a torn tail so subsequent appends start at a clean boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvstore: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek: %w", err)
	}
	s.size = validLen
	return s, nil
}

// replay scans the log, rebuilding the in-memory map, and returns the byte
// offset of the end of the last complete, valid record.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("kvstore: seek: %w", err)
	}
	var offset int64
	hdr := make([]byte, headerSize)
	for {
		_, err := io.ReadFull(s.f, hdr)
		if err == io.EOF {
			return offset, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header at the tail: stop at the last good record.
			return offset, nil
		}
		if err != nil {
			return 0, fmt.Errorf("kvstore: read header: %w", err)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen > maxRecordSize {
			return 0, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, payloadLen, offset)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(s.f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Torn payload at the tail.
				return offset, nil
			}
			return 0, fmt.Errorf("kvstore: read payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A bad checksum mid-log is real corruption; at the very tail it
			// could be a torn write, but we cannot distinguish, so look
			// ahead: if this is the final record, treat as torn.
			cur, _ := s.f.Seek(0, io.SeekCurrent)
			end, _ := s.f.Seek(0, io.SeekEnd)
			if cur == end {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, offset)
		}
		if err := s.applyPayload(payload); err != nil {
			return 0, err
		}
		offset += int64(headerSize) + int64(payloadLen)
	}
}

func (s *Store) applyPayload(p []byte) error {
	if len(p) < 5 {
		return fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	op := p[0]
	keyLen := binary.LittleEndian.Uint32(p[1:5])
	if int(keyLen) > len(p)-5 {
		return fmt.Errorf("%w: key length overruns payload", ErrCorrupt)
	}
	key := string(p[5 : 5+keyLen])
	switch op {
	case opPut:
		val := make([]byte, len(p)-5-int(keyLen))
		copy(val, p[5+keyLen:])
		s.data[key] = val
	case opDelete:
		delete(s.data, key)
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
	return nil
}

func encodePayload(op byte, key string, value []byte) []byte {
	p := make([]byte, 5+len(key)+len(value))
	p[0] = op
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(key)))
	copy(p[5:], key)
	copy(p[5+len(key):], value)
	return p
}

// appendRecord writes one record to the log (if durable).
func (s *Store) appendRecord(payload []byte) error {
	if s.f == nil {
		return nil
	}
	if s.ioErr != nil {
		return fmt.Errorf("%w: %v", ErrFailed, s.ioErr)
	}
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[headerSize:], payload)
	start := time.Now()
	if _, err := s.f.Write(rec); err != nil {
		s.rollbackTail(err)
		return fmt.Errorf("kvstore: append: %w", err)
	}
	mAppendDur.Since(start)
	if s.sync {
		fstart := time.Now()
		if err := s.f.Sync(); err != nil {
			// The record reached the page cache but its durability is
			// unknown; treating it as written after a failed fsync is the
			// classic path to acknowledged-write loss, so discard it.
			s.rollbackTail(err)
			return fmt.Errorf("kvstore: fsync: %w", err)
		}
		mFsyncDur.Since(fstart)
	}
	s.size += int64(len(rec))
	return nil
}

// rollbackTail discards a partially written (or written-but-possibly-not-
// durable) record after a failed append so the next append starts at a
// clean record boundary instead of landing after garbage — which would turn
// a recoverable torn tail into mid-log corruption. If the tail cannot be
// discarded the store is poisoned: further mutations return ErrFailed.
func (s *Store) rollbackTail(cause error) {
	mRollbacks.Inc()
	if err := s.f.Truncate(s.size); err != nil {
		s.ioErr = cause
		return
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		s.ioErr = cause
	}
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) error {
	opCounter("put").Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendRecord(encodePayload(opPut, key, value)); err != nil {
		return err
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.data[key] = cp
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	opCounter("get").Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[key]
	return ok
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	opCounter("delete").Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.appendRecord(encodePayload(opDelete, key, nil)); err != nil {
		return err
	}
	delete(s.data, key)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Scan calls fn for every key with the given prefix, in sorted key order.
// Returning false from fn stops the scan. The value slice passed to fn must
// not be retained.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	opCounter("scan").Inc()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		s.mu.RLock()
		v, ok := s.data[k]
		s.mu.RUnlock()
		if !ok {
			continue // deleted between snapshot and visit
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Keys returns all live keys with the given prefix in sorted order.
func (s *Store) Keys(prefix string) []string {
	var out []string
	s.Scan(prefix, func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Compact rewrites the log so it contains exactly the live records. It is a
// no-op for in-memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.f == nil {
		return nil
	}
	tmpPath := s.path + ".compact"
	tmp, err := s.fsys.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var newSize int64
	for _, k := range keys {
		payload := encodePayload(opPut, k, s.data[k])
		rec := make([]byte, headerSize+len(payload))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
		copy(rec[headerSize:], payload)
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("kvstore: compact write: %w", err)
		}
		newSize += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact close: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return s.reopenLog(fmt.Errorf("kvstore: close old log: %w", err))
	}
	if err := s.fsys.Rename(tmpPath, s.path); err != nil {
		// The old log is still in place and complete; reopen it so the
		// store keeps serving, and surface the failed compaction.
		os.Remove(tmpPath)
		return s.reopenLog(fmt.Errorf("kvstore: swap compacted log: %w", err))
	}
	// Fsync the parent directory: without it a crash after the rename can
	// resurrect the old log, silently undoing the compaction.
	if err := s.fsys.SyncDir(filepath.Dir(s.path)); err != nil {
		return s.reopenLog(fmt.Errorf("kvstore: sync log directory: %w", err))
	}
	f, err := s.fsys.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: reopen after compact: %w", err)
	}
	s.f = f
	s.size = newSize
	// A completed compaction rewrote the log from in-memory state, so any
	// earlier unrecoverable append failure is repaired.
	s.ioErr = nil
	return nil
}

// reopenLog restores an open append handle on the current log after a
// failed compaction step, so the store stays usable. The original cause is
// returned; if even the reopen fails the store is poisoned.
func (s *Store) reopenLog(cause error) error {
	f, err := s.fsys.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		s.ioErr = cause
		return fmt.Errorf("%w (and reopen failed: %v)", cause, err)
	}
	s.f = f
	if fi, err := f.Stat(); err == nil {
		s.size = fi.Size()
	}
	return cause
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f != nil {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("kvstore: sync on close: %w", err)
		}
		return s.f.Close()
	}
	return nil
}

// Package kvstore implements a small embedded key-value store used as the
// durable metadata layer of the model lake (registry records, provenance
// journal, cached benchmark scores).
//
// The design is a classic append-only log with an in-memory index:
//
//   - Every mutation (put, delete, or atomic batch) is appended to a single
//     log file as a length-prefixed, CRC32-checksummed record and the file
//     is optionally fsynced.
//   - Concurrent writers are group-committed: callers enqueue a commit
//     waiter and the first enqueuer becomes the leader, drains the queue,
//     writes every waiter's record as one multi-record page, fsyncs once,
//     and wakes the cohort. A serial writer degenerates to the classic
//     one-fsync-per-record path; the win appears exactly when writers pile
//     up behind a sync.
//   - Apply commits several ops as a single all-or-nothing batch record, so
//     multi-key commits (registry registrations, provenance journals) need
//     no compensating rollback.
//   - Open replays the log to rebuild the in-memory state. A torn final
//     record (e.g. from a crash mid-append or a torn group-commit page) is
//     detected and truncated away; corruption anywhere earlier is reported
//     as ErrCorrupt rather than silently dropped.
//   - Compact rewrites the log from a copy-on-write snapshot while readers
//     and writers keep running; pages committed during the rewrite are
//     captured in a delta and appended behind the snapshot before the
//     atomic swap.
//
// Keys are ordered byte strings; Scan iterates a prefix in sorted order,
// which the registry uses for typed namespaces ("model/", "prov/", ...).
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modellake/internal/fault"
	"modellake/internal/obs"
)

// Store-level metrics, aggregated across every open store in the process.
// Append and fsync latency are timed separately: append latency tracks the
// page-cache write path while fsync latency is the real durability cost.
// Batch size and commit latency expose how well group commit is coalescing;
// the waiters gauge counts callers currently parked behind a leader.
var (
	mAppendDur = obs.Default().Histogram("kvstore_append_duration_seconds", nil)
	mFsyncDur  = obs.Default().Histogram("kvstore_fsync_duration_seconds", nil)
	mCommitDur = obs.Default().Histogram("kvstore_commit_duration_seconds", nil)
	mBatchSize = obs.Default().Histogram("kvstore_commit_batch_size",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	mWaiters   = obs.Default().Gauge("kvstore_commit_waiters")
	mRollbacks = obs.Default().Counter("kvstore_rollbacks_total")

	// Per-op counters are resolved once: a registry lookup renders label
	// strings and takes the registry mutex, which is measurable overhead on
	// ops as cheap as a map Get.
	mOpPut    = opCounter("put")
	mOpDelete = opCounter("delete")
	mOpApply  = opCounter("apply")
	mOpGet    = opCounter("get")
	mOpScan   = opCounter("scan")
)

func opCounter(op string) *obs.Counter {
	return obs.Default().Counter("kvstore_ops_total", obs.L("op", op))
}

// Sentinel errors.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrCorrupt  = errors.New("kvstore: corrupt log")
	ErrClosed   = errors.New("kvstore: store is closed")
	// ErrFailed marks a store whose log hit an IO error that could not be
	// rolled back; mutations fail fast rather than risk mid-log corruption.
	ErrFailed = errors.New("kvstore: store failed")
	// ErrBatchTooLarge rejects an Apply whose encoded record would exceed
	// maxRecordSize; callers should chunk.
	ErrBatchTooLarge = errors.New("kvstore: batch record too large")
)

const (
	opPut    byte = 1
	opDelete byte = 2
	// opBatch is an atomic multi-op record: every op inside it replays, or
	// (if the record is torn/corrupt at the tail) none of them do.
	opBatch byte = 3
	// opEpoch stamps a replication epoch into the log (see BumpEpoch). The
	// payload is [opEpoch][epoch u64 le]; it mutates the store's epoch, not
	// the key map.
	opEpoch byte = 4

	// headerSize is the fixed prefix of every record:
	// payloadLen(4) + crc(4).
	headerSize = 8
	// maxRecordSize guards against absurd lengths from corrupt headers.
	maxRecordSize = 64 << 20

	// DefaultMaxBatch bounds how many waiters a leader folds into one
	// commit page when Options.MaxBatch is zero.
	DefaultMaxBatch = 128

	// compactSuffix names the temporary rewrite target of Compact. A
	// leftover file (crash mid-compact) is removed on Open.
	compactSuffix = ".compact"
)

// epochKey is the sentinel Op key that carries an epoch stamp through the
// shared commit/decode/apply plumbing. The NUL prefix keeps it out of every
// legal user namespace ("model/", "score/", ...), and applyOps diverts it to
// the epoch register instead of the key map, so an epoch never surfaces from
// Get or Scan.
const epochKey = "\x00epoch"

// Op is one mutation inside an atomic batch (see Apply).
type Op struct {
	Key    string
	Value  []byte
	Delete bool // true = delete Key; Value is ignored
}

// waiter is one caller's seat in the group-commit queue. The leader commits
// its ops and reports the outcome on done (own waiter excepted — the leader
// keeps its result on the stack). Waiters are pooled: the done channel is
// buffered and drained exactly once per use, so reuse is safe.
type waiter struct {
	ops    []Op
	single [1]Op // backing array so Put/Delete enqueue without allocating
	done   chan error
}

var waiterPool = sync.Pool{
	New: func() any { return &waiter{done: make(chan error, 1)} },
}

func getWaiter() *waiter  { return waiterPool.Get().(*waiter) }
func putWaiter(w *waiter) { w.ops = nil; w.single[0] = Op{}; waiterPool.Put(w) }

// Store is a durable string-keyed byte store. It is safe for concurrent use.
//
// Lock order (never taken in reverse): qmu and fileMu are never held
// together; fileMu may take mu; nothing that holds mu takes another lock.
type Store struct {
	mu   sync.RWMutex // guards data
	data map[string][]byte

	// epoch is the replication leadership epoch last seen in the log (0 =
	// never stamped). Replay, local commits, and shipped pages all land here
	// through the opEpoch record type.
	epoch atomic.Uint64

	closed atomic.Bool

	path     string // empty for a purely in-memory store
	fsys     *fault.FS
	sync     bool
	maxBatch int
	maxDelay time.Duration

	// Group-commit queue. A writer appends its waiter under qmu; if no
	// leader is active it becomes the leader, else it blocks on its waiter.
	qmu      sync.Mutex
	pending  []*waiter
	leading  bool
	drained  *sync.Cond // signaled (with qmu) whenever a leader steps down
	batchBuf []*waiter  // leader-only scratch, serialized by the leading flag

	// Log file state. commitBatch holds fileMu across write+fsync+apply so
	// log order always equals in-memory apply order.
	fileMu     sync.Mutex
	f          *fault.File // nil for in-memory
	size       int64       // end offset of the last fully acknowledged record
	ioErr      error       // poison: set when a failed append could not be rolled back
	pageBuf    []byte      // reusable commit-page buffer
	compacting bool        // a compaction snapshot is being written
	delta      []byte      // pages committed while compacting, replayed over the snapshot

	compactMu sync.Mutex // serializes whole Compact calls

	// notify is the coalescing commit-notification channel behind
	// CommitNotify (see repl.go). Buffered size 1: a pending wakeup absorbs
	// further commits until the listener drains it.
	notify chan struct{}
}

// Options configures Open.
type Options struct {
	// Sync forces an fsync after every commit page. Slower but
	// crash-durable; group commit amortizes the fsync across every writer
	// in the page.
	Sync bool
	// FS routes all file IO, letting tests inject faults at every write
	// point (see internal/fault). Nil uses the real filesystem.
	FS *fault.FS
	// MaxBatch caps how many waiters the commit leader folds into one page
	// (0 = DefaultMaxBatch). Larger pages amortize the fsync further at the
	// cost of latency for the first waiter in the page.
	MaxBatch int
	// MaxDelay makes a newly elected leader linger briefly before its first
	// drain so concurrent writers can join the page (0 = commit
	// immediately). Coalescing already happens naturally whenever writers
	// queue up behind an in-flight fsync; the delay only helps bursty
	// arrivals on very fast disks.
	MaxDelay time.Duration
}

// OpenMemory returns an in-memory store with no durability. It is handy for
// tests and ephemeral lakes.
func OpenMemory() *Store {
	s := &Store{data: make(map[string][]byte), notify: make(chan struct{}, 1)}
	s.drained = sync.NewCond(&s.qmu)
	return s
}

// Open opens (or creates) the store logged at path.
func Open(path string, opts Options) (*Store, error) {
	// A crash mid-compact can leave the rewrite target behind; the real log
	// is still authoritative, so discard the leftover.
	_ = opts.FS.Remove(path + compactSuffix)
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	s := &Store{
		data:     make(map[string][]byte),
		path:     path,
		f:        f,
		fsys:     opts.FS,
		sync:     opts.Sync,
		maxBatch: opts.MaxBatch,
		maxDelay: opts.MaxDelay,
		notify:   make(chan struct{}, 1),
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	s.drained = sync.NewCond(&s.qmu)
	validLen, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate a torn tail so subsequent appends start at a clean boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvstore: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek: %w", err)
	}
	s.size = validLen
	return s, nil
}

// replayBufSize is the read-ahead buffer used while scanning the log on
// Open. Replay dominates the cost of opening a large store, and reading
// through a buffer turns the two small read syscalls per record into a
// handful of large sequential ones.
const replayBufSize = 1 << 20

// replay scans the log, rebuilding the in-memory map, and returns the byte
// offset of the end of the last complete, valid record.
func (s *Store) replay() (int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("kvstore: seek: %w", err)
	}
	fileSize := int64(-1)
	if fi, err := s.f.Stat(); err == nil {
		fileSize = fi.Size()
	}
	r := bufio.NewReaderSize(s.f, replayBufSize)
	var offset int64
	hdr := make([]byte, headerSize)
	for {
		_, err := io.ReadFull(r, hdr)
		if err == io.EOF {
			return offset, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header at the tail: stop at the last good record.
			return offset, nil
		}
		if err != nil {
			return 0, fmt.Errorf("kvstore: read header: %w", err)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen > maxRecordSize {
			return 0, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, payloadLen, offset)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Torn payload at the tail.
				return offset, nil
			}
			return 0, fmt.Errorf("kvstore: read payload: %w", err)
		}
		recEnd := offset + int64(headerSize) + int64(payloadLen)
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A bad checksum mid-log is real corruption; at the very tail it
			// could be a torn write, but we cannot distinguish, so only fail
			// when more bytes follow the damaged record.
			if fileSize >= 0 && recEnd >= fileSize {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, offset)
		}
		if err := s.applyPayload(payload); err != nil {
			return 0, err
		}
		offset = recEnd
	}
}

// applyPayload replays one CRC-verified record into the map. Batch records
// are validated in full before any of their ops apply, so a batch is
// all-or-nothing even against in-payload corruption.
//
// The payload is owned by replay and never reused, so stored values alias it
// instead of copying — Get hands out copies and nothing mutates map values in
// place, which makes the aliasing invisible to callers.
func (s *Store) applyPayload(p []byte) error {
	if len(p) < 5 {
		return fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	op := p[0]
	switch op {
	case opPut, opDelete:
		keyLen := binary.LittleEndian.Uint32(p[1:5])
		if int(keyLen) > len(p)-5 {
			return fmt.Errorf("%w: key length overruns payload", ErrCorrupt)
		}
		key := string(p[5 : 5+keyLen])
		if op == opPut {
			s.data[key] = p[5+keyLen:]
		} else {
			delete(s.data, key)
		}
		return nil
	case opBatch:
		ops, err := decodeBatch(p)
		if err != nil {
			return err
		}
		for i := range ops {
			if ops[i].Delete {
				delete(s.data, ops[i].Key)
			} else {
				s.data[ops[i].Key] = ops[i].Value
			}
		}
		return nil
	case opEpoch:
		if len(p) != 1+8 {
			return fmt.Errorf("%w: epoch record length %d", ErrCorrupt, len(p))
		}
		s.epoch.Store(binary.LittleEndian.Uint64(p[1:9]))
		return nil
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
}

// decodeBatch parses an opBatch payload:
//
//	[opBatch][count u32] then per op: [kind byte][keyLen u32][valLen u32][key][val]
//
// It fully validates bounds before returning, so a caller can treat the
// result as atomic. Returned values alias p (see applyPayload); the sole
// caller owns the payload and never modifies it after decoding.
func decodeBatch(p []byte) ([]Op, error) {
	count := binary.LittleEndian.Uint32(p[1:5])
	if count > maxRecordSize/9 {
		return nil, fmt.Errorf("%w: batch count %d", ErrCorrupt, count)
	}
	ops := make([]Op, 0, count)
	off := 5
	for i := uint32(0); i < count; i++ {
		if off+9 > len(p) {
			return nil, fmt.Errorf("%w: truncated batch op", ErrCorrupt)
		}
		kind := p[off]
		keyLen := int(binary.LittleEndian.Uint32(p[off+1 : off+5]))
		valLen := int(binary.LittleEndian.Uint32(p[off+5 : off+9]))
		off += 9
		if keyLen < 0 || valLen < 0 || off+keyLen+valLen > len(p) {
			return nil, fmt.Errorf("%w: batch op overruns payload", ErrCorrupt)
		}
		key := string(p[off : off+keyLen])
		off += keyLen
		var val []byte
		if kind == opPut {
			val = p[off : off+valLen : off+valLen]
		} else if kind != opDelete {
			return nil, fmt.Errorf("%w: unknown batch op %d", ErrCorrupt, kind)
		}
		off += valLen
		ops = append(ops, Op{Key: key, Value: val, Delete: kind == opDelete})
	}
	if off != len(p) {
		return nil, fmt.Errorf("%w: trailing bytes in batch record", ErrCorrupt)
	}
	return ops, nil
}

// appendRecordPage appends one record (header + payload) for ops to page.
// A single op uses the legacy record format so old logs and new logs share
// one replay path; multiple ops use the atomic batch format.
func appendRecordPage(page []byte, ops []Op) []byte {
	if len(ops) == 1 && ops[0].Key == epochKey && !ops[0].Delete {
		// Epoch stamp: a dedicated record type, so logs written before
		// epochs existed replay unchanged and followers can't mistake the
		// sentinel for data.
		hdrAt := len(page)
		page = append(page, make([]byte, headerSize)...)
		payloadAt := len(page)
		page = append(page, opEpoch)
		page = append(page, ops[0].Value[:8]...)
		binary.LittleEndian.PutUint32(page[hdrAt:hdrAt+4], uint32(len(page)-payloadAt))
		binary.LittleEndian.PutUint32(page[hdrAt+4:hdrAt+8], crc32.ChecksumIEEE(page[payloadAt:]))
		return page
	}
	var payloadLen int
	if len(ops) == 1 {
		payloadLen = 5 + len(ops[0].Key) + len(ops[0].Value)
		if ops[0].Delete {
			payloadLen = 5 + len(ops[0].Key)
		}
	} else {
		payloadLen = 5
		for i := range ops {
			payloadLen += 9 + len(ops[i].Key)
			if !ops[i].Delete {
				payloadLen += len(ops[i].Value)
			}
		}
	}
	hdrAt := len(page)
	page = append(page, make([]byte, headerSize)...)
	payloadAt := len(page)
	if len(ops) == 1 {
		op := &ops[0]
		kind := opPut
		if op.Delete {
			kind = opDelete
		}
		page = append(page, kind)
		page = binary.LittleEndian.AppendUint32(page, uint32(len(op.Key)))
		page = append(page, op.Key...)
		if !op.Delete {
			page = append(page, op.Value...)
		}
	} else {
		page = append(page, opBatch)
		page = binary.LittleEndian.AppendUint32(page, uint32(len(ops)))
		for i := range ops {
			op := &ops[i]
			kind := opPut
			vlen := len(op.Value)
			if op.Delete {
				kind = opDelete
				vlen = 0
			}
			page = append(page, kind)
			page = binary.LittleEndian.AppendUint32(page, uint32(len(op.Key)))
			page = binary.LittleEndian.AppendUint32(page, uint32(vlen))
			page = append(page, op.Key...)
			if !op.Delete {
				page = append(page, op.Value...)
			}
		}
	}
	binary.LittleEndian.PutUint32(page[hdrAt:hdrAt+4], uint32(payloadLen))
	binary.LittleEndian.PutUint32(page[hdrAt+4:hdrAt+8], crc32.ChecksumIEEE(page[payloadAt:]))
	return page
}

// opsSize returns the encoded record size for ops (header included).
func opsSize(ops []Op) int {
	n := headerSize + 5
	if len(ops) == 1 {
		n += len(ops[0].Key)
		if !ops[0].Delete {
			n += len(ops[0].Value)
		}
		return n
	}
	for i := range ops {
		n += 9 + len(ops[i].Key)
		if !ops[i].Delete {
			n += len(ops[i].Value)
		}
	}
	return n
}

// applyOps applies committed ops to the in-memory map. Caller holds s.mu.
func (s *Store) applyOps(ops []Op) {
	for i := range ops {
		op := &ops[i]
		if op.Key == epochKey {
			if len(op.Value) == 8 {
				s.epoch.Store(binary.LittleEndian.Uint64(op.Value))
			}
			continue
		}
		if op.Delete {
			delete(s.data, op.Key)
			continue
		}
		cp := make([]byte, len(op.Value))
		copy(cp, op.Value)
		s.data[op.Key] = cp
	}
}

// commit enqueues w and blocks until its ops are durably committed (or
// fail). The first writer to find the queue leaderless becomes the leader:
// it drains the queue in bounded batches, writes each batch as one page,
// fsyncs once per page, applies the ops, and wakes the followers.
func (s *Store) commit(w *waiter) error {
	if s.f == nil {
		// In-memory store: no log, apply directly.
		s.mu.Lock()
		s.applyOps(w.ops)
		s.mu.Unlock()
		putWaiter(w)
		s.notifyCommit()
		return nil
	}
	s.qmu.Lock()
	s.pending = append(s.pending, w)
	if s.leading {
		s.qmu.Unlock()
		mWaiters.Inc()
		err := <-w.done
		mWaiters.Dec()
		putWaiter(w)
		return err
	}
	s.leading = true
	s.qmu.Unlock()

	if s.maxDelay > 0 {
		time.Sleep(s.maxDelay)
	}
	var myErr error
	for {
		s.qmu.Lock()
		n := len(s.pending)
		if n == 0 {
			s.leading = false
			s.drained.Broadcast()
			s.qmu.Unlock()
			break
		}
		if n > s.maxBatch {
			n = s.maxBatch
		}
		batch := append(s.batchBuf[:0], s.pending[:n]...)
		s.batchBuf = batch
		rest := copy(s.pending, s.pending[n:])
		for i := rest; i < len(s.pending); i++ {
			s.pending[i] = nil
		}
		s.pending = s.pending[:rest]
		s.qmu.Unlock()

		err := s.commitBatch(batch)
		for _, bw := range batch {
			if bw == w {
				// The leader's own waiter: just record the result. It must
				// NOT be recycled yet — if the pool handed it to another
				// caller while this loop is still draining, that caller's
				// waiter would alias w, match this pointer check in a later
				// batch, and never be woken.
				myErr = err
				continue
			}
			bw.done <- err
		}
	}
	putWaiter(w)
	return myErr
}

// commitBatch writes every waiter's record as one page, fsyncs once (if
// durable), and applies the ops. Holding fileMu across write+apply keeps
// log order identical to in-memory apply order; the fsync gates the apply
// so an acknowledged write is always durable and a failed sync acknowledges
// nothing.
func (s *Store) commitBatch(batch []*waiter) error {
	start := time.Now()
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.ioErr != nil {
		return fmt.Errorf("%w: %v", ErrFailed, s.ioErr)
	}
	page := s.pageBuf[:0]
	for _, w := range batch {
		page = appendRecordPage(page, w.ops)
	}
	s.pageBuf = page
	wstart := time.Now()
	if _, err := s.f.Write(page); err != nil {
		s.rollbackTail(err)
		return fmt.Errorf("kvstore: append: %w", err)
	}
	mAppendDur.Since(wstart)
	if s.sync {
		fstart := time.Now()
		if err := s.f.Sync(); err != nil {
			// The page reached the OS but its durability is unknown;
			// treating it as written after a failed fsync is the classic
			// path to acknowledged-write loss, so discard it.
			s.rollbackTail(err)
			return fmt.Errorf("kvstore: fsync: %w", err)
		}
		mFsyncDur.Since(fstart)
	}
	s.size += int64(len(page))
	if s.compacting {
		s.delta = append(s.delta, page...)
	}
	s.mu.Lock()
	for _, w := range batch {
		s.applyOps(w.ops)
	}
	s.mu.Unlock()
	mBatchSize.Observe(float64(len(batch)))
	mCommitDur.Since(start)
	s.notifyCommit()
	return nil
}

// rollbackTail discards a partially written (or written-but-possibly-not-
// durable) page after a failed append so the next append starts at a clean
// record boundary instead of landing after garbage — which would turn a
// recoverable torn tail into mid-log corruption. If the tail cannot be
// discarded the store is poisoned: further mutations return ErrFailed.
func (s *Store) rollbackTail(cause error) {
	mRollbacks.Inc()
	if err := s.f.Truncate(s.size); err != nil {
		s.ioErr = cause
		return
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		s.ioErr = cause
	}
}

// Put stores value under key, overwriting any previous value. The caller's
// value slice is only read until Put returns.
func (s *Store) Put(key string, value []byte) error {
	mOpPut.Inc()
	if s.closed.Load() {
		return ErrClosed
	}
	w := getWaiter()
	w.single[0] = Op{Key: key, Value: value}
	w.ops = w.single[:1]
	return s.commit(w)
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	mOpDelete.Inc()
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.RLock()
	_, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	w := getWaiter()
	w.single[0] = Op{Key: key, Delete: true}
	w.ops = w.single[:1]
	return s.commit(w)
}

// Apply commits ops as a single atomic batch: either every op is durable
// and visible, or none is. Replay of a torn or corrupt batch record at the
// log tail discards the whole batch, so multi-key commits need no
// compensating rollback. The ops slice and its values are only read until
// Apply returns. Batches whose encoded record would exceed the record size
// limit return ErrBatchTooLarge; callers should chunk.
func (s *Store) Apply(ops []Op) error {
	mOpApply.Inc()
	if s.closed.Load() {
		return ErrClosed
	}
	if len(ops) == 0 {
		return nil
	}
	if opsSize(ops) > maxRecordSize {
		return fmt.Errorf("%w: %d ops encode to %d bytes", ErrBatchTooLarge, len(ops), opsSize(ops))
	}
	w := getWaiter()
	w.ops = ops
	return s.commit(w)
}

// Epoch returns the replication leadership epoch last committed to (or
// replayed from, or shipped into) this store's log. Zero means the log has
// never been stamped — a store that has only ever had one leader.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// BumpEpoch durably stamps a new leadership epoch into the log. The epoch is
// a monotonic fencing token for replication: a freshly promoted leader bumps
// it as its first committed record, so the byte offset of the stamp marks
// exactly where histories may begin to diverge. The stamp rides the log as
// an ordinary record — group-committed, CRC-checked, shipped to followers by
// ReadLogRange, replayed on Open — so every node that reaches that offset
// learns the leadership change without any side channel. Epochs must grow:
// a stamp at or below the current epoch is rejected.
func (s *Store) BumpEpoch(epoch uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if cur := s.epoch.Load(); epoch <= cur {
		return fmt.Errorf("kvstore: epoch %d not beyond current epoch %d", epoch, cur)
	}
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], epoch)
	w := getWaiter()
	w.single[0] = Op{Key: epochKey, Value: v[:]}
	w.ops = w.single[:1]
	return s.commit(w)
}

// SetSync flips per-commit fsync on a live store. Replicas run with
// Sync:false (a crashed replica re-ships from its own offset, so it never
// needs fsync-gated acks of its own); promotion to leader flips it back on
// so acked writes regain the durability contract.
func (s *Store) SetSync(on bool) {
	s.fileMu.Lock()
	s.sync = on
	s.fileMu.Unlock()
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	mOpGet.Inc()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// ApproxMemBytes estimates the heap retained by the live key/value map:
// keys, values, and a rough 48-byte per-entry bucket overhead (the same
// heuristic the search indexes use, so lake tier reports add up).
func (s *Store) ApproxMemBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for k, v := range s.data {
		n += int64(len(k)) + 16 + int64(len(v)) + 24 + 48
	}
	return n
}

// Scan calls fn for every key with the given prefix, in sorted key order.
// Returning false from fn stops the scan. The matching entries are
// snapshotted under the lock first and fn runs lock-free, so a callback may
// safely call back into the store (Get, Put, even Scan) without
// self-deadlocking; mutations made by the callback are not reflected in the
// snapshot being iterated. The value slice passed to fn must not be
// retained or modified.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	mOpScan.Inc()
	if s.closed.Load() {
		return ErrClosed
	}
	type kv struct {
		k string
		v []byte
	}
	s.mu.RLock()
	snap := make([]kv, 0, len(s.data))
	for k, v := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			snap = append(snap, kv{k, v})
		}
	}
	s.mu.RUnlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].k < snap[j].k })
	for i := range snap {
		if !fn(snap[i].k, snap[i].v) {
			return nil
		}
	}
	return nil
}

// Keys returns all live keys with the given prefix in sorted order.
func (s *Store) Keys(prefix string) []string {
	var out []string
	s.Scan(prefix, func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Compact rewrites the log so it contains exactly the live records. It is a
// no-op for in-memory stores.
//
// The rewrite is non-blocking: the live map is snapshotted copy-on-write
// (value slices are never mutated in place, so sharing them is safe) and
// written to a temporary file while readers and writers keep running. Pages
// committed during the rewrite are captured in a delta and appended behind
// the snapshot — records carry full values, so replaying the delta over the
// snapshot is idempotent and yields exactly the live state. Only the final
// swap (delta append + fsync + rename + dir fsync) briefly holds the file
// lock.
func (s *Store) Compact() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.f == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}

	// Phase 0: start capturing concurrent commits *before* snapshotting, so
	// a commit that lands between the two is both in the snapshot and in
	// the delta (harmless) rather than in neither (lost).
	s.fileMu.Lock()
	s.compacting = true
	s.delta = s.delta[:0]
	s.fileMu.Unlock()
	finishCapture := func() {
		s.fileMu.Lock()
		s.compacting = false
		s.delta = s.delta[:0]
		s.fileMu.Unlock()
	}
	s.mu.RLock()
	snap := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		snap[k] = v
	}
	s.mu.RUnlock()

	// Phase 1: write the snapshot with no store locks held.
	tmpPath := s.path + compactSuffix
	tmp, err := s.fsys.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		finishCapture()
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	abort := func(cause error) error {
		tmp.Close()
		s.fsys.Remove(tmpPath)
		finishCapture()
		return cause
	}
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var newSize int64
	var page []byte
	// Re-stamp the current epoch first: the rewrite drops every historical
	// record, and the epoch must survive reopen. (Replicated leaders must
	// not Compact at all — see repl.go — but the epoch of a store that was
	// once promoted and later runs standalone still has to persist.)
	if e := s.epoch.Load(); e != 0 {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], e)
		page = appendRecordPage(page[:0], []Op{{Key: epochKey, Value: v[:]}})
		if _, err := tmp.Write(page); err != nil {
			return abort(fmt.Errorf("kvstore: compact write: %w", err))
		}
		newSize += int64(len(page))
	}
	for _, k := range keys {
		page = appendRecordPage(page[:0], []Op{{Key: k, Value: snap[k]}})
		if _, err := tmp.Write(page); err != nil {
			return abort(fmt.Errorf("kvstore: compact write: %w", err))
		}
		newSize += int64(len(page))
	}

	// Phase 2: freeze commits, flush the delta behind the snapshot, and
	// atomically swap the logs.
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.closed.Load() {
		s.fileMu.Unlock()
		err := abort(ErrClosed)
		s.fileMu.Lock()
		return err
	}
	if len(s.delta) > 0 {
		if _, err := tmp.Write(s.delta); err != nil {
			s.fileMu.Unlock()
			err = abort(fmt.Errorf("kvstore: compact delta write: %w", err))
			s.fileMu.Lock()
			return err
		}
		newSize += int64(len(s.delta))
	}
	s.compacting = false
	s.delta = s.delta[:0]
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fsys.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		s.fsys.Remove(tmpPath)
		return fmt.Errorf("kvstore: compact close: %w", err)
	}
	if err := s.f.Close(); err != nil {
		s.fsys.Remove(tmpPath)
		return s.reopenLog(fmt.Errorf("kvstore: close old log: %w", err))
	}
	if err := s.fsys.Rename(tmpPath, s.path); err != nil {
		// The old log is still in place and complete; reopen it so the
		// store keeps serving, and surface the failed compaction.
		s.fsys.Remove(tmpPath)
		return s.reopenLog(fmt.Errorf("kvstore: swap compacted log: %w", err))
	}
	// Fsync the parent directory: without it a crash after the rename can
	// resurrect the old log, silently undoing the compaction.
	if err := s.fsys.SyncDir(filepath.Dir(s.path)); err != nil {
		return s.reopenLog(fmt.Errorf("kvstore: sync log directory: %w", err))
	}
	f, err := s.fsys.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: reopen after compact: %w", err)
	}
	s.f = f
	s.size = newSize
	// A completed compaction rewrote the log from in-memory state, so any
	// earlier unrecoverable append failure is repaired.
	s.ioErr = nil
	return nil
}

// reopenLog restores an open append handle on the current log after a
// failed compaction step, so the store stays usable. The original cause is
// returned; if even the reopen fails the store is poisoned.
func (s *Store) reopenLog(cause error) error {
	f, err := s.fsys.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		s.ioErr = cause
		return fmt.Errorf("%w (and reopen failed: %v)", cause, err)
	}
	s.f = f
	if fi, err := f.Stat(); err == nil {
		s.size = fi.Size()
	}
	return cause
}

// Close drains in-flight commits, fsyncs, and closes the store. The final
// fsync runs even when the store was opened with Sync: false, so a clean
// Close is always replay-equivalent: every acknowledged write is on disk.
// Further operations return ErrClosed.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// New writers now fail fast; wait for the active leader (if any) to
	// drain every waiter that was already enqueued.
	s.qmu.Lock()
	for s.leading || len(s.pending) > 0 {
		s.drained.Wait()
	}
	s.qmu.Unlock()
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.f != nil {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return fmt.Errorf("kvstore: sync on close: %w", err)
		}
		return s.f.Close()
	}
	return nil
}

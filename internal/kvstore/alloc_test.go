package kvstore

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// Allocation regressions on the group-commit hot path. The budgets are
// deliberately loose (the point is catching a pooled waiter or reused page
// buffer silently becoming per-call garbage, not squeezing the last alloc),
// and the tests skip under the race detector, whose instrumentation adds its
// own allocations.

func TestPutAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 128)
	key := "hot-key"
	s.Put(key, val) // warm the waiter pool and page buffer
	avg := testing.AllocsPerRun(200, func() {
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	})
	// Expected steady state: one value copy into the map, plus pool/queue
	// noise. Anything near ten means the waiter pool or page-buffer reuse
	// regressed.
	if avg > 6 {
		t.Fatalf("Put allocates %.1f times per call; hot-path reuse regressed", avg)
	}
}

func TestApplyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 64)
	ops := make([]Op, 16)
	for i := range ops {
		ops[i] = Op{Key: fmt.Sprintf("k%02d", i), Value: val}
	}
	s.Apply(ops) // warm
	avg := testing.AllocsPerRun(200, func() {
		if err := s.Apply(ops); err != nil {
			t.Fatal(err)
		}
	})
	// One copy per op into the map plus constant overhead; a per-op budget
	// blowup (e.g. re-encoding into a fresh page every call) trips this.
	if avg > float64(len(ops))+8 {
		t.Fatalf("Apply(16 ops) allocates %.1f times per call", avg)
	}
}

func TestGetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	s := OpenMemory()
	defer s.Close()
	s.Put("k", bytes.Repeat([]byte("v"), 128))
	avg := testing.AllocsPerRun(200, func() {
		if _, err := s.Get("k"); err != nil {
			t.Fatal(err)
		}
	})
	// Get copies the value out: one allocation.
	if avg > 2 {
		t.Fatalf("Get allocates %.1f times per call", avg)
	}
}

package kvstore

// Offline log-file helpers for cluster failover. Both operate on a log file
// directly, with no open Store: promotion drains a dead leader's log after
// its store closed, and a deposed leader truncates its tail before its store
// reopens.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"modellake/internal/fault"
)

// ReadLogFile returns a page of CRC-valid whole records from the log file at
// path, starting at byte offset from and reading roughly maxBytes. It is
// ReadLogRange for a store that is no longer open — the leader half of a
// promotion drain. Scanning stops (without error) at the first torn or
// corrupt record, mirroring replay's torn-tail tolerance, so successive
// calls walk exactly the records a reopened store would recover. An empty
// page means no complete record exists at from: the reader is caught up.
func ReadLogFile(fsys *fault.FS, path string, from int64, maxBytes int) ([]byte, error) {
	if from < 0 {
		return nil, fmt.Errorf("%w: offset %d", ErrOffsetOutOfRange, from)
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open log: %w", err)
	}
	defer f.Close()
	var page []byte
	off := from
	hdr := make([]byte, headerSize)
	for len(page) < maxBytes {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break // EOF or torn header: end of recoverable records
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen > maxRecordSize {
			break
		}
		rec := make([]byte, headerSize+int(payloadLen))
		copy(rec, hdr)
		if _, err := f.ReadAt(rec[headerSize:], off+headerSize); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(rec[headerSize:]) != wantCRC {
			break // torn or corrupt tail record
		}
		page = append(page, rec...)
		off += int64(len(rec))
	}
	return page, nil
}

// TruncateLogAt truncates the log file at path to exactly off bytes,
// refusing unless off lands on a record boundary. It is the rejoin half of
// leader promotion: a deposed leader discards everything past the offset at
// which the new epoch began before reopening as a follower, so its log stays
// a byte prefix of the new leader's instead of forking. A file already at or
// below off is left alone — a shorter log only means the node was behind,
// and shipping fills the gap.
func TruncateLogAt(fsys *fault.FS, path string, off int64) error {
	if off < 0 {
		return fmt.Errorf("kvstore: truncate log to negative offset %d", off)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: open log: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("kvstore: stat log: %w", err)
	}
	if fi.Size() <= off {
		return nil
	}
	// Walk record boundaries from the head to prove off is one; cutting
	// mid-record would manufacture the torn tail this function exists to
	// remove.
	hdr := make([]byte, headerSize)
	var pos int64
	for pos < off {
		if _, err := f.ReadAt(hdr, pos); err != nil {
			return fmt.Errorf("kvstore: scan log at offset %d: %w", pos, err)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		if payloadLen > maxRecordSize {
			return fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, payloadLen, pos)
		}
		pos += headerSize + int64(payloadLen)
	}
	if pos != off {
		return fmt.Errorf("kvstore: offset %d is not a record boundary (records end at %d)", off, pos)
	}
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("kvstore: truncate log: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("kvstore: sync truncated log: %w", err)
	}
	return nil
}

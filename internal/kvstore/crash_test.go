package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"modellake/internal/fault"
)

// The crash-window sweep: run a fixed workload once under a fault.Recorder
// to enumerate every IO operation it performs, then replay it once per
// operation with that operation failing. After each faulted run the store
// is reopened fault-free and must contain exactly the acknowledged
// mutations — a failed append may lose the unacknowledged record, but never
// an acknowledged one, and never the log.

// outcome tracks what the workload observed: acked mutations (the store
// said yes) and unacked attempts (the store said no — which, like any
// storage system without a real crash+media loss, may still have reached
// the disk). The recovery contract is asymmetric: acked state must survive
// exactly; unacked attempts may or may not have applied; anything else is
// corruption.
type outcome struct {
	acked          map[string][]byte
	unackedPuts    map[string][]byte
	unackedDeletes map[string]bool
}

func newOutcome() *outcome {
	return &outcome{
		acked:          map[string][]byte{},
		unackedPuts:    map[string][]byte{},
		unackedDeletes: map[string]bool{},
	}
}

// crashWorkload drives a store through puts, a delete, a compaction, and a
// post-compaction put, recording acked vs unacked mutations.
func crashWorkload(s *Store, o *outcome) {
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte('a' + i)}, 16+i)
		if s.Put(k, v) == nil {
			o.acked[k] = v
		} else {
			o.unackedPuts[k] = v
		}
	}
	if s.Delete("key-01") == nil {
		delete(o.acked, "key-01")
	} else {
		o.unackedDeletes["key-01"] = true
	}
	s.Compact() // failure leaves live state untouched; success preserves it
	if k, v := "post-compact", []byte("late write"); s.Put(k, v) == nil {
		o.acked[k] = v
	} else {
		o.unackedPuts[k] = v
	}
}

// countWorkloadOps runs the workload fault-free under a Recorder and
// returns how many IO operations it performs.
func countWorkloadOps(t *testing.T) int {
	t.Helper()
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "probe.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	crashWorkload(s, newOutcome())
	s.Close()
	return len(rec.Ops())
}

// verifyRecovered reopens the store fault-free and checks the recovery
// contract against the observed outcome: every acked key present with its
// acked value (unless an unacked delete targeted it), every other surviving
// key explainable as an unacked put with exactly the attempted bytes, and
// nothing else — zero silent loss, zero corruption.
func verifyRecovered(t *testing.T, path string, o *outcome) {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after single fault must succeed, got: %v", err)
	}
	defer s.Close()
	for k, v := range o.acked {
		got, err := s.Get(k)
		if err != nil {
			if o.unackedDeletes[k] {
				continue // an unacked delete may still have applied
			}
			t.Fatalf("acknowledged key %q lost: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("acknowledged key %q corrupted: %q != %q", k, got, v)
		}
	}
	err = s.Scan("", func(k string, got []byte) bool {
		if v, ok := o.acked[k]; ok {
			if !bytes.Equal(got, v) {
				t.Fatalf("key %q corrupted: %q != %q", k, got, v)
			}
			return true
		}
		v, ok := o.unackedPuts[k]
		if !ok {
			t.Fatalf("recovered key %q was never written", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("unacked key %q surfaced with corrupt value %q", k, got)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func runFaultSweep(t *testing.T, inject func(i int) *fault.Script) {
	t.Helper()
	n := countWorkloadOps(t)
	if n < 20 {
		t.Fatalf("workload exercised only %d IO ops; sweep too small", n)
	}
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			s, err := Open(path, Options{Sync: true, FS: fault.New(inject(i))})
			if err != nil {
				// The fault hit Open itself: nothing was acknowledged, and
				// a fresh open must find an empty-but-healthy store.
				verifyRecovered(t, path, newOutcome())
				return
			}
			o := newOutcome()
			crashWorkload(s, o)
			s.Close() // may fail under the injector; recovery is what matters
			verifyRecovered(t, path, o)
		})
	}
}

func TestCrashSweepCleanFaults(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i}
	})
}

func TestCrashSweepTornWrites(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Torn: 5}
	})
}

// TestCrashSweepStickyDisk models a disk that breaks and stays broken: the
// store must fail every subsequent mutation loudly (possibly via ErrFailed
// poisoning) and still reopen with every previously acknowledged write.
func TestCrashSweepStickyDisk(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Sticky: true, Torn: 3}
	})
}

// TestFailedAppendDoesNotCorruptLaterWrites pins the recovery rollbackTail
// provides: a torn append followed by more (successful) appends must not
// leave garbage mid-log, which replay would surface as ErrCorrupt.
func TestFailedAppendDoesNotCorruptLaterWrites(t *testing.T) {
	inj := &fault.Script{FailAt: 2, Torn: 7, Match: fault.MatchOps(fault.OpWrite)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("second")); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if err := s.Put("c", []byte("third")); err != nil {
		t.Fatalf("append after rolled-back fault failed: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["a"] = []byte("first")
	o.acked["c"] = []byte("third")
	o.unackedPuts["b"] = []byte("second")
	verifyRecovered(t, path, o)
}

// TestSyncFailureNotAcknowledged pins the fsync-gate rule: a record whose
// fsync failed must not be acknowledged, and must not surface after reopen
// as if it had been.
func TestSyncFailureNotAcknowledged(t *testing.T) {
	inj := &fault.Script{FailAt: 2, Match: fault.MatchOps(fault.OpSync)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("phantom", []byte("no")); err == nil {
		t.Fatal("fsync failure acknowledged a write")
	}
	if _, err := s.Get("phantom"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unacknowledged write visible in memory: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["durable"] = []byte("yes")
	o.unackedPuts["phantom"] = []byte("no")
	verifyRecovered(t, path, o)
}

// TestCompactRenameFailureKeepsServing: a failed log swap must leave the
// store on its original, complete log — readable and writable.
func TestCompactRenameFailureKeepsServing(t *testing.T) {
	inj := &fault.Script{FailAt: 1, Match: fault.MatchOps(fault.OpRename)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("injected rename fault did not surface")
	}
	if got, err := s.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("store lost data after failed compact: %v %q", err, got)
	}
	if err := s.Put("k2", []byte("v2")); err != nil {
		t.Fatalf("store not writable after failed compact: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["k"] = []byte("v")
	o.acked["k2"] = []byte("v2")
	verifyRecovered(t, path, o)
}

// TestCompactFsyncsParentDirectory pins the durability-gap fix: Compact
// must fsync the log's directory after the rename, closing the window where
// a crash resurrects the pre-compaction log.
func TestCompactFsyncsParentDirectory(t *testing.T) {
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	renameAt, syncDirAt := -1, -1
	for i, op := range rec.Ops() {
		switch op.Op {
		case fault.OpRename:
			renameAt = i
		case fault.OpSyncDir:
			syncDirAt = i
		}
	}
	if renameAt == -1 {
		t.Fatal("compact performed no rename")
	}
	if syncDirAt < renameAt {
		t.Fatalf("no directory fsync after rename (rename at %d, syncdir at %d)", renameAt, syncDirAt)
	}
}

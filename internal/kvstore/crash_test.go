package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/fault"
)

// The crash-window sweep: run a fixed workload once under a fault.Recorder
// to enumerate every IO operation it performs, then replay it once per
// operation with that operation failing. After each faulted run the store
// is reopened fault-free and must contain exactly the acknowledged
// mutations — a failed append may lose the unacknowledged record, but never
// an acknowledged one, and never the log.

// outcome tracks what the workload observed: acked mutations (the store
// said yes) and unacked attempts (the store said no — which, like any
// storage system without a real crash+media loss, may still have reached
// the disk). The recovery contract is asymmetric: acked state must survive
// exactly; unacked attempts may or may not have applied; anything else is
// corruption.
type outcome struct {
	acked          map[string][]byte
	unackedPuts    map[string][]byte
	unackedDeletes map[string]bool
}

func newOutcome() *outcome {
	return &outcome{
		acked:          map[string][]byte{},
		unackedPuts:    map[string][]byte{},
		unackedDeletes: map[string]bool{},
	}
}

// crashWorkload drives a store through puts, a delete, a compaction, and a
// post-compaction put, recording acked vs unacked mutations.
func crashWorkload(s *Store, o *outcome) {
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte('a' + i)}, 16+i)
		if s.Put(k, v) == nil {
			o.acked[k] = v
		} else {
			o.unackedPuts[k] = v
		}
	}
	if s.Delete("key-01") == nil {
		delete(o.acked, "key-01")
	} else {
		o.unackedDeletes["key-01"] = true
	}
	s.Compact() // failure leaves live state untouched; success preserves it
	if k, v := "post-compact", []byte("late write"); s.Put(k, v) == nil {
		o.acked[k] = v
	} else {
		o.unackedPuts[k] = v
	}
}

// countWorkloadOps runs the workload fault-free under a Recorder and
// returns how many IO operations it performs.
func countWorkloadOps(t *testing.T) int {
	t.Helper()
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "probe.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	crashWorkload(s, newOutcome())
	s.Close()
	return len(rec.Ops())
}

// verifyRecovered reopens the store fault-free and checks the recovery
// contract against the observed outcome: every acked key present with its
// acked value (unless an unacked delete targeted it), every other surviving
// key explainable as an unacked put with exactly the attempted bytes, and
// nothing else — zero silent loss, zero corruption.
func verifyRecovered(t *testing.T, path string, o *outcome) {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after single fault must succeed, got: %v", err)
	}
	defer s.Close()
	for k, v := range o.acked {
		got, err := s.Get(k)
		if err != nil {
			if o.unackedDeletes[k] {
				continue // an unacked delete may still have applied
			}
			t.Fatalf("acknowledged key %q lost: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("acknowledged key %q corrupted: %q != %q", k, got, v)
		}
	}
	err = s.Scan("", func(k string, got []byte) bool {
		if v, ok := o.acked[k]; ok {
			if !bytes.Equal(got, v) {
				t.Fatalf("key %q corrupted: %q != %q", k, got, v)
			}
			return true
		}
		v, ok := o.unackedPuts[k]
		if !ok {
			t.Fatalf("recovered key %q was never written", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("unacked key %q surfaced with corrupt value %q", k, got)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func runFaultSweep(t *testing.T, inject func(i int) *fault.Script) {
	t.Helper()
	n := countWorkloadOps(t)
	if n < 20 {
		t.Fatalf("workload exercised only %d IO ops; sweep too small", n)
	}
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			s, err := Open(path, Options{Sync: true, FS: fault.New(inject(i))})
			if err != nil {
				// The fault hit Open itself: nothing was acknowledged, and
				// a fresh open must find an empty-but-healthy store.
				verifyRecovered(t, path, newOutcome())
				return
			}
			o := newOutcome()
			crashWorkload(s, o)
			s.Close() // may fail under the injector; recovery is what matters
			verifyRecovered(t, path, o)
		})
	}
}

func TestCrashSweepCleanFaults(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i}
	})
}

func TestCrashSweepTornWrites(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Torn: 5}
	})
}

// TestCrashSweepStickyDisk models a disk that breaks and stays broken: the
// store must fail every subsequent mutation loudly (possibly via ErrFailed
// poisoning) and still reopen with every previously acknowledged write.
func TestCrashSweepStickyDisk(t *testing.T) {
	runFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Sticky: true, Torn: 3}
	})
}

// TestFailedAppendDoesNotCorruptLaterWrites pins the recovery rollbackTail
// provides: a torn append followed by more (successful) appends must not
// leave garbage mid-log, which replay would surface as ErrCorrupt.
func TestFailedAppendDoesNotCorruptLaterWrites(t *testing.T) {
	inj := &fault.Script{FailAt: 2, Torn: 7, Match: fault.MatchOps(fault.OpWrite)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("second")); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if err := s.Put("c", []byte("third")); err != nil {
		t.Fatalf("append after rolled-back fault failed: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["a"] = []byte("first")
	o.acked["c"] = []byte("third")
	o.unackedPuts["b"] = []byte("second")
	verifyRecovered(t, path, o)
}

// TestSyncFailureNotAcknowledged pins the fsync-gate rule: a record whose
// fsync failed must not be acknowledged, and must not surface after reopen
// as if it had been.
func TestSyncFailureNotAcknowledged(t *testing.T) {
	inj := &fault.Script{FailAt: 2, Match: fault.MatchOps(fault.OpSync)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("phantom", []byte("no")); err == nil {
		t.Fatal("fsync failure acknowledged a write")
	}
	if _, err := s.Get("phantom"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unacknowledged write visible in memory: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["durable"] = []byte("yes")
	o.unackedPuts["phantom"] = []byte("no")
	verifyRecovered(t, path, o)
}

// TestCompactRenameFailureKeepsServing: a failed log swap must leave the
// store on its original, complete log — readable and writable.
func TestCompactRenameFailureKeepsServing(t *testing.T) {
	inj := &fault.Script{FailAt: 1, Match: fault.MatchOps(fault.OpRename)}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("injected rename fault did not surface")
	}
	if got, err := s.Get("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("store lost data after failed compact: %v %q", err, got)
	}
	if err := s.Put("k2", []byte("v2")); err != nil {
		t.Fatalf("store not writable after failed compact: %v", err)
	}
	s.Close()
	o := newOutcome()
	o.acked["k"] = []byte("v")
	o.acked["k2"] = []byte("v2")
	verifyRecovered(t, path, o)
}

// TestCompactFsyncsParentDirectory pins the durability-gap fix: Compact
// must fsync the log's directory after the rename, closing the window where
// a crash resurrects the pre-compaction log.
func TestCompactFsyncsParentDirectory(t *testing.T) {
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	renameAt, syncDirAt := -1, -1
	for i, op := range rec.Ops() {
		switch op.Op {
		case fault.OpRename:
			renameAt = i
		case fault.OpSyncDir:
			syncDirAt = i
		}
	}
	if renameAt == -1 {
		t.Fatal("compact performed no rename")
	}
	if syncDirAt < renameAt {
		t.Fatalf("no directory fsync after rename (rename at %d, syncdir at %d)", renameAt, syncDirAt)
	}
}

// --- Batch-workload sweeps -------------------------------------------------

// batchOutcome tracks Apply batches by acknowledgement. The batch contract is
// stricter than per-key recovery: an acked batch survives whole; an unacked
// batch surfaces either whole or not at all — never a partial application.
type batchOutcome struct {
	acked   [][]Op
	unacked [][]Op
}

// crashWorkloadBatch drives a store through atomic batches (including
// deletes), a compaction, and a post-compaction batch.
func crashWorkloadBatch(s *Store, o *batchOutcome) {
	record := func(ops []Op) {
		if s.Apply(ops) == nil {
			o.acked = append(o.acked, ops)
		} else {
			o.unacked = append(o.unacked, ops)
		}
	}
	for i := 0; i < 4; i++ {
		record([]Op{
			{Key: fmt.Sprintf("b%d/x", i), Value: bytes.Repeat([]byte{byte('a' + i)}, 12)},
			{Key: fmt.Sprintf("b%d/y", i), Value: bytes.Repeat([]byte{byte('A' + i)}, 12)},
		})
	}
	// A batch that deletes keys written by an earlier batch.
	record([]Op{
		{Key: "b0/x", Delete: true},
		{Key: "b0/z", Value: []byte("replacement")},
	})
	s.Compact()
	record([]Op{
		{Key: "post/x", Value: []byte("late-1")},
		{Key: "post/y", Value: []byte("late-2")},
	})
}

// verifyBatchAtomicity reopens fault-free and checks that no batch applied
// partially: acked batches are fully present (their final effect, honoring
// later acked overwrites/deletes), and every unacked batch is either fully
// absent or fully present.
func verifyBatchAtomicity(t *testing.T, path string, o *batchOutcome) {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after single fault must succeed, got: %v", err)
	}
	defer s.Close()

	// Expected final state from acked batches, applied in order.
	want := map[string][]byte{}
	for _, ops := range o.acked {
		for _, op := range ops {
			if op.Delete {
				delete(want, op.Key)
			} else {
				want[op.Key] = op.Value
			}
		}
	}
	// Keys an unacked batch may legitimately have touched.
	maybe := map[string]bool{}
	for _, ops := range o.unacked {
		for _, op := range ops {
			maybe[op.Key] = true
		}
	}
	for k, v := range want {
		got, err := s.Get(k)
		if err != nil {
			if maybe[k] {
				continue // an unacked later batch may have deleted it
			}
			t.Fatalf("acked batch key %q lost: %v", k, err)
		}
		if !bytes.Equal(got, v) && !maybe[k] {
			t.Fatalf("acked batch key %q corrupted: %q != %q", k, got, v)
		}
	}
	// Unacked batches must be all-or-nothing (modulo keys later rewritten by
	// acked batches, which make presence ambiguous — skip those).
	for _, ops := range o.unacked {
		present, absent := 0, 0
		for _, op := range ops {
			if op.Delete {
				continue // absence of a deleted key is ambiguous
			}
			if _, overwritten := want[op.Key]; overwritten {
				continue
			}
			if got, err := s.Get(op.Key); err == nil && bytes.Equal(got, op.Value) {
				present++
			} else {
				absent++
			}
		}
		if present > 0 && absent > 0 {
			t.Fatalf("unacked batch applied partially: %d present, %d absent of %v", present, absent, ops)
		}
	}
}

func runBatchFaultSweep(t *testing.T, inject func(i int) *fault.Script) {
	t.Helper()
	rec := &fault.Recorder{}
	probe := filepath.Join(t.TempDir(), "probe.log")
	s, err := Open(probe, Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	crashWorkloadBatch(s, &batchOutcome{})
	s.Close()
	n := len(rec.Ops())
	if n < 10 {
		t.Fatalf("batch workload exercised only %d IO ops; sweep too small", n)
	}
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			s, err := Open(path, Options{Sync: true, FS: fault.New(inject(i))})
			if err != nil {
				verifyBatchAtomicity(t, path, &batchOutcome{})
				return
			}
			o := &batchOutcome{}
			crashWorkloadBatch(s, o)
			s.Close()
			verifyBatchAtomicity(t, path, o)
		})
	}
}

// TestCrashSweepBatchCleanFaults sweeps clean IO failures across an
// Apply-heavy workload: every batch must recover all-or-nothing.
func TestCrashSweepBatchCleanFaults(t *testing.T) {
	runBatchFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i}
	})
}

// TestCrashSweepBatchTornWrites tears each write mid-page: a torn batch
// record must drop the whole batch at replay, never a suffix of its ops.
func TestCrashSweepBatchTornWrites(t *testing.T) {
	runBatchFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Torn: 11}
	})
}

// TestCrashSweepBatchFsyncFaults fails each fsync in turn — the
// fsync-at-Nth-op window: a batch whose fsync failed was never acknowledged
// and must not partially surface after reopen.
func TestCrashSweepBatchFsyncFaults(t *testing.T) {
	runBatchFaultSweep(t, func(i int) *fault.Script {
		return &fault.Script{FailAt: i, Match: fault.MatchOps(fault.OpSync)}
	})
}

// TestCrashSweepMidCompact targets the compaction machinery specifically:
// every write, rename, sync, and directory-fsync reachable from Compact
// fails in turn, and the store must keep serving the pre-compaction state.
func TestCrashSweepMidCompact(t *testing.T) {
	match := func(op fault.Op, path string) bool {
		switch op {
		case fault.OpWrite, fault.OpRename, fault.OpSync, fault.OpSyncDir, fault.OpClose, fault.OpOpen:
			return strings.HasSuffix(path, compactSuffix) ||
				op == fault.OpRename || op == fault.OpSyncDir
		}
		return false
	}
	// Count matching ops in a fault-free run.
	rec := &fault.Recorder{}
	probe := filepath.Join(t.TempDir(), "probe.log")
	s, err := Open(probe, Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	crashWorkloadBatch(s, &batchOutcome{})
	s.Close()
	n := 0
	for _, op := range rec.Ops() {
		if match(op.Op, op.Path) {
			n++
		}
	}
	if n < 3 {
		t.Fatalf("compact path exercised only %d matching ops", n)
	}
	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			inj := &fault.Script{FailAt: i, Match: match}
			s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
			if err != nil {
				verifyBatchAtomicity(t, path, &batchOutcome{})
				return
			}
			o := &batchOutcome{}
			crashWorkloadBatch(s, o)
			s.Close()
			verifyBatchAtomicity(t, path, o)
		})
	}
}

package kvstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEpochDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", got)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.BumpEpoch(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 3 {
		t.Fatalf("epoch after bump = %d, want 3", got)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Epoch(); got != 3 {
		t.Fatalf("epoch after reopen = %d, want 3", got)
	}
	// The epoch sentinel must never leak into the data namespace.
	if _, err := s2.Get(epochKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(epochKey) = %v, want ErrNotFound", err)
	}
	for k, v := range map[string]string{"a": "1", "b": "2"} {
		got, err := s2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v", k, got, err)
		}
	}
}

func TestBumpEpochRejectsNonMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.BumpEpoch(2); err != nil {
		t.Fatal(err)
	}
	if err := s.BumpEpoch(2); err == nil {
		t.Fatal("BumpEpoch(2) twice succeeded; epochs must be strictly increasing")
	}
	if err := s.BumpEpoch(1); err == nil {
		t.Fatal("BumpEpoch(1) after 2 succeeded; epochs must be strictly increasing")
	}
	if err := s.BumpEpoch(7); err != nil {
		t.Fatalf("BumpEpoch(7) after 2: %v", err)
	}
	if got := s.Epoch(); got != 7 {
		t.Fatalf("epoch = %d, want 7", got)
	}
}

func TestEpochShipsToFollower(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(filepath.Join(dir, "leader.log"), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(filepath.Join(dir, "follower.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	if err := leader.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := leader.BumpEpoch(5); err != nil {
		t.Fatal(err)
	}
	for follower.CommitOffset() < leader.CommitOffset() {
		page, err := leader.ReadLogRange(follower.CommitOffset(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		if err := follower.ApplyPage(page); err != nil {
			t.Fatal(err)
		}
	}
	if got := follower.Epoch(); got != 5 {
		t.Fatalf("follower epoch = %d, want 5 (epoch record did not ship)", got)
	}
	if v, err := follower.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("follower Get(k) = %q, %v", v, err)
	}
}

func TestCompactPreservesEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BumpEpoch(9); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 9 {
		t.Fatalf("epoch after compact = %d, want 9", got)
	}
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Epoch(); got != 9 {
		t.Fatalf("epoch after compact+reopen = %d, want 9 (re-stamp lost)", got)
	}
}

func TestReadLogFileWalksRecordsAndStopsAtTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	end := s.CommitOffset()
	s.Close()

	// Whole log reads back as one page of exactly the committed bytes.
	page, err := ReadLogFile(nil, path, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(page)) != end {
		t.Fatalf("ReadLogFile returned %d bytes, want %d", len(page), end)
	}
	// Reading at the end is a clean empty page: caught up.
	page, err = ReadLogFile(nil, path, end, 1<<20)
	if err != nil || len(page) != 0 {
		t.Fatalf("ReadLogFile at end = %d bytes, %v; want empty, nil", len(page), err)
	}

	// A torn record past the end must not surface.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3, 4, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	page, err = ReadLogFile(nil, path, end, 1<<20)
	if err != nil || len(page) != 0 {
		t.Fatalf("ReadLogFile over torn tail = %d bytes, %v; want empty, nil", len(page), err)
	}

	// The drained page must replay into an identical store.
	page, err = ReadLogFile(nil, path, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Open(filepath.Join(t.TempDir(), "f.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.ApplyPage(page); err != nil {
		t.Fatalf("ApplyPage of drained log: %v", err)
	}
	for k, v := range map[string]string{"a": "1", "b": "2"} {
		got, err := f2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("replayed Get(%s) = %q, %v", k, got, err)
		}
	}
}

func TestTruncateLogAtValidatesBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	first := s.CommitOffset()
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	end := s.CommitOffset()
	s.Close()

	// Mid-record offsets are refused.
	if err := TruncateLogAt(nil, path, first+1); err == nil {
		t.Fatal("TruncateLogAt mid-record succeeded, want boundary error")
	}
	// Offsets at or past the size are a no-op.
	if err := TruncateLogAt(nil, path, end+100); err != nil {
		t.Fatalf("TruncateLogAt past end: %v", err)
	}
	if fi, _ := os.Stat(path); fi.Size() != end {
		t.Fatalf("no-op truncate changed size to %d, want %d", fi.Size(), end)
	}
	// A record boundary truncates, and the survivor still opens cleanly.
	if err := TruncateLogAt(nil, path, first); err != nil {
		t.Fatalf("TruncateLogAt at boundary: %v", err)
	}
	if fi, _ := os.Stat(path); fi.Size() != first {
		t.Fatalf("truncated size %d, want %d", fi.Size(), first)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("Get(a) after truncate = %q, %v", v, err)
	}
	if _, err := s2.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(b) after truncate = %v, want ErrNotFound", err)
	}
}

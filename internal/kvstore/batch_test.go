package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"modellake/internal/fault"
)

// --- Apply semantics -------------------------------------------------------

func TestApplyAtomicBatchVisibleAndDurable(t *testing.T) {
	s, path := openTemp(t)
	s.Put("pre", []byte("old"))
	ops := []Op{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "pre", Delete: true},
		{Key: "c", Value: []byte("3")},
	}
	if err := s.Apply(ops); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store) {
		t.Helper()
		for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
			got, err := st.Get(k)
			if err != nil || string(got) != want {
				t.Fatalf("Get %q = %q, %v", k, got, err)
			}
		}
		if _, err := st.Get("pre"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("batched delete not applied: %v", err)
		}
	}
	check(s)
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2)
}

func TestApplyEmptyBatchIsNoOp(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Apply(nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("empty Apply grew the log to %d bytes", fi.Size())
	}
}

func TestApplySingleOpBatch(t *testing.T) {
	// A one-op batch uses the legacy record format; it must still round-trip.
	s, path := openTemp(t)
	if err := s.Apply([]Op{{Key: "solo", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get("solo"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestApplyBatchTooLarge(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	big := make([]byte, maxRecordSize/2)
	ops := []Op{
		{Key: "a", Value: big},
		{Key: "b", Value: big},
		{Key: "c", Value: big},
	}
	if err := s.Apply(ops); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: got %v, want ErrBatchTooLarge", err)
	}
	// The store must remain healthy after the rejection.
	if err := s.Put("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestApplyOnClosedStore(t *testing.T) {
	s := OpenMemory()
	s.Close()
	if err := s.Apply([]Op{{Key: "k", Value: []byte("v")}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply on closed store: %v", err)
	}
}

// TestTornBatchRecordDropsWholeBatch pins the all-or-nothing replay contract:
// a batch record torn at the log tail must lose every op in the batch, never
// a prefix of it.
func TestTornBatchRecordDropsWholeBatch(t *testing.T) {
	for _, chop := range []int{1, 5, 9, 20} {
		t.Run(fmt.Sprintf("chop-%d", chop), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			s, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("keep", []byte("safe")); err != nil {
				t.Fatal(err)
			}
			if err := s.Apply([]Op{
				{Key: "t1", Value: []byte("one")},
				{Key: "t2", Value: []byte("two")},
				{Key: "t3", Value: []byte("three")},
			}); err != nil {
				t.Fatal(err)
			}
			s.Close()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-chop], 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("torn batch tail should be tolerated: %v", err)
			}
			defer s2.Close()
			if got, err := s2.Get("keep"); err != nil || string(got) != "safe" {
				t.Fatalf("record before torn batch lost: %q, %v", got, err)
			}
			for _, k := range []string{"t1", "t2", "t3"} {
				if _, err := s2.Get(k); !errors.Is(err, ErrNotFound) {
					t.Fatalf("torn batch partially applied: %q survived (%v)", k, err)
				}
			}
		})
	}
}

// TestCorruptBatchMidLogDetected: unlike a torn tail, a corrupt batch record
// with valid records after it is real corruption and must fail Open loudly.
func TestCorruptBatchMidLogDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply([]Op{
		{Key: "a", Value: bytes.Repeat([]byte("x"), 50)},
		{Key: "b", Value: bytes.Repeat([]byte("y"), 50)},
	}); err != nil {
		t.Fatal(err)
	}
	s.Put("later", []byte("v"))
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[30] ^= 0xff // inside the batch payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

// --- Scan re-entrancy ------------------------------------------------------

// TestScanCallbackMayCallStore pins the regression fixed alongside group
// commit: Scan snapshots under the lock and runs the callback lock-free, so
// a callback may call back into the store without self-deadlocking.
func TestScanCallbackMayCallStore(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Put("a/1", []byte("1"))
	s.Put("a/2", []byte("2"))
	visited := 0
	err := s.Scan("a/", func(k string, v []byte) bool {
		visited++
		if _, err := s.Get(k); err != nil {
			t.Errorf("Get inside Scan: %v", err)
		}
		if err := s.Put("b/"+k, v); err != nil {
			t.Errorf("Put inside Scan: %v", err)
		}
		s.Scan("a/", func(string, []byte) bool { return true })
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 2 {
		t.Fatalf("visited %d, want 2", visited)
	}
	if got := len(s.Keys("b/")); got != 2 {
		t.Fatalf("callback writes lost: %d", got)
	}
}

// --- Close durability ------------------------------------------------------

// TestCloseFsyncsWithoutSyncOption pins the Close contract: even a store
// opened with Sync: false must fsync its log before closing, so a clean
// shutdown never loses acknowledged writes to the page cache.
func TestCloseFsyncsWithoutSyncOption(t *testing.T) {
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: false, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	syncAt, closeAt := -1, -1
	for i, op := range ops {
		if !strings.HasSuffix(op.Path, "kv.log") {
			continue
		}
		switch op.Op {
		case fault.OpSync:
			syncAt = i
		case fault.OpClose:
			closeAt = i
		}
	}
	if closeAt == -1 {
		t.Fatal("Close never closed the log")
	}
	if syncAt == -1 || syncAt > closeAt {
		t.Fatalf("Close did not fsync before closing (sync at %d, close at %d)", syncAt, closeAt)
	}
}

// TestCloseReplayEquivalence: a store written with Sync: false and cleanly
// closed must replay to exactly the state it held in memory.
func TestCloseReplayEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%02d", i%37)
		v := fmt.Sprintf("v%d", i)
		switch i % 5 {
		case 4:
			s.Delete(k)
			delete(oracle, k)
		case 3:
			s.Apply([]Op{
				{Key: k, Value: []byte(v)},
				{Key: k + "-twin", Value: []byte(v)},
			})
			oracle[k] = v
			oracle[k+"-twin"] = v
		default:
			s.Put(k, []byte(v))
			oracle[k] = v
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(oracle) {
		t.Fatalf("replayed %d keys, want %d", s2.Len(), len(oracle))
	}
	for k, want := range oracle {
		got, err := s2.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("Get %q = %q, %v (want %q)", k, got, err, want)
		}
	}
}

// --- Crash leftovers -------------------------------------------------------

// TestLeftoverCompactFileRemovedOnOpen: a crash mid-compact leaves the
// rewrite target behind; Open must discard it and serve from the real log.
func TestLeftoverCompactFileRemovedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("real"))
	s.Close()
	// Simulate a crash that left a half-written compaction target.
	if err := os.WriteFile(path+compactSuffix, []byte("garbage snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get("k"); err != nil || string(got) != "real" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Fatal("leftover compact file not removed on Open")
	}
}

// --- Concurrent group commit under faults ----------------------------------

// TestConcurrentGroupCommitCrashSweep drives concurrent writers (so commits
// really coalesce into multi-record pages) against a sticky fault at every
// IO index in turn, then replays the log and checks the asymmetric recovery
// contract with thread-safe acked tracking: every acknowledged write is
// present with its exact value, and every surviving key is explainable as an
// acked or attempted write.
func TestConcurrentGroupCommitCrashSweep(t *testing.T) {
	const writers = 4
	const perWriter = 8
	workload := func(s *Store) (acked, attempted *sync.Map) {
		acked, attempted = &sync.Map{}, &sync.Map{}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					k := fmt.Sprintf("w%d/k%d", w, i)
					v := []byte(fmt.Sprintf("val-%d-%d", w, i))
					attempted.Store(k, v)
					if i%4 == 3 {
						ops := []Op{
							{Key: k, Value: v},
							{Key: k + "/pair", Value: v},
						}
						attempted.Store(k+"/pair", v)
						if s.Apply(ops) == nil {
							acked.Store(k, v)
							acked.Store(k+"/pair", v)
						}
					} else if s.Put(k, v) == nil {
						acked.Store(k, v)
					}
				}
			}(w)
		}
		wg.Wait()
		return acked, attempted
	}

	// Enumerate the fault points once, fault-free.
	rec := &fault.Recorder{}
	probe := filepath.Join(t.TempDir(), "probe.log")
	s, err := Open(probe, Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	workload(s)
	s.Close()
	n := len(rec.Ops())
	if n < 5 {
		t.Fatalf("workload exercised only %d IO ops", n)
	}
	// Sweep a spread of indices rather than all of them: concurrent runs do
	// not hit identical op counts, so exact enumeration buys nothing.
	for i := 1; i <= n; i += 3 {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.log")
			inj := &fault.Script{FailAt: i, Sticky: true, Torn: 4}
			s, err := Open(path, Options{Sync: true, FS: fault.New(inj)})
			if err != nil {
				return // fault hit Open; nothing acked
			}
			acked, attempted := workload(s)
			s.Close()

			s2, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("reopen after faulted run failed: %v", err)
			}
			defer s2.Close()
			acked.Range(func(k, v any) bool {
				got, err := s2.Get(k.(string))
				if err != nil {
					t.Fatalf("acknowledged key %q lost: %v", k, err)
				}
				if !bytes.Equal(got, v.([]byte)) {
					t.Fatalf("acknowledged key %q corrupted", k)
				}
				return true
			})
			s2.Scan("", func(k string, got []byte) bool {
				want, ok := attempted.Load(k)
				if !ok {
					t.Fatalf("recovered key %q was never written", k)
				}
				if !bytes.Equal(got, want.([]byte)) {
					t.Fatalf("key %q surfaced with corrupt value", k)
				}
				return true
			})
		})
	}
}

// TestGroupCommitLeaderWaiterReuse pins the fix for a lost-wakeup hang: the
// commit leader used to recycle its own waiter into the pool while still
// draining later batches, so a new caller could be handed the same waiter
// object, re-enter the queue, alias the leader's pointer-equality check, and
// never be woken. Small MaxBatch forces multi-batch leader loops; with the
// bug present this test hangs within a few rounds.
func TestGroupCommitLeaderWaiterReuse(t *testing.T) {
	for round := 0; round < 25; round++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("kv%d.log", round))
		s, err := Open(path, Options{Sync: true, MaxBatch: 4})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := s.Put(fmt.Sprintf("k%d-%d", w, i), []byte("v")); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if got := s.Len(); got != writers*20 {
			t.Fatalf("round %d: %d keys live, want %d", round, got, writers*20)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// --- Write-path benchmarks -------------------------------------------------

// BenchmarkPutSyncSerial is the pre-group-commit baseline shape: one writer,
// one fsync per record.
func BenchmarkPutSyncSerial(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i%1000), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutSyncParallel is where group commit earns its keep: concurrent
// writers pile up behind the in-flight fsync and ride out on one page.
func BenchmarkPutSyncParallel(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 256)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := s.Put(fmt.Sprintf("key%d", i%1000), val); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkApplyBatch commits 64-op batches: one record, one fsync, 64 keys.
func BenchmarkApplyBatch(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 256)
	ops := make([]Op, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = Op{Key: fmt.Sprintf("key%d", (i*64+j)%1000), Value: val}
		}
		if err := s.Apply(ops); err != nil {
			b.Fatal(err)
		}
	}
}

package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	// Deleting an absent key is fine.
	if err := s.Delete("missing"); err != nil {
		t.Fatal(err)
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2"))
	v, err := s.Get("k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q, %v", v, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'z'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	val := []byte("abc")
	s.Put("k", val)
	val[0] = 'z'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put aliased caller's slice")
	}
}

func TestReplayAfterReopen(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("key050")
	s.Put("key000", []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("reopened Len = %d, want 99", s2.Len())
	}
	if _, err := s2.Get("key050"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected after replay")
	}
	v, err := s2.Get("key000")
	if err != nil || string(v) != "updated" {
		t.Fatalf("Get key000 = %q, %v", v, err)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	s, path := openTemp(t)
	s.Put("good", []byte("value"))
	s.Put("torn", []byte("this record will be cut"))
	s.Close()

	// Chop bytes off the end to simulate a crash mid-append.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("good"); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	if _, err := s2.Get("torn"); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn record should be dropped")
	}
	// New writes must work after truncation.
	if err := s2.Put("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := s3.Get("after"); err != nil {
		t.Fatalf("write after torn-tail recovery lost: %v", err)
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	s, path := openTemp(t)
	s.Put("first", bytes.Repeat([]byte("a"), 100))
	s.Put("second", bytes.Repeat([]byte("b"), 100))
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	raw[20] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestScanPrefixOrder(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Put("model/b", []byte("2"))
	s.Put("model/a", []byte("1"))
	s.Put("model/c", []byte("3"))
	s.Put("prov/x", []byte("9"))
	var keys []string
	s.Scan("model/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"model/a", "model/b", "model/c"}
	if len(keys) != 3 {
		t.Fatalf("Scan visited %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Scan order %v, want %v", keys, want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), nil)
	}
	visited := 0
	s.Scan("k", func(k string, v []byte) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d, want 3", visited)
	}
}

func TestKeys(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Put("a/1", nil)
	s.Put("a/2", nil)
	s.Put("b/1", nil)
	ks := s.Keys("a/")
	if len(ks) != 2 || ks[0] != "a/1" || ks[1] != "a/2" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestCompactShrinksLog(t *testing.T) {
	s, path := openTemp(t)
	big := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 50; i++ {
		s.Put("same-key", big) // 50 overwrites: only the last survives
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	v, err := s.Get("same-key")
	if err != nil || !bytes.Equal(v, big) {
		t.Fatal("compact lost data")
	}
	// Store must remain writable and replayable after compaction.
	s.Put("post", []byte("1"))
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("post"); err != nil {
		t.Fatal("write after compact lost")
	}
	if _, err := s2.Get("same-key"); err != nil {
		t.Fatal("compacted key lost after reopen")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := OpenMemory()
	s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed store: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed store: %v", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete on closed store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close should be fine: %v", err)
	}
}

func TestSyncOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// Property: after an arbitrary workload, the store agrees with a plain map,
// both before and after a reopen.
func TestRandomWorkloadMatchesMap(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val []byte
		Del bool
	}) bool {
		path := filepath.Join(t.TempDir(), "kv.log")
		s, err := Open(path, Options{})
		if err != nil {
			return false
		}
		oracle := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				if err := s.Delete(key); err != nil {
					return false
				}
				delete(oracle, key)
			} else {
				if err := s.Put(key, op.Val); err != nil {
					return false
				}
				oracle[key] = op.Val
			}
		}
		check := func(st *Store) bool {
			if st.Len() != len(oracle) {
				return false
			}
			for k, want := range oracle {
				got, err := st.Get(k)
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
			return true
		}
		if !check(s) {
			return false
		}
		s.Close()
		s2, err := Open(path, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i%1000), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := OpenMemory()
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("key%d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key%d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i%20)
				switch i % 4 {
				case 0, 1:
					if err := s.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Error(err)
						return
					}
				case 2:
					s.Get(key)
				case 3:
					s.Scan(fmt.Sprintf("w%d/", w), func(k string, v []byte) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Every worker's keys are present with some value.
	for w := 0; w < 8; w++ {
		if got := len(s.Keys(fmt.Sprintf("w%d/", w))); got != 10 {
			t.Fatalf("worker %d has %d keys, want 10", w, got)
		}
	}
}

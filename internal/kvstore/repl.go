package kvstore

// WAL shipping. The append-only log already is a replication stream: every
// committed page is a run of self-delimiting, CRC32-checksummed records, and
// fsync-before-apply means everything at or below the durable size is safe
// to copy byte-for-byte. Replication therefore needs no second log format —
// a leader exposes its committed log as (offset, page) reads, and a follower
// appends the shipped pages to its own log and applies them through the same
// code path replay uses. A follower's log is always a byte-identical prefix
// of its leader's, so "where did I stop?" is just the follower's own commit
// offset, and a follower that restarts resumes shipping from its local log
// with no handshake state beyond that offset.
//
// Pull model: followers call ReadLogRange with their own offset; the leader
// never tracks who is following. CommitNotify lets a follower block until
// there may be new bytes instead of polling.
//
// Invariants:
//
//   - A follower store must receive mutations only via ApplyPage. Mixing in
//     direct Puts would keep the local store consistent but desynchronize
//     its offsets from the leader's, poisoning resume-from-own-offset.
//   - A replicated leader must not Compact: compaction rewrites the log in
//     place, so byte offsets stop addressing the records followers already
//     copied. A follower whose offset exceeds the (now shorter) log gets
//     ErrOffsetOutOfRange and must resync from scratch; an offset that
//     happens to still be in range would read different records, which the
//     per-record CRC cannot catch — hence the rule, not a runtime check.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Replication errors.
var (
	// ErrNoLog marks replication calls on an in-memory store, which has no
	// log to ship.
	ErrNoLog = errors.New("kvstore: in-memory store has no log")
	// ErrOffsetOutOfRange reports a follower offset beyond the leader's
	// durable log — the follower has diverged (e.g. the leader's log was
	// compacted or recreated) and must resync from offset 0 on a fresh store.
	ErrOffsetOutOfRange = errors.New("kvstore: replication offset out of range")
)

// CommitOffset returns the end offset of the last durably committed record:
// the point up to which the log is safe to ship. For an in-memory store it
// is always 0.
func (s *Store) CommitOffset() int64 {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return s.size
}

// CommitNotify returns a channel that receives (coalesced) after every
// committed page, including pages applied via ApplyPage. It is a wakeup
// hint, not a count: a follower should read its offset and call
// ReadLogRange after each receive, and still poll occasionally, since a
// notification concurrent with one already pending is dropped.
func (s *Store) CommitNotify() <-chan struct{} { return s.notify }

// notifyCommit posts a non-blocking wakeup to CommitNotify listeners.
func (s *Store) notifyCommit() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// ReadLogRange returns committed log bytes starting at offset from, trimmed
// to whole records and to about maxBytes. It returns (nil, nil) when from is
// exactly the durable end of the log — the caller is caught up. When the
// first record alone exceeds maxBytes it is returned whole, so progress is
// always possible. The returned page is freshly allocated and safe to retain.
func (s *Store) ReadLogRange(from int64, maxBytes int) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.f == nil {
		return nil, ErrNoLog
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	// fileMu is held for the whole read: the bytes below size are immutable
	// while it is held (appends extend, Compact swaps the file only under
	// fileMu), so the page is a consistent snapshot of committed records.
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	end := s.size
	if from == end {
		return nil, nil
	}
	if from < 0 || from > end {
		return nil, fmt.Errorf("%w: offset %d, log size %d", ErrOffsetOutOfRange, from, end)
	}
	want := end - from
	if int64(maxBytes) < want {
		want = int64(maxBytes)
	}
	buf := make([]byte, want)
	n, err := s.f.ReadAt(buf, from)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("kvstore: read log range: %w", err)
	}
	buf = buf[:n]
	// Trim to whole records. Every record below size is complete on disk, so
	// a header or payload running past the buffer only means the read window
	// cut it off — not a torn write.
	var off int64
	for int64(len(buf))-off >= headerSize {
		payloadLen := binary.LittleEndian.Uint32(buf[off : off+4])
		if payloadLen > maxRecordSize {
			return nil, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, payloadLen, from+off)
		}
		recEnd := off + headerSize + int64(payloadLen)
		if from+recEnd > end {
			return nil, fmt.Errorf("%w: record at offset %d overruns durable size", ErrCorrupt, from+off)
		}
		if recEnd > int64(len(buf)) {
			if off == 0 {
				// First record alone exceeds maxBytes: fetch it whole.
				whole := make([]byte, recEnd)
				if _, err := s.f.ReadAt(whole, from); err != nil {
					return nil, fmt.Errorf("kvstore: read log range: %w", err)
				}
				return whole, nil
			}
			break
		}
		off = recEnd
	}
	return buf[:off], nil
}

// DecodePage parses a page of length-prefixed records (as produced by
// ReadLogRange) into one op list per record, fully validating record
// lengths and checksums before returning. Returned keys are copies but
// values alias page; callers that retain the ops must retain the page.
func DecodePage(page []byte) ([][]Op, error) {
	var out [][]Op
	off := 0
	for off < len(page) {
		if len(page)-off < headerSize {
			return nil, fmt.Errorf("%w: truncated record header in page", ErrCorrupt)
		}
		payloadLen := int(binary.LittleEndian.Uint32(page[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(page[off+4 : off+8])
		if payloadLen > maxRecordSize || off+headerSize+payloadLen > len(page) {
			return nil, fmt.Errorf("%w: record overruns page", ErrCorrupt)
		}
		payload := page[off+headerSize : off+headerSize+payloadLen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, fmt.Errorf("%w: checksum mismatch in page at offset %d", ErrCorrupt, off)
		}
		ops, err := decodePayloadOps(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, ops)
		off += headerSize + payloadLen
	}
	return out, nil
}

// decodePayloadOps parses one CRC-verified record payload into its ops —
// the decode half of applyPayload, shared by the replication path so a
// follower applies exactly what replay would. Returned values alias p.
func decodePayloadOps(p []byte) ([]Op, error) {
	if len(p) < 5 {
		return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
	}
	switch p[0] {
	case opPut, opDelete:
		keyLen := binary.LittleEndian.Uint32(p[1:5])
		if int(keyLen) > len(p)-5 {
			return nil, fmt.Errorf("%w: key length overruns payload", ErrCorrupt)
		}
		key := string(p[5 : 5+keyLen])
		if p[0] == opDelete {
			return []Op{{Key: key, Delete: true}}, nil
		}
		return []Op{{Key: key, Value: p[5+keyLen:]}}, nil
	case opBatch:
		return decodeBatch(p)
	case opEpoch:
		if len(p) != 1+8 {
			return nil, fmt.Errorf("%w: epoch record length %d", ErrCorrupt, len(p))
		}
		// The sentinel op round-trips the stamp through ApplyPage's applyOps,
		// which diverts it to the epoch register; index layers above ignore
		// the NUL-prefixed key.
		return []Op{{Key: epochKey, Value: p[1:9]}}, nil
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, p[0])
	}
}

// ApplyPage appends a page of already-committed leader records to this
// store's log and applies them, advancing the commit offset by exactly
// len(page). The page is validated in full (framing, checksums, op
// decoding) before anything durable happens, so a corrupt ship leaves the
// follower untouched. Like commitBatch, the fsync (when the store is
// durable) gates the apply, and a failed append rolls the tail back to the
// last good boundary.
func (s *Store) ApplyPage(page []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(page) == 0 {
		return nil
	}
	recs, err := DecodePage(page)
	if err != nil {
		return err
	}
	if s.f == nil {
		// In-memory follower: no log of its own, just the applied state.
		s.mu.Lock()
		for _, ops := range recs {
			s.applyOps(ops)
		}
		s.mu.Unlock()
		s.notifyCommit()
		return nil
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if s.ioErr != nil {
		return fmt.Errorf("%w: %v", ErrFailed, s.ioErr)
	}
	if _, err := s.f.Write(page); err != nil {
		s.rollbackTail(err)
		return fmt.Errorf("kvstore: replicate append: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			s.rollbackTail(err)
			return fmt.Errorf("kvstore: replicate fsync: %w", err)
		}
	}
	s.size += int64(len(page))
	if s.compacting {
		s.delta = append(s.delta, page...)
	}
	s.mu.Lock()
	for _, ops := range recs {
		s.applyOps(ops)
	}
	s.mu.Unlock()
	s.notifyCommit()
	return nil
}

//go:build !race

package kvstore

const raceEnabled = false

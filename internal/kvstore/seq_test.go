package kvstore

import (
	"encoding/binary"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"modellake/internal/fault"
)

func TestSequenceMonotonicWithinSession(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	q := NewSequence(s, "seq", 16)
	var prev uint64
	for i := 0; i < 100; i++ {
		id, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if id <= prev {
			t.Fatalf("id %d not above previous %d", id, prev)
		}
		if prev != 0 && id != prev+1 {
			t.Fatalf("within one session IDs must be dense: %d after %d", id, prev)
		}
		prev = id
	}
}

// TestSequenceLeasesBlocks pins the point of leasing: handing out N IDs costs
// ~N/block durable writes, not N.
func TestSequenceLeasesBlocks(t *testing.T) {
	rec := &fault.Recorder{}
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{FS: fault.New(rec)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := NewSequence(s, "seq", 64)
	for i := 0; i < 100; i++ {
		if _, err := q.Next(); err != nil {
			t.Fatal(err)
		}
	}
	writes := 0
	for _, op := range rec.Ops() {
		if op.Op == fault.OpWrite && strings.HasSuffix(op.Path, "kv.log") {
			writes++
		}
	}
	// 100 IDs at block 64 = 2 leases. Allow a little slack for write
	// coalescing variation but fail if leasing degenerated to per-ID writes.
	if writes > 4 {
		t.Fatalf("100 IDs caused %d log writes; leasing is broken", writes)
	}
}

// TestSequenceCrashSkipsButNeverRepeats: reopening mid-block resumes from
// the durable high-water mark, so IDs may skip but can never repeat.
func TestSequenceCrashSkipsButNeverRepeats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence(s, "seq", 64)
	var handedOut []uint64
	for i := 0; i < 10; i++ { // uses 10 of the 64-block
		id, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		handedOut = append(handedOut, id)
	}
	s.Close() // "crash": the remaining 54 leased IDs are abandoned

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	q2 := NewSequence(s2, "seq", 64)
	id, err := q2.Next()
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range handedOut {
		if id == old {
			t.Fatalf("post-reopen ID %d repeats a pre-crash ID", id)
		}
	}
	if id <= handedOut[len(handedOut)-1] {
		t.Fatalf("post-reopen ID %d not above every pre-crash ID (max %d)",
			id, handedOut[len(handedOut)-1])
	}
}

// TestSequenceResumesOldFormat: the lease encoding matches the pre-lease
// 8-byte counter, so a store written by an older build resumes seamlessly.
func TestSequenceResumesOldFormat(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 42)
	if err := s.Put("seq", buf[:]); err != nil {
		t.Fatal(err)
	}
	q := NewSequence(s, "seq", 8)
	id, err := q.Next()
	if err != nil {
		t.Fatal(err)
	}
	if id != 43 {
		t.Fatalf("first ID after old-format counter 42 = %d, want 43", id)
	}
}

// TestSequenceConcurrentUnique: concurrent Next calls across goroutines must
// produce unique IDs.
func TestSequenceConcurrentUnique(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	q := NewSequence(s, "seq", 32)
	const workers, per = 8, 50
	var mu sync.Mutex
	seen := make(map[uint64]int, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id, err := q.Next()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, dup := seen[id]; dup {
					t.Errorf("ID %d handed to both worker %d and %d", id, prev, w)
				}
				seen[id] = w
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d unique IDs, want %d", len(seen), workers*per)
	}
}

// TestSequenceDistinctKeysIndependent: two sequences over different keys do
// not interfere (the registry and provenance each own one).
func TestSequenceDistinctKeysIndependent(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	a := NewSequence(s, "meta/seq", 4)
	b := NewSequence(s, "prov/seq", 4)
	for i := uint64(1); i <= 6; i++ {
		ida, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		idb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ida != i || idb != i {
			t.Fatalf("step %d: got a=%d b=%d", i, ida, idb)
		}
	}
}

func BenchmarkSequenceNext(b *testing.B) {
	path := filepath.Join(b.TempDir(), "kv.log")
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	q := NewSequence(s, "seq", 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// ship drains leader bytes into the follower until it is caught up,
// returning the number of pages shipped.
func ship(t *testing.T, leader, follower *Store, maxBytes int) int {
	t.Helper()
	pages := 0
	for {
		from := follower.CommitOffset()
		page, err := leader.ReadLogRange(from, maxBytes)
		if err != nil {
			t.Fatalf("ReadLogRange(%d): %v", from, err)
		}
		if len(page) == 0 {
			return pages
		}
		if err := follower.ApplyPage(page); err != nil {
			t.Fatalf("ApplyPage: %v", err)
		}
		pages++
	}
}

// assertSameState asserts the follower's live map matches the leader's.
func assertSameState(t *testing.T, leader, follower *Store) {
	t.Helper()
	if lk, fk := leader.Len(), follower.Len(); lk != fk {
		t.Fatalf("key counts differ: leader %d follower %d", lk, fk)
	}
	err := leader.Scan("", func(k string, v []byte) bool {
		got, err := follower.Get(k)
		if err != nil {
			t.Fatalf("follower missing %q: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("value mismatch at %q", k)
		}
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
}

func TestReplicationShipsAllRecordKinds(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(filepath.Join(dir, "leader.log"), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(filepath.Join(dir, "follower.log"), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	if err := leader.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := leader.Apply([]Op{
		{Key: "b", Value: []byte("2")},
		{Key: "c", Value: []byte("3")},
		{Key: "a", Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := leader.Put("d", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	if err := leader.Delete("b"); err != nil {
		t.Fatal(err)
	}

	// Tiny maxBytes forces single-record pages, including the oversized one.
	ship(t, leader, follower, 16)
	assertSameState(t, leader, follower)
	if lo, fo := leader.CommitOffset(), follower.CommitOffset(); lo != fo {
		t.Fatalf("offsets diverged: leader %d follower %d", lo, fo)
	}

	// The follower's log must be byte-identical to the leader's: that is
	// what makes resume-from-own-offset sound.
	lb, err := os.ReadFile(filepath.Join(dir, "leader.log"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(dir, "follower.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, fb) {
		t.Fatalf("follower log is not a byte copy of the leader log (%d vs %d bytes)", len(lb), len(fb))
	}
}

func TestFollowerRestartResumesFromOwnOffset(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(filepath.Join(dir, "leader.log"), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	fpath := filepath.Join(dir, "follower.log")
	follower, err := Open(fpath, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if err := leader.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ship(t, leader, follower, 1<<20)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		if err := leader.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	follower, err = Open(fpath, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	ship(t, leader, follower, 1<<20)
	assertSameState(t, leader, follower)
}

func TestReadLogRangeBoundaries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "s.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if page, err := s.ReadLogRange(0, 1<<20); err != nil || page != nil {
		t.Fatalf("empty log: page=%v err=%v", page, err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadLogRange(s.CommitOffset()+1, 1<<20); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("offset past end: want ErrOffsetOutOfRange, got %v", err)
	}
	if _, err := s.ReadLogRange(-1, 1<<20); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("negative offset: want ErrOffsetOutOfRange, got %v", err)
	}
	mem := OpenMemory()
	if _, err := mem.ReadLogRange(0, 1); !errors.Is(err, ErrNoLog) {
		t.Fatalf("in-memory: want ErrNoLog, got %v", err)
	}
}

func TestApplyPageRejectsCorruptPages(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(filepath.Join(dir, "leader.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(filepath.Join(dir, "follower.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	if err := leader.Put("k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	page, err := leader.ReadLogRange(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string][]byte{
		"flipped payload byte": append(append([]byte{}, page[:len(page)-1]...), page[len(page)-1]^0xff),
		"truncated tail":       page[:len(page)-1],
		"truncated header":     page[:4],
	} {
		if err := follower.ApplyPage(corrupt); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
		if follower.CommitOffset() != 0 || follower.Len() != 0 {
			t.Fatalf("%s: corrupt page mutated the follower", name)
		}
	}
	// The intact page still applies after the rejected attempts.
	if err := follower.ApplyPage(page); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, leader, follower)
}

func TestCommitNotifyWakesFollower(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "s.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ch := s.CommitNotify()
	select {
	case <-ch:
		t.Fatal("notification before any commit")
	default:
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification after commit")
	}
}

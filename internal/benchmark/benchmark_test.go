package benchmark

import (
	"errors"
	"math"
	"testing"

	"modellake/internal/data"
	"modellake/internal/kvstore"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func trained(t *testing.T, seed uint64) (*model.Model, *data.Dataset) {
	t.Helper()
	dom := data.NewDomain("bench", 6, 3, seed)
	ds := dom.Sample("bench/v1", 150, 0.4, xrand.New(seed+1))
	net := nn.NewMLP([]int{6, 12, 3}, nn.ReLU, xrand.New(seed+2))
	if _, err := nn.Train(net, ds, nn.DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	return &model.Model{ID: "m-1", Name: "bench-model", Net: net}, ds
}

func TestRunAccuracy(t *testing.T) {
	m, ds := trained(t, 1)
	b := &Benchmark{ID: "b1", DS: ds, Metric: MetricAccuracy}
	s, err := Run(model.NewHandle(m), b)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 || s > 1 {
		t.Fatalf("accuracy = %v", s)
	}
}

func TestRunMacroF1(t *testing.T) {
	m, ds := trained(t, 2)
	b := &Benchmark{ID: "b2", DS: ds, Metric: MetricMacroF1}
	s, err := Run(model.NewHandle(m), b)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 || s > 1 {
		t.Fatalf("macro F1 = %v", s)
	}
}

func TestRunCrossEntropyNegated(t *testing.T) {
	m, ds := trained(t, 3)
	b := &Benchmark{ID: "b3", DS: ds, Metric: MetricCrossEntropy}
	s, err := Run(model.NewHandle(m), b)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0 {
		t.Fatalf("negated cross-entropy should be <= 0, got %v", s)
	}
	// A good model is closer to 0 than a random model.
	random := &model.Model{ID: "m-r", Net: nn.NewMLP([]int{6, 12, 3}, nn.ReLU, xrand.New(99))}
	sr, err := Run(model.NewHandle(random), b)
	if err != nil {
		t.Fatal(err)
	}
	if s <= sr {
		t.Fatalf("trained model xent score %v not better than random %v", s, sr)
	}
}

func TestRunErrors(t *testing.T) {
	m, ds := trained(t, 4)
	if _, err := Run(model.NewHandle(m), &Benchmark{ID: "x", DS: ds, Metric: "nonsense"}); !errors.Is(err, ErrUnknownMetric) {
		t.Fatalf("unknown metric: %v", err)
	}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 3}
	if _, err := Run(model.NewHandle(m), &Benchmark{ID: "y", DS: empty}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestFrechetGaussian(t *testing.T) {
	mu := tensor.Vector{0.5, 0.5}
	v := tensor.Vector{0.1, 0.1}
	d, err := FrechetGaussian(mu, v, mu, v)
	if err != nil || d != 0 {
		t.Fatalf("self distance = %v, %v", d, err)
	}
	far, err := FrechetGaussian(mu, v, tensor.Vector{0.9, 0.1}, v)
	if err != nil || far <= 0 {
		t.Fatalf("far distance = %v, %v", far, err)
	}
	if _, err := FrechetGaussian(mu, v, tensor.Vector{1}, v); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFitOutputGaussianAndFrechetOrdering(t *testing.T) {
	m1, ds1 := trained(t, 5)
	// Same dataset, independent initialization: behaviourally similar.
	net2 := nn.NewMLP([]int{6, 12, 3}, nn.ReLU, xrand.New(55))
	if _, err := nn.Train(net2, ds1, nn.DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	m2 := &model.Model{ID: "m-2", Net: net2}
	domOther := data.NewDomain("other", 6, 3, 77)
	dsOther := domOther.Sample("other/v1", 150, 0.4, xrand.New(78))
	net3 := nn.NewMLP([]int{6, 12, 3}, nn.ReLU, xrand.New(79))
	if _, err := nn.Train(net3, dsOther, nn.DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	m3 := &model.Model{ID: "m-3", Net: net3}

	probes := data.ProbeSet(6, 64, 11)
	fit := func(m *model.Model) (tensor.Vector, tensor.Vector) {
		mu, va, err := FitOutputGaussian(model.NewHandle(m), probes)
		if err != nil {
			t.Fatal(err)
		}
		return mu, va
	}
	mu1, v1 := fit(m1)
	mu2, v2 := fit(m2)
	mu3, v3 := fit(m3)
	dSame, _ := FrechetGaussian(mu1, v1, mu2, v2)
	dDiff, _ := FrechetGaussian(mu1, v1, mu3, v3)
	if dSame >= dDiff {
		t.Fatalf("Fréchet ordering violated: same-domain %v >= cross-domain %v", dSame, dDiff)
	}
}

func TestRunnerCaches(t *testing.T) {
	m, ds := trained(t, 7)
	r := NewRunner(kvstore.OpenMemory())
	b := &Benchmark{ID: "b", DS: ds, Metric: MetricAccuracy}
	h := model.NewHandle(m)
	s1, err := r.Score(h, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Score(h, b)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("cached score changed: %v vs %v", s1, s2)
	}
	if r.Hits != 1 || r.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", r.Hits, r.Misses)
	}
}

func TestRunnerCachePersists(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(dir+"/scores.log", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, ds := trained(t, 8)
	b := &Benchmark{ID: "b", DS: ds, Metric: MetricAccuracy}
	r := NewRunner(kv)
	if _, err := r.Score(model.NewHandle(m), b); err != nil {
		t.Fatal(err)
	}
	kv.Close()

	kv2, err := kvstore.Open(dir+"/scores.log", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	r2 := NewRunner(kv2)
	if _, err := r2.Score(model.NewHandle(m), b); err != nil {
		t.Fatal(err)
	}
	if r2.Misses != 0 || r2.Hits != 1 {
		t.Fatalf("lifelong cache not reused: hits=%d misses=%d", r2.Hits, r2.Misses)
	}
}

func TestLeaderboardOrdering(t *testing.T) {
	good, ds := trained(t, 9)
	bad := &model.Model{ID: "m-bad", Net: nn.NewMLP([]int{6, 12, 3}, nn.ReLU, xrand.New(100))}
	r := NewRunner(kvstore.OpenMemory())
	b := &Benchmark{ID: "lb", DS: ds, Metric: MetricAccuracy}
	entries, err := r.Leaderboard([]*model.Handle{model.NewHandle(bad), model.NewHandle(good)}, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ModelID != "m-1" {
		t.Fatalf("leaderboard = %v", entries)
	}
	if entries[0].Score < entries[1].Score {
		t.Fatal("leaderboard not sorted descending")
	}
}

func TestLeaderboardSkipsBrokenModels(t *testing.T) {
	good, ds := trained(t, 10)
	wrongDim := &model.Model{ID: "m-w", Net: nn.NewMLP([]int{4, 6, 3}, nn.ReLU, xrand.New(1))}
	r := NewRunner(kvstore.OpenMemory())
	b := &Benchmark{ID: "lb2", DS: ds, Metric: MetricAccuracy}
	entries, err := r.Leaderboard([]*model.Handle{model.NewHandle(wrongDim), model.NewHandle(good)}, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ModelID != "m-1" {
		t.Fatalf("leaderboard = %v", entries)
	}
}

func TestPrecisionRecallNDCG(t *testing.T) {
	ranking := []string{"a", "b", "c", "d"}
	rel := map[string]bool{"a": true, "c": true}
	if got := PrecisionAtK(ranking, rel, 2); got != 0.5 {
		t.Fatalf("P@2 = %v", got)
	}
	if got := RecallAtK(ranking, rel, 4); got != 1 {
		t.Fatalf("R@4 = %v", got)
	}
	if got := PrecisionAtK(ranking, rel, 0); got != 0 {
		t.Fatalf("P@0 = %v", got)
	}
	perfect := NDCGAtK([]string{"a", "c", "b"}, rel, 3)
	if math.Abs(perfect-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", perfect)
	}
	worse := NDCGAtK([]string{"b", "a", "c"}, rel, 3)
	if worse >= perfect {
		t.Fatalf("NDCG ordering: %v >= %v", worse, perfect)
	}
	if NDCGAtK(ranking, map[string]bool{}, 3) != 0 {
		t.Fatal("NDCG with no relevant should be 0")
	}
}

func TestMeanReciprocalRank(t *testing.T) {
	rankings := [][]string{{"x", "a"}, {"a", "x"}}
	rels := []map[string]bool{{"a": true}, {"a": true}}
	if got := MeanReciprocalRank(rankings, rels); got != 0.75 {
		t.Fatalf("MRR = %v", got)
	}
	if MeanReciprocalRank(nil, nil) != 0 {
		t.Fatal("empty MRR should be 0")
	}
}

package benchmark

import (
	"math"
)

// This file contains the *model-lake benchmark* evaluators: they score lake
// task solutions (rankings, graphs) against verified ground truth, the new
// benchmark type §3 calls for.

// PrecisionAtK returns |top-k(ranking) ∩ relevant| / k. The denominator is
// always k: a searcher that returns fewer than k results is penalized for
// the positions it could not fill (the standard definition, and the one that
// exposes metadata search failing to see undocumented models).
func PrecisionAtK(ranking []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if n > len(ranking) {
		n = len(ranking)
	}
	hits := 0
	for _, id := range ranking[:n] {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns |top-k(ranking) ∩ relevant| / |relevant|.
func RecallAtK(ranking []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 || k <= 0 {
		return 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	hits := 0
	for _, id := range ranking[:k] {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// NDCGAtK computes normalized discounted cumulative gain with binary
// relevance.
func NDCGAtK(ranking []string, relevant map[string]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	dcg := 0.0
	for i := 0; i < k; i++ {
		if relevant[ranking[i]] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(relevant)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// MeanReciprocalRank returns the MRR of the first relevant item over a set
// of rankings.
func MeanReciprocalRank(rankings [][]string, relevants []map[string]bool) float64 {
	if len(rankings) == 0 || len(rankings) != len(relevants) {
		return 0
	}
	total := 0.0
	for qi, ranking := range rankings {
		for i, id := range ranking {
			if relevants[qi][id] {
				total += 1 / float64(i+1)
				break
			}
		}
	}
	return total / float64(len(rankings))
}

// Package benchmark implements both halves of the paper's benchmarking
// story:
//
//   - Classic single-model benchmarking (§4): datasets with scoring
//     functions (accuracy, macro-F1, cross-entropy/perplexity, and a Fréchet
//     distance between Gaussian fits of output distributions — the FID
//     analogue), run through a runner with durable score caching so
//     "lifelong" benchmark maintenance is incremental.
//
//   - Model-lake benchmarking (§3/§5): evaluators that score *lake-task
//     solutions* (search rankings, version graphs, attribution rankings)
//     against the verified ground truth of a generated benchmark lake.
package benchmark

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"modellake/internal/data"
	"modellake/internal/kvstore"
	"modellake/internal/model"
	"modellake/internal/tensor"
)

// Metric names understood by Run.
const (
	MetricAccuracy     = "accuracy"
	MetricMacroF1      = "macro_f1"
	MetricCrossEntropy = "cross_entropy"
)

// Benchmark couples a labeled dataset with a scoring metric.
type Benchmark struct {
	ID     string
	DS     *data.Dataset
	Metric string
}

// ErrUnknownMetric reports an unsupported metric name.
var ErrUnknownMetric = errors.New("benchmark: unknown metric")

// Run scores a model's extrinsic behaviour on the benchmark. Higher is
// better for accuracy/F1; cross-entropy is returned negated so that "higher
// is better" holds uniformly across metrics.
func Run(h model.ExtrinsicView, b *Benchmark) (float64, error) {
	if b.DS == nil || b.DS.Len() == 0 {
		return 0, fmt.Errorf("benchmark %s: empty dataset", b.ID)
	}
	switch b.Metric {
	case MetricAccuracy, "":
		return accuracy(h, b.DS)
	case MetricMacroF1:
		return macroF1(h, b.DS)
	case MetricCrossEntropy:
		ce, err := crossEntropy(h, b.DS)
		return -ce, err
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownMetric, b.Metric)
}

func accuracy(h model.ExtrinsicView, ds *data.Dataset) (float64, error) {
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		pred, err := h.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == y {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

func macroF1(h model.ExtrinsicView, ds *data.Dataset) (float64, error) {
	k := ds.NumClasses
	tp := make([]int, k)
	fp := make([]int, k)
	fn := make([]int, k)
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		pred, err := h.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == y {
			tp[y]++
		} else {
			if pred >= 0 && pred < k {
				fp[pred]++
			}
			fn[y]++
		}
	}
	total := 0.0
	for c := 0; c < k; c++ {
		den := 2*tp[c] + fp[c] + fn[c]
		if den > 0 {
			total += 2 * float64(tp[c]) / float64(den)
		}
	}
	return total / float64(k), nil
}

func crossEntropy(h model.ExtrinsicView, ds *data.Dataset) (float64, error) {
	total := 0.0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		p, err := h.Probs(x)
		if err != nil {
			return 0, err
		}
		q := p[y]
		if q < 1e-12 {
			q = 1e-12
		}
		total += -math.Log(q)
	}
	return total / float64(ds.Len()), nil
}

// FrechetGaussian computes the Fréchet distance between two diagonal
// Gaussians fitted to model output distributions — the lake's FID analogue
// for comparing generative behaviour:
//
//	d² = ‖μ₁−μ₂‖² + Σᵢ (σ₁ᵢ + σ₂ᵢ − 2·√(σ₁ᵢ·σ₂ᵢ))
func FrechetGaussian(mu1, var1, mu2, var2 tensor.Vector) (float64, error) {
	if len(mu1) != len(mu2) || len(var1) != len(var2) || len(mu1) != len(var1) {
		return 0, fmt.Errorf("benchmark: Fréchet dimension mismatch")
	}
	d2 := 0.0
	for i := range mu1 {
		d := mu1[i] - mu2[i]
		d2 += d * d
		s1, s2 := math.Max(var1[i], 0), math.Max(var2[i], 0)
		d2 += s1 + s2 - 2*math.Sqrt(s1*s2)
	}
	return d2, nil
}

// FitOutputGaussian probes a model on the given inputs and fits a diagonal
// Gaussian to its output distributions.
func FitOutputGaussian(h model.ExtrinsicView, probes tensor.Matrix) (mu, variance tensor.Vector, err error) {
	if probes.Rows == 0 {
		return nil, nil, fmt.Errorf("benchmark: no probes")
	}
	var dim int
	var sum, sumSq tensor.Vector
	for i := 0; i < probes.Rows; i++ {
		p, err := h.Probs(probes.Row(i))
		if err != nil {
			return nil, nil, err
		}
		if sum == nil {
			dim = len(p)
			sum = tensor.NewVector(dim)
			sumSq = tensor.NewVector(dim)
		}
		for j, v := range p {
			sum[j] += v
			sumSq[j] += v * v
		}
	}
	n := float64(probes.Rows)
	mu = tensor.NewVector(dim)
	variance = tensor.NewVector(dim)
	for j := 0; j < dim; j++ {
		mu[j] = sum[j] / n
		variance[j] = sumSq[j]/n - mu[j]*mu[j]
	}
	return mu, variance, nil
}

// Runner executes benchmarks with durable score caching, making repeated
// and lifelong (incrementally growing) evaluation cheap: a (model, bench)
// pair is only ever scored once.
type Runner struct {
	kv *kvstore.Store
	mu sync.Mutex

	// Hits and Misses count cache behaviour (observable for the lifelong-
	// benchmark experiment).
	Hits, Misses int
}

// NewRunner creates a runner caching into kv (use kvstore.OpenMemory() for
// ephemeral runs).
func NewRunner(kv *kvstore.Store) *Runner { return &Runner{kv: kv} }

// SetStore re-points the score cache at a different store. A replica lake
// caches into private memory so its log stays a byte prefix of its leader's;
// on promotion to leader the runner is re-pointed at the durable store so
// scores cache durably again. Scores computed before the swap are simply
// recomputed on demand — they are deterministic.
func (r *Runner) SetStore(kv *kvstore.Store) {
	r.mu.Lock()
	r.kv = kv
	r.mu.Unlock()
}

func scoreKey(modelID, benchID, metric string) string {
	return "score/" + modelID + "/" + benchID + "/" + metric
}

// Score returns the model's score on the benchmark, computing and caching it
// on first use. The handle's ID keys the cache.
func (r *Runner) Score(h *model.Handle, b *Benchmark) (float64, error) {
	key := scoreKey(h.ID(), b.ID, b.Metric)
	r.mu.Lock()
	kv := r.kv // captured under mu: SetStore may swap it concurrently
	if raw, err := kv.Get(key); err == nil {
		r.Hits++
		r.mu.Unlock()
		var s float64
		if err := json.Unmarshal(raw, &s); err != nil {
			return 0, fmt.Errorf("benchmark: corrupt cached score %s: %w", key, err)
		}
		return s, nil
	}
	r.Misses++
	r.mu.Unlock()

	s, err := Run(h, b)
	if err != nil {
		return 0, err
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return 0, err
	}
	if err := kv.Put(key, raw); err != nil {
		return 0, err
	}
	return s, nil
}

// Leaderboard scores every handle on the benchmark and returns IDs with
// scores, best first. Models that cannot run the benchmark are skipped.
func (r *Runner) Leaderboard(handles []*model.Handle, b *Benchmark) ([]Entry, error) {
	var out []Entry
	for _, h := range handles {
		s, err := r.Score(h, b)
		if err != nil {
			continue
		}
		out = append(out, Entry{ModelID: h.ID(), Score: s})
	}
	sortEntries(out)
	return out, nil
}

// Entry is one leaderboard row.
type Entry struct {
	ModelID string
	Score   float64
}

func sortEntries(es []Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			if es[j].Score > es[j-1].Score ||
				(es[j].Score == es[j-1].Score && es[j].ModelID < es[j-1].ModelID) {
				es[j], es[j-1] = es[j-1], es[j]
			} else {
				break
			}
		}
	}
}

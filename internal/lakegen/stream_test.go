package lakegen

// Tests for streaming generation. Stream exists so a 100k-model lake can be
// generated without materializing the population: the contract is that it
// yields exactly the members Generate would build — same order, same truth,
// same cards, bit-identical weights — while holding only the family in
// flight, never the whole population. Both halves are pinned here: an
// equivalence pass comparing every member field against Generate, and a
// peak-heap proxy showing Stream stays well under what Generate retains.

import (
	"hash/fnv"
	"reflect"
	"runtime"
	"testing"

	"modellake/internal/nn"
)

func weightsHash(t *testing.T, m *Member) uint64 {
	t.Helper()
	b, err := nn.EncodeMLP(m.Model.Net)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// TestStreamMatchesGenerate requires member-for-member equality between the
// streaming and materializing generators, including the lie-card and
// stitch paths, and that the version edges Generate publishes are exactly
// the ones implied by the streamed members' truth.
func TestStreamMatchesGenerate(t *testing.T) {
	spec := DefaultSpec(9)
	spec.NumBases = 3
	spec.ChildrenPerBase = 5
	spec.LieFrac = 0.4
	spec.AnonymousNames = true

	pop, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Member
	if err := Stream(spec, func(m *Member) error {
		streamed = append(streamed, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if len(streamed) != len(pop.Members) {
		t.Fatalf("streamed %d members, generated %d", len(streamed), len(pop.Members))
	}
	for i, want := range pop.Members {
		got := streamed[i]
		if !reflect.DeepEqual(got.Truth, want.Truth) {
			t.Fatalf("member %d truth:\n got %+v\nwant %+v", i, got.Truth, want.Truth)
		}
		if got.Model.Name != want.Model.Name {
			t.Fatalf("member %d name %q != %q", i, got.Model.Name, want.Model.Name)
		}
		if !reflect.DeepEqual(got.Card, want.Card) {
			t.Fatalf("member %d card:\n got %+v\nwant %+v", i, got.Card, want.Card)
		}
		if gh, wh := weightsHash(t, got), weightsHash(t, want); gh != wh {
			t.Fatalf("member %d weights hash %x != %x", i, gh, wh)
		}
	}

	// Edges are derivable from truth; Generate's explicit list must agree.
	var derived []Edge
	for _, m := range streamed {
		for _, p := range m.Truth.Parents {
			derived = append(derived, Edge{Parent: p, Child: m.Truth.Index, Transform: m.Truth.Transform})
		}
	}
	if !reflect.DeepEqual(derived, pop.Edges) {
		t.Fatalf("derived edges differ:\n got %+v\nwant %+v", derived, pop.Edges)
	}
}

// TestStreamNilCallback pins the one misuse Stream can catch cheaply.
func TestStreamNilCallback(t *testing.T) {
	if err := Stream(DefaultSpec(1), nil); err == nil {
		t.Fatal("Stream accepted a nil callback")
	}
}

// TestStreamCallbackErrorStops requires a callback error to abort
// generation immediately and surface unchanged.
func TestStreamCallbackErrorStops(t *testing.T) {
	spec := DefaultSpec(2)
	spec.NumBases = 2
	spec.ChildrenPerBase = 2
	spec.BaseEpochs, spec.FTEpochs, spec.TrainN = 1, 1, 16
	calls := 0
	sentinel := &testStreamErr{}
	err := Stream(spec, func(m *Member) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after erroring on call 2", calls)
	}
}

type testStreamErr struct{}

func (*testStreamErr) Error() string { return "stop" }

// TestStreamPeakMemory is the peak-RSS proxy: streaming a population whose
// datasets dominate its footprint must peak (heap after GC, sampled every
// member) below what simply retaining Generate's population costs. The
// population is shaped so the margin is structural — ~60 base families'
// datasets retained by Generate versus one family in flight for Stream —
// not a measurement accident.
func TestStreamPeakMemory(t *testing.T) {
	spec := DefaultSpec(3)
	spec.NumBases = 60
	spec.ChildrenPerBase = 4
	spec.TrainN = 200
	spec.BaseEpochs, spec.FTEpochs = 2, 1

	heapNow := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	base := heapNow()
	var peak uint64
	count := 0
	if err := Stream(spec, func(m *Member) error {
		// Sampling with a forced GC every member is slow but makes the
		// number a genuine live-set measurement, not a GC-timing artifact.
		if h := heapNow(); h > peak {
			peak = h
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var streamPeak uint64
	if peak > base {
		streamPeak = peak - base
	}

	pop, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var retained uint64
	if r := heapNow(); r > base {
		retained = r - base
	}
	if len(pop.Members) != count {
		t.Fatalf("stream yielded %d members, generate %d", count, len(pop.Members))
	}
	if retained == 0 {
		t.Fatal("retained population measured as 0 bytes; proxy is broken")
	}
	if streamPeak*2 > retained {
		t.Fatalf("stream peak %d B is not well below retained population %d B", streamPeak, retained)
	}
	runtime.KeepAlive(pop)
}

// Package lakegen generates benchmark model lakes: populations of trained
// neural models with fully verified ground truth — true lineage, true
// training data, true domains — alongside the (possibly incomplete or
// deliberately false) documentation each model publishes.
//
// This realizes the paper's §3/§5 benchmarking call: "within a benchmark
// lake, we will need verified ground truth", including "labeled model
// parameters, architectures, and detailed transformation records (e.g.,
// fine-tuning, model editing)". Every lake-task experiment in this
// repository scores itself against a generated population.
package lakegen

import (
	"fmt"
	"hash/fnv"

	"modellake/internal/card"
	"modellake/internal/data"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

// Spec configures a generated lake.
type Spec struct {
	Seed uint64

	// Population shape.
	NumBases        int // base (pretrained) models
	ChildrenPerBase int // derived models per base family
	MaxDepth        int // maximum chain length below a base

	// Model/data shape.
	Dim        int
	Classes    int
	Hidden     int
	TrainN     int     // examples per training dataset
	Noise      float64 // dataset noise level
	BaseEpochs int
	FTEpochs   int // fine-tune epochs for derived models

	// Documentation quality.
	CardDropProb float64 // per-field dropout probability
	LieFrac      float64 // fraction of models whose cards lie about domain/data
	// AnonymousNames gives models opaque names ("model-2-07") instead of
	// descriptive ones ("legal-finetune-7"), so nothing about the domain
	// leaks through the always-present name field — the hard search setting.
	AnonymousNames bool

	// Transformation mix: relative weights for finetune/lora/edit/stitch.
	// Empty means the default mix.
	TransformMix map[string]float64
}

// DefaultSpec returns a small lake that generates in well under a second.
func DefaultSpec(seed uint64) Spec {
	return Spec{
		Seed:            seed,
		NumBases:        4,
		ChildrenPerBase: 5,
		MaxDepth:        3,
		Dim:             8,
		Classes:         3,
		Hidden:          16,
		TrainN:          200,
		Noise:           0.4,
		BaseEpochs:      30,
		FTEpochs:        5,
		CardDropProb:    0.2,
		LieFrac:         0,
	}
}

func (s Spec) withDefaults() Spec {
	d := DefaultSpec(s.Seed)
	if s.NumBases <= 0 {
		s.NumBases = d.NumBases
	}
	if s.ChildrenPerBase < 0 {
		s.ChildrenPerBase = 0
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = d.MaxDepth
	}
	if s.Dim <= 0 {
		s.Dim = d.Dim
	}
	if s.Classes <= 1 {
		s.Classes = d.Classes
	}
	if s.Hidden <= 0 {
		s.Hidden = d.Hidden
	}
	if s.TrainN <= 0 {
		s.TrainN = d.TrainN
	}
	if s.Noise <= 0 {
		s.Noise = d.Noise
	}
	if s.BaseEpochs <= 0 {
		s.BaseEpochs = d.BaseEpochs
	}
	if s.FTEpochs <= 0 {
		s.FTEpochs = d.FTEpochs
	}
	if len(s.TransformMix) == 0 {
		s.TransformMix = map[string]float64{
			model.TransformFinetune: 0.5,
			model.TransformLoRA:     0.25,
			model.TransformEdit:     0.15,
			model.TransformStitch:   0.1,
		}
	}
	return s
}

// Truth is the verified ground truth for one generated model.
type Truth struct {
	Index     int // position in Population.Members
	Name      string
	Domain    string // true domain of the most recent training data
	DatasetID string // true dataset ID most recently trained on
	Transform string // how it was created (pretrain for bases)
	Parents   []int  // indices of true parent models (two for stitch)
	Depth     int    // 0 for bases
	Family    int    // base family index
	Lying     bool   // card carries injected misinformation
}

// Member is one generated model plus its published card and hidden truth.
type Member struct {
	Model *model.Model
	Card  *card.Card
	Truth Truth
}

// Edge is a true parent→child version edge.
type Edge struct {
	Parent, Child int
	Transform     string
}

// Population is a generated benchmark lake.
type Population struct {
	Spec     Spec
	Members  []*Member
	Edges    []Edge
	Domains  []*data.Domain
	Datasets map[string]*data.Dataset
}

// Generate builds a population from the spec. Generation is deterministic in
// Spec.Seed.
func Generate(spec Spec) (*Population, error) {
	spec = spec.withDefaults()
	pop := &Population{Spec: spec, Datasets: map[string]*data.Dataset{}}
	if err := stream(spec, pop, nil); err != nil {
		return nil, err
	}
	return pop, nil
}

// Stream generates exactly the population Generate(spec) would — bit-identical
// models, cards, and truth, in the same member order — but hands each member
// to fn as soon as its family is complete instead of retaining the lake. Only
// the current family's members and datasets stay live between calls (parents
// are needed for derivation, stitch sources, and card lineage), so peak
// memory is O(largest family), which is what makes 100k-model lakes
// generatable on ordinary machines. Truth.Parents carry global member
// indices, so a sink can rebuild the version-edge set incrementally. An error
// from fn aborts generation and is returned as-is.
func Stream(spec Spec, fn func(*Member) error) error {
	if fn == nil {
		return fmt.Errorf("lakegen: Stream needs a sink")
	}
	return stream(spec.withDefaults(), nil, fn)
}

// dsStore is the dataset view the generation core hands to derivation and
// card building: writes land in the current family's map (and, for Generate,
// also the retained population), reads only ever need the current family —
// every dataset a member references was created inside its own family.
type dsStore struct {
	fam  map[string]*data.Dataset
	keep *Population
}

func (s *dsStore) put(id string, ds *data.Dataset) {
	s.fam[id] = ds
	if s.keep != nil {
		s.keep.Datasets[id] = ds
	}
}

func (s *dsStore) get(id string) *data.Dataset { return s.fam[id] }

// stream is the single generation engine behind Generate and Stream. It
// builds the population family by family; after each family's models are
// trained its cards publish immediately (rng.Child streams depend only on the
// label, never on draw order, so the per-family card pass draws the exact
// bits Generate's trailing whole-population pass drew) and every member is
// passed to emit. keep, when non-nil, additionally retains members, edges,
// domains, and datasets — all Generate adds on top of the stream.
func stream(spec Spec, keep *Population, emit func(*Member) error) error {
	rng := xrand.New(spec.Seed)
	textDomains := data.StandardTextDomains()

	transformNames := make([]string, 0, len(spec.TransformMix))
	transformWeights := make([]float64, 0, len(spec.TransformMix))
	for _, name := range []string{model.TransformFinetune, model.TransformLoRA,
		model.TransformEdit, model.TransformStitch, model.TransformPreference} {
		if w, ok := spec.TransformMix[name]; ok && w > 0 {
			transformNames = append(transformNames, name)
			transformWeights = append(transformWeights, w)
		}
	}
	if len(transformNames) == 0 {
		return fmt.Errorf("lakegen: empty transformation mix")
	}

	next := 0 // global member index, == len(keep.Members) when retaining
	// Base models, one per text domain round-robin.
	for b := 0; b < spec.NumBases; b++ {
		domainName := domainNameAt(textDomains, b)
		// Domains are identified by name: the "legal" task is the same task
		// in every generated lake (its class means depend only on the name
		// and shape), so probes trained on one lake transfer to another.
		dom := data.NewDomain(domainName, spec.Dim, spec.Classes, domainSeed(domainName))
		if keep != nil {
			keep.Domains = append(keep.Domains, dom)
		}
		ds := &dsStore{fam: map[string]*data.Dataset{}, keep: keep}
		dsID := domainName + "/v1"
		ds.put(dsID, dom.Sample(dsID, spec.TrainN, spec.Noise, rng.Child("data/"+dsID)))

		net := nn.NewMLP([]int{spec.Dim, spec.Hidden, spec.Classes}, nn.ReLU, rng.Child("init/"+domainName))
		cfg := nn.DefaultTrainConfig()
		cfg.Epochs = spec.BaseEpochs
		cfg.Seed = spec.Seed + uint64(b)
		if _, err := nn.Train(net, ds.get(dsID), cfg); err != nil {
			return fmt.Errorf("lakegen: train base %d: %w", b, err)
		}
		name := fmt.Sprintf("%s-base", domainName)
		if spec.AnonymousNames {
			name = fmt.Sprintf("model-%d-00", b)
		}
		famStart := next
		m := &Member{
			Model: &model.Model{Name: name, Net: net},
			Truth: Truth{
				Index: next, Name: name, Domain: domainName,
				DatasetID: dsID, Transform: model.TransformPretrain,
				Depth: 0, Family: b,
			},
		}
		fam := []*Member{m}
		next++
		// member resolves a global index to its in-family member: family
		// indices are contiguous from famStart, and derivation only ever
		// references same-family parents.
		member := func(idx int) *Member { return fam[idx-famStart] }

		// Derived family members.
		family := []int{m.Truth.Index}
		versionCounter := 1
		for c := 0; c < spec.ChildrenPerBase; c++ {
			// Pick a parent within the family whose depth permits children.
			var eligible []int
			for _, idx := range family {
				if member(idx).Truth.Depth < spec.MaxDepth {
					eligible = append(eligible, idx)
				}
			}
			if len(eligible) == 0 {
				break
			}
			crng := rng.Child(fmt.Sprintf("child/%d/%d", b, c))
			parentIdx := eligible[crng.Intn(len(eligible))]
			parent := member(parentIdx)
			transform := transformNames[crng.Weighted(transformWeights)]
			// Stitch needs a second same-family, same-arch parent.
			if transform == model.TransformStitch && len(family) < 2 {
				transform = model.TransformFinetune
			}
			versionCounter++
			childName := fmt.Sprintf("%s-%s-%d", domainName, transform, versionCounter)
			if spec.AnonymousNames {
				childName = fmt.Sprintf("model-%d-%02d", b, versionCounter)
			}
			child, edgeParents, err := derive(ds, member, dom, parent, parentIdx, transform,
				childName, versionCounter, spec, crng, family)
			if err != nil {
				return err
			}
			child.Truth.Index = next
			child.Truth.Family = b
			fam = append(fam, child)
			next++
			family = append(family, child.Truth.Index)
			if keep != nil {
				for _, p := range edgeParents {
					keep.Edges = append(keep.Edges, Edge{Parent: p, Child: child.Truth.Index, Transform: transform})
				}
			}
		}

		// Publish cards: truthful first, then corrupted/poisoned.
		for j, m := range fam {
			parentName := ""
			if len(m.Truth.Parents) > 0 {
				parentName = member(m.Truth.Parents[0]).Truth.Name
			}
			c := truthfulCard(spec, ds, parentName, m)
			crng := rng.Child(fmt.Sprintf("card/%d", famStart+j))
			if spec.LieFrac > 0 && crng.Float64() < spec.LieFrac {
				// Lie: claim a different domain and dataset. The lying domain
				// is the next family's, computed by name so it needs no
				// retained Domains slice (Generate's trailing card pass read
				// pop.Domains[(family+1)%NumBases], which is the same name).
				other := domainNameAt(textDomains, (m.Truth.Family+1)%spec.NumBases)
				c = card.InjectMisinformation(c, other, other+"/v1")
				m.Truth.Lying = true
			}
			c = card.Corrupt(c, spec.CardDropProb, crng)
			m.Card = c
			if keep != nil {
				keep.Members = append(keep.Members, m)
			}
			if emit != nil {
				if err := emit(m); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// domainNameAt is the deterministic name of base family i's domain: the text
// domains round-robin, with a numeric suffix once they wrap.
func domainNameAt(textDomains []data.TextDomain, i int) string {
	td := textDomains[i%len(textDomains)]
	if i >= len(textDomains) {
		return fmt.Sprintf("%s-%d", td.Name, i/len(textDomains))
	}
	return td.Name
}

// derive creates one child model from parent via the named transformation.
// member resolves the global indices in family; ds holds every dataset the
// parent chain has referenced.
func derive(ds *dsStore, member func(int) *Member, dom *data.Domain, parent *Member, parentIdx int,
	transform, childName string, version int, spec Spec, rng *xrand.RNG, family []int,
) (*Member, []int, error) {
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = spec.FTEpochs
	cfg.Seed = rng.Uint64()
	if rng.Float64() < 0.3 {
		cfg.Optimizer = "adam"
		cfg.LR = 0.005
	}

	// Fine-tune-style transformations train on a shifted domain or a derived
	// dataset version — the "legal" base begets "legal-contracts" children.
	newDataset := func(kind string) (*data.Dataset, string) {
		if rng.Float64() < 0.5 {
			// Derived version of the parent's dataset.
			parentDS := ds.get(parent.Truth.DatasetID)
			id := fmt.Sprintf("%s.%d", parent.Truth.DatasetID, version)
			d := data.DeriveVersion(parentDS, id, 0.7, 0.05, rng.Child("derive"))
			ds.put(id, d)
			return d, id
		}
		shifted := dom.Shifted(fmt.Sprintf("%s-%s%d", dom.Name, kind, version), 0.6, rng.Uint64())
		id := fmt.Sprintf("%s/v%d", shifted.Name, 1)
		d := shifted.Sample(id, spec.TrainN/2, spec.Noise, rng.Child("sample"))
		ds.put(id, d)
		return d, id
	}

	truth := Truth{
		Name: childName, Transform: transform,
		Parents: []int{parentIdx}, Depth: parent.Truth.Depth + 1,
	}

	var net *nn.MLP
	var dsID string
	switch transform {
	case model.TransformFinetune:
		ds, id := newDataset("ft")
		net = parent.Model.Net.Clone()
		if _, err := nn.Train(net, ds, cfg); err != nil {
			return nil, nil, fmt.Errorf("lakegen: finetune %s: %w", childName, err)
		}
		dsID = id
		truth.Domain = ds.Domain
	case model.TransformLoRA:
		ds, id := newDataset("lora")
		layer := rng.Intn(parent.Model.Net.LayerCount())
		lora, err := nn.NewLoRA(parent.Model.Net, layer, 2, rng.Child("lora"))
		if err != nil {
			return nil, nil, fmt.Errorf("lakegen: lora %s: %w", childName, err)
		}
		loraCfg := cfg
		loraCfg.Optimizer = "sgd"
		loraCfg.Epochs = spec.FTEpochs * 2
		if _, err := nn.TrainLoRA(parent.Model.Net, lora, ds, loraCfg); err != nil {
			return nil, nil, fmt.Errorf("lakegen: lora train %s: %w", childName, err)
		}
		net = lora.Merge(parent.Model.Net)
		dsID = id
		truth.Domain = ds.Domain
	case model.TransformEdit:
		// Edit: flip the association for one random input. The model keeps
		// its parent's data/domain truth.
		net = parent.Model.Net.Clone()
		x := make([]float64, spec.Dim)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
		}
		target := rng.Intn(spec.Classes)
		parentDS := ds.get(parent.Truth.DatasetID)
		if _, err := nn.EditAssociationWithContext(net, x, target, 0.2, parentDS.X); err != nil {
			return nil, nil, fmt.Errorf("lakegen: edit %s: %w", childName, err)
		}
		dsID = parent.Truth.DatasetID
		truth.Domain = parent.Truth.Domain
	case model.TransformPreference:
		// Preference tuning: align the parent toward preferring the true
		// label on a fresh sample of its own domain (with consistency pairs),
		// plus a handful of "alignment" overrides on random probes.
		ds, id := newDataset("pref")
		net = parent.Model.Net.Clone()
		var prefs []nn.Preference
		for i := 0; i < ds.Len() && i < 60; i++ {
			x, y := ds.Example(i)
			prefs = append(prefs, nn.Preference{
				X: x.Clone(), Preferred: y, Rejected: (y + 1) % spec.Classes})
		}
		prefCfg := nn.TrainConfig{Epochs: spec.FTEpochs, BatchSize: 16, LR: 0.05, Seed: rng.Uint64()}
		if _, err := nn.PreferenceTune(net, prefs, prefCfg); err != nil {
			return nil, nil, fmt.Errorf("lakegen: preference %s: %w", childName, err)
		}
		dsID = id
		truth.Domain = ds.Domain
	case model.TransformStitch:
		// Second parent: another family member (not the first parent).
		var candidates []int
		for _, idx := range family {
			if idx != parentIdx {
				candidates = append(candidates, idx)
			}
		}
		other := candidates[rng.Intn(len(candidates))]
		var err error
		net, err = nn.Stitch(parent.Model.Net, member(other).Model.Net, 1)
		if err != nil {
			return nil, nil, fmt.Errorf("lakegen: stitch %s: %w", childName, err)
		}
		truth.Parents = []int{parentIdx, other}
		dsID = parent.Truth.DatasetID
		truth.Domain = parent.Truth.Domain
	default:
		return nil, nil, fmt.Errorf("lakegen: unknown transform %q", transform)
	}
	truth.DatasetID = dsID

	return &Member{
		Model: &model.Model{Name: childName, Net: net},
		Truth: truth,
	}, truth.Parents, nil
}

// truthfulCard builds the fully documented card for a member. The card's
// BaseModel references the parent's *name* (lake IDs are assigned only at
// registration time), passed in by the caller so no population needs to be
// retained.
func truthfulCard(spec Spec, ds *dsStore, parentName string, m *Member) *card.Card {
	// Cards document the human-meaningful base domain ("legal"), not the
	// generator's internal shifted-domain identifiers ("legal-ft3").
	domain := baseDomainName(m.Truth.Domain)
	td, _ := data.TextDomainByName(domain)
	descRng := xrand.New(spec.Seed).Child("desc/" + m.Truth.Name)
	desc := data.GenerateDocument(td, 30, 0.5, descRng)
	c := &card.Card{
		Name:         m.Truth.Name,
		Description:  desc,
		Task:         "classification",
		Domain:       domain,
		Architecture: m.Model.Net.ArchString(),
		TrainingData: m.Truth.DatasetID,
		Transform:    m.Truth.Transform,
		IntendedUse:  fmt.Sprintf("Classification of %s feature data.", domain),
		Limitations:  "Synthetic benchmark model; not for production use.",
		License:      "apache-2.0",
		Contact:      "lakegen@modellake.local",
	}
	if d := ds.get(m.Truth.DatasetID); d != nil {
		c.Metrics = map[string]float64{"train_accuracy": m.Model.Net.Accuracy(d)}
	}
	if parentName != "" {
		c.BaseModel = parentName
	}
	return c
}

// domainSeed derives a stable per-domain-name seed so identical domain names
// denote identical tasks across independently generated lakes.
func domainSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// baseDomainName strips generated suffixes ("legal-ft3" → "legal") so card
// text uses the right keyword vocabulary.
func baseDomainName(domain string) string {
	for i := 0; i < len(domain); i++ {
		if domain[i] == '-' || domain[i] == '/' {
			return domain[:i]
		}
	}
	return domain
}

// TrueEdgeSet returns the ground-truth edges as a set keyed "parent->child"
// (by member index).
func (p *Population) TrueEdgeSet() map[[2]int]string {
	out := make(map[[2]int]string, len(p.Edges))
	for _, e := range p.Edges {
		out[[2]int{e.Parent, e.Child}] = e.Transform
	}
	return out
}

// MembersByDomain groups member indices by true domain.
func (p *Population) MembersByDomain() map[string][]int {
	out := map[string][]int{}
	for i, m := range p.Members {
		out[m.Truth.Domain] = append(out[m.Truth.Domain], i)
	}
	return out
}

package lakegen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"modellake/internal/card"
	"modellake/internal/model"
	"modellake/internal/nn"
)

// Export/Import make a generated benchmark lake a shareable artifact — the
// paper's §4 lament is that "model lake benchmarks lack large-scale,
// publicly available datasets"; exporting ships the population (weights,
// cards, and the verified ground truth) as plain files:
//
//	dir/manifest.json          spec + truth records + edges
//	dir/models/<name>.mlp      binary weights
//	dir/cards/<name>.json      published card
//
// Datasets are not exported; they regenerate deterministically from the spec
// (domains are name-derived), which keeps artifacts small.

// manifest is the on-disk population description.
type manifest struct {
	Spec    Spec    `json:"spec"`
	Members []Truth `json:"members"`
	Edges   []Edge  `json:"edges"`
}

// Export writes the population under dir (created if needed).
func Export(pop *Population, dir string) error {
	for _, sub := range []string{"models", "cards"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return fmt.Errorf("lakegen: export mkdir: %w", err)
		}
	}
	man := manifest{Spec: pop.Spec, Edges: pop.Edges}
	for _, m := range pop.Members {
		man.Members = append(man.Members, m.Truth)
		raw, err := nn.EncodeMLP(m.Model.Net)
		if err != nil {
			return fmt.Errorf("lakegen: export %s weights: %w", m.Truth.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "models", m.Truth.Name+".mlp"), raw, 0o644); err != nil {
			return fmt.Errorf("lakegen: export %s weights: %w", m.Truth.Name, err)
		}
		cb, err := m.Card.Marshal()
		if err != nil {
			return fmt.Errorf("lakegen: export %s card: %w", m.Truth.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, "cards", m.Truth.Name+".json"), cb, 0o644); err != nil {
			return fmt.Errorf("lakegen: export %s card: %w", m.Truth.Name, err)
		}
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("lakegen: export manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		return fmt.Errorf("lakegen: export manifest: %w", err)
	}
	return nil
}

// Import reads a population exported with Export. Datasets are regenerated
// from the manifest's spec, so the returned population is fully usable by
// the experiment harness.
func Import(dir string) (*Population, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("lakegen: import manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("lakegen: decode manifest: %w", err)
	}
	// Regenerate the population's datasets (and nothing else) by re-running
	// the deterministic generator, then overwrite models/cards/truth with
	// the exported artifacts. This guarantees datasets match what the
	// exported models were trained on.
	regen, err := Generate(man.Spec)
	if err != nil {
		return nil, fmt.Errorf("lakegen: regenerate datasets: %w", err)
	}
	pop := &Population{
		Spec:     man.Spec,
		Edges:    man.Edges,
		Domains:  regen.Domains,
		Datasets: regen.Datasets,
	}
	for _, truth := range man.Members {
		raw, err := os.ReadFile(filepath.Join(dir, "models", truth.Name+".mlp"))
		if err != nil {
			return nil, fmt.Errorf("lakegen: import %s weights: %w", truth.Name, err)
		}
		net, err := nn.DecodeMLP(raw)
		if err != nil {
			return nil, fmt.Errorf("lakegen: decode %s weights: %w", truth.Name, err)
		}
		cb, err := os.ReadFile(filepath.Join(dir, "cards", truth.Name+".json"))
		if err != nil {
			return nil, fmt.Errorf("lakegen: import %s card: %w", truth.Name, err)
		}
		c, err := card.Unmarshal(cb)
		if err != nil {
			return nil, fmt.Errorf("lakegen: decode %s card: %w", truth.Name, err)
		}
		pop.Members = append(pop.Members, &Member{
			Model: &model.Model{Name: truth.Name, Net: net},
			Card:  c,
			Truth: truth,
		})
	}
	return pop, nil
}

package lakegen

import (
	"testing"

	"modellake/internal/model"
	"modellake/internal/nn"
)

func smallSpec(seed uint64) Spec {
	s := DefaultSpec(seed)
	s.NumBases = 3
	s.ChildrenPerBase = 4
	return s
}

func TestGenerateShape(t *testing.T) {
	pop, err := Generate(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * (1 + 4)
	if len(pop.Members) != want {
		t.Fatalf("got %d members, want %d", len(pop.Members), want)
	}
	bases := 0
	for _, m := range pop.Members {
		if m.Truth.Transform == model.TransformPretrain {
			bases++
			if m.Truth.Depth != 0 || len(m.Truth.Parents) != 0 {
				t.Fatalf("base with lineage: %+v", m.Truth)
			}
		} else if len(m.Truth.Parents) == 0 {
			t.Fatalf("derived model without parents: %+v", m.Truth)
		}
		if m.Model.Net == nil {
			t.Fatalf("member %s has no weights", m.Truth.Name)
		}
		if m.Card == nil {
			t.Fatalf("member %s has no card", m.Truth.Name)
		}
	}
	if bases != 3 {
		t.Fatalf("got %d bases, want 3", bases)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("member counts differ: %d vs %d", len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		d, err := nn.WeightDistance(a.Members[i].Model.Net, b.Members[i].Model.Net)
		if err != nil || d != 0 {
			t.Fatalf("member %d weights differ across same-seed runs: %v %v", i, d, err)
		}
		if a.Members[i].Card.Completeness() != b.Members[i].Card.Completeness() {
			t.Fatalf("member %d cards differ across same-seed runs", i)
		}
	}
}

func TestEdgesConsistent(t *testing.T) {
	pop, err := Generate(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pop.Edges {
		if e.Parent < 0 || e.Parent >= len(pop.Members) || e.Child < 0 || e.Child >= len(pop.Members) {
			t.Fatalf("edge out of range: %+v", e)
		}
		if e.Parent == e.Child {
			t.Fatalf("self edge: %+v", e)
		}
		child := pop.Members[e.Child]
		found := false
		for _, p := range child.Truth.Parents {
			if p == e.Parent {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %+v not reflected in child truth %+v", e, child.Truth)
		}
		// Parent must be older (created earlier).
		if e.Parent > e.Child {
			t.Fatalf("edge points backward in creation order: %+v", e)
		}
		// Same family.
		if pop.Members[e.Parent].Truth.Family != child.Truth.Family {
			t.Fatal("edge crosses families")
		}
	}
	// Every derived member appears as a child of at least one edge.
	children := map[int]bool{}
	for _, e := range pop.Edges {
		children[e.Child] = true
	}
	for i, m := range pop.Members {
		if m.Truth.Transform != model.TransformPretrain && !children[i] {
			t.Fatalf("derived member %d has no incoming edge", i)
		}
	}
}

func TestParentChildWeightProximity(t *testing.T) {
	// The core signal for version recovery: a child is closer in weight
	// space to its parent than to a random same-arch model from another
	// family, for the overwhelming majority of pairs.
	pop, err := Generate(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	violations, checked := 0, 0
	for _, e := range pop.Edges {
		child := pop.Members[e.Child].Model.Net
		parent := pop.Members[e.Parent].Model.Net
		dPar, err := nn.WeightDistance(child, parent)
		if err != nil {
			continue
		}
		for i, other := range pop.Members {
			if pop.Members[i].Truth.Family == pop.Members[e.Child].Truth.Family {
				continue
			}
			dOther, err := nn.WeightDistance(child, other.Model.Net)
			if err != nil {
				continue
			}
			checked++
			if dPar >= dOther {
				violations++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no comparable pairs")
	}
	if frac := float64(violations) / float64(checked); frac > 0.02 {
		t.Fatalf("parent-proximity violated in %.1f%% of comparisons", frac*100)
	}
}

func TestCardCompletenessKnob(t *testing.T) {
	full := smallSpec(4)
	full.CardDropProb = 0
	popFull, err := Generate(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range popFull.Members {
		if m.Card.Completeness() < 0.9 && len(m.Truth.Parents) > 0 {
			t.Fatalf("drop=0 derived card incomplete: %v (%s)", m.Card.Completeness(), m.Truth.Name)
		}
		if m.Card.Completeness() < 0.85 {
			t.Fatalf("drop=0 card incomplete: %v (%s)", m.Card.Completeness(), m.Truth.Name)
		}
	}

	sparse := smallSpec(4)
	sparse.CardDropProb = 0.9
	popSparse, err := Generate(sparse)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, m := range popSparse.Members {
		total += m.Card.Completeness()
	}
	if avg := total / float64(len(popSparse.Members)); avg > 0.35 {
		t.Fatalf("drop=0.9 average completeness = %v, want << 1", avg)
	}
}

func TestLieFrac(t *testing.T) {
	s := smallSpec(5)
	s.LieFrac = 1.0
	s.CardDropProb = 0
	pop, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pop.Members {
		if !m.Truth.Lying {
			t.Fatalf("LieFrac=1 but %s is honest", m.Truth.Name)
		}
		if m.Card.Domain == m.Truth.Domain {
			t.Fatalf("lying card still states the true domain for %s", m.Truth.Name)
		}
	}
}

func TestDatasetsRecorded(t *testing.T) {
	pop, err := Generate(smallSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pop.Members {
		if _, ok := pop.Datasets[m.Truth.DatasetID]; !ok {
			t.Fatalf("truth dataset %q not in population datasets", m.Truth.DatasetID)
		}
	}
}

func TestTransformsAppear(t *testing.T) {
	s := DefaultSpec(8)
	s.NumBases = 4
	s.ChildrenPerBase = 8
	pop, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, m := range pop.Members {
		seen[m.Truth.Transform]++
	}
	for _, tr := range []string{model.TransformPretrain, model.TransformFinetune, model.TransformLoRA} {
		if seen[tr] == 0 {
			t.Fatalf("transform %s never generated: %v", tr, seen)
		}
	}
	// Stitch children have two parents/edges.
	for _, m := range pop.Members {
		if m.Truth.Transform == model.TransformStitch && len(m.Truth.Parents) != 2 {
			t.Fatalf("stitch with %d parents", len(m.Truth.Parents))
		}
	}
}

func TestBaseModelsAreAccurate(t *testing.T) {
	pop, err := Generate(smallSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pop.Members {
		if m.Truth.Transform != model.TransformPretrain {
			continue
		}
		ds := pop.Datasets[m.Truth.DatasetID]
		if acc := m.Model.Net.Accuracy(ds); acc < 0.9 {
			t.Fatalf("base %s accuracy %v, want >= 0.9", m.Truth.Name, acc)
		}
	}
}

func TestMembersByDomainAndEdgeSet(t *testing.T) {
	pop, err := Generate(smallSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	byDomain := pop.MembersByDomain()
	n := 0
	for _, idxs := range byDomain {
		n += len(idxs)
	}
	if n != len(pop.Members) {
		t.Fatalf("MembersByDomain covers %d of %d members", n, len(pop.Members))
	}
	es := pop.TrueEdgeSet()
	if len(es) != len(pop.Edges) {
		t.Fatalf("edge set size %d != edges %d", len(es), len(pop.Edges))
	}
}

func BenchmarkGenerateSmallLake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(smallSpec(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPreferenceTransform(t *testing.T) {
	s := DefaultSpec(40)
	s.NumBases = 2
	s.ChildrenPerBase = 6
	s.TransformMix = map[string]float64{model.TransformPreference: 1}
	pop, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	prefCount := 0
	for _, m := range pop.Members {
		if m.Truth.Transform != model.TransformPreference {
			continue
		}
		prefCount++
		parent := pop.Members[m.Truth.Parents[0]]
		d, err := nn.WeightDistance(parent.Model.Net, m.Model.Net)
		if err != nil || d == 0 {
			t.Fatalf("preference child identical to parent: %v %v", d, err)
		}
	}
	if prefCount == 0 {
		t.Fatal("no preference-tuned members generated")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	pop, err := Generate(smallSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(pop, dir); err != nil {
		t.Fatal(err)
	}
	got, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != len(pop.Members) || len(got.Edges) != len(pop.Edges) {
		t.Fatalf("shape changed: %d/%d members, %d/%d edges",
			len(got.Members), len(pop.Members), len(got.Edges), len(pop.Edges))
	}
	for i := range pop.Members {
		d, err := nn.WeightDistance(pop.Members[i].Model.Net, got.Members[i].Model.Net)
		if err != nil || d != 0 {
			t.Fatalf("member %d weights changed: %v %v", i, d, err)
		}
		if got.Members[i].Card.Completeness() != pop.Members[i].Card.Completeness() {
			t.Fatalf("member %d card changed", i)
		}
		gt, pt := got.Members[i].Truth, pop.Members[i].Truth
		if gt.Name != pt.Name || gt.Domain != pt.Domain || gt.DatasetID != pt.DatasetID ||
			gt.Transform != pt.Transform || gt.Depth != pt.Depth || gt.Family != pt.Family ||
			len(gt.Parents) != len(pt.Parents) {
			t.Fatalf("member %d truth changed: %+v vs %+v", i, gt, pt)
		}
	}
	// Regenerated datasets cover every truth dataset ID.
	for _, m := range got.Members {
		if _, ok := got.Datasets[m.Truth.DatasetID]; !ok {
			t.Fatalf("dataset %q missing after import", m.Truth.DatasetID)
		}
	}
	// And the imported models still fit their datasets (the datasets really
	// are the ones they were trained on).
	base := got.Members[0]
	if acc := base.Model.Net.Accuracy(got.Datasets[base.Truth.DatasetID]); acc < 0.9 {
		t.Fatalf("imported base accuracy %v on regenerated dataset", acc)
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(t.TempDir()); err == nil {
		t.Fatal("import from empty dir succeeded")
	}
}

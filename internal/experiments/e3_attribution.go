package experiments

import (
	"fmt"

	"modellake/internal/attribution"
	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/privacy"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// RunE3 evaluates training-data attribution (§3 Model Attribution): the
// gradient-influence estimator against exact leave-one-out retraining ground
// truth, over several trials. Reported: Spearman rank correlation and the
// top-5 overlap, plus a shuffled-influence control that should sit at ~0.
func RunE3(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "gradient influence vs exact leave-one-out (n=24 training examples)",
		Columns: []string{"trial", "spearman", "top-5 overlap", "shuffled spearman"},
		Notes:   "paper: influence estimation must substitute for infeasible exact attribution",
	}
	const trials = 4
	var sumRho, sumOv float64
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)*31
		dom := data.NewDomain(fmt.Sprintf("attr%d", trial), 6, 2, s)
		ds := dom.Sample("attr/train", 24, 0.6, xrand.New(s+1))
		cfg := attribution.LOOConfig{
			Arch:     []int{6, 8, 2},
			Act:      nn.ReLU,
			Train:    nn.TrainConfig{Epochs: 30, BatchSize: 8, LR: 0.1, Seed: s + 2},
			InitSeed: s + 3,
		}
		full := nn.NewMLP(cfg.Arch, cfg.Act, xrand.New(cfg.InitSeed))
		if _, err := nn.Train(full, ds, cfg.Train); err != nil {
			return nil, err
		}
		x := dom.Mean(trial % 2).Clone()
		y := trial % 2

		loo, err := attribution.LeaveOneOut(cfg, ds, x, y)
		if err != nil {
			return nil, err
		}
		inf, err := attribution.GradientInfluence(full, ds, x, y)
		if err != nil {
			return nil, err
		}
		rho := tensor.SpearmanCorrelation(inf, loo)
		ov := attribution.OverlapAtK(inf, loo, 5)

		shuffled := append([]float64(nil), inf...)
		xrand.New(s+4).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		rhoShuf := tensor.SpearmanCorrelation(shuffled, loo)

		sumRho += rho
		sumOv += ov
		t.AddRow(fmt.Sprint(trial), f3(rho), f3(ov), f3(rhoShuf))
	}
	t.AddRow("mean", f3(sumRho/trials), f3(sumOv/trials), "-")
	return t, nil
}

// RunE5 evaluates membership inference (§3/§4): the loss-threshold attack's
// AUC as a function of training epochs, on a hard noisy task with 25% label
// noise so long training memorizes.
func RunE5(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "membership-inference AUC vs training epochs (loss-threshold attack, mean of 5 trials)",
		Columns: []string{"epochs", "train acc", "held-out acc", "AUC"},
		Notes:   "expected shape: AUC rises from ~0.5 with overfitting",
	}
	const trials = 5
	for _, epochs := range []int{2, 10, 50, 200, 500} {
		var accTrain, accHeld, aucSum float64
		for trial := 0; trial < trials; trial++ {
			s := seed + uint64(trial)*101
			dom := data.NewDomain(fmt.Sprintf("member%d", trial), 8, 2, s)
			train := dom.Sample("member/train", 40, 3.0, xrand.New(s+1))
			held := dom.Sample("member/held", 40, 3.0, xrand.New(s+2))
			rng := xrand.New(s + 3)
			for i := range train.Y {
				if rng.Float64() < 0.25 {
					train.Y[i] = 1 - train.Y[i]
				}
			}
			m := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(s+4))
			cfg := nn.TrainConfig{Epochs: epochs, BatchSize: 8, LR: 0.1, Seed: s + 5}
			if _, err := nn.Train(m, train, cfg); err != nil {
				return nil, err
			}
			auc, err := attribution.MembershipAUC(m, train, held)
			if err != nil {
				return nil, err
			}
			accTrain += m.Accuracy(train)
			accHeld += m.Accuracy(held)
			aucSum += auc
		}
		t.AddRow(fmt.Sprint(epochs), f3(accTrain/trials), f3(accHeld/trials), f3(aucSum/trials))
	}

	// Defence ablation at the most-overfit setting: DP-SGD (training-side)
	// works; confidence masking (output-side) does not — the paper's
	// "false sense of privacy" caveat.
	var dpTrain, dpHeld, dpAUC, maskAUC float64
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)*101
		dom := data.NewDomain(fmt.Sprintf("member%d", trial), 8, 2, s)
		train := dom.Sample("member/train", 40, 3.0, xrand.New(s+1))
		held := dom.Sample("member/held", 40, 3.0, xrand.New(s+2))
		rng := xrand.New(s + 3)
		for i := range train.Y {
			if rng.Float64() < 0.25 {
				train.Y[i] = 1 - train.Y[i]
			}
		}
		cfg := nn.TrainConfig{Epochs: 500, BatchSize: 8, LR: 0.1, Seed: s + 5}

		dpModel := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(s+4))
		if _, err := privacy.TrainDP(dpModel, train, cfg, privacy.DPConfig{
			ClipNorm: 0.3, NoiseMultiplier: 2.0, Seed: s + 6}); err != nil {
			return nil, err
		}
		auc, err := attribution.MembershipAUC(dpModel, train, held)
		if err != nil {
			return nil, err
		}
		dpTrain += dpModel.Accuracy(train)
		dpHeld += dpModel.Accuracy(held)
		dpAUC += auc

		plain := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(s+4))
		if _, err := nn.Train(plain, train, cfg); err != nil {
			return nil, err
		}
		masked, err := privacy.MembershipAUCDefended(
			&privacy.Defended{Net: plain, MaxConf: 0.51}, train, held)
		if err != nil {
			return nil, err
		}
		maskAUC += masked
	}
	t.AddRow("500+dp-sgd", f3(dpTrain/trials), f3(dpHeld/trials), f3(dpAUC/trials))
	t.AddRow("500+mask(.51)", "-", "-", f3(maskAUC/trials))
	t.Notes += "; DP-SGD defends, output masking does not (label-only leakage persists)"
	return t, nil
}

package experiments

import (
	"fmt"
	"time"

	"modellake/internal/benchmark"
	"modellake/internal/kvstore"
	"modellake/internal/lakegen"
	"modellake/internal/model"
)

// RunE11 evaluates lifelong benchmarking (§5, citing Prabhu et al.): as the
// lake grows, keeping every model scored on every benchmark must cost only
// the *new* (model, benchmark) pairs, not a full re-evaluation. The runner's
// durable score cache provides exactly that; the table reports evaluations
// actually executed vs served from cache at each growth step.
func RunE11(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "lifelong benchmarking: incremental evaluation cost as the lake grows",
		Columns: []string{"phase", "models", "benchmarks", "pairs", "evaluated", "cached", "wall time"},
		Notes:   "evaluated should equal only the newly added pairs after the first phase",
	}
	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = 4
	spec.ChildrenPerBase = 8
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return nil, err
	}
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
	}
	var benches []*benchmark.Benchmark
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			benches = append(benches, &benchmark.Benchmark{
				ID: "bench-" + m.Truth.Domain, DS: pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	runner := benchmark.NewRunner(kvstore.OpenMemory())

	scoreAll := func(upto int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < upto; i++ {
			h := model.NewHandle(pop.Members[i].Model)
			for _, b := range benches {
				if _, err := runner.Score(h, b); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}

	phases := []struct {
		name string
		upto int
	}{
		{"initial", 20},
		{"grow +8", 28},
		{"grow +8", len(pop.Members)},
		{"steady re-check", len(pop.Members)},
	}
	prevHits, prevMisses := 0, 0
	for _, ph := range phases {
		elapsed, err := scoreAll(ph.upto)
		if err != nil {
			return nil, err
		}
		evaluated := runner.Misses - prevMisses
		cached := runner.Hits - prevHits
		prevMisses, prevHits = runner.Misses, runner.Hits
		t.AddRow(ph.name, fmt.Sprint(ph.upto), fmt.Sprint(len(benches)),
			fmt.Sprint(ph.upto*len(benches)), fmt.Sprint(evaluated), fmt.Sprint(cached),
			elapsed.Round(time.Microsecond).String())
	}
	return t, nil
}

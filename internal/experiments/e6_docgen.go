package experiments

import (
	"fmt"
	"strings"

	"modellake/internal/benchmark"
	"modellake/internal/docgen"
	"modellake/internal/embedding"
	"modellake/internal/kvstore"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/version"
)

// RunE6 evaluates documentation generation (§6): a census of card
// completeness in the generated lake (the Liang-et-al. observation as a
// knob), docgen's ability to recover dropped fields from intrinsic and
// extrinsic evidence, and misinformation detection against PoisonGPT-style
// lying cards.
func RunE6(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "card census and docgen field recovery",
		Columns: []string{"doc drop", "lie frac", "mean completeness", "draft completeness",
			"domain acc", "base acc", "lie detection"},
		Notes: "drafts regenerate dropped fields; contradictions flag lying cards",
	}
	for _, cfg := range []struct{ drop, lies float64 }{
		{0.3, 0.0},
		{0.6, 0.0},
		{0.9, 0.0},
		{0.0, 0.4},
	} {
		spec := lakegen.DefaultSpec(seed)
		spec.NumBases = 4
		spec.ChildrenPerBase = 6
		spec.CardDropProb = cfg.drop
		spec.LieFrac = cfg.lies
		pop, err := lakegen.Generate(spec)
		if err != nil {
			return nil, err
		}
		// Assign IDs, reconstruct the graph, wire a generator.
		var nodes []version.Node
		var peers []docgen.Peer
		for i, m := range pop.Members {
			m.Model.ID = fmt.Sprintf("m%02d", i)
			m.Card.ModelID = m.Model.ID
			nodes = append(nodes, version.Node{ID: m.Model.ID, Net: m.Model.Net})
			peers = append(peers, docgen.Peer{Handle: model.NewHandle(m.Model), Card: m.Card})
		}
		graph, err := version.Reconstruct(nodes, version.Config{ClassifyEdges: true, Seed: seed})
		if err != nil {
			return nil, err
		}
		gen := &docgen.Generator{
			Peers:     peers,
			Graph:     graph,
			Runner:    benchmark.NewRunner(kvstore.OpenMemory()),
			Behavior:  embedding.NewBehaviorEmbedder(spec.Dim, 32, 8, seed),
			ProbeSeed: seed + 1,
		}

		var censusSum, draftSum float64
		var domainOK, domainN, baseOK, baseN int
		var liesFlagged, liesTotal int
		for i, m := range pop.Members {
			censusSum += m.Card.Completeness()
			// Draft from the published (possibly gappy/lying) card.
			d, err := gen.Draft(model.NewHandle(m.Model), m.Card)
			if err != nil {
				return nil, err
			}
			draftSum += d.Card.Completeness()

			if m.Truth.Lying {
				liesTotal++
				caught := false
				for _, f := range d.Flags {
					if strings.Contains(f, "domain") {
						caught = true
						break
					}
				}
				// Second line of defence (as in the lake's audit item A6):
				// verify the card's training-data claim behaviourally.
				if !caught && m.Card.TrainingData != "" {
					if ds, ok := pop.Datasets[m.Card.TrainingData]; ok {
						verdict, _, err := docgen.VerifyTrainingClaim(model.NewHandle(m.Model), ds)
						if err == nil && verdict == docgen.ClaimRefuted {
							caught = true
						}
					}
				}
				if caught {
					liesFlagged++
				}
			}
			// Field recovery accuracy on fields the published card lost.
			if m.Card.Domain == "" && d.Card.Domain != "" {
				domainN++
				if baseDomain(d.Card.Domain) == baseDomain(m.Truth.Domain) {
					domainOK++
				}
			}
			if m.Card.BaseModel == "" && d.Card.BaseModel != "" && len(m.Truth.Parents) > 0 {
				baseN++
				if d.Card.BaseModel == fmt.Sprintf("m%02d", m.Truth.Parents[0]) {
					baseOK++
				}
			}
			_ = i
		}
		n := float64(len(pop.Members))
		ratio := func(ok, total int) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f (%d/%d)", float64(ok)/float64(total), ok, total)
		}
		t.AddRow(f2(cfg.drop), f2(cfg.lies), f3(censusSum/n), f3(draftSum/n),
			ratio(domainOK, domainN), ratio(baseOK, baseN), ratio(liesFlagged, liesTotal))
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"time"

	"modellake/internal/benchmark"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
)

// RunE9 evaluates the declarative query interface (§5/§6, Figure 2): the
// paper's example queries are executed against lakes of growing size, and
// each result set is verified against independently computed ground truth.
func RunE9(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "MLQL declarative queries: correctness and latency",
		Columns: []string{"models", "query", "hits", "correct", "latency"},
		Notes:   "correct = result set matches ground truth computed outside the query engine",
	}
	for _, size := range []struct{ bases, children int }{{3, 4}, {5, 9}} {
		spec := lakegen.DefaultSpec(seed)
		spec.NumBases = size.bases
		spec.ChildrenPerBase = size.children
		spec.CardDropProb = 0.2
		pop, err := lakegen.Generate(spec)
		if err != nil {
			return nil, err
		}
		lk, err := lake.Open(lake.Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, ds := range pop.Datasets {
			lk.RegisterDataset(ds)
		}
		ids := make([]string, len(pop.Members))
		for i, m := range pop.Members {
			rec, err := lk.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name})
			if err != nil {
				lk.Close()
				return nil, err
			}
			ids[i] = rec.ID
		}
		var baseIdx int
		for i, m := range pop.Members {
			if m.Truth.Depth == 0 && m.Truth.Domain == "legal" {
				baseIdx = i
			}
		}
		base := pop.Members[baseIdx]
		benchID := "bench-legal"
		lk.RegisterBenchmark(&benchmark.Benchmark{
			ID: benchID, DS: pop.Datasets[base.Truth.DatasetID], Metric: benchmark.MetricAccuracy,
		})

		run := func(label, q string, want map[string]bool, ordered bool) error {
			start := time.Now()
			res, err := lk.Query(q)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			got := map[string]bool{}
			for _, h := range res.Hits {
				got[h.ID] = true
			}
			correct := "yes"
			if want != nil {
				if len(got) != len(want) {
					correct = "no"
				} else {
					for id := range want {
						if !got[id] {
							correct = "no"
						}
					}
				}
			} else {
				correct = "-"
			}
			_ = ordered
			t.AddRow(fmt.Sprint(len(pop.Members)), label, fmt.Sprint(len(res.Hits)),
				correct, elapsed.Round(time.Microsecond).String())
			return nil
		}

		// TRAINED ON: ground truth from the published cards.
		wantTrained := map[string]bool{}
		for i, m := range pop.Members {
			if m.Card.TrainingData == base.Truth.DatasetID {
				wantTrained[ids[i]] = true
			}
		}
		if err := run("TRAINED ON DATASET",
			fmt.Sprintf("FIND MODELS WHERE TRAINED ON DATASET '%s'", base.Truth.DatasetID),
			wantTrained, false); err != nil {
			lk.Close()
			return nil, err
		}

		// OUTPERFORMS: ground truth by scoring directly.
		baseScore, err := lk.Score(ids[baseIdx], benchID)
		if err != nil {
			lk.Close()
			return nil, err
		}
		wantBetter := map[string]bool{}
		for i := range pop.Members {
			if i == baseIdx {
				continue
			}
			s, err := lk.Score(ids[i], benchID)
			if err != nil {
				continue
			}
			if s > baseScore {
				wantBetter[ids[i]] = true
			}
		}
		if err := run("OUTPERFORMS ... ON BENCHMARK",
			fmt.Sprintf("FIND MODELS WHERE OUTPERFORMS MODEL '%s' ON BENCHMARK '%s'", ids[baseIdx], benchID),
			wantBetter, false); err != nil {
			lk.Close()
			return nil, err
		}

		// Similarity ranking with a domain filter.
		if err := run("DOMAIN filter + RANK BY SIMILARITY",
			fmt.Sprintf("FIND MODELS WHERE DOMAIN = 'legal' RANK BY SIMILARITY TO MODEL '%s' USING BEHAVIOR LIMIT 5", ids[baseIdx]),
			nil, true); err != nil {
			lk.Close()
			return nil, err
		}
		lk.Close()
	}
	return t, nil
}

package experiments

import (
	"os"
	"testing"
)

// TestE17Shape runs the keyword benchmark at a toy size and pins its
// acceptance properties: the pruned and disk paths answer bitwise-identically
// to the exhaustive map scorer, segments actually form (blocks get decoded),
// and the segment paths report a smaller postings heap than the map tier.
func TestE17Shape(t *testing.T) {
	tab, res, err := RunE17Keyword(testSeed(), []int{2000}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // map, pruned, disk
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	byKind := map[string]KeywordPoint{}
	for _, p := range res.Points {
		byKind[p.Kind] = p
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged from the map scorer: %+v", p.Kind, p)
		}
		if p.QPS <= 0 || p.P50Ns <= 0 || p.P99Ns < p.P50Ns {
			t.Fatalf("path %s reported implausible timings: %+v", p.Kind, p)
		}
		if p.PostingsHeapBytes <= 0 {
			t.Fatalf("path %s reported no postings heap: %+v", p.Kind, p)
		}
	}
	for _, kind := range []string{"pruned", "disk"} {
		p := byKind[kind]
		if p.BlocksScanned == 0 {
			t.Fatalf("%s path never decoded a block; the segment tier did not engage: %+v", kind, p)
		}
		if p.PostingsHeapBytes >= byKind["map"].PostingsHeapBytes {
			t.Fatalf("%s postings heap %d not below map tier's %d", kind,
				p.PostingsHeapBytes, byKind["map"].PostingsHeapBytes)
		}
	}
	if byKind["disk"].SegmentBytes <= 0 {
		t.Fatalf("disk path reported no segment bytes: %+v", byKind["disk"])
	}
}

// TestKeywordSmoke100k is the full-scale acceptance gate for the keyword
// read path: at 100k documents the segment-backed scorers must answer
// bitwise-identically to the map scorer while being at least 2x faster, and
// disk residency must cut the postings tier's resident heap by at least 4x.
// Minutes-scale, so it only runs when MODELLAKE_SCALE_SMOKE is set (the CI
// bench job sets it; local runs opt in explicitly).
func TestKeywordSmoke100k(t *testing.T) {
	if os.Getenv("MODELLAKE_SCALE_SMOKE") == "" {
		t.Skip("set MODELLAKE_SCALE_SMOKE=1 to run the 100k keyword smoke test")
	}
	_, res, err := RunE17Keyword(42, []int{100_000}, 300)
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]KeywordPoint{}
	for _, p := range res.Points {
		byKind[p.Kind] = p
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged at 100k: %+v", p.Kind, p)
		}
	}
	mp, disk := byKind["map"], byKind["disk"]
	if disk.QPS < 2*mp.QPS {
		t.Fatalf("disk keyword QPS %.1f is under 2x the map scorer's %.1f", disk.QPS, mp.QPS)
	}
	if disk.PostingsHeapBytes*4 > mp.PostingsHeapBytes {
		t.Fatalf("disk postings heap %d is not a 4x reduction from the map tier's %d",
			disk.PostingsHeapBytes, mp.PostingsHeapBytes)
	}
}

package experiments

import (
	"fmt"

	"modellake/internal/benchmark"
	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/search"
)

// RunF1 operationalizes Figure 1's three-viewpoints framing: the same
// related-model search task is solved using each viewpoint in isolation —
// extrinsic behaviour, intrinsic weights, and documentation — at a realistic
// documentation-dropout level. Each searcher receives handles restricted to
// exactly its viewpoint, demonstrating that the task implementations consume
// only what they declare; the table reports how much each viewpoint alone
// buys, and how many models each viewpoint can even see.
func RunF1(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "related-model search by single viewpoint (doc drop = 0.5)",
		Columns: []string{"viewpoint", "indexable models", "P@5", "nDCG@5"},
		Notes:   "restricted handles enforce the viewpoint; docs-only sees only documented models",
	}
	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = 4
	spec.ChildrenPerBase = 6
	spec.CardDropProb = 0.5
	spec.AnonymousNames = true
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return nil, err
	}
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
		m.Card.ModelID = m.Model.ID
	}
	relevantFor := func(qi int) map[string]bool {
		out := map[string]bool{}
		for i, m := range pop.Members {
			if i != qi && m.Truth.Family == pop.Members[qi].Truth.Family {
				out[m.Model.ID] = true
			}
		}
		return out
	}

	type ranker struct {
		name  string
		count int
		rank  func(qi int) ([]string, error)
	}
	var rankers []ranker

	// Extrinsic: behaviour embeddings over extrinsic-only handles.
	{
		be := embedding.NewBehaviorEmbedder(spec.Dim, 32, 8, seed)
		cs := search.NewContentSearcher(be, index.NewFlat(index.Cosine))
		count := 0
		for _, m := range pop.Members {
			if err := cs.Add(model.WithViews(m.Model, model.ViewExtrinsic)); err == nil {
				count++
			}
		}
		rankers = append(rankers, ranker{"extrinsic (behaviour)", count, func(qi int) ([]string, error) {
			hits, err := cs.SearchByModel(model.WithViews(pop.Members[qi].Model, model.ViewExtrinsic), 5)
			if err != nil {
				return nil, err
			}
			return hitIDs(hits), nil
		}})
	}

	// Intrinsic: weight embeddings over intrinsic-only handles.
	{
		we := embedding.NewWeightEmbedder(32, 4, seed+1)
		cs := search.NewContentSearcher(we, index.NewFlat(index.Cosine))
		count := 0
		for _, m := range pop.Members {
			if err := cs.Add(model.WithViews(m.Model, model.ViewIntrinsic)); err == nil {
				count++
			}
		}
		rankers = append(rankers, ranker{"intrinsic (weights)", count, func(qi int) ([]string, error) {
			hits, err := cs.SearchByModel(model.WithViews(pop.Members[qi].Model, model.ViewIntrinsic), 5)
			if err != nil {
				return nil, err
			}
			return hitIDs(hits), nil
		}})
	}

	// Documentation: keyword search with the query model's card text.
	{
		ki := search.NewKeywordIndex()
		count := 0
		for _, m := range pop.Members {
			if text := m.Card.Text(); text != m.Card.Name { // more than just the name
				ki.Add(m.Model.ID, text)
				count++
			}
		}
		rankers = append(rankers, ranker{"documentation (cards)", count, func(qi int) ([]string, error) {
			hits := ki.Search(pop.Members[qi].Card.Text(), 6)
			var out []string
			for _, h := range hits {
				if h.ID != pop.Members[qi].Model.ID {
					out = append(out, h.ID)
				}
			}
			if len(out) > 5 {
				out = out[:5]
			}
			return out, nil
		}})
	}

	for _, r := range rankers {
		var p, n float64
		queries := 0
		for qi := range pop.Members {
			ranking, err := r.rank(qi)
			if err != nil {
				continue
			}
			rel := relevantFor(qi)
			p += benchmark.PrecisionAtK(ranking, rel, 5)
			n += benchmark.NDCGAtK(ranking, rel, 5)
			queries++
		}
		if queries == 0 {
			t.AddRow(r.name, "0", "-", "-")
			continue
		}
		t.AddRow(r.name, fmt.Sprint(r.count), f3(p/float64(queries)), f3(n/float64(queries)))
	}
	return t, nil
}

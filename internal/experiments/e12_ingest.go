package experiments

import (
	"fmt"
	"runtime"
	"time"

	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
)

// IngestBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_ingest.json so CI can track ingest throughput over time. All
// durations are nanoseconds; Speedup is serial/parallel wall time for the
// requested parallelism.
type IngestBenchResult struct {
	NModels       int     `json:"n_models"`
	Parallelism   int     `json:"parallelism"`
	SerialNs      int64   `json:"serial_ns"`
	ParallelNs    int64   `json:"parallel_ns"`
	Speedup       float64 `json:"speedup"`
	IdenticalTopK bool    `json:"identical_topk"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
}

// RunE12 is the experiment-index entry point; it benchmarks at the machine's
// GOMAXPROCS alongside the fixed sweep points.
func RunE12(seed uint64) (*Table, error) {
	t, _, err := RunE12Ingest(seed, 0)
	return t, err
}

// RunE12Ingest measures the parallel ingest-and-index pipeline against the
// serial Ingest loop on the same population, and verifies the acceptance
// property the pipeline is built around: parallel ingest must be faster AND
// answer content searches identically to serial ingest (embedding commits
// happen in input order, so the index is the same object either way).
//
// parallelism <= 0 means GOMAXPROCS. The returned result describes the run
// at the requested parallelism; the table additionally sweeps 1, 2, and 4
// workers so the scaling shape is visible in one rendering.
func RunE12Ingest(seed uint64, parallelism int) (*Table, *IngestBenchResult, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID:    "E12",
		Title: "parallel ingest pipeline vs serial loop (fresh lake per run)",
		Columns: []string{"workers", "ingest", "models/s", "speedup",
			"identical top-k", "cache hits/misses"},
		Notes: "expected shape: near-linear speedup until workers ~ cores; top-k always identical",
	}

	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = 4
	spec.ChildrenPerBase = 7
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	n := len(pop.Members)

	// A high probe count makes behavioural embedding the dominant ingest
	// cost, which is the regime the pipeline exists for (real model lakes
	// embed with forward passes, not 32 probes over a toy MLP).
	cfg := lake.Config{Seed: seed, Probes: 4096}

	// Serial baseline: the classic one-model-at-a-time Ingest loop.
	serial, err := lake.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer serial.Close()
	serialStart := time.Now()
	for _, m := range pop.Members {
		if _, err := serial.Ingest(m.Model, m.Card, registry.RegisterOptions{
			Name: m.Truth.Name, Version: "1",
		}); err != nil {
			return nil, nil, err
		}
	}
	serialNs := time.Since(serialStart)
	t.AddRow("serial", serialNs.Round(time.Millisecond).String(),
		f2(float64(n)/serialNs.Seconds()), "1.00x", "-", "-")

	items := make([]lake.IngestItem, n)
	for i, m := range pop.Members {
		items[i] = lake.IngestItem{Model: m.Model, Card: m.Card,
			Opts: registry.RegisterOptions{Name: m.Truth.Name, Version: "1"}}
	}

	sweep := []int{1, 2, 4}
	requested := true
	for _, p := range sweep {
		if p == parallelism {
			requested = false
		}
	}
	if requested {
		sweep = append(sweep, parallelism)
	}

	var result *IngestBenchResult
	for _, p := range sweep {
		lk, err := lake.Open(cfg)
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		recs, errs := lk.IngestAll(items, p)
		elapsed := time.Since(start)
		for i, e := range errs {
			if e != nil {
				lk.Close()
				return nil, nil, fmt.Errorf("E12: parallel ingest item %d: %w", i, e)
			}
		}

		identical := true
		for _, rec := range recs {
			for _, space := range []string{"behavior", "weights"} {
				want, err := serial.SearchByModel(rec.ID, space, 10)
				if err != nil {
					lk.Close()
					return nil, nil, err
				}
				got, err := lk.SearchByModel(rec.ID, space, 10)
				if err != nil {
					lk.Close()
					return nil, nil, err
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					identical = false
				}
			}
		}
		hits, misses := lk.EmbedCacheStats()
		lk.Close()

		speedup := float64(serialNs) / float64(elapsed)
		t.AddRow(fmt.Sprint(p), elapsed.Round(time.Millisecond).String(),
			f2(float64(n)/elapsed.Seconds()), fmt.Sprintf("%.2fx", speedup),
			fmt.Sprint(identical), fmt.Sprintf("%d/%d", hits, misses))
		if p == parallelism {
			result = &IngestBenchResult{
				NModels:       n,
				Parallelism:   p,
				SerialNs:      serialNs.Nanoseconds(),
				ParallelNs:    elapsed.Nanoseconds(),
				Speedup:       speedup,
				IdenticalTopK: identical,
				CacheHits:     hits,
				CacheMisses:   misses,
			}
		}
	}
	return t, result, nil
}

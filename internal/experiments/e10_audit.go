package experiments

import (
	"fmt"

	"modellake/internal/audit"
	"modellake/internal/lakegen"
	"modellake/internal/version"
)

// RunE10 evaluates audit risk propagation (§6, Wang et al.): a base model is
// flagged, and the audit must find all its true descendants. The recovered
// (weight-based) version graph is compared with the declared-metadata graph
// as documentation completeness drops: declared lineage loses descendants,
// the recovered graph does not.
func RunE10(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "upstream-risk recall: recovered vs declared version graph",
		Columns: []string{"doc drop", "true descendants", "recovered recall", "recovered precision",
			"declared recall"},
		Notes: "flagging one base per family; recall = flagged descendants found / true descendants",
	}
	for _, drop := range []float64{0.0, 0.3, 0.6, 0.9} {
		spec := lakegen.DefaultSpec(seed)
		spec.NumBases = 3
		spec.ChildrenPerBase = 6
		spec.CardDropProb = drop
		pop, err := lakegen.Generate(spec)
		if err != nil {
			return nil, err
		}
		idOf := func(i int) string { return fmt.Sprintf("n%d", i) }

		// Recovered graph from weights.
		nodes := make([]version.Node, len(pop.Members))
		nameToID := map[string]string{}
		for i, m := range pop.Members {
			nodes[i] = version.Node{ID: idOf(i), Net: m.Model.Net}
			nameToID[m.Truth.Name] = idOf(i)
		}
		recovered, err := version.Reconstruct(nodes, version.Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		// Declared graph from surviving base_model fields.
		declared := &version.Graph{}
		for i := range pop.Members {
			declared.Nodes = append(declared.Nodes, idOf(i))
		}
		for i, m := range pop.Members {
			if m.Card.BaseModel == "" {
				continue
			}
			if pid, ok := nameToID[m.Card.BaseModel]; ok {
				declared.Edges = append(declared.Edges, version.Edge{Parent: pid, Child: idOf(i)})
			}
		}

		// Flag every base; true descendants via the generator's edges.
		flagged := map[string]string{}
		for i, m := range pop.Members {
			if m.Truth.Depth == 0 {
				flagged[idOf(i)] = "poisoned"
			}
		}
		children := map[int][]int{}
		for _, e := range pop.Edges {
			children[e.Parent] = append(children[e.Parent], e.Child)
		}
		trueDesc := map[string]bool{}
		for i, m := range pop.Members {
			if m.Truth.Depth != 0 {
				continue
			}
			queue := []int{i}
			for qi := 0; qi < len(queue); qi++ {
				for _, c := range children[queue[qi]] {
					if !trueDesc[idOf(c)] {
						trueDesc[idOf(c)] = true
						queue = append(queue, c)
					}
				}
			}
		}

		recall := func(g *version.Graph) (rec, prec float64) {
			prop := audit.PropagateRisk(g, flagged)
			found := map[string]bool{}
			for id := range prop {
				if _, isBase := flagged[id]; !isBase {
					found[id] = true
				}
			}
			tp := 0
			for id := range found {
				if trueDesc[id] {
					tp++
				}
			}
			if len(trueDesc) > 0 {
				rec = float64(tp) / float64(len(trueDesc))
			}
			if len(found) > 0 {
				prec = float64(tp) / float64(len(found))
			}
			return rec, prec
		}
		recRecall, recPrec := recall(recovered)
		decRecall, _ := recall(declared)
		t.AddRow(f2(drop), fmt.Sprint(len(trueDesc)), f3(recRecall), f3(recPrec), f3(decRecall))
	}
	return t, nil
}

package experiments

import (
	"fmt"

	"modellake/internal/lakegen"
	"modellake/internal/version"
	"modellake/internal/xrand"
)

// RunE2 evaluates version-graph reconstruction (§3 Model Versioning): edge
// F1 of weight-similarity recovery (with both direction heuristics) against
// the declared-metadata baseline (cards' base_model fields, which thin out
// as documentation drops) and a random-graph control, across lake sizes.
// It also reports the transformation-labeling accuracy on correctly
// recovered edges.
func RunE2(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "version-graph edge F1: weights vs declared metadata vs random",
		Columns: []string{"models", "doc drop", "weights(norm) F1", "weights(kurt) F1",
			"model-dna F1", "declared F1", "random F1", "edge-type acc"},
		Notes: "weight recovery is documentation-independent; declared lineage decays with drop",
	}
	for _, cfg := range []struct {
		bases, children int
		drop            float64
	}{
		{3, 5, 0.0},
		{3, 5, 0.5},
		{3, 5, 0.9},
		{5, 9, 0.5},
	} {
		spec := lakegen.DefaultSpec(seed)
		spec.NumBases = cfg.bases
		spec.ChildrenPerBase = cfg.children
		spec.CardDropProb = cfg.drop
		pop, err := lakegen.Generate(spec)
		if err != nil {
			return nil, err
		}
		nodes := make([]version.Node, len(pop.Members))
		nameToID := map[string]string{}
		for i, m := range pop.Members {
			id := fmt.Sprintf("n%d", i)
			nodes[i] = version.Node{ID: id, Net: m.Model.Net}
			nameToID[m.Truth.Name] = id
		}
		truth := map[[2]string]bool{}
		truthTransforms := map[[2]string]string{}
		for _, e := range pop.Edges {
			key := [2]string{fmt.Sprintf("n%d", e.Parent), fmt.Sprintf("n%d", e.Child)}
			truth[key] = true
			truthTransforms[key] = e.Transform
		}

		gNorm, err := version.Reconstruct(nodes, version.Config{
			Heuristic: version.NormDrift{}, ClassifyEdges: true, Seed: seed})
		if err != nil {
			return nil, err
		}
		gKurt, err := version.Reconstruct(nodes, version.Config{
			Heuristic: version.KurtosisDrift{}, Seed: seed})
		if err != nil {
			return nil, err
		}
		dna := version.NewDNA(spec.Dim, seed+5)
		gDNA, err := version.Reconstruct(nodes, version.Config{
			DistanceFn: dna.DNADistanceFn(), Seed: seed})
		if err != nil {
			return nil, err
		}

		// Declared baseline: whatever base_model fields survived.
		var declared []version.Edge
		for i, m := range pop.Members {
			if m.Card.BaseModel == "" {
				continue
			}
			if pid, ok := nameToID[m.Card.BaseModel]; ok {
				declared = append(declared, version.Edge{Parent: pid, Child: fmt.Sprintf("n%d", i)})
			}
		}

		// Random control with as many edges as the true graph.
		rng := xrand.New(seed + 99)
		var random []version.Edge
		for i := 0; i < len(pop.Edges); i++ {
			a, b := rng.Intn(len(nodes)), rng.Intn(len(nodes))
			if a != b {
				random = append(random, version.Edge{
					Parent: fmt.Sprintf("n%d", a), Child: fmt.Sprintf("n%d", b)})
			}
		}

		// Edge-type accuracy over correctly recovered edges.
		correct, graded := 0, 0
		for _, e := range gNorm.Edges {
			key := [2]string{e.Parent, e.Child}
			if want, ok := truthTransforms[key]; ok {
				graded++
				if e.Transform == want {
					correct++
				}
			}
		}
		typeAcc := 0.0
		if graded > 0 {
			typeAcc = float64(correct) / float64(graded)
		}

		t.AddRow(
			fmt.Sprint(len(pop.Members)),
			f2(cfg.drop),
			f3(version.EvaluateEdges(gNorm.Edges, truth).F1),
			f3(version.EvaluateEdges(gKurt.Edges, truth).F1),
			f3(version.EvaluateEdges(gDNA.Edges, truth).F1),
			f3(version.EvaluateEdges(declared, truth).F1),
			f3(version.EvaluateEdges(random, truth).F1),
			f3(typeAcc),
		)
	}
	return t, nil
}

package experiments

import (
	"os"
	"testing"
)

// TestE16Shape runs the atlas-scale benchmark at toy sizes and pins its
// acceptance properties: every measured path answers bitwise-identically to
// the exact flat scan, the disk tier reports a real open latency and
// segment size, and the streamed lake round-trips through close/reopen
// with a working search path.
func TestE16Shape(t *testing.T) {
	tab, res, err := RunE16Scale(testSeed(), []int{300}, 30, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // exact, quant, disk, stream
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged from the exact scan: %+v", p.Kind, p)
		}
		if p.QPS <= 0 || p.P50Ns <= 0 || p.P99Ns < p.P50Ns {
			t.Fatalf("path %s reported implausible timings: %+v", p.Kind, p)
		}
		if p.Kind == "disk" && (p.OpenNs <= 0 || p.SegmentBytes <= 0) {
			t.Fatalf("disk path missing open/segment stats: %+v", p)
		}
	}
	st := res.Stream
	if st.Models != 120 || st.ModelsPerSec <= 0 {
		t.Fatalf("stream arm implausible: %+v", st)
	}
	if st.PeakHeapBytes == 0 || !st.Under2GB {
		t.Fatalf("toy stream should trivially sit under 2GB: %+v", st)
	}
	if st.ReopenNs <= 0 || st.SearchQPS <= 0 {
		t.Fatalf("stream reopen/search did not run: %+v", st)
	}
	if st.KeywordQPS <= 0 {
		t.Fatalf("stream keyword search did not run: %+v", st)
	}
	if st.VectorHeapBytes <= 0 || st.PostingsHeapBytes <= 0 || st.KVHeapBytes <= 0 {
		t.Fatalf("tier breakdown missing: %+v", st)
	}
}

// TestScaleSmoke100k is the full-scale acceptance gate: 100k vectors per
// read path and a 100k-model lake built by streaming generation, required
// to stay under 2 GiB of peak heap. It takes minutes, so it only runs when
// MODELLAKE_SCALE_SMOKE is set (the CI bench job sets it; local runs
// opt in explicitly).
func TestScaleSmoke100k(t *testing.T) {
	if os.Getenv("MODELLAKE_SCALE_SMOKE") == "" {
		t.Skip("set MODELLAKE_SCALE_SMOKE=1 to run the 100k smoke test")
	}
	_, res, err := RunE16Scale(42, []int{100_000}, 50, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged at 100k: %+v", p.Kind, p)
		}
	}
	if res.Stream.Models != 100_000 {
		t.Fatalf("streamed %d models, want 100000", res.Stream.Models)
	}
	if !res.Stream.Under2GB {
		t.Fatalf("100k streamed lake peaked at %d bytes, over the 2 GiB bar", res.Stream.PeakHeapBytes)
	}
}

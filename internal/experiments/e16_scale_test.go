package experiments

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestE16Shape runs the atlas-scale benchmark at toy sizes and pins its
// acceptance properties: every measured path answers bitwise-identically to
// the exact flat scan, the disk tier reports a real open latency and
// segment size, and the streamed lake round-trips through close/reopen
// with a working search path.
func TestE16Shape(t *testing.T) {
	tab, res, err := RunE16Scale(testSeed(), []int{300}, 30, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 { // exact, quant, pq, disk, stream
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged from the exact scan: %+v", p.Kind, p)
		}
		if p.QPS <= 0 || p.P50Ns <= 0 || p.P99Ns < p.P50Ns {
			t.Fatalf("path %s reported implausible timings: %+v", p.Kind, p)
		}
		if p.PeakHeapBytes == 0 {
			t.Fatalf("path %s missing peak heap sample: %+v", p.Kind, p)
		}
		if (p.Kind == "quant" || p.Kind == "pq") && p.TierBytes <= 0 {
			t.Fatalf("path %s missing resident tier bytes: %+v", p.Kind, p)
		}
		if p.Kind == "disk" && (p.OpenNs <= 0 || p.SegmentBytes <= 0) {
			t.Fatalf("disk path missing open/segment stats: %+v", p)
		}
	}
	st := res.Stream
	if st.Models != 120 || st.ModelsPerSec <= 0 {
		t.Fatalf("stream arm implausible: %+v", st)
	}
	if st.PeakHeapBytes == 0 || !st.Under2GB {
		t.Fatalf("toy stream should trivially sit under 2GB: %+v", st)
	}
	if st.ReopenNs <= 0 || st.SearchQPS <= 0 {
		t.Fatalf("stream reopen/search did not run: %+v", st)
	}
	if st.KeywordQPS <= 0 {
		t.Fatalf("stream keyword search did not run: %+v", st)
	}
	if st.VectorHeapBytes <= 0 || st.PostingsHeapBytes <= 0 || st.KVHeapBytes <= 0 {
		t.Fatalf("tier breakdown missing: %+v", st)
	}
}

// TestScaleSmoke100k is the full-scale acceptance gate: 100k vectors per
// read path and a 100k-model lake built by streaming generation, required
// to stay under 2 GiB of peak heap. It takes minutes, so it only runs when
// MODELLAKE_SCALE_SMOKE is set (the CI bench job sets it; local runs
// opt in explicitly).
func TestScaleSmoke100k(t *testing.T) {
	if os.Getenv("MODELLAKE_SCALE_SMOKE") == "" {
		t.Skip("set MODELLAKE_SCALE_SMOKE=1 to run the 100k smoke test")
	}
	_, res, err := RunE16Scale(42, []int{100_000}, 50, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	var quantTier, pqTier int64
	var quantQPS, pqQPS float64
	for _, p := range res.Points {
		if !p.IdenticalTopK {
			t.Fatalf("path %s diverged at 100k: %+v", p.Kind, p)
		}
		switch p.Kind {
		case "quant":
			quantTier, quantQPS = p.TierBytes, p.QPS
		case "pq":
			pqTier, pqQPS = p.TierBytes, p.QPS
		}
	}
	// The PQ acceptance bars at 100k: the resident ranking tier must be at
	// least 4x smaller than the int8 tier, at no worse than half its QPS.
	if quantTier <= 0 || pqTier <= 0 {
		t.Fatalf("missing tier accounting: quant=%d pq=%d", quantTier, pqTier)
	}
	if pqTier*4 > quantTier {
		t.Fatalf("pq tier %d bytes not >=4x smaller than int8 tier %d bytes", pqTier, quantTier)
	}
	if pqQPS*2 < quantQPS {
		t.Fatalf("pq qps %.1f below half of int8 qps %.1f", pqQPS, quantQPS)
	}
	if res.Stream.Models != 100_000 {
		t.Fatalf("streamed %d models, want 100000", res.Stream.Models)
	}
	if !res.Stream.Under2GB {
		t.Fatalf("100k streamed lake peaked at %d bytes, over the 2 GiB bar", res.Stream.PeakHeapBytes)
	}
}

// TestScaleSmoke1M is the headline gate behind the "1M models in one box"
// claim: a million models streamed into a product-quantized disk-resident
// lake, required to stay under 6 GiB of peak heap with working search on
// reopen. At full size it takes tens of minutes and is strictly a local
// opt-in (MODELLAKE_SCALE_SMOKE_1M=1 go test -run TestScaleSmoke1M
// -timeout 2h ./internal/experiments); CI runs it at a reduced size via
// MODELLAKE_SCALE_SMOKE_1M_MODELS to keep the path exercised without the
// wall-clock bill.
func TestScaleSmoke1M(t *testing.T) {
	if os.Getenv("MODELLAKE_SCALE_SMOKE_1M") == "" {
		t.Skip("set MODELLAKE_SCALE_SMOKE_1M=1 to run the 1M streamed-lake smoke test")
	}
	models := 1_000_000
	if s := os.Getenv("MODELLAKE_SCALE_SMOKE_1M_MODELS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			models = v
		}
	}
	stream, err := measureStreamedLake(42, models)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Models != models {
		t.Fatalf("streamed %d models, want %d", stream.Models, models)
	}
	const bar = 6 << 30
	if stream.PeakHeapBytes >= bar {
		t.Fatalf("streamed lake peaked at %d bytes, over the 6 GiB bar", stream.PeakHeapBytes)
	}
	if stream.SearchQPS <= 0 || stream.KeywordQPS <= 0 {
		t.Fatalf("reopened lake not serving: %+v", stream)
	}
	t.Logf("models=%d peak_heap=%.0f MiB reopen=%s search_qps=%.1f keyword_qps=%.1f vec_tier=%.1f MiB",
		stream.Models, float64(stream.PeakHeapBytes)/(1<<20),
		time.Duration(stream.ReopenNs), stream.SearchQPS, stream.KeywordQPS,
		float64(stream.VectorHeapBytes)/(1<<20))
}

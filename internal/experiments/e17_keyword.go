package experiments

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"modellake/internal/data"
	"modellake/internal/search"
	"modellake/internal/xrand"
)

// E17 benchmarks the keyword read path (DESIGN.md §13): the exhaustive map
// scorer vs block-max pruned top-k over compressed postings segments, in RAM
// and disk-resident. Every pruned/disk point is verified bitwise-identical
// to the map scorer on a query sample — the pruning is an acceleration, not
// an approximation — and each point reports the postings tier's resident
// heap bytes, so the table shows both halves of the tradeoff: query speed
// and index memory.

// KeywordPoint is one (scorer kind, corpus size) measurement.
type KeywordPoint struct {
	Kind              string  `json:"kind"` // "map", "pruned", or "disk"
	NDocs             int     `json:"n_docs"`
	K                 int     `json:"k"`
	Queries           int     `json:"queries"`
	QPS               float64 `json:"qps"`
	P50Ns             int64   `json:"p50_ns"`
	P99Ns             int64   `json:"p99_ns"`
	AllocsPerOp       float64 `json:"allocs_per_op"`
	IdenticalTopK     bool    `json:"identical_topk"`           // vs the map scorer
	PostingsHeapBytes int64   `json:"postings_heap_bytes"`      // index-accounted resident bytes
	SegmentBytes      int64   `json:"segment_bytes,omitempty"`  // disk only: on-disk segment size
	BlocksScanned     uint64  `json:"blocks_scanned,omitempty"` // segment kinds: decoded blocks
	BlocksSkipped     uint64  `json:"blocks_skipped,omitempty"` // segment kinds: pruned without decode
}

// KeywordBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_keyword.json so CI can track the keyword read path over time.
type KeywordBenchResult struct {
	Points []KeywordPoint `json:"points"`
}

// RunE17 is the experiment-index entry point with the default sweep: 10k and
// 100k documents.
func RunE17(seed uint64) (*Table, error) {
	t, _, err := RunE17Keyword(seed, nil, 0)
	return t, err
}

// RunE17Keyword measures the three keyword read paths at the given corpus
// sizes with queries queries per point. sizes nil means {10_000, 100_000};
// queries <= 0 means 300.
func RunE17Keyword(seed uint64, sizes []int, queries int) (*Table, *KeywordBenchResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000}
	}
	if queries <= 0 {
		queries = 300
	}
	const k = 10
	t := &Table{
		ID:    "E17",
		Title: "keyword search: block-max pruned postings segments vs map scorer",
		Columns: []string{"path", "docs", "qps", "p50", "p99", "allocs/op",
			"identical top-k", "postings heap", "blocks skipped"},
		Notes: "pruned and disk rows are verified bitwise-identical to the exhaustive map scorer; heap is the postings tier's own accounting, so the disk row shows what leaves RAM",
	}
	res := &KeywordBenchResult{}
	for _, n := range sizes {
		pts, err := measureKeywordPoint(seed, n, k, queries)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pts {
			res.Points = append(res.Points, p)
			skipped := "-"
			if p.Kind != "map" {
				skipped = fmt.Sprintf("%d (%.0f%%)", p.BlocksSkipped,
					100*float64(p.BlocksSkipped)/math.Max(1, float64(p.BlocksSkipped+p.BlocksScanned)))
			}
			t.AddRow(p.Kind, fmt.Sprint(p.NDocs), f2(p.QPS),
				time.Duration(p.P50Ns).Round(time.Microsecond).String(),
				time.Duration(p.P99Ns).Round(time.Microsecond).String(),
				f2(p.AllocsPerOp), fmt.Sprint(p.IdenticalTopK),
				fmt.Sprintf("%.1f MiB", float64(p.PostingsHeapBytes)/(1<<20)),
				skipped)
		}
	}
	return t, res, nil
}

// keywordCorpus generates n model-card-like documents across the standard
// text domains — the same generator lakegen cards use, so term frequencies
// and vocabulary skew match what a real lake's keyword index holds.
func keywordCorpus(seed uint64, n int) (ids, texts []string) {
	rng := xrand.New(seed)
	domains := data.StandardTextDomains()
	ids = make([]string, n)
	texts = make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("m%07d", i)
		d := domains[rng.Intn(len(domains))]
		texts[i] = data.GenerateDocument(d, 20+rng.Intn(40), 0.3, rng)
	}
	return ids, texts
}

// keywordQueries mixes the query shapes a card search sees: selective
// multi-keyword domain queries, cross-domain pairs, keyword+filler mixes
// (where block-max pruning earns its keep — the filler term's postings are
// huge but can never lift a document into the top-k), and single rare terms.
func keywordQueries(seed uint64, n int) []string {
	rng := xrand.New(seed ^ 0x5eed)
	domains := data.StandardTextDomains()
	filler := []string{"the", "model", "data", "system", "result", "report"}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		d := domains[rng.Intn(len(domains))]
		switch i % 4 {
		case 0: // selective same-domain triple
			out[i] = strings.Join([]string{
				xrand.Pick(rng, d.Keywords), xrand.Pick(rng, d.Keywords), xrand.Pick(rng, d.Keywords)}, " ")
		case 1: // cross-domain pair
			d2 := domains[rng.Intn(len(domains))]
			out[i] = xrand.Pick(rng, d.Keywords) + " " + xrand.Pick(rng, d2.Keywords)
		case 2: // common term + selective keyword
			out[i] = xrand.Pick(rng, filler) + " " + xrand.Pick(rng, d.Keywords) + " " + xrand.Pick(rng, filler)
		default: // single keyword
			out[i] = xrand.Pick(rng, d.Keywords)
		}
	}
	return out
}

// measureKeywordPoint builds the three scorer variants over the same corpus
// and measures each, gating pruned and disk on bitwise identity to the map
// scorer.
func measureKeywordPoint(seed uint64, n, k, nq int) ([]KeywordPoint, error) {
	ids, texts := keywordCorpus(seed+uint64(n), n)
	queries := keywordQueries(seed+uint64(n), nq)

	dir, err := os.MkdirTemp("", "e17kw")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	variants := []struct {
		kind string
		cfg  search.KeywordConfig
	}{
		{"map", search.KeywordConfig{MergeThreshold: -1}},
		{"pruned", search.KeywordConfig{}},
		{"disk", search.KeywordConfig{Dir: dir}},
	}

	var out []KeywordPoint
	var oracle [][]search.Hit
	var mapIdx *search.ShardedKeywordIndex
	for _, v := range variants {
		idx := search.NewShardedKeywordIndexConfig(v.cfg)
		for i := range ids {
			if err := idx.Add(ids[i], texts[i]); err != nil {
				idx.Close()
				return nil, fmt.Errorf("e17: %s add: %w", v.kind, err)
			}
		}
		p := KeywordPoint{Kind: v.kind, NDocs: n, K: k, Queries: len(queries), IdenticalTopK: true}
		if v.kind != "map" {
			// Merge the mutable tail into segments so the measurement is the
			// steady-state segment read path, not a mostly-map hybrid (small
			// corpora would otherwise never cross the merge threshold).
			if err := idx.Flush(); err != nil {
				idx.Close()
				return nil, fmt.Errorf("e17: flush: %w", err)
			}
		}
		if v.kind == "disk" {
			if entries, err := os.ReadDir(dir); err == nil {
				for _, e := range entries {
					if info, err := e.Info(); err == nil {
						p.SegmentBytes += info.Size()
					}
				}
			}
		}

		// Identity oracle: the map scorer's answers on a sample of queries.
		sample := queries[:min(60, len(queries))]
		if v.kind == "map" {
			oracle = make([][]search.Hit, len(sample))
			for i, q := range sample {
				if oracle[i], err = idx.Search(q, k); err != nil {
					idx.Close()
					return nil, err
				}
			}
		} else {
			for i, q := range sample {
				got, err := idx.Search(q, k)
				if err != nil {
					idx.Close()
					return nil, err
				}
				if !sameKeywordHits(got, oracle[i]) {
					p.IdenticalTopK = false
					break
				}
			}
		}

		scanned0, skipped0 := search.KeywordBlockCounters()
		lats := make([]time.Duration, len(queries))
		start := time.Now()
		for i, q := range queries {
			qStart := time.Now()
			if _, err := idx.Search(q, k); err != nil {
				idx.Close()
				return nil, err
			}
			lats[i] = time.Since(qStart)
		}
		total := time.Since(start)
		scanned1, skipped1 := search.KeywordBlockCounters()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p.QPS = float64(len(queries)) / total.Seconds()
		p.P50Ns = lats[len(lats)/2].Nanoseconds()
		p.P99Ns = lats[len(lats)*99/100].Nanoseconds()
		p.AllocsPerOp = allocsPerOp(50, func() { idx.Search(queries[0], k) })
		p.BlocksScanned = scanned1 - scanned0
		p.BlocksSkipped = skipped1 - skipped0
		p.PostingsHeapBytes = idx.MemBytes()
		out = append(out, p)

		if v.kind == "map" {
			mapIdx = idx // keep alive until the end; the oracle slices alias nothing, but symmetry is cheap
		} else {
			idx.Close()
		}
	}
	if mapIdx != nil {
		mapIdx.Close()
	}
	return out, nil
}

func sameKeywordHits(a, b []search.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

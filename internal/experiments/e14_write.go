package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"modellake/internal/card"
	"modellake/internal/fault"
	"modellake/internal/kvstore"
	"modellake/internal/lake"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/registry"
	"modellake/internal/xrand"
)

// E14 measures the write-path overhaul end to end: group commit and atomic
// batch records against the pre-overhaul one-fsync-per-key discipline, and
// vec-record rehydration against the decode-and-embed reopen it replaced.
//
// The ingest arms all commit the *same durable state* — the exact live
// key/value set a real ingest produces — so the comparison isolates the
// write path:
//
//   - "legacy per-op" replays every key as its own Put on a Sync store:
//     one record, one fsync per key. This is the shape of the pre-overhaul
//     registration path (record, vectors, and each provenance entry were
//     separate durable writes).
//   - "group commit" issues the same per-key Puts from concurrent writers;
//     the commit leader coalesces whatever piles up behind each fsync.
//   - "batch apply" commits the keys in large atomic batch records — the
//     path bulk ingest actually uses.
//
// The open arms build one durable lake and time Open with and without
// EagerRehydrate — the measured claim behind the vec-record design.

// WriteBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_write.json. Durations are nanoseconds.
type WriteBenchResult struct {
	IngestModels int `json:"ingest_models"`
	MetaKeys     int `json:"meta_keys"`

	LegacyPerOpNs     int64 `json:"legacy_per_op_ns"`
	LegacyFsyncs      int   `json:"legacy_fsyncs"`
	GroupCommitNs     int64 `json:"group_commit_ns"`
	GroupCommitFsyncs int   `json:"group_commit_fsyncs"`
	BatchApplyNs      int64 `json:"batch_apply_ns"`
	BatchApplyFsyncs  int   `json:"batch_apply_fsyncs"`
	// IngestSpeedup is legacy-per-op over batch-apply wall time: the
	// headline "durable bulk ingest" win (target ≥ 2x).
	IngestSpeedup float64 `json:"ingest_speedup"`
	// GroupCommitSpeedup is legacy-per-op over group-commit wall time:
	// the win for concurrent writers that keep the per-op API.
	GroupCommitSpeedup float64 `json:"group_commit_speedup"`

	// Full-pipeline context: serial atomic-Ingest loop vs IngestAll on a
	// durable (Sync) lake, embedding cost included, with observed
	// fsyncs-per-model for each.
	SerialIngestNs       int64   `json:"serial_ingest_ns"`
	BatchIngestNs        int64   `json:"batch_ingest_ns"`
	SerialFsyncsPerModel float64 `json:"serial_fsyncs_per_model"`
	BatchFsyncsPerModel  float64 `json:"batch_fsyncs_per_model"`

	OpenModels  int     `json:"open_models"`
	EagerOpenNs int64   `json:"eager_open_ns"`
	FastOpenNs  int64   `json:"fast_open_ns"`
	OpenSpeedup float64 `json:"open_speedup"` // eager / fast (target ≥ 3x)
}

// RunE14 is the experiment-index entry point with default sizes.
func RunE14(seed uint64) (*Table, error) {
	t, _, err := RunE14Write(seed, 0, 0)
	return t, err
}

// e14Items generates n small open-weights models with cards — the ingest
// workload. Everything is seeded, so every arm commits identical content.
func e14Items(seed uint64, n int) []lake.IngestItem {
	rng := xrand.New(seed)
	items := make([]lake.IngestItem, n)
	for i := range items {
		net := nn.NewMLP([]int{8, 8, 8}, nn.ReLU, rng)
		m := &model.Model{Name: fmt.Sprintf("m%06d", i), Net: net}
		c := &card.Card{
			Name:         m.Name,
			Domain:       []string{"vision", "text", "tabular"}[i%3],
			TrainingData: fmt.Sprintf("ds-%d", i%7),
			Description:  "write-path benchmark model",
		}
		items[i] = lake.IngestItem{Model: m, Card: c,
			Opts: registry.RegisterOptions{Version: "1"}}
	}
	return items
}

// countFsyncs counts durable flushes (file fsync + directory fsync) in a
// recorded op stream.
func countFsyncs(rec *fault.Recorder) int {
	n := 0
	for _, op := range rec.Ops() {
		if op.Op == fault.OpSync || op.Op == fault.OpSyncDir {
			n++
		}
	}
	return n
}

// RunE14Write runs the write-path benchmark with nIngest models in the
// ingest arms and nOpen models in the reopen arms (0 = defaults: 240 and
// 10000).
func RunE14Write(seed uint64, nIngest, nOpen int) (*Table, *WriteBenchResult, error) {
	if nIngest <= 0 {
		nIngest = 240
	}
	if nOpen <= 0 {
		nOpen = 10000
	}
	res := &WriteBenchResult{IngestModels: nIngest, OpenModels: nOpen}
	t := &Table{
		ID:    "E14",
		Title: "write path: group commit, atomic batches, vec-record rehydrate",
		Columns: []string{"arm", "time", "models/s", "fsyncs", "fsyncs/model",
			"speedup"},
		Notes: "ingest arms commit identical durable state; open arms rebuild identical indexes",
	}
	items := e14Items(seed, nIngest)

	// --- Full-pipeline arms: durable lakes with Sync on. -----------------
	serialNs, serialFsyncs, err := e14IngestArm(seed, items, false)
	if err != nil {
		return nil, nil, err
	}
	res.SerialIngestNs = serialNs.Nanoseconds()
	res.SerialFsyncsPerModel = float64(serialFsyncs) / float64(nIngest)

	batchNs, batchFsyncs, pairs, err := e14BatchIngestArm(seed, items)
	if err != nil {
		return nil, nil, err
	}
	res.BatchIngestNs = batchNs.Nanoseconds()
	res.BatchFsyncsPerModel = float64(batchFsyncs) / float64(nIngest)
	res.MetaKeys = len(pairs)

	t.AddRow("ingest serial (atomic/model)", serialNs.Round(time.Millisecond).String(),
		f2(float64(nIngest)/serialNs.Seconds()), fmt.Sprint(serialFsyncs),
		f2(res.SerialFsyncsPerModel), "1.00x")
	t.AddRow("ingest batch (IngestAll)", batchNs.Round(time.Millisecond).String(),
		f2(float64(nIngest)/batchNs.Seconds()), fmt.Sprint(batchFsyncs),
		f2(res.BatchFsyncsPerModel),
		fmt.Sprintf("%.2fx", float64(serialNs)/float64(batchNs)))

	// --- Write-path replay arms: same final key set, different discipline.
	legacyNs, legacyFsyncs, err := e14ReplayPerOp(pairs, 1)
	if err != nil {
		return nil, nil, err
	}
	res.LegacyPerOpNs = legacyNs.Nanoseconds()
	res.LegacyFsyncs = legacyFsyncs
	t.AddRow("meta legacy per-op fsync", legacyNs.Round(time.Millisecond).String(),
		f2(float64(nIngest)/legacyNs.Seconds()), fmt.Sprint(legacyFsyncs),
		f2(float64(legacyFsyncs)/float64(nIngest)), "1.00x")

	groupNs, groupFsyncs, err := e14ReplayPerOp(pairs, 16)
	if err != nil {
		return nil, nil, err
	}
	res.GroupCommitNs = groupNs.Nanoseconds()
	res.GroupCommitFsyncs = groupFsyncs
	res.GroupCommitSpeedup = float64(legacyNs) / float64(groupNs)
	t.AddRow("meta group commit (16 writers)", groupNs.Round(time.Millisecond).String(),
		f2(float64(nIngest)/groupNs.Seconds()), fmt.Sprint(groupFsyncs),
		f2(float64(groupFsyncs)/float64(nIngest)),
		fmt.Sprintf("%.2fx", res.GroupCommitSpeedup))

	applyNs, applyFsyncs, err := e14ReplayBatch(pairs)
	if err != nil {
		return nil, nil, err
	}
	res.BatchApplyNs = applyNs.Nanoseconds()
	res.BatchApplyFsyncs = applyFsyncs
	res.IngestSpeedup = float64(legacyNs) / float64(applyNs)
	t.AddRow("meta batch apply", applyNs.Round(time.Millisecond).String(),
		f2(float64(nIngest)/applyNs.Seconds()), fmt.Sprint(applyFsyncs),
		f2(float64(applyFsyncs)/float64(nIngest)),
		fmt.Sprintf("%.2fx", res.IngestSpeedup))

	// --- Open arms: one durable lake, two rehydration strategies. --------
	eagerNs, fastNs, err := e14OpenArms(seed, nOpen)
	if err != nil {
		return nil, nil, err
	}
	res.EagerOpenNs = eagerNs.Nanoseconds()
	res.FastOpenNs = fastNs.Nanoseconds()
	res.OpenSpeedup = float64(eagerNs) / float64(fastNs)
	t.AddRow(fmt.Sprintf("open eager (%d models)", nOpen),
		eagerNs.Round(time.Millisecond).String(),
		f2(float64(nOpen)/eagerNs.Seconds()), "-", "-", "1.00x")
	t.AddRow(fmt.Sprintf("open fast (%d models)", nOpen),
		fastNs.Round(time.Millisecond).String(),
		f2(float64(nOpen)/fastNs.Seconds()), "-", "-",
		fmt.Sprintf("%.2fx", res.OpenSpeedup))
	return t, res, nil
}

// e14IngestArm times a full durable ingest of items; batch selects IngestAll
// over the serial Ingest loop. Returns wall time and observed fsync count.
func e14IngestArm(seed uint64, items []lake.IngestItem, batch bool) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "e14-ingest-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	rec := &fault.Recorder{}
	l, err := lake.Open(lake.Config{Dir: dir, Sync: true, Seed: seed, FS: fault.New(rec)})
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()
	before := countFsyncs(rec)
	start := time.Now()
	if batch {
		_, errs := l.IngestAll(items, 0)
		for i, e := range errs {
			if e != nil {
				return 0, 0, fmt.Errorf("E14: batch ingest item %d: %w", i, e)
			}
		}
	} else {
		for i := range items {
			if _, err := l.Ingest(items[i].Model, items[i].Card, items[i].Opts); err != nil {
				return 0, 0, fmt.Errorf("E14: serial ingest item %d: %w", i, err)
			}
		}
	}
	elapsed := time.Since(start)
	return elapsed, countFsyncs(rec) - before, nil
}

// e14BatchIngestArm is e14IngestArm(batch) that additionally harvests the
// final metadata key/value set, which the replay arms re-commit under the
// legacy and batch write disciplines.
func e14BatchIngestArm(seed uint64, items []lake.IngestItem) (time.Duration, int, []kvstore.Op, error) {
	dir, err := os.MkdirTemp("", "e14-batch-*")
	if err != nil {
		return 0, 0, nil, err
	}
	defer os.RemoveAll(dir)
	rec := &fault.Recorder{}
	l, err := lake.Open(lake.Config{Dir: dir, Sync: true, Seed: seed, FS: fault.New(rec)})
	if err != nil {
		return 0, 0, nil, err
	}
	before := countFsyncs(rec)
	start := time.Now()
	_, errs := l.IngestAll(items, 0)
	elapsed := time.Since(start)
	fsyncs := countFsyncs(rec) - before
	for i, e := range errs {
		if e != nil {
			l.Close()
			return 0, 0, nil, fmt.Errorf("E14: batch ingest item %d: %w", i, e)
		}
	}
	if err := l.Close(); err != nil {
		return 0, 0, nil, err
	}
	// Harvest the live metadata set from the just-written log.
	kv, err := kvstore.Open(filepath.Join(dir, "lake.log"), kvstore.Options{})
	if err != nil {
		return 0, 0, nil, err
	}
	defer kv.Close()
	var pairs []kvstore.Op
	err = kv.Scan("", func(k string, v []byte) bool {
		cp := make([]byte, len(v))
		copy(cp, v)
		pairs = append(pairs, kvstore.Op{Key: k, Value: cp})
		return true
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return elapsed, fsyncs, pairs, nil
}

// e14ReplayPerOp re-commits pairs to a fresh Sync store one Put per key from
// the given number of concurrent writers. One writer is the legacy
// one-fsync-per-key discipline; several writers exercise group commit.
func e14ReplayPerOp(pairs []kvstore.Op, writers int) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "e14-replay-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	rec := &fault.Recorder{}
	s, err := kvstore.Open(filepath.Join(dir, "kv.log"),
		kvstore.Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	start := time.Now()
	if writers <= 1 {
		for i := range pairs {
			if err := s.Put(pairs[i].Key, pairs[i].Value); err != nil {
				return 0, 0, err
			}
		}
	} else {
		var wg sync.WaitGroup
		errc := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(pairs); i += writers {
					if err := s.Put(pairs[i].Key, pairs[i].Value); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start), countFsyncs(rec), nil
}

// e14ReplayBatch re-commits pairs as large atomic batch records — the bulk
// ingest discipline: one record, one fsync per ~1000-key chunk.
func e14ReplayBatch(pairs []kvstore.Op) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "e14-apply-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	rec := &fault.Recorder{}
	s, err := kvstore.Open(filepath.Join(dir, "kv.log"),
		kvstore.Options{Sync: true, FS: fault.New(rec)})
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	const chunk = 1000
	start := time.Now()
	for at := 0; at < len(pairs); at += chunk {
		end := at + chunk
		if end > len(pairs) {
			end = len(pairs)
		}
		if err := s.Apply(pairs[at:end]); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start), countFsyncs(rec), nil
}

// e14OpenArms builds one durable lake with nOpen models and times reopening
// it with eager (decode-and-embed) and fast (vec-record) rehydration. Each
// arm runs twice and keeps the faster run, damping filesystem-cache noise.
func e14OpenArms(seed uint64, nOpen int) (eager, fast time.Duration, err error) {
	dir, err := os.MkdirTemp("", "e14-open-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	// The build can skip per-write fsyncs: Open replays the same log either
	// way, and building 10k models with Sync would dominate the experiment.
	l, err := lake.Open(lake.Config{Dir: dir, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	_, errs := l.IngestAll(e14Items(seed+1, nOpen), 0)
	for i, e := range errs {
		if e != nil {
			l.Close()
			return 0, 0, fmt.Errorf("E14: open-arm ingest item %d: %w", i, e)
		}
	}
	if err := l.Close(); err != nil {
		return 0, 0, err
	}
	// Median of three: robust to both a cold first run and a single lucky
	// one, so the reported ratio is not at the mercy of one outlier.
	timeOpen := func(cfg lake.Config) (time.Duration, error) {
		var runs []time.Duration
		for rep := 0; rep < 3; rep++ {
			// The build phase leaves GC debt behind; collect it outside the
			// timed region so neither arm pays for the other's garbage.
			runtime.GC()
			start := time.Now()
			lk, err := lake.Open(cfg)
			if err != nil {
				return 0, err
			}
			el := time.Since(start)
			if n := lk.Count(); n != nOpen {
				lk.Close()
				return 0, fmt.Errorf("E14: reopened lake has %d models, want %d", n, nOpen)
			}
			lk.Close()
			runs = append(runs, el)
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
		return runs[len(runs)/2], nil
	}
	// The baseline is the pre-overhaul Open: strictly serial rehydrate
	// (IngestParallelism: 1) that decodes and re-embeds every model. The
	// fast arm is the overhauled default: parallel workers + vec records.
	eager, err = timeOpen(lake.Config{Dir: dir, Seed: seed, EagerRehydrate: true,
		IngestParallelism: 1})
	if err != nil {
		return 0, 0, err
	}
	fast, err = timeOpen(lake.Config{Dir: dir, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	return eager, fast, nil
}

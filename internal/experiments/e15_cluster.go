package experiments

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"modellake/internal/cluster"
	"modellake/internal/data"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
	"modellake/internal/search"
)

// E15 measures the sharded, replicated serving layer against the single-node
// lake it must be indistinguishable from. One model stream is ingested into
// both a single lake and an N-shard cluster; then keyword and vector search
// run against each, with every hit list checked bitwise (IDs, order, float64
// score bits) — the cluster's scatter-gather merge is only correct if it is
// invisible. The failover arms kill one shard leader — which automatically
// promotes its caught-up replica to leader — and repeat the reads,
// measuring the promotion cost and re-checking equivalence against the same
// single-node answers. A final write arm ingests a second wave through the
// promoted leader and re-verifies bitwise equality over the grown
// population: failover must preserve write availability, not just reads.

// ClusterBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_cluster.json. Durations are nanoseconds; latencies are per-query.
type ClusterBenchResult struct {
	Models   int `json:"models"`
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`

	SingleIngestNs  int64 `json:"single_ingest_ns"`
	ClusterIngestNs int64 `json:"cluster_ingest_ns"`

	KeywordQueries    int   `json:"keyword_queries"`
	SingleKeywordNs   int64 `json:"single_keyword_ns"`
	ClusterKeywordNs  int64 `json:"cluster_keyword_ns"`
	FailoverKeywordNs int64 `json:"failover_keyword_ns"`

	VectorQueries    int   `json:"vector_queries"`
	SingleVectorNs   int64 `json:"single_vector_ns"`
	ClusterVectorNs  int64 `json:"cluster_vector_ns"`
	FailoverVectorNs int64 `json:"failover_vector_ns"`

	// BitwiseEqual reports whether every cluster hit list — scatter-gather
	// with all leaders up AND served by a failover replica — matched the
	// single-node answer bit for bit. The benchmark errors out when false.
	BitwiseEqual bool `json:"bitwise_equal"`

	// ReplicationFlushNs is how long the replicas took to drain the shipped
	// WAL after the full ingest (steady-state shipping overlaps the ingest,
	// so this is the tail, not the total).
	ReplicationFlushNs int64 `json:"replication_flush_ns"`

	// PromoteNs is the full leader-kill-to-writable time for shard 0:
	// retiring the dead leader, certifying the replica against its log, and
	// flipping the replica to leader under the bumped epoch.
	PromoteNs int64 `json:"promote_ns"`
	// PostPromoteWrites/PostPromoteWriteNs measure the second ingest wave
	// taken after the promotion, shard 0 served by its promoted replica.
	PostPromoteWrites  int   `json:"post_promote_writes"`
	PostPromoteWriteNs int64 `json:"post_promote_write_ns"`
}

// RunE15 is the experiment-index entry point with default sizes.
func RunE15(seed uint64) (*Table, error) {
	t, _, err := RunE15Cluster(seed, 0, 0)
	return t, err
}

// RunE15Cluster runs the cluster benchmark with a bases×children synthetic
// population (0 = defaults: 4 bases, 4 children) over 3 shards with 1
// replica each.
func RunE15Cluster(seed uint64, bases, children int) (*Table, *ClusterBenchResult, error) {
	if bases <= 0 {
		bases = 4
	}
	if children <= 0 {
		children = 4
	}
	const shards, replicas = 3, 1
	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = bases
	spec.ChildrenPerBase = children
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	res := &ClusterBenchResult{Models: len(pop.Members), Shards: shards, Replicas: replicas}
	t := &Table{
		ID:      "E15",
		Title:   "sharded cluster: scatter-gather search and failover reads",
		Columns: []string{"arm", "time", "per-query", "vs single", "bitwise"},
		Notes: fmt.Sprintf("%d models over %d shards, %d replica(s each); failover arms read with shard 0's leader dead",
			len(pop.Members), shards, replicas),
	}

	// --- Ingest the same stream into both deployments. -------------------
	single, err := lake.Open(lake.Config{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	defer single.Close()
	start := time.Now()
	sids, err := e15Fill(single.RegisterDataset, func(m *lakegen.Member) (*registry.Record, error) {
		return single.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
	}, pop)
	if err != nil {
		return nil, nil, err
	}
	res.SingleIngestNs = time.Since(start).Nanoseconds()

	dir, err := os.MkdirTemp("", "e15-cluster-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	c, err := cluster.Open(cluster.Config{
		Dir:      dir,
		Shards:   shards,
		Replicas: replicas,
		Lake:     lake.Config{Seed: seed},
	})
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	start = time.Now()
	cids, err := e15Fill(c.RegisterDataset, func(m *lakegen.Member) (*registry.Record, error) {
		return c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
	}, pop)
	if err != nil {
		return nil, nil, err
	}
	res.ClusterIngestNs = time.Since(start).Nanoseconds()
	for i := range sids {
		if sids[i] != cids[i] {
			return nil, nil, fmt.Errorf("E15: member %d minted %s on single, %s on cluster", i, sids[i], cids[i])
		}
	}
	start = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		return nil, nil, err
	}
	res.ReplicationFlushNs = time.Since(start).Nanoseconds()

	t.AddRow("ingest single", time.Duration(res.SingleIngestNs).Round(time.Millisecond).String(), "-", "1.00x", "-")
	t.AddRow("ingest cluster", time.Duration(res.ClusterIngestNs).Round(time.Millisecond).String(), "-",
		fmt.Sprintf("%.2fx", float64(res.SingleIngestNs)/float64(res.ClusterIngestNs)), "-")

	// --- Search arms: single as ground truth, cluster must match bitwise.
	kwQueries := []string{
		"legal statute court", "vision transformer", "summarization fine tuned",
		"tabular regression", "medical diagnosis notes",
	}
	const reps = 5
	singleKW := make([][]search.Hit, len(kwQueries))
	start = time.Now()
	for rep := 0; rep < reps; rep++ {
		for i, q := range kwQueries {
			singleKW[i] = single.SearchKeyword(q, 10)
		}
	}
	res.SingleKeywordNs = time.Since(start).Nanoseconds()
	res.KeywordQueries = reps * len(kwQueries)

	equal := true
	runKW := func() (int64, error) {
		s := time.Now()
		for rep := 0; rep < reps; rep++ {
			for i, q := range kwQueries {
				hits, err := c.SearchKeywordContext(ctx, q, 10)
				if err != nil {
					return 0, fmt.Errorf("E15: cluster keyword %q: %w", q, err)
				}
				if !e15SameHits(singleKW[i], hits) {
					equal = false
				}
			}
		}
		return time.Since(s).Nanoseconds(), nil
	}
	if res.ClusterKeywordNs, err = runKW(); err != nil {
		return nil, nil, err
	}

	singleVec := make([][]search.Hit, len(sids))
	start = time.Now()
	for i, id := range sids {
		if singleVec[i], err = single.SearchByModel(id, "behavior", 10); err != nil {
			return nil, nil, fmt.Errorf("E15: single vector %s: %w", id, err)
		}
	}
	res.SingleVectorNs = time.Since(start).Nanoseconds()
	res.VectorQueries = len(sids)

	runVec := func() (int64, error) {
		s := time.Now()
		for i, id := range sids {
			hits, err := c.SearchByModel(id, "behavior", 10)
			if err != nil {
				return 0, fmt.Errorf("E15: cluster vector %s: %w", id, err)
			}
			if !e15SameHits(singleVec[i], hits) {
				equal = false
			}
		}
		return time.Since(s).Nanoseconds(), nil
	}
	if res.ClusterVectorNs, err = runVec(); err != nil {
		return nil, nil, err
	}

	// --- Failover arms: kill shard 0's leader. The caught-up replica is
	// promoted automatically, so the same reads run against a freshly
	// promoted leader plus the untouched shards.
	start = time.Now()
	c.KillShardLeader(0)
	res.PromoteNs = time.Since(start).Nanoseconds()
	if got := c.ShardEpoch(0); got != 1 {
		return nil, nil, fmt.Errorf("E15: shard 0 epoch after kill = %d, want 1 (promotion failed)", got)
	}
	if res.FailoverKeywordNs, err = runKW(); err != nil {
		return nil, nil, err
	}
	if res.FailoverVectorNs, err = runVec(); err != nil {
		return nil, nil, err
	}

	// --- Post-promotion write arm: a second ingest wave through the
	// promoted leader, then re-verify bitwise equality over the grown
	// population (ground truth recomputed on the single node first).
	extraSpec := lakegen.DefaultSpec(seed + 1)
	extraSpec.NumBases = 2
	extraSpec.ChildrenPerBase = 0
	extra, err := lakegen.Generate(extraSpec)
	if err != nil {
		return nil, nil, err
	}
	start = time.Now()
	for i, m := range extra.Members {
		srec, err := single.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-post", Version: "1"})
		if err != nil {
			return nil, nil, fmt.Errorf("E15: single post-promote ingest %d: %w", i, err)
		}
		crec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-post", Version: "1"})
		if err != nil {
			return nil, nil, fmt.Errorf("E15: cluster post-promote ingest %d: %w", i, err)
		}
		if srec.ID != crec.ID {
			return nil, nil, fmt.Errorf("E15: post-promote member %d minted %s on single, %s on cluster", i, srec.ID, crec.ID)
		}
	}
	res.PostPromoteWrites = len(extra.Members)
	res.PostPromoteWriteNs = time.Since(start).Nanoseconds()
	for i, q := range kwQueries {
		singleKW[i] = single.SearchKeyword(q, 10)
	}
	for i, id := range sids {
		if singleVec[i], err = single.SearchByModel(id, "behavior", 10); err != nil {
			return nil, nil, fmt.Errorf("E15: single vector %s after writes: %w", id, err)
		}
	}
	if _, err = runKW(); err != nil {
		return nil, nil, err
	}
	if _, err = runVec(); err != nil {
		return nil, nil, err
	}
	res.BitwiseEqual = equal
	if !equal {
		return nil, nil, fmt.Errorf("E15: cluster search diverged bitwise from single-node")
	}

	perQ := func(total int64, n int) string {
		return (time.Duration(total) / time.Duration(n)).Round(time.Microsecond).String()
	}
	ratio := func(clusterNs, singleNs int64) string {
		return fmt.Sprintf("%.2fx", float64(clusterNs)/float64(singleNs))
	}
	t.AddRow("keyword single", time.Duration(res.SingleKeywordNs).Round(time.Millisecond).String(),
		perQ(res.SingleKeywordNs, res.KeywordQueries), "1.00x", "-")
	t.AddRow("keyword cluster", time.Duration(res.ClusterKeywordNs).Round(time.Millisecond).String(),
		perQ(res.ClusterKeywordNs, res.KeywordQueries), ratio(res.ClusterKeywordNs, res.SingleKeywordNs), "yes")
	t.AddRow("keyword failover", time.Duration(res.FailoverKeywordNs).Round(time.Millisecond).String(),
		perQ(res.FailoverKeywordNs, res.KeywordQueries), ratio(res.FailoverKeywordNs, res.SingleKeywordNs), "yes")
	t.AddRow("vector single", time.Duration(res.SingleVectorNs).Round(time.Millisecond).String(),
		perQ(res.SingleVectorNs, res.VectorQueries), "1.00x", "-")
	t.AddRow("vector cluster", time.Duration(res.ClusterVectorNs).Round(time.Millisecond).String(),
		perQ(res.ClusterVectorNs, res.VectorQueries), ratio(res.ClusterVectorNs, res.SingleVectorNs), "yes")
	t.AddRow("vector failover", time.Duration(res.FailoverVectorNs).Round(time.Millisecond).String(),
		perQ(res.FailoverVectorNs, res.VectorQueries), ratio(res.FailoverVectorNs, res.SingleVectorNs), "yes")
	t.AddRow("replication flush", time.Duration(res.ReplicationFlushNs).Round(time.Millisecond).String(),
		"-", "-", "-")
	t.AddRow("leader kill→promote", time.Duration(res.PromoteNs).Round(time.Microsecond).String(),
		"-", "-", "-")
	t.AddRow("post-promote writes", time.Duration(res.PostPromoteWriteNs).Round(time.Millisecond).String(),
		perQ(res.PostPromoteWriteNs, res.PostPromoteWrites), "-", "yes")
	return t, res, nil
}

// e15Fill registers datasets then serially ingests the population, so the
// cluster mints the same IDs a single-node lake does for the same stream.
func e15Fill(registerDS func(*data.Dataset) error, ingest func(*lakegen.Member) (*registry.Record, error), pop *lakegen.Population) ([]string, error) {
	for _, ds := range pop.Datasets {
		if err := registerDS(ds); err != nil {
			return nil, err
		}
	}
	ids := make([]string, len(pop.Members))
	for i, m := range pop.Members {
		rec, err := ingest(m)
		if err != nil {
			return nil, fmt.Errorf("E15: ingest member %d: %w", i, err)
		}
		ids[i] = rec.ID
	}
	return ids, nil
}

// e15SameHits reports bitwise hit-list equality: same IDs, same order, same
// float64 score bits.
func e15SameHits(a, b []search.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"modellake/internal/index"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// RunE4 evaluates the indexer (§5): HNSW approximate search against the
// exact flat scan as the embedding collection grows — query latency, build
// time, and recall@10. The paper's claim is that sublinear ANN search makes
// content-based model search scale; the shape to observe is flat latency
// growing linearly with n while HNSW grows slowly, at recall ≥ 0.9.
func RunE4(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "HNSW vs exact flat scan over model embeddings (dim=32, k=10)",
		Columns: []string{"n", "flat query", "hnsw query", "speedup",
			"hnsw build", "recall@10"},
		Notes: "expected shape: flat latency ~linear in n; HNSW ~log; recall >= 0.9",
	}
	const dim, k, queries = 32, 10, 30
	rng := xrand.New(seed)
	makeVec := func() tensor.Vector {
		v := make(tensor.Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for _, n := range []int{1000, 5000, 20000, 50000} {
		vecs := make([]tensor.Vector, n)
		for i := range vecs {
			vecs[i] = makeVec()
		}
		qs := make([]tensor.Vector, queries)
		for i := range qs {
			qs[i] = makeVec()
		}

		flat := index.NewFlat(index.L2)
		for i, v := range vecs {
			if err := flat.Add(fmt.Sprintf("v%06d", i), v); err != nil {
				return nil, err
			}
		}
		hnsw := index.NewHNSW(index.L2, index.HNSWConfig{M: 16, EfConstruction: 100, EfSearch: 80, Seed: seed})
		buildStart := time.Now()
		for i, v := range vecs {
			if err := hnsw.Add(fmt.Sprintf("v%06d", i), v); err != nil {
				return nil, err
			}
		}
		buildTime := time.Since(buildStart)

		var flatTime, hnswTime time.Duration
		hits, total := 0, 0
		for _, q := range qs {
			start := time.Now()
			exact, err := flat.Search(context.Background(), q, k)
			if err != nil {
				return nil, err
			}
			flatTime += time.Since(start)

			start = time.Now()
			approx, err := hnsw.Search(context.Background(), q, k)
			if err != nil {
				return nil, err
			}
			hnswTime += time.Since(start)

			truth := map[string]bool{}
			for _, r := range exact {
				truth[r.ID] = true
			}
			for _, r := range approx {
				if truth[r.ID] {
					hits++
				}
			}
			total += k
		}
		flatPer := flatTime / queries
		hnswPer := hnswTime / queries
		speedup := float64(flatPer) / float64(hnswPer)
		t.AddRow(fmt.Sprint(n),
			flatPer.Round(time.Microsecond).String(),
			hnswPer.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speedup),
			buildTime.Round(time.Millisecond).String(),
			f3(float64(hits)/float64(total)))
	}

	// Ablation: the efSearch recall/latency dial at a fixed collection size.
	// (The paper notes HNSW "provides no formal guarantees"; this is the
	// practical knob that trades accuracy for speed.)
	const nAblate = 20000
	vecs := make([]tensor.Vector, nAblate)
	for i := range vecs {
		vecs[i] = makeVec()
	}
	qs := make([]tensor.Vector, queries)
	for i := range qs {
		qs[i] = makeVec()
	}
	flat := index.NewFlat(index.L2)
	for i, v := range vecs {
		if err := flat.Add(fmt.Sprintf("v%06d", i), v); err != nil {
			return nil, err
		}
	}
	exactTruth := make([]map[string]bool, len(qs))
	for qi, q := range qs {
		exact, err := flat.Search(context.Background(), q, k)
		if err != nil {
			return nil, err
		}
		exactTruth[qi] = map[string]bool{}
		for _, r := range exact {
			exactTruth[qi][r.ID] = true
		}
	}
	for _, ef := range []int{16, 40, 80, 160} {
		hnsw := index.NewHNSW(index.L2, index.HNSWConfig{M: 16, EfConstruction: 100, EfSearch: ef, Seed: seed})
		for i, v := range vecs {
			if err := hnsw.Add(fmt.Sprintf("v%06d", i), v); err != nil {
				return nil, err
			}
		}
		var elapsed time.Duration
		hits, total := 0, 0
		for qi, q := range qs {
			start := time.Now()
			approx, err := hnsw.Search(context.Background(), q, k)
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			for _, r := range approx {
				if exactTruth[qi][r.ID] {
					hits++
				}
			}
			total += k
		}
		t.AddRow(fmt.Sprintf("ef=%d @20k", ef), "-",
			(elapsed / queries).Round(time.Microsecond).String(), "-", "-",
			f3(float64(hits)/float64(total)))
	}
	return t, nil
}

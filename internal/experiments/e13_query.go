package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"modellake/internal/index"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// E13 benchmarks the read path the PR-4 refactor optimized: flat-scan and
// HNSW vector search over flattened storage with bounded top-k selection,
// plus the lake's query-result cache. It reports QPS, latency percentiles,
// and allocations per query at several lake sizes, and verifies on every
// flat point that the optimized scan returns bitwise-identical hits to the
// naive reference (clone-per-node storage, full sort) it replaced.

// QueryBenchPoint is one (index kind, lake size) measurement.
type QueryBenchPoint struct {
	Kind          string  `json:"kind"` // "flat" or "hnsw"
	NModels       int     `json:"n_models"`
	Dim           int     `json:"dim"`
	K             int     `json:"k"`
	Queries       int     `json:"queries"`
	QPS           float64 `json:"qps"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	IdenticalTopK bool    `json:"identical_topk"` // vs naive reference (flat only; true for hnsw)
}

// QueryBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_query.json so CI can track read-path throughput over time.
type QueryBenchResult struct {
	Points []QueryBenchPoint `json:"points"`
	// CacheSpeedup is warm query-result-cache QPS over cold (cache-disabled)
	// QPS for repeated model-as-query searches on a real lake.
	CacheSpeedup   float64 `json:"cache_speedup"`
	CacheIdentical bool    `json:"cache_identical"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
}

// RunE13 is the experiment-index entry point with the default sweep.
func RunE13(seed uint64) (*Table, error) {
	t, _, err := RunE13Query(seed, nil, 0)
	return t, err
}

// RunE13Query measures read-path throughput at the given lake sizes with
// queriesPerSize queries per point. sizes nil means {1000, 10000};
// queriesPerSize <= 0 means 500.
func RunE13Query(seed uint64, sizes []int, queriesPerSize int) (*Table, *QueryBenchResult, error) {
	if len(sizes) == 0 {
		sizes = []int{1000, 10000}
	}
	if queriesPerSize <= 0 {
		queriesPerSize = 500
	}
	const dim, k = 32, 10
	t := &Table{
		ID:    "E13",
		Title: "read-path query engine: QPS / latency / allocations",
		Columns: []string{"index", "models", "qps", "p50", "p99",
			"allocs/op", "identical top-k"},
		Notes: "flat rows are verified bitwise-identical to the naive full-sort reference; cache row compares warm result-cache hits to uncached searches",
	}
	res := &QueryBenchResult{}

	for _, n := range sizes {
		vecs := benchVectors(n, dim, seed)
		queries := benchVectors(queriesPerSize, dim, seed+uint64(n)+1)

		flat := index.NewFlat(index.Cosine)
		hnsw := index.NewHNSW(index.Cosine, index.HNSWConfig{Seed: seed})
		ids := make([]string, n)
		for i, v := range vecs {
			ids[i] = fmt.Sprintf("m%06d", i)
			if err := flat.Add(ids[i], v); err != nil {
				return nil, nil, err
			}
			if err := hnsw.Add(ids[i], v); err != nil {
				return nil, nil, err
			}
		}

		flatPoint, err := measureIndex("flat", flat, queries, n, dim, k)
		if err != nil {
			return nil, nil, err
		}
		// Equivalence gate: the optimized scan must reproduce the naive
		// reference exactly — same IDs, same distance bits, same order.
		flatPoint.IdenticalTopK = true
		for _, q := range queries[:min(25, len(queries))] {
			got, err := flat.Search(context.Background(), q, k)
			if err != nil {
				return nil, nil, err
			}
			want := referenceTopK(index.Cosine, ids, vecs, q, k)
			if !sameResults(got, want) {
				flatPoint.IdenticalTopK = false
			}
		}
		res.Points = append(res.Points, flatPoint)
		addQueryRow(t, flatPoint)

		hnswPoint, err := measureIndex("hnsw", hnsw, queries, n, dim, k)
		if err != nil {
			return nil, nil, err
		}
		hnswPoint.IdenticalTopK = true // approximate by design; no reference gate
		res.Points = append(res.Points, hnswPoint)
		addQueryRow(t, hnswPoint)
	}

	if err := measureCache(seed, t, res); err != nil {
		return nil, nil, err
	}
	return t, res, nil
}

func benchVectors(n, dim int, seed uint64) []tensor.Vector {
	rng := xrand.New(seed)
	out := make([]tensor.Vector, n)
	for i := range out {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// measureIndex runs every query once, collecting per-query latencies and an
// allocation count, and folds them into one benchmark point.
func measureIndex(kind string, idx index.Index, queries []tensor.Vector, n, dim, k int) (QueryBenchPoint, error) {
	ctx := context.Background()
	lats := make([]time.Duration, len(queries))
	start := time.Now()
	for i, q := range queries {
		qStart := time.Now()
		if _, err := idx.Search(ctx, q, k); err != nil {
			return QueryBenchPoint{}, err
		}
		lats[i] = time.Since(qStart)
	}
	total := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return QueryBenchPoint{
		Kind:        kind,
		NModels:     n,
		Dim:         dim,
		K:           k,
		Queries:     len(queries),
		QPS:         float64(len(queries)) / total.Seconds(),
		P50Ns:       lats[len(lats)/2].Nanoseconds(),
		P99Ns:       lats[len(lats)*99/100].Nanoseconds(),
		AllocsPerOp: allocsPerOp(50, func() { idx.Search(ctx, queries[0], k) }),
	}, nil
}

// allocsPerOp measures heap allocations per call of f, GOMAXPROCS-pinned the
// way testing.AllocsPerRun does it so other goroutines' allocations do not
// leak into the count.
func allocsPerOp(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm-up: pools and lazy growth settle outside the measured window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// referenceTopK is the pre-optimization read path, kept verbatim as the
// equivalence oracle: per-candidate Metric.Distance on standalone vectors,
// full sort with the (distance, ID) total order, truncate to k.
func referenceTopK(m index.Metric, ids []string, vecs []tensor.Vector, q tensor.Vector, k int) []index.Result {
	res := make([]index.Result, len(vecs))
	for i, v := range vecs {
		res[i] = index.Result{ID: ids[i], Distance: m.Distance(q, v)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Distance != res[j].Distance {
			return res[i].Distance < res[j].Distance
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

func sameResults(a, b []index.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}

func addQueryRow(t *Table, p QueryBenchPoint) {
	t.AddRow(p.Kind, fmt.Sprint(p.NModels), f2(p.QPS),
		time.Duration(p.P50Ns).Round(time.Microsecond).String(),
		time.Duration(p.P99Ns).Round(time.Microsecond).String(),
		f2(p.AllocsPerOp), fmt.Sprint(p.IdenticalTopK))
}

// measureCache compares repeated model-as-query searches on a real lake with
// the query-result cache disabled versus warm, verifying the answers match.
func measureCache(seed uint64, t *Table, res *QueryBenchResult) error {
	spec := lakegen.DefaultSpec(seed)
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return err
	}
	open := func(disable bool) (*lake.Lake, []string, error) {
		lk, err := lake.Open(lake.Config{Seed: seed, DisableQueryCache: disable})
		if err != nil {
			return nil, nil, err
		}
		var ids []string
		for _, m := range pop.Members {
			rec, err := lk.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
			if err != nil {
				lk.Close()
				return nil, nil, err
			}
			ids = append(ids, rec.ID)
		}
		return lk, ids, nil
	}

	cold, coldIDs, err := open(true)
	if err != nil {
		return err
	}
	defer cold.Close()
	warm, warmIDs, err := open(false)
	if err != nil {
		return err
	}
	defer warm.Close()

	const rounds, k = 20, 5
	ctx := context.Background()
	run := func(lk *lake.Lake, ids []string) (time.Duration, [][]string, error) {
		var order [][]string
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, id := range ids {
				hits, err := lk.SearchByModelContext(ctx, id, "behavior", k)
				if err != nil {
					return 0, nil, err
				}
				if r == 0 {
					hitIDs := make([]string, len(hits))
					for i, h := range hits {
						hitIDs[i] = h.ID
					}
					order = append(order, hitIDs)
				}
			}
		}
		return time.Since(start), order, nil
	}
	// Warm the caches (embed + result) outside the timed window, so the
	// comparison isolates the result cache rather than first-touch costs.
	if _, _, err := run(warm, warmIDs); err != nil {
		return err
	}
	if _, _, err := run(cold, coldIDs); err != nil {
		return err
	}
	coldDur, coldOrder, err := run(cold, coldIDs)
	if err != nil {
		return err
	}
	warmDur, warmOrder, err := run(warm, warmIDs)
	if err != nil {
		return err
	}

	identical := len(coldOrder) == len(warmOrder)
	for i := 0; identical && i < len(coldOrder); i++ {
		if len(coldOrder[i]) != len(warmOrder[i]) {
			identical = false
			break
		}
		// The two lakes assign independent IDs; compare by rank position via
		// each lake's own ordering of its members, which lakegen generates
		// identically for the same seed.
		for j := range coldOrder[i] {
			if indexOf(coldIDs, coldOrder[i][j]) != indexOf(warmIDs, warmOrder[i][j]) {
				identical = false
				break
			}
		}
	}

	nq := rounds * len(coldIDs)
	res.CacheSpeedup = float64(coldDur) / float64(warmDur)
	res.CacheIdentical = identical
	res.CacheHits, res.CacheMisses = warm.QueryCacheStats()
	t.AddRow("flat+cache", fmt.Sprint(len(warmIDs)),
		f2(float64(nq)/warmDur.Seconds()), "-", "-", "-",
		fmt.Sprintf("%v (%.2fx vs uncached)", identical, res.CacheSpeedup))
	return nil
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"modellake/internal/index"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/registry"
)

// E16 benchmarks the atlas-scale read path (DESIGN.md §12, §14): the int8
// quantized tier with exact rescore, the product-quantized ADC tier, the
// disk-resident flat segment, and streaming lake generation. Part A sweeps
// index scale — exact flat scan vs int8 two-phase scan vs PQ ADC scan vs
// disk-resident segment at 10k and 100k vectors — verifying on every point
// that the approximate paths return bitwise-identical top-k to the exact
// scan, reporting each arm's resident ranking-tier bytes (the number the
// "1M models in one box" claim rests on), and timing segment Open. Part B
// generates a large lake with lakegen.Stream, ingests it chunk by chunk
// into a PQ disk-resident lake, and reports ingest throughput, the
// peak-heap proxy for resident memory (the point of streaming: the whole
// population is never live at once), reopen latency, and query QPS against
// the reopened lake.

// pqBenchRescoreFactor is the shortlist over-fetch the PQ arm runs with.
// Eight-byte codes are far coarser than the int8 tier's per-component
// codes, so PQ buys back its exactness with a deeper shortlist: at 100k
// uniform Gaussian vectors (the hardest case for PQ — no cluster structure
// for the codebooks to exploit) factor 128 still misses ~1 in 50 sampled
// queries, 192 is the lowest probed factor with zero misses, and 256 runs
// with double that margin while the rescore cost (k·256 of 100k rows)
// stays far below the full-index scan it replaces.
const pqBenchRescoreFactor = 256

// ScalePoint is one (read path, vector count) measurement.
type ScalePoint struct {
	Kind          string  `json:"kind"` // "exact", "quant", "pq", or "disk"
	NVectors      int     `json:"n_vectors"`
	Dim           int     `json:"dim"`
	K             int     `json:"k"`
	Queries       int     `json:"queries"`
	QPS           float64 `json:"qps"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	IdenticalTopK bool    `json:"identical_topk"`            // vs the exact flat scan
	TierBytes     int64   `json:"tier_bytes,omitempty"`      // resident ranking tier (int8 codes or PQ codebook+codes)
	IndexBytes    int64   `json:"index_bytes,omitempty"`     // whole index resident heap estimate
	PeakHeapBytes uint64  `json:"peak_heap_bytes,omitempty"` // max sampled HeapAlloc around this arm's query loop
	OpenNs        int64   `json:"open_ns,omitempty"`         // disk only: segment Open+verify latency
	SegmentBytes  int64   `json:"segment_bytes,omitempty"`   // disk only: on-disk segment size
}

// ScaleStream summarizes the streamed-lake half of the experiment.
type ScaleStream struct {
	Models        int     `json:"models"`
	GenIngestSecs float64 `json:"gen_ingest_seconds"` // Stream + chunked IngestAll, end to end
	ModelsPerSec  float64 `json:"models_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"` // max HeapAlloc sampled across the run
	Under2GB      bool    `json:"under_2gb"`
	ReopenNs      int64   `json:"reopen_ns"` // Open on the persisted lake (segment adoption)
	SearchQPS     float64 `json:"search_qps"`
	KeywordQPS    float64 `json:"keyword_qps"` // card search against disk-resident postings

	// Per-tier index heap on the reopened lake, from the lake's own
	// accounting: with disk-resident vectors AND postings, both search
	// tiers should be small next to the metadata KV map.
	VectorHeapBytes   int64 `json:"vector_heap_bytes"`
	PostingsHeapBytes int64 `json:"postings_heap_bytes"`
	KVHeapBytes       int64 `json:"kv_heap_bytes"`
}

// ScaleBenchResult is the machine-readable summary cmd/lakebench writes to
// BENCH_scale.json so CI can track atlas-scale behavior over time.
type ScaleBenchResult struct {
	Points []ScalePoint `json:"points"`
	Stream ScaleStream  `json:"stream"`
}

// RunE16 is the experiment-index entry point with the default sweep: index
// scale at 10k and 100k vectors, streamed lake at 100k models.
func RunE16(seed uint64) (*Table, error) {
	t, _, err := RunE16Scale(seed, nil, 0, 0)
	return t, err
}

// RunE16Scale measures the atlas-scale read path at the given vector counts
// with queries queries per point, then streams a streamModels-model lake.
// sizes nil means {10_000, 100_000}; queries <= 0 means 200; streamModels <=
// 0 means 100_000.
func RunE16Scale(seed uint64, sizes []int, queries, streamModels int) (*Table, *ScaleBenchResult, error) {
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000}
	}
	if queries <= 0 {
		queries = 200
	}
	if streamModels <= 0 {
		streamModels = 100_000
	}
	const dim, k = 32, 10
	t := &Table{
		ID:    "E16",
		Title: "atlas scale: quantized rescore, disk-resident vectors, streamed lakes",
		Columns: []string{"path", "vectors", "qps", "p50", "p99", "allocs/op",
			"identical top-k", "tier", "open"},
		Notes: "quant, pq, and disk rows are verified bitwise-identical to the exact flat scan; tier is the resident ranking-tier heap (int8 codes or PQ codebook+codes); stream row generates the lake incrementally into a PQ disk-resident lake and reports peak heap instead of top-k identity",
	}
	res := &ScaleBenchResult{}

	for _, n := range sizes {
		pts, err := measureScalePoint(seed, n, dim, k, queries)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range pts {
			res.Points = append(res.Points, p)
			open := "-"
			if p.OpenNs > 0 {
				open = time.Duration(p.OpenNs).Round(time.Microsecond).String()
			}
			tier := "-"
			if p.TierBytes > 0 {
				tier = fmt.Sprintf("%.2f MiB", float64(p.TierBytes)/(1<<20))
			}
			t.AddRow(p.Kind, fmt.Sprint(p.NVectors), f2(p.QPS),
				time.Duration(p.P50Ns).Round(time.Microsecond).String(),
				time.Duration(p.P99Ns).Round(time.Microsecond).String(),
				f2(p.AllocsPerOp), fmt.Sprint(p.IdenticalTopK), tier, open)
		}
	}

	stream, err := measureStreamedLake(seed, streamModels)
	if err != nil {
		return nil, nil, err
	}
	res.Stream = stream
	const mib = 1 << 20
	t.AddRow("stream+disk", fmt.Sprint(stream.Models), f2(stream.SearchQPS), "-", "-", "-",
		fmt.Sprintf("peak heap %.0f MiB (under 2 GiB: %v); tiers vec %.1f / postings %.1f / kv %.1f MiB",
			float64(stream.PeakHeapBytes)/mib, stream.Under2GB,
			float64(stream.VectorHeapBytes)/mib, float64(stream.PostingsHeapBytes)/mib,
			float64(stream.KVHeapBytes)/mib),
		fmt.Sprintf("%.1f MiB", float64(stream.VectorHeapBytes)/mib),
		time.Duration(stream.ReopenNs).Round(time.Millisecond).String())
	return t, res, nil
}

// measureScalePoint builds the four read paths over the same n vectors and
// measures each, gating quant, pq, and disk on bitwise identity to the
// exact scan. The PQ arm trains its codebook on the full population (the
// shape a built segment has) and runs the deeper pqBenchRescoreFactor
// shortlist its coarser codes need.
func measureScalePoint(seed uint64, n, dim, k, nq int) ([]ScalePoint, error) {
	vecs := benchVectors(n, dim, seed+uint64(n))
	queries := benchVectors(nq, dim, seed+uint64(n)+1)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%07d", i)
	}

	exact := index.NewFlat(index.Cosine)
	quant := index.NewFlatQuantized(index.Cosine, index.QuantConfig{})
	pq := index.NewFlatPQ(index.Cosine, index.QuantConfig{
		Seed: seed, PQTrainRows: n, RescoreFactor: pqBenchRescoreFactor,
	})
	exact.Reserve(n, dim)
	quant.Reserve(n, dim)
	pq.Reserve(n, dim)
	for i, v := range vecs {
		if err := exact.Add(ids[i], v); err != nil {
			return nil, err
		}
		if err := quant.Add(ids[i], v); err != nil {
			return nil, err
		}
		if err := pq.Add(ids[i], v); err != nil {
			return nil, err
		}
	}
	dir, err := os.MkdirTemp("", "e16seg")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	segPath := filepath.Join(dir, "bench.seg")
	disk, err := index.BuildDiskFlat(segPath, nil, index.Cosine, index.QuantConfig{},
		ids, func(i int) []float64 { return vecs[i] })
	if err != nil {
		return nil, err
	}
	defer disk.Close()

	// Identity oracle: the exact scan's answers on a sample of the queries.
	ctx := context.Background()
	sample := queries[:min(50, len(queries))]
	oracle := make([][]index.Result, len(sample))
	for i, q := range sample {
		if oracle[i], err = exact.Search(ctx, q, k); err != nil {
			return nil, err
		}
	}
	identical := func(idx index.Index) (bool, error) {
		for i, q := range sample {
			got, err := idx.Search(ctx, q, k)
			if err != nil {
				return false, err
			}
			if !sameResults(got, oracle[i]) {
				return false, nil
			}
		}
		return true, nil
	}

	heapAlloc := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	var out []ScalePoint
	for _, c := range []struct {
		kind string
		idx  index.Index
	}{{"exact", exact}, {"quant", quant}, {"pq", pq}, {"disk", disk}} {
		heapBefore := heapAlloc()
		qp, err := measureIndex(c.kind, c.idx, queries, n, dim, k)
		if err != nil {
			return nil, err
		}
		p := ScalePoint{
			Kind: qp.Kind, NVectors: n, Dim: dim, K: k, Queries: qp.Queries,
			QPS: qp.QPS, P50Ns: qp.P50Ns, P99Ns: qp.P99Ns, AllocsPerOp: qp.AllocsPerOp,
			IdenticalTopK: true,
			PeakHeapBytes: max(heapBefore, heapAlloc()),
		}
		if tiered, ok := c.idx.(interface{ ResidentTierBytes() int64 }); ok {
			p.TierBytes = tiered.ResidentTierBytes()
		}
		if sized, ok := c.idx.(interface{ MemBytes() int64 }); ok {
			p.IndexBytes = sized.MemBytes()
		}
		if c.kind != "exact" {
			if p.IdenticalTopK, err = identical(c.idx); err != nil {
				return nil, err
			}
		}
		if c.kind == "disk" {
			// Reopen latency: one sequential verify pass over the segment,
			// the cost a disk-resident lake pays at Open instead of
			// re-inserting every row.
			if err := disk.Close(); err != nil {
				return nil, err
			}
			openStart := time.Now()
			reopened, err := index.OpenDiskFlat(segPath, nil, index.Cosine, index.QuantConfig{})
			if err != nil {
				return nil, err
			}
			p.OpenNs = time.Since(openStart).Nanoseconds()
			disk = reopened
			if st, err := os.Stat(segPath); err == nil {
				p.SegmentBytes = st.Size()
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// scaleSpec shapes a lakegen spec for bulk generation: tiny models, one
// training epoch, five members per family — cheap enough that 100k models
// generate in minutes while still exercising the full ingest path. The edit
// transform is left out of the mix: on barely trained models its association
// direction can degenerate (every ReLU unit dead for the random probe),
// which would abort a bulk run that only cares about scale.
func scaleSpec(seed uint64, models int) lakegen.Spec {
	const perFamily = 5 // 1 base + 4 children; depth never exhausts eligibility
	bases := (models + perFamily - 1) / perFamily
	return lakegen.Spec{
		Seed: seed, NumBases: bases, ChildrenPerBase: perFamily - 1, MaxDepth: 3,
		Dim: 8, Classes: 3, Hidden: 8, TrainN: 32, Noise: 0.4,
		BaseEpochs: 1, FTEpochs: 1, CardDropProb: 0.2, AnonymousNames: true,
		TransformMix: map[string]float64{
			model.TransformFinetune: 0.55,
			model.TransformLoRA:     0.25,
			model.TransformStitch:   0.2,
		},
	}
}

// measureStreamedLake streams a models-model population straight into a
// product-quantized, disk-resident lake in chunks, so the full population is
// never resident; peak HeapAlloc across the run is the memory proxy. PQ is
// the tier of record here because it is what carries the 1M-models-in-one-
// box bar: 8 bytes of resident ranking state per vector instead of the int8
// tier's dim+20.
func measureStreamedLake(seed uint64, models int) (ScaleStream, error) {
	s := ScaleStream{}
	dir, err := os.MkdirTemp("", "e16lake")
	if err != nil {
		return s, err
	}
	defer os.RemoveAll(dir)
	cfg := lake.Config{Dir: dir, Seed: seed, PQSubspaces: 8,
		DiskResidentVectors: true, DiskResidentPostings: true}
	lk, err := lake.Open(cfg)
	if err != nil {
		return s, err
	}

	const chunk = 512
	var batch []lake.IngestItem
	var sampleIDs []string
	var peak uint64
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		recs, errs := lk.IngestAll(batch, 0)
		batch = batch[:0]
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("e16: ingest: %w", err)
			}
			if len(sampleIDs) < 256 {
				sampleIDs = append(sampleIDs, recs[i].ID)
			}
		}
		sampleHeap()
		return nil
	}

	start := time.Now()
	genErr := lakegen.Stream(scaleSpec(seed, models), func(m *lakegen.Member) error {
		batch = append(batch, lake.IngestItem{
			Model: m.Model, Card: m.Card,
			Opts: registry.RegisterOptions{Name: m.Truth.Name, Version: "1"},
		})
		if len(batch) >= chunk {
			return flush()
		}
		return nil
	})
	if genErr == nil {
		genErr = flush()
	}
	if genErr != nil {
		lk.Close()
		return s, genErr
	}
	s.GenIngestSecs = time.Since(start).Seconds()
	s.Models = lk.Count()
	s.ModelsPerSec = float64(s.Models) / s.GenIngestSecs
	s.PeakHeapBytes = peak
	s.Under2GB = peak < 2<<30
	if err := lk.Close(); err != nil {
		return s, err
	}

	// Reopen: rehydrate decodes the persisted vec records and adopts (or
	// rebuilds) the on-disk segments.
	reopenStart := time.Now()
	lk, err = lake.Open(cfg)
	if err != nil {
		return s, err
	}
	defer lk.Close()
	s.ReopenNs = time.Since(reopenStart).Nanoseconds()

	ctx := context.Background()
	qStart := time.Now()
	for _, id := range sampleIDs {
		if _, err := lk.SearchByModelContext(ctx, id, "behavior", 10); err != nil {
			return s, err
		}
	}
	if len(sampleIDs) > 0 {
		s.SearchQPS = float64(len(sampleIDs)) / time.Since(qStart).Seconds()
	}

	// Keyword reads against the adopted postings segments, then the tier
	// breakdown (which also forces the keyword drain for any cards the
	// segments didn't cover, so the report reflects a fully warm lake).
	kwQueries := keywordQueries(seed, 64)
	kwStart := time.Now()
	for _, q := range kwQueries {
		if _, err := lk.SearchKeywordContext(ctx, q, 10); err != nil {
			return s, err
		}
	}
	s.KeywordQPS = float64(len(kwQueries)) / time.Since(kwStart).Seconds()
	tiers := lk.TierMemStats()
	s.VectorHeapBytes = tiers.VectorBytes
	s.PostingsHeapBytes = tiers.PostingsBytes
	s.KVHeapBytes = tiers.KVBytes
	return s, nil
}

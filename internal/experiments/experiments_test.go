package experiments

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// testSeed returns the workload seed for the shape tests. It defaults to 7 —
// deliberately different from cmd/lakebench's default 42, so the recorded
// EXPERIMENTS.md numbers and the CI assertions come from independent seeds —
// and can be overridden with MODELLAKE_TEST_SEED for robustness sweeps.
func testSeed() uint64 {
	if v := os.Getenv("MODELLAKE_TEST_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return 7
}

// cell parses a float cell from a table.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i] // "0.89 (16/18)" → "0.89"
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab, err := RunE1(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first, last := 0, len(tab.Rows)-1
	// Keyword search collapses with documentation...
	if kwFull, kwEmpty := cell(t, tab, first, 2), cell(t, tab, last, 2); !(kwFull > 0.8 && kwEmpty < 0.2) {
		t.Fatalf("keyword P@5 shape violated: full=%v empty=%v", kwFull, kwEmpty)
	}
	// ...while content-based search is flat: no row falls meaningfully
	// below its full-documentation level (which itself must be useful).
	ctFull := cell(t, tab, first, 3)
	if ctFull < 0.6 {
		t.Fatalf("content P@5 at full docs = %v, want >= 0.6", ctFull)
	}
	for r := range tab.Rows {
		if ct := cell(t, tab, r, 3); ct < ctFull-0.1 {
			t.Fatalf("content P@5 degraded at row %d: %v (full-docs level %v)", r, ct, ctFull)
		}
	}
	// Hybrid is never much worse than the best single method at full docs.
	if hy := cell(t, tab, first, 4); hy < 0.8 {
		t.Fatalf("hybrid P@5 at full docs = %v", hy)
	}
}

func TestE2Shape(t *testing.T) {
	tab, err := RunE2(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		norm := cell(t, tab, r, 2)
		random := cell(t, tab, r, 6)
		if norm <= random+0.2 {
			t.Fatalf("row %d: weight recovery F1 %v not clearly above random %v", r, norm, random)
		}
	}
	// Declared lineage decays with doc drop (rows 0..2 share a lake size).
	if d0, d2 := cell(t, tab, 0, 5), cell(t, tab, 2, 5); d0 <= d2 {
		t.Fatalf("declared F1 did not decay with drop: %v -> %v", d0, d2)
	}
	// Weight-based recovery is documentation-independent: identical across
	// the drop sweep.
	if w0, w2 := cell(t, tab, 0, 2), cell(t, tab, 2, 2); w0 != w2 {
		t.Fatalf("weight F1 changed with documentation: %v vs %v", w0, w2)
	}
}

func TestE3Shape(t *testing.T) {
	tab, err := RunE3(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	if mean[0] != "mean" {
		t.Fatalf("last row is not the mean: %v", mean)
	}
	rho, _ := strconv.ParseFloat(mean[1], 64)
	if rho < 0.4 {
		t.Fatalf("mean influence-LOO Spearman = %v, want >= 0.4", rho)
	}
	ov, _ := strconv.ParseFloat(mean[2], 64)
	if ov < 0.5 {
		t.Fatalf("mean top-5 overlap = %v, want >= 0.5", ov)
	}
}

func TestE4ShapeSmall(t *testing.T) {
	// The full E4 sweeps to 50k vectors; shape-check a trimmed variant by
	// reading only the first rows of the real run in -short mode.
	if testing.Short() {
		t.Skip("E4 takes seconds; skipped in -short")
	}
	tab, err := RunE4(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..3 sweep n; rows 4..7 are the efSearch ablation at n=20k.
	const largestN = 3
	if rec := cell(t, tab, largestN, 5); rec < 0.85 {
		t.Fatalf("HNSW recall at largest n = %v, want >= 0.85", rec)
	}
	if sp := cell(t, tab, largestN, 3); sp < 2 {
		t.Fatalf("HNSW speedup at largest n = %vx, want >= 2x", sp)
	}
	// Speedup grows with n.
	if spFirst, spLast := cell(t, tab, 0, 3), cell(t, tab, largestN, 3); spLast <= spFirst {
		t.Fatalf("speedup not growing with n: %v -> %v", spFirst, spLast)
	}
	// efSearch ablation: recall non-decreasing in ef, and the largest ef
	// reaches high recall.
	if lo, hi := cell(t, tab, 4, 5), cell(t, tab, 7, 5); hi < lo || hi < 0.95 {
		t.Fatalf("efSearch ablation shape violated: ef16=%v ef160=%v", lo, hi)
	}
}

func TestE5Shape(t *testing.T) {
	tab, err := RunE5(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..4 sweep epochs; rows 5/6 are the DP-SGD and masking defences.
	first, overfit := cell(t, tab, 0, 3), cell(t, tab, 4, 3)
	if overfit <= first+0.1 {
		t.Fatalf("membership AUC did not grow with epochs: %v -> %v", first, overfit)
	}
	if overfit < 0.65 {
		t.Fatalf("overfit AUC = %v, want >= 0.65", overfit)
	}
	dp := cell(t, tab, 5, 3)
	if dp >= overfit-0.03 {
		t.Fatalf("DP-SGD did not reduce exposure: %v -> %v", overfit, dp)
	}
	mask := cell(t, tab, 6, 3)
	if mask < overfit-0.1 {
		t.Fatalf("output masking unexpectedly defended (%v -> %v): false-sense claim broken",
			overfit, mask)
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := RunE6(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	// Drafts always improve completeness when fields were dropped.
	for r := 0; r < 3; r++ {
		census, draft := cell(t, tab, r, 2), cell(t, tab, r, 3)
		if draft <= census {
			t.Fatalf("row %d: draft completeness %v did not improve on %v", r, draft, census)
		}
	}
	// Domain recovery beats a 4-way coin flip.
	if acc := cell(t, tab, 1, 4); acc < 0.5 {
		t.Fatalf("domain recovery at drop 0.6 = %v, want >= 0.5", acc)
	}
	// Combined misinformation detection (docgen contradiction flags +
	// behavioural claim verification) catches the majority of lying cards.
	// The exact rate is seed-dependent: when two synthetic domains happen to
	// be geometrically close, a lie that claims the neighbouring domain is
	// genuinely hard to refute behaviourally — the honest limit of
	// content-based card verification.
	if det := cell(t, tab, 3, 6); det < 0.5 {
		t.Fatalf("lie detection = %v, want >= 0.5", det)
	}
}

func TestE7Shape(t *testing.T) {
	tab, err := RunE7(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	// AUC at the longest/strongest setting must be ~1.
	last := len(tab.Rows) - 1
	if auc := cell(t, tab, last, 4); auc < 0.99 {
		t.Fatalf("watermark AUC = %v, want >= 0.99", auc)
	}
	// z grows with token count at fixed delta (rows 0,2,4 are delta=1).
	z25, z400 := cell(t, tab, 0, 2), cell(t, tab, 4, 2)
	if z400 <= z25 {
		t.Fatalf("z did not grow with length: %v -> %v", z25, z400)
	}
	if !strings.Contains(tab.Notes, "3/3 change classes detected") {
		t.Fatalf("citation integrity failed: %s", tab.Notes)
	}
}

func TestE8Shape(t *testing.T) {
	tab, err := RunE8(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	// Domain probe beats its majority baseline decisively.
	if acc, base := cell(t, tab, 0, 1), cell(t, tab, 0, 2); acc <= base+0.2 {
		t.Fatalf("domain probe %v not clearly above baseline %v", acc, base)
	}
	// Transformation is a much weaker signal at this scale: require only
	// that the probe can fit it (train accuracy above baseline) — the
	// honest claim the table reports.
	if trainAcc, base := cell(t, tab, 1, 3), cell(t, tab, 1, 2); trainAcc <= base {
		t.Fatalf("transform probe train accuracy %v not above baseline %v", trainAcc, base)
	}
}

func TestE9Shape(t *testing.T) {
	tab, err := RunE9(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] == "no" {
			t.Fatalf("query %q returned an incorrect result set", row[1])
		}
	}
}

func TestE10Shape(t *testing.T) {
	tab, err := RunE10(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		rec := cell(t, tab, r, 2)
		dec := cell(t, tab, r, 4)
		if r > 0 && rec < dec {
			t.Fatalf("row %d: recovered recall %v below declared %v under doc loss", r, rec, dec)
		}
	}
	// Declared recall decays to ~0; recovered stays put.
	if first, last := cell(t, tab, 0, 4), cell(t, tab, len(tab.Rows)-1, 4); last >= first {
		t.Fatalf("declared recall did not decay: %v -> %v", first, last)
	}
	if first, last := cell(t, tab, 0, 2), cell(t, tab, len(tab.Rows)-1, 2); last < first-0.05 {
		t.Fatalf("recovered recall decayed with documentation: %v -> %v", first, last)
	}
}

func TestF1Shape(t *testing.T) {
	tab, err := RunF1(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	behaviour := cell(t, tab, 0, 2)
	docs := cell(t, tab, 2, 2)
	if behaviour <= docs {
		t.Fatalf("behaviour viewpoint P@5 %v should beat docs-only %v at 50%% drop", behaviour, docs)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bbbb"}, Notes: "n"}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a", "bbbb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, ex := range All() {
		if ex.Run == nil {
			t.Fatalf("%s has no runner", ex.ID)
		}
		if ids[ex.ID] {
			t.Fatalf("duplicate id %s", ex.ID)
		}
		ids[ex.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "F1"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tab, err := RunE11(testSeed())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Phase 1 evaluates everything; later phases only the new pairs; the
	// steady-state phase evaluates nothing.
	if got := tab.Rows[0][4]; got != tab.Rows[0][3] {
		t.Fatalf("initial phase evaluated %s of %s pairs", got, tab.Rows[0][3])
	}
	if got := tab.Rows[3][4]; got != "0" {
		t.Fatalf("steady-state phase evaluated %s pairs, want 0", got)
	}
	grow := cell(t, tab, 1, 4)
	total := cell(t, tab, 1, 3)
	if grow >= total {
		t.Fatalf("growth phase re-evaluated everything: %v of %v", grow, total)
	}
}

// TestE12Shape pins the pipeline's acceptance property at test time: a
// parallel ingest must answer top-k searches identically to the serial
// loop, and the machine-readable result must describe the requested run.
func TestE12Shape(t *testing.T) {
	tab, res, err := RunE12Ingest(testSeed(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 { // serial + sweep of at least 1,2,4
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if res == nil {
		t.Fatal("no result for requested parallelism")
	}
	if res.Parallelism != 2 {
		t.Fatalf("result parallelism = %d, want 2", res.Parallelism)
	}
	if !res.IdenticalTopK {
		t.Fatal("parallel ingest changed top-k results")
	}
	if res.NModels == 0 || res.SerialNs <= 0 || res.ParallelNs <= 0 || res.Speedup <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.CacheMisses == 0 {
		t.Fatalf("fresh lake reported no cache misses: %+v", res)
	}
}

// TestE13Shape pins the read-path benchmark's acceptance property at test
// time: the optimized flat scan must answer top-k queries bitwise-identically
// to the naive full-sort reference, and the cached read path must agree with
// the uncached one.
func TestE13Shape(t *testing.T) {
	tab, res, err := RunE13Query(testSeed(), []int{300, 1200}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 { // (flat+hnsw) × 2 sizes + cache row
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.IdenticalTopK {
			t.Fatalf("%s@%d: optimized top-k diverged from reference", p.Kind, p.NModels)
		}
		if p.QPS <= 0 || p.P50Ns <= 0 || p.P99Ns < p.P50Ns {
			t.Fatalf("implausible point: %+v", p)
		}
	}
	if !res.CacheIdentical {
		t.Fatal("cached search results diverged from uncached")
	}
	if res.CacheHits == 0 {
		t.Fatalf("warm lake reported no query-cache hits: %+v", res)
	}
}

// TestE14Shape pins the write-path benchmark's structural properties at test
// time (small sizes; the headline ratios are asserted by CI on the full-size
// run): every arm commits and recovers, fsync accounting is sane — the batch
// discipline must pay strictly fewer fsyncs than the per-op discipline for
// the same durable state — and the reopen arms agree on the model count.
func TestE14Shape(t *testing.T) {
	tab, res, err := RunE14Write(testSeed(), 30, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	if res.IngestModels != 30 || res.OpenModels != 120 {
		t.Fatalf("sizes not honored: %+v", res)
	}
	if res.MetaKeys <= res.IngestModels {
		t.Fatalf("implausible metadata key count %d for %d models", res.MetaKeys, res.IngestModels)
	}
	for name, ns := range map[string]int64{
		"legacy": res.LegacyPerOpNs, "group": res.GroupCommitNs,
		"apply": res.BatchApplyNs, "serial ingest": res.SerialIngestNs,
		"batch ingest": res.BatchIngestNs, "eager open": res.EagerOpenNs,
		"fast open": res.FastOpenNs,
	} {
		if ns <= 0 {
			t.Fatalf("arm %s reported no time: %+v", name, res)
		}
	}
	// The legacy discipline fsyncs once per key; batch apply must beat it
	// by a wide margin on fsync count regardless of wall-clock noise.
	if res.LegacyFsyncs < res.MetaKeys {
		t.Fatalf("legacy arm fsynced %d times for %d keys", res.LegacyFsyncs, res.MetaKeys)
	}
	if res.BatchApplyFsyncs*10 > res.LegacyFsyncs {
		t.Fatalf("batch apply did not coalesce fsyncs: %d vs legacy %d",
			res.BatchApplyFsyncs, res.LegacyFsyncs)
	}
	// Group commit coalesces concurrent per-op writers: fewer fsyncs than
	// one per key.
	if res.GroupCommitFsyncs >= res.LegacyFsyncs {
		t.Fatalf("group commit coalesced nothing: %d vs legacy %d",
			res.GroupCommitFsyncs, res.LegacyFsyncs)
	}
	// The batch ingest pipeline pays at most a small constant number of
	// fsyncs per model; the serial loop pays more.
	if res.BatchFsyncsPerModel >= res.SerialFsyncsPerModel {
		t.Fatalf("batch ingest fsyncs/model %.2f not below serial %.2f",
			res.BatchFsyncsPerModel, res.SerialFsyncsPerModel)
	}
	if res.IngestSpeedup <= 0 || res.OpenSpeedup <= 0 || res.GroupCommitSpeedup <= 0 {
		t.Fatalf("implausible speedups: %+v", res)
	}
}

func TestE15Shape(t *testing.T) {
	tab, res, err := RunE15Cluster(testSeed(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tab.Rows))
	}
	// The whole point of the cluster read path: scatter-gather and failover
	// answers are bit-identical to single-node. RunE15Cluster errors out on
	// divergence, but the JSON field is what CI archives — pin it too.
	if !res.BitwiseEqual {
		t.Fatalf("cluster search diverged from single-node: %+v", res)
	}
	if res.Models <= 0 || res.Shards != 3 || res.Replicas != 1 {
		t.Fatalf("implausible topology: %+v", res)
	}
	for name, ns := range map[string]int64{
		"single ingest": res.SingleIngestNs, "cluster ingest": res.ClusterIngestNs,
		"single keyword": res.SingleKeywordNs, "cluster keyword": res.ClusterKeywordNs,
		"failover keyword": res.FailoverKeywordNs,
		"single vector": res.SingleVectorNs, "cluster vector": res.ClusterVectorNs,
		"failover vector": res.FailoverVectorNs,
	} {
		if ns <= 0 {
			t.Fatalf("arm %s reported no time: %+v", name, res)
		}
	}
	if res.KeywordQueries <= 0 || res.VectorQueries <= 0 {
		t.Fatalf("no queries ran: %+v", res)
	}
	// Promotion arms: the kill must have promoted (and been timed), and the
	// post-promotion write wave must have gone through the promoted leader.
	if res.PromoteNs <= 0 {
		t.Fatalf("promotion reported no time: %+v", res)
	}
	if res.PostPromoteWrites <= 0 || res.PostPromoteWriteNs <= 0 {
		t.Fatalf("post-promotion write arm did not run: %+v", res)
	}
}

package experiments

import (
	"fmt"

	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/weightspace"
)

// RunE8 evaluates weight-space modeling (§5): a meta-model trained on weight
// embeddings of the lake's documented models predicts the training domain
// and the creating transformation of held-out models, against the majority-
// class baseline. It also reports the cross-task linear-connectivity check
// (Zhou et al.): base↔fine-tune weight interpolation behaves linearly,
// unrelated-model interpolation does not.
func RunE8(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "weight-space probes and linear connectivity",
		Columns: []string{"target", "probe acc", "majority baseline", "train acc"},
		Notes:   "probe reads θ only; held-out = every third lake member",
	}
	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = 6
	spec.ChildrenPerBase = 10
	pop, err := lakegen.Generate(spec)
	if err != nil {
		return nil, err
	}
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
	}

	eval := func(label string, labelOf func(*lakegen.Member) string) error {
		var hTrain, hTest []*model.Handle
		var lTrain, lTest []string
		for i, m := range pop.Members {
			h := model.NewHandle(m.Model)
			lab := labelOf(m)
			if i%3 == 0 {
				hTest = append(hTest, h)
				lTest = append(lTest, lab)
			} else {
				hTrain = append(hTrain, h)
				lTrain = append(lTrain, lab)
			}
		}
		probe, trainAcc, err := weightspace.TrainProbe(hTrain, lTrain,
			weightspace.ProbeConfig{Seed: seed, Epochs: 100})
		if err != nil {
			return err
		}
		acc, err := probe.Accuracy(hTest, lTest)
		if err != nil {
			return err
		}
		t.AddRow(label, f3(acc), f3(weightspace.MajorityBaseline(lTest)), f3(trainAcc))
		return nil
	}
	if err := eval("domain family", func(m *lakegen.Member) string {
		return fmt.Sprintf("family-%d", m.Truth.Family)
	}); err != nil {
		return nil, err
	}
	if err := eval("transformation", func(m *lakegen.Member) string {
		return m.Truth.Transform
	}); err != nil {
		return nil, err
	}

	// Linear connectivity: related (parent→fine-tuned child) vs unrelated
	// (bases of different families).
	var relSum float64
	relN := 0
	for _, e := range pop.Edges {
		if e.Transform != model.TransformFinetune {
			continue
		}
		parent := pop.Members[e.Parent]
		child := pop.Members[e.Child]
		eval := pop.Datasets[parent.Truth.DatasetID]
		lc, err := weightspace.LinearConnectivity(parent.Model.Net, child.Model.Net, eval, 5)
		if err != nil {
			continue
		}
		relSum += lc
		relN++
		if relN >= 6 {
			break
		}
	}
	var unrelSum float64
	unrelN := 0
	var bases []*lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			bases = append(bases, m)
		}
	}
	for i := 0; i < len(bases); i++ {
		for j := i + 1; j < len(bases); j++ {
			eval := pop.Datasets[bases[i].Truth.DatasetID]
			lc, err := weightspace.LinearConnectivity(bases[i].Model.Net, bases[j].Model.Net, eval, 5)
			if err != nil {
				continue
			}
			unrelSum += lc
			unrelN++
		}
	}
	if relN > 0 && unrelN > 0 {
		t.AddRow("linear connectivity", fmt.Sprintf("related=%.3f", relSum/float64(relN)),
			fmt.Sprintf("unrelated=%.3f", unrelSum/float64(unrelN)), "-")
	}
	return t, nil
}

package experiments

import (
	"fmt"

	"modellake/internal/attribution"
	"modellake/internal/nn"
	"modellake/internal/provenance"
	"modellake/internal/version"
	"modellake/internal/watermark"
	"modellake/internal/xrand"
)

// RunE7 evaluates the citation application (§6): (a) watermark detection
// AUC as a function of generation length and watermark strength — the
// mechanism for attributing generated content to a model — and (b) citation
// soundness/completeness: identical version graphs produce identical
// citations, and every class of graph change refreshes them.
func RunE7(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "watermark detection (green-list, γ=0.5) and citation integrity",
		Columns: []string{"tokens", "delta", "mean z (marked)", "mean z (clean)", "AUC"},
		Notes:   "expected shape: AUC→1 with length and strength; z grows ~√n",
	}
	lm := nn.NewBigramLM(64, xrand.New(seed))
	for _, cfg := range []struct {
		tokens int
		delta  float64
	}{
		{25, 1}, {25, 4}, {100, 1}, {100, 4}, {400, 1}, {400, 4},
	} {
		w, err := watermark.New(seed+7, 0.5, cfg.delta)
		if err != nil {
			return nil, err
		}
		const trials = 20
		var scores []float64
		var labels []bool
		var zMarked, zClean float64
		for i := 0; i < trials; i++ {
			marked := lm.Sample(xrand.New(seed+uint64(1000+i)), 0, cfg.tokens, 1.0, w.Bias())
			dm := w.Detect(0, marked)
			scores = append(scores, dm.ZScore)
			labels = append(labels, true)
			zMarked += dm.ZScore

			clean := lm.Sample(xrand.New(seed+uint64(2000+i)), 0, cfg.tokens, 1.0, nil)
			dc := w.Detect(0, clean)
			scores = append(scores, dc.ZScore)
			labels = append(labels, false)
			zClean += dc.ZScore
		}
		t.AddRow(fmt.Sprint(cfg.tokens), f2(cfg.delta),
			f2(zMarked/trials), f2(zClean/trials),
			f3(attribution.AUC(scores, labels)))
	}

	// Citation integrity: count the change classes that refresh the hash.
	g := &version.Graph{
		Nodes: []string{"m-1", "m-2"},
		Edges: []version.Edge{{Parent: "m-1", Child: "m-2", Transform: "finetune"}},
	}
	base := provenance.GraphHash(g)
	changes := 0
	{
		g2 := *g
		g2.Nodes = append(append([]string(nil), g.Nodes...), "m-3")
		if provenance.GraphHash(&g2) != base {
			changes++
		}
	}
	{
		g2 := *g
		g2.Edges = append(append([]version.Edge(nil), g.Edges...),
			version.Edge{Parent: "m-2", Child: "m-3x", Transform: "lora"})
		if provenance.GraphHash(&g2) != base {
			changes++
		}
	}
	{
		g2 := *g
		g2.Edges = []version.Edge{{Parent: "m-1", Child: "m-2", Transform: "edit"}}
		if provenance.GraphHash(&g2) != base {
			changes++
		}
	}
	stable := provenance.GraphHash(g) == base
	t.Notes += fmt.Sprintf("; citation hash: stable=%v, %d/3 change classes detected", stable, changes)
	return t, nil
}

package experiments

import (
	"strings"

	"modellake/internal/benchmark"
	"modellake/internal/data"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/xrand"
)

// RunE1 reproduces the paper's central search argument (Example 1.1, §4):
// metadata/keyword search quality collapses as documentation completeness
// falls, while content-based search — which consults the models themselves —
// is unaffected; hybrid fusion tracks the better of the two.
//
// Setup: an anonymously named lake (names leak nothing); for each base
// domain we issue (a) a keyword query built from the domain's vocabulary and
// (b) a model-as-query search with a freshly trained external model of that
// domain. Relevance ground truth is the generator's true domain families.
func RunE1(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "search precision@5 vs card completeness (metadata vs content-based)",
		Columns: []string{"drop", "completeness", "keyword P@5", "content P@5",
			"hybrid P@5", "keyword nDCG@5", "content nDCG@5"},
		Notes: "expected shape: keyword degrades toward 0 as drop→1; content-based flat",
	}
	for _, drop := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		spec := lakegen.DefaultSpec(seed)
		spec.NumBases = 4
		spec.ChildrenPerBase = 6
		spec.CardDropProb = drop
		spec.AnonymousNames = true
		pop, err := lakegen.Generate(spec)
		if err != nil {
			return nil, err
		}
		lk, err := lake.Open(lake.Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(pop.Members))
		totalCompleteness := 0.0
		for i, m := range pop.Members {
			rec, err := lk.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name})
			if err != nil {
				lk.Close()
				return nil, err
			}
			ids[i] = rec.ID
			totalCompleteness += m.Card.Completeness()
		}

		var kwP, ctP, hyP, kwN, ctN float64
		families := 0
		for fam := 0; fam < spec.NumBases; fam++ {
			// Relevant = members of this family.
			relevant := map[string]bool{}
			var domainName string
			for i, m := range pop.Members {
				if m.Truth.Family == fam {
					relevant[ids[i]] = true
					if m.Truth.Depth == 0 {
						domainName = m.Truth.Domain
					}
				}
			}
			td, ok := data.TextDomainByName(baseDomain(domainName))
			if !ok {
				continue
			}
			families++

			// (a) keyword query from the domain's signature vocabulary —
			// the terms a user would type ("statute court plaintiff ...").
			// These live in card descriptions, so their findability decays
			// with documentation dropout.
			query := strings.Join(td.Keywords[:6], " ")
			kwHits := lk.SearchKeyword(query, 5)
			kwP += benchmark.PrecisionAtK(hitIDs(kwHits), relevant, 5)
			kwN += benchmark.NDCGAtK(hitIDs(kwHits), relevant, 5)

			// (b) content-based query with an external model of the domain.
			qm, err := externalModel(domainName, spec, seed+uint64(fam)+1000)
			if err != nil {
				lk.Close()
				return nil, err
			}
			ctHits, err := lk.SearchByHandle(model.NewHandle(qm), "behavior", 5)
			if err != nil {
				lk.Close()
				return nil, err
			}
			ctP += benchmark.PrecisionAtK(hitIDs(ctHits), relevant, 5)
			ctN += benchmark.NDCGAtK(hitIDs(ctHits), relevant, 5)

			// (c) hybrid RRF.
			fused := search.FuseRRF(0, kwHits, ctHits)
			if len(fused) > 5 {
				fused = fused[:5]
			}
			hyP += benchmark.PrecisionAtK(hitIDs(fused), relevant, 5)
		}
		lk.Close()
		n := float64(families)
		t.AddRow(f2(drop), f2(totalCompleteness/float64(len(pop.Members))),
			f3(kwP/n), f3(ctP/n), f3(hyP/n), f3(kwN/n), f3(ctN/n))
	}
	return t, nil
}

// externalModel trains a fresh model on the named domain — the "model I
// already have" a user brings as a content query.
func externalModel(domainName string, spec lakegen.Spec, seed uint64) (*model.Model, error) {
	dom := data.NewDomain(domainName, spec.Dim, spec.Classes, domainSeed(domainName))
	ds := dom.Sample(domainName+"/query", spec.TrainN, spec.Noise, xrand.New(seed))
	net := nn.NewMLP([]int{spec.Dim, spec.Hidden, spec.Classes}, nn.ReLU, xrand.New(seed+1))
	cfg := nn.DefaultTrainConfig()
	cfg.Seed = seed + 2
	if _, err := nn.Train(net, ds, cfg); err != nil {
		return nil, err
	}
	return &model.Model{ID: "external-query", Name: "external-query", Net: net}, nil
}

func hitIDs(hits []search.Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.ID
	}
	return out
}

func baseDomain(domain string) string {
	if i := strings.IndexAny(domain, "-/"); i >= 0 {
		return domain[:i]
	}
	return domain
}

// domainSeed mirrors lakegen's name-derived domain seeding.
func domainSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Package experiments implements the reproduction harness: one experiment
// per claim/figure/task of the Model Lakes paper (see DESIGN.md §3 for the
// index). Each experiment generates its workloads, runs the lake-task
// solution against verified ground truth, and returns a printable table;
// cmd/lakebench renders them all and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Experiment is a runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed uint64) (*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "search quality vs documentation completeness", RunE1},
		{"E2", "version-graph reconstruction", RunE2},
		{"E3", "training-data attribution vs leave-one-out", RunE3},
		{"E4", "indexer: HNSW vs exact scan", RunE4},
		{"E5", "membership inference vs overfitting", RunE5},
		{"E6", "card census and documentation generation", RunE6},
		{"E7", "watermarking and citation", RunE7},
		{"E8", "weight-space modeling", RunE8},
		{"E9", "declarative queries (MLQL)", RunE9},
		{"E10", "audit risk propagation", RunE10},
		{"E11", "lifelong benchmarking", RunE11},
		{"E12", "parallel ingest pipeline", RunE12},
		{"E13", "read-path query engine", RunE13},
		{"E14", "write path: group commit and fast rehydrate", RunE14},
		{"E15", "sharded cluster: scatter-gather and failover", RunE15},
		{"E16", "atlas scale: quantized rescore and disk-resident vectors", RunE16},
		{"E17", "keyword search: block-max pruned postings segments", RunE17},
		{"F1", "viewpoint ablation (Figure 1)", RunF1},
	}
}

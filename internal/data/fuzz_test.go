package data

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize is the native fuzz harness for the shared tokenizer. Every
// search modality (card keyword search, document embedding, MLQL text
// predicates, the postings segments) keys off Tokenize, so its invariants
// are load-bearing for bitwise result stability:
//
//   - never panics, for arbitrary (including invalid-UTF-8) input;
//   - every token is non-empty, lower-case, and drawn from [a-z0-9] only —
//     the alphabet the postings term dictionary sorts and delta-encodes;
//   - idempotent: re-tokenizing the joined token stream yields the same
//     tokens, so indexing a reconstructed document can never shift
//     term boundaries;
//   - case-insensitive: input case never changes the token stream.
//
// Additional seeds live in testdata/fuzz/FuzzTokenize. Run with
//
//	go test -run='^$' -fuzz=FuzzTokenize -fuzztime=30s ./internal/data
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"the quick brown fox",
		"Legal Summarization-Model v2.1",
		"  tabs\tand\nnewlines\r\n  ",
		"ALLCAPS MiXeD lower",
		"digits 007 42x7 0",
		"punct!@#$%^&*()_+-=[]{};':\",./<>?",
		"unicode: naïve café 模型 λάκκος Ωmega",
		"emoji 🤖 and zero​width",
		"\x80\xff invalid utf8 \xc3\x28",
		strings.Repeat("a", 1000),
		strings.Repeat("word boundary ", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks := Tokenize(input)
		for i, tok := range toks {
			if tok == "" {
				t.Fatalf("token %d is empty for input %q", i, input)
			}
			for _, r := range tok {
				if !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') {
					t.Fatalf("token %q contains %q outside [a-z0-9] for input %q", tok, r, input)
				}
			}
		}
		joined := strings.Join(toks, " ")
		again := Tokenize(joined)
		if len(again) != len(toks) {
			t.Fatalf("not idempotent: %d tokens re-tokenize to %d for input %q", len(toks), len(again), input)
		}
		for i := range toks {
			if again[i] != toks[i] {
				t.Fatalf("not idempotent: token %d %q -> %q for input %q", i, toks[i], again[i], input)
			}
		}
		if utf8.ValidString(input) {
			upper := Tokenize(strings.ToUpper(input))
			if len(upper) == len(toks) {
				for i := range toks {
					if upper[i] != toks[i] {
						t.Fatalf("case-sensitive: token %d %q vs %q for input %q", i, toks[i], upper[i], input)
					}
				}
			}
			// Length may legitimately differ: ToUpper can map letters like
			// 'ı' into ASCII range, creating tokens lower-case never had.
		}
	})
}

package data

import (
	"strings"

	"modellake/internal/xrand"
)

// TextDomain describes a named topic with signature keywords. Synthetic
// documents mix signature keywords with shared filler words; keyword search
// over model cards keys off these signatures.
type TextDomain struct {
	Name     string
	Keywords []string
}

// StandardTextDomains returns the fixed set of domains used across the
// repository's experiments. The names intentionally mirror the paper's
// running examples (legal summarization, clinical models, ...).
func StandardTextDomains() []TextDomain {
	return []TextDomain{
		{Name: "legal", Keywords: []string{
			"statute", "plaintiff", "defendant", "court", "contract", "tort",
			"jurisdiction", "appeal", "precedent", "clause", "verdict", "counsel"}},
		{Name: "medical", Keywords: []string{
			"diagnosis", "patient", "clinical", "dosage", "symptom", "therapy",
			"oncology", "cardiac", "triage", "pathology", "prescription", "icu"}},
		{Name: "finance", Keywords: []string{
			"equity", "dividend", "portfolio", "hedge", "liquidity", "bond",
			"derivative", "audit", "ledger", "yield", "arbitrage", "solvency"}},
		{Name: "news", Keywords: []string{
			"headline", "reporter", "editorial", "breaking", "coverage", "press",
			"byline", "correspondent", "wire", "scoop", "newsroom", "broadcast"}},
		{Name: "code", Keywords: []string{
			"compiler", "function", "refactor", "syntax", "debug", "runtime",
			"repository", "commit", "interface", "pointer", "mutex", "goroutine"}},
		{Name: "science", Keywords: []string{
			"hypothesis", "experiment", "laboratory", "measurement", "theorem",
			"quantum", "molecule", "catalyst", "isotope", "telescope", "genome", "neuron"}},
		{Name: "sports", Keywords: []string{
			"tournament", "championship", "goalkeeper", "inning", "marathon",
			"playoff", "referee", "roster", "scrimmage", "stadium", "umpire", "dribble"}},
		{Name: "travel", Keywords: []string{
			"itinerary", "passport", "resort", "excursion", "landmark", "visa",
			"airfare", "hostel", "cruise", "backpacking", "souvenir", "layover"}},
	}
}

// fillerWords are domain-neutral tokens mixed into every document.
var fillerWords = []string{
	"the", "model", "data", "system", "value", "result", "input", "output",
	"process", "analysis", "report", "summary", "detail", "section", "item",
	"record", "update", "general", "common", "standard", "quality", "review",
}

// TextDomainByName returns the standard text domain with the given name, or
// false if none exists.
func TextDomainByName(name string) (TextDomain, bool) {
	for _, d := range StandardTextDomains() {
		if d.Name == name {
			return d, true
		}
	}
	return TextDomain{}, false
}

// GenerateDocument produces a synthetic document of nWords for the domain:
// a mixture of the domain's signature keywords (weight keywordFrac) and
// shared filler words.
func GenerateDocument(domain TextDomain, nWords int, keywordFrac float64, rng *xrand.RNG) string {
	words := make([]string, 0, nWords)
	for i := 0; i < nWords; i++ {
		if rng.Float64() < keywordFrac && len(domain.Keywords) > 0 {
			words = append(words, xrand.Pick(rng, domain.Keywords))
		} else {
			words = append(words, xrand.Pick(rng, fillerWords))
		}
	}
	return strings.Join(words, " ")
}

// Tokenize lower-cases and splits text on non-letter characters. It is the
// single tokenizer used by card search, document embedding, and MLQL text
// predicates, so all components agree on token boundaries.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	return fields
}

package data

import (
	"strings"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func TestDomainDeterminism(t *testing.T) {
	a := NewDomain("legal", 8, 3, 42)
	b := NewDomain("legal", 8, 3, 42)
	for c := 0; c < 3; c++ {
		ma, mb := a.Mean(c), b.Mean(c)
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatal("domain means are not deterministic")
			}
		}
	}
}

func TestDomainsDiffer(t *testing.T) {
	a := NewDomain("legal", 8, 3, 42)
	b := NewDomain("medical", 8, 3, 42)
	if tensor.L2Distance(a.Mean(0), b.Mean(0)) < 1e-6 {
		t.Fatal("different domains share class means")
	}
}

func TestSampleShapeAndBalance(t *testing.T) {
	d := NewDomain("x", 4, 3, 1)
	ds := d.Sample("x/v1", 99, 0.5, xrand.New(7))
	if ds.Len() != 99 || ds.Dim() != 4 || ds.NumClasses != 3 {
		t.Fatalf("bad shape: %d x %d, classes %d", ds.Len(), ds.Dim(), ds.NumClasses)
	}
	counts := map[int]int{}
	for _, y := range ds.Y {
		if y < 0 || y >= 3 {
			t.Fatalf("label out of range: %d", y)
		}
		counts[y]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 33 {
			t.Fatalf("class %d has %d examples, want 33", c, counts[c])
		}
	}
}

func TestSampleSeparability(t *testing.T) {
	// Low-noise samples should sit near their class means.
	d := NewDomain("sep", 6, 2, 5)
	ds := d.Sample("sep/v1", 50, 0.1, xrand.New(3))
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		own := tensor.L2Distance(x, d.Mean(y))
		other := tensor.L2Distance(x, d.Mean(1-y))
		if own >= other {
			t.Fatalf("example %d closer to wrong class mean", i)
		}
	}
}

func TestSubsetCopies(t *testing.T) {
	d := NewDomain("s", 3, 2, 9)
	ds := d.Sample("s/v1", 10, 0.2, xrand.New(1))
	sub := ds.Subset([]int{0, 1})
	sub.X.Data[0] = 999
	if ds.X.Data[0] == 999 {
		t.Fatal("Subset aliases parent storage")
	}
}

func TestWithoutIndex(t *testing.T) {
	d := NewDomain("w", 3, 2, 9)
	ds := d.Sample("w/v1", 10, 0.2, xrand.New(1))
	loo := ds.WithoutIndex(4)
	if loo.Len() != 9 {
		t.Fatalf("WithoutIndex length = %d, want 9", loo.Len())
	}
	// Row 4 of the original must not appear (probabilistically distinct rows).
	removed := ds.X.Row(4)
	for i := 0; i < loo.Len(); i++ {
		if tensor.L2Distance(loo.X.Row(i), removed) == 0 {
			t.Fatal("removed row still present")
		}
	}
}

func TestSplit(t *testing.T) {
	d := NewDomain("sp", 3, 2, 9)
	ds := d.Sample("sp/v1", 100, 0.2, xrand.New(1))
	train, test := ds.Split(0.8, xrand.New(2))
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
}

func TestShiftedDomain(t *testing.T) {
	base := NewDomain("base", 8, 3, 11)
	small := base.Shifted("near", 0.1, 1)
	big := base.Shifted("far", 5.0, 2)
	dSmall := tensor.L2Distance(base.Mean(0), small.Mean(0))
	dBig := tensor.L2Distance(base.Mean(0), big.Mean(0))
	if dSmall <= 0 {
		t.Fatal("shifted domain identical to base")
	}
	if dSmall >= dBig {
		t.Fatalf("shift magnitudes not ordered: %v vs %v", dSmall, dBig)
	}
}

func TestDeriveVersionLineage(t *testing.T) {
	d := NewDomain("dv", 4, 2, 13)
	ds := d.Sample("dv/v1", 40, 0.2, xrand.New(1))
	v2 := DeriveVersion(ds, "dv/v2", 0.5, 0.01, xrand.New(2))
	if v2.ParentID != "dv/v1" || v2.ID != "dv/v2" {
		t.Fatalf("lineage not recorded: %q <- %q", v2.ID, v2.ParentID)
	}
	if v2.Len() != 20 {
		t.Fatalf("derived size %d, want 20", v2.Len())
	}
}

func TestDeriveVersionMinimumOneRow(t *testing.T) {
	d := NewDomain("dv2", 4, 2, 13)
	ds := d.Sample("dv2/v1", 3, 0.2, xrand.New(1))
	v2 := DeriveVersion(ds, "dv2/v2", 0.0, 0, xrand.New(2))
	if v2.Len() != 1 {
		t.Fatalf("derived size %d, want 1", v2.Len())
	}
}

func TestProbeSetDeterminism(t *testing.T) {
	a := ProbeSet(8, 16, 7)
	b := ProbeSet(8, 16, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("probe sets differ across calls")
		}
	}
	if a.Rows != 16 || a.Cols != 8 {
		t.Fatalf("probe shape %dx%d", a.Rows, a.Cols)
	}
}

func TestStandardTextDomainsDistinctKeywords(t *testing.T) {
	seen := map[string]string{}
	for _, d := range StandardTextDomains() {
		if len(d.Keywords) < 10 {
			t.Fatalf("domain %s has too few keywords", d.Name)
		}
		for _, k := range d.Keywords {
			if prev, ok := seen[k]; ok {
				t.Fatalf("keyword %q shared by %s and %s", k, prev, d.Name)
			}
			seen[k] = d.Name
		}
	}
}

func TestTextDomainByName(t *testing.T) {
	d, ok := TextDomainByName("legal")
	if !ok || d.Name != "legal" {
		t.Fatal("legal domain not found")
	}
	if _, ok := TextDomainByName("nonexistent"); ok {
		t.Fatal("found a domain that should not exist")
	}
}

func TestGenerateDocumentContainsKeywords(t *testing.T) {
	d, _ := TextDomainByName("legal")
	doc := GenerateDocument(d, 200, 0.6, xrand.New(3))
	found := 0
	for _, k := range d.Keywords {
		if strings.Contains(doc, k) {
			found++
		}
	}
	if found < 5 {
		t.Fatalf("document contains only %d legal keywords", found)
	}
}

func TestGenerateDocumentLength(t *testing.T) {
	d, _ := TextDomainByName("code")
	doc := GenerateDocument(d, 50, 0.5, xrand.New(4))
	if got := len(strings.Fields(doc)); got != 50 {
		t.Fatalf("document has %d words, want 50", got)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The Plaintiff, v2.0 (appeal)!")
	want := []string{"the", "plaintiff", "v2", "0", "appeal"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
}

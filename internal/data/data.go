// Package data generates the synthetic training data that stands in for the
// real-world corpora (legal, medical, ...) referenced by the Model Lakes
// paper. Two kinds of artifacts are produced:
//
//   - Feature datasets: Gaussian-mixture classification problems drawn from a
//     Domain. Each Domain owns stable class means, so models trained on the
//     same domain behave similarly and models trained on different domains
//     are distinguishable — the property the lake-task experiments rely on.
//
//   - Text documents: topic-style bags of words over a shared vocabulary with
//     domain signature keywords, used for model cards and keyword search.
//
// Every dataset carries an ID and lineage so "find models trained on dataset
// X (or a version of X)" queries have ground truth to hit.
package data

import (
	"fmt"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Dataset is a labeled feature dataset. X holds one example per row; Y holds
// class labels in [0, NumClasses).
type Dataset struct {
	ID         string // stable identifier, e.g. "legal/v1"
	ParentID   string // non-empty if this dataset is a derived version
	Domain     string // domain name the examples were drawn from
	X          tensor.Matrix
	Y          []int
	NumClasses int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.X.Rows }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Example returns the i'th feature row (aliasing storage) and label.
func (d *Dataset) Example(i int) (tensor.Vector, int) { return d.X.Row(i), d.Y[i] }

// Subset returns a new dataset containing the rows at the given indices.
// Rows are copied, so the subset is independent of the original.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{
		ID:         d.ID,
		ParentID:   d.ParentID,
		Domain:     d.Domain,
		X:          tensor.NewMatrix(len(indices), d.Dim()),
		Y:          make([]int, len(indices)),
		NumClasses: d.NumClasses,
	}
	for row, idx := range indices {
		copy(out.X.Row(row), d.X.Row(idx))
		out.Y[row] = d.Y[idx]
	}
	return out
}

// WithoutIndex returns a copy of the dataset with example i removed. It is
// the workhorse of exact leave-one-out attribution.
func (d *Dataset) WithoutIndex(i int) *Dataset {
	indices := make([]int, 0, d.Len()-1)
	for j := 0; j < d.Len(); j++ {
		if j != i {
			indices = append(indices, j)
		}
	}
	return d.Subset(indices)
}

// Split partitions the dataset into train and test sets with the given train
// fraction, shuffling with rng.
func (d *Dataset) Split(trainFrac float64, rng *xrand.RNG) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Domain is a stable generative source of classification data. Two samples
// from the same Domain share class means; samples from different domains are
// well separated in feature space.
type Domain struct {
	Name       string
	Dim        int
	NumClasses int
	seed       uint64
	means      []tensor.Vector
}

// NewDomain creates a domain whose class means are deterministic functions of
// (name, dim, numClasses, seed).
func NewDomain(name string, dim, numClasses int, seed uint64) *Domain {
	if dim <= 0 || numClasses <= 0 {
		panic(fmt.Sprintf("data: invalid domain shape dim=%d classes=%d", dim, numClasses))
	}
	rng := xrand.New(seed).Child("domain/" + name)
	means := make([]tensor.Vector, numClasses)
	for c := range means {
		m := tensor.NewVector(dim)
		for i := range m {
			m[i] = rng.NormFloat64() * 2.0
		}
		means[c] = m
	}
	return &Domain{Name: name, Dim: dim, NumClasses: numClasses, seed: seed, means: means}
}

// Mean returns the class-c mean (aliasing internal storage; treat as
// read-only).
func (d *Domain) Mean(c int) tensor.Vector { return d.means[c] }

// Sample draws n labeled examples with isotropic Gaussian noise of the given
// standard deviation around the class means. Labels are balanced round-robin
// then shuffled.
func (d *Domain) Sample(id string, n int, noise float64, rng *xrand.RNG) *Dataset {
	ds := &Dataset{
		ID:         id,
		Domain:     d.Name,
		X:          tensor.NewMatrix(n, d.Dim),
		Y:          make([]int, n),
		NumClasses: d.NumClasses,
	}
	for i := 0; i < n; i++ {
		c := i % d.NumClasses
		ds.Y[i] = c
		row := ds.X.Row(i)
		mean := d.means[c]
		for j := range row {
			row[j] = mean[j] + noise*rng.NormFloat64()
		}
	}
	// Shuffle rows so mini-batches are class-mixed.
	rng.Shuffle(n, func(a, b int) {
		ra, rb := ds.X.Row(a), ds.X.Row(b)
		for j := range ra {
			ra[j], rb[j] = rb[j], ra[j]
		}
		ds.Y[a], ds.Y[b] = ds.Y[b], ds.Y[a]
	})
	return ds
}

// Shifted returns a related domain: same shape, class means perturbed by
// amount (relative to the mean scale). It models domain adaptation targets —
// e.g. "legal" versus "legal-contracts".
func (d *Domain) Shifted(name string, amount float64, seed uint64) *Domain {
	rng := xrand.New(seed).Child("shift/" + name)
	nd := &Domain{Name: name, Dim: d.Dim, NumClasses: d.NumClasses, seed: seed}
	nd.means = make([]tensor.Vector, d.NumClasses)
	for c, m := range d.means {
		nm := m.Clone()
		for i := range nm {
			nm[i] += amount * rng.NormFloat64()
		}
		nd.means[c] = nm
	}
	return nd
}

// DeriveVersion creates a new version of ds: a random subset (keepFrac of the
// rows) with optional feature noise added. The derived dataset records ds as
// its parent, giving dataset-version lineage for lake queries.
func DeriveVersion(ds *Dataset, id string, keepFrac, noise float64, rng *xrand.RNG) *Dataset {
	n := ds.Len()
	keep := int(float64(n) * keepFrac)
	if keep < 1 {
		keep = 1
	}
	perm := rng.Perm(n)
	out := ds.Subset(perm[:keep])
	out.ID = id
	out.ParentID = ds.ID
	if noise > 0 {
		for i := range out.X.Data {
			out.X.Data[i] += noise * rng.NormFloat64()
		}
	}
	return out
}

// ProbeSet returns a deterministic set of n probe inputs of the given
// dimension. All models with the same input dimension are probed with the
// same inputs, which makes behavioural embeddings comparable across the lake.
func ProbeSet(dim, n int, seed uint64) tensor.Matrix {
	rng := xrand.New(seed).Child("probes")
	m := tensor.NewMatrix(n, dim)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 2.0
	}
	return m
}

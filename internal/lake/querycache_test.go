package lake

import (
	"context"
	"fmt"
	"testing"

	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/tensor"
)

func qcHits(ids ...string) []search.Hit {
	out := make([]search.Hit, len(ids))
	for i, id := range ids {
		out[i] = search.Hit{ID: id, Score: float64(i)}
	}
	return out
}

func qcVec(seed int, dim int) tensor.Vector {
	v := make(tensor.Vector, dim)
	for i := range v {
		v[i] = float64(seed*31+i) / 7
	}
	return v
}

func TestQueryCacheHitMissRoundTrip(t *testing.T) {
	c := newQueryCache(8)
	v := qcVec(1, 4)
	if _, ok := c.get("behavior", v, 5); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put("behavior", v, 5, qcHits("a", "b"))
	got, ok := c.get("behavior", v, 5)
	if !ok || len(got) != 2 || got[0].ID != "a" {
		t.Fatalf("get = %v, %v", got, ok)
	}
	// Same vector, different k or space: distinct entries.
	if _, ok := c.get("behavior", v, 6); ok {
		t.Fatal("k is not part of the key")
	}
	if _, ok := c.get("weights", v, 5); ok {
		t.Fatal("space is not part of the key")
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	v1, v2, v3 := qcVec(1, 4), qcVec(2, 4), qcVec(3, 4)
	c.put("s", v1, 1, qcHits("a"))
	c.put("s", v2, 1, qcHits("b"))
	// Touch v1 so v2 becomes least recently used.
	if _, ok := c.get("s", v1, 1); !ok {
		t.Fatal("v1 missing before eviction")
	}
	c.put("s", v3, 1, qcHits("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("s", v2, 1); ok {
		t.Fatal("LRU entry v2 survived eviction")
	}
	if _, ok := c.get("s", v1, 1); !ok {
		t.Fatal("recently used v1 was evicted")
	}
	if _, ok := c.get("s", v3, 1); !ok {
		t.Fatal("newest entry v3 missing")
	}
}

func TestQueryCacheInvalidate(t *testing.T) {
	c := newQueryCache(8)
	for i := 0; i < 5; i++ {
		c.put("s", qcVec(i, 4), 1, qcHits(fmt.Sprint(i)))
	}
	if c.len() != 5 {
		t.Fatalf("len = %d, want 5", c.len())
	}
	c.invalidate()
	if c.len() != 0 {
		t.Fatalf("len after invalidate = %d, want 0", c.len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.get("s", qcVec(i, 4), 1); ok {
			t.Fatalf("entry %d survived invalidate", i)
		}
	}
}

// TestQueryCacheCollisionRejected plants an entry whose stored vector does
// not match the probe vector under the same map key — exactly what an
// FNV-64 collision would produce — and checks get refuses to serve it.
func TestQueryCacheCollisionRejected(t *testing.T) {
	c := newQueryCache(8)
	probe, impostor := qcVec(1, 4), qcVec(2, 4)
	key := c.key("s", probe, 3)
	c.mu.Lock()
	c.entries[key] = c.ll.PushFront(&queryCacheEntry{key: key, vec: impostor, hits: qcHits("wrong")})
	c.mu.Unlock()
	if got, ok := c.get("s", probe, 3); ok {
		t.Fatalf("collision served foreign hits: %v", got)
	}
}

// TestQueryCacheIsolation checks the copy-in/copy-out contract: mutating the
// caller's slices before or after cache operations never reaches the cache.
func TestQueryCacheIsolation(t *testing.T) {
	c := newQueryCache(8)
	v := qcVec(1, 4)
	in := qcHits("a", "b")
	c.put("s", v, 2, in)
	in[0].ID = "mutated-in"
	out1, _ := c.get("s", v, 2)
	if out1[0].ID != "a" {
		t.Fatalf("caller mutation reached the cache: %v", out1)
	}
	out1[1].ID = "mutated-out"
	out2, _ := c.get("s", v, 2)
	if out2[1].ID != "b" {
		t.Fatalf("returned-slice mutation reached the cache: %v", out2)
	}
}

func TestQueryCacheNilSafe(t *testing.T) {
	var c *queryCache
	if _, ok := c.get("s", qcVec(1, 2), 1); ok {
		t.Fatal("nil cache hit")
	}
	c.put("s", qcVec(1, 2), 1, qcHits("a"))
	c.invalidate()
	if h, m := c.stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

// TestLakeQueryCacheEndToEnd exercises the wired-up cache on a real lake:
// repeated searches hit, results are identical to the uncached answer, and
// any ingest invalidates.
func TestLakeQueryCacheEndToEnd(t *testing.T) {
	pop := population(t, 99)
	l, err := Open(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ids := fill(t, l, pop)

	ctx := context.Background()
	first, err := l.SearchByModelContext(ctx, ids[0], "behavior", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := l.QueryCacheStats(); misses == 0 {
		t.Fatal("first search reported no cache miss")
	}
	second, err := l.SearchByModelContext(ctx, ids[0], "behavior", 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := l.QueryCacheStats()
	if hits == 0 {
		t.Fatal("repeated search did not hit the cache")
	}
	if len(first) != len(second) {
		t.Fatalf("cached answer differs in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].ID != second[i].ID || first[i].Score != second[i].Score {
			t.Fatalf("cached hit %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}

	// Ingest invalidates: the next search must miss again.
	missesBefore := func() uint64 { _, m := l.QueryCacheStats(); return m }()
	m0 := pop.Members[0]
	clone := *m0.Model
	clone.ID = ""
	if _, err := l.Ingest(&clone, m0.Card, registry.RegisterOptions{Name: "qc-refresh", Version: "1"}); err != nil {
		t.Fatal(err)
	}
	if l.qcache.len() != 0 {
		t.Fatalf("ingest left %d cache entries", l.qcache.len())
	}
	if _, err := l.SearchByModelContext(ctx, ids[0], "behavior", 5); err != nil {
		t.Fatal(err)
	}
	if missesAfter := func() uint64 { _, m := l.QueryCacheStats(); return m }(); missesAfter <= missesBefore {
		t.Fatal("search after ingest did not miss the invalidated cache")
	}
}

// TestLakeQueryCacheDisabled checks the DisableQueryCache escape hatch.
func TestLakeQueryCacheDisabled(t *testing.T) {
	pop := population(t, 98)
	l, err := Open(Config{Seed: 98, DisableQueryCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ids := fill(t, l, pop)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := l.SearchByModelContext(ctx, ids[0], "behavior", 5); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := l.QueryCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %d hits / %d misses", hits, misses)
	}
}

package lake

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"modellake/internal/search"
	"modellake/internal/tensor"
)

// queryCache is a small invalidate-on-write LRU over content-search results,
// keyed by (embedding space, query-vector hash, k). Repeated related-model
// queries — the dominant read traffic in a serving lake, where popular
// models are queried far more often than the catalog changes — skip the
// index scan entirely. Every write that can change search results (ingest,
// batch ingest, reindex) clears the whole cache: correctness over retention,
// matching the embed cache's philosophy that a cache may only ever be a
// speedup, never a divergence.
//
// Entries store the query vector itself and verify it on lookup, so even an
// FNV-64 collision cannot surface another query's hits.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type queryCacheEntry struct {
	key  string
	vec  tensor.Vector
	hits []search.Hit
}

// defaultQueryCacheCap bounds the cache footprint: 1024 entries × (vector +
// k hits) is a few MiB at typical embedding dims, enough to cover a hot
// working set without mattering to the process RSS.
const defaultQueryCacheCap = 1024

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = defaultQueryCacheCap
	}
	return &queryCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// key folds the space, k, and an FNV-64a hash of the vector's float bits
// into the map key. The stored vector disambiguates hash collisions.
func (c *queryCache) key(space string, v tensor.Vector, k int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return space + ":" + strconv.Itoa(k) + ":" + strconv.FormatUint(h.Sum64(), 16)
}

func vecEqual(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// get returns the cached raw hits for (space, v, k), or ok=false. The
// returned slice is a copy: callers truncate and filter it freely without
// corrupting the cached entry.
func (c *queryCache) get(space string, v tensor.Vector, k int) ([]search.Hit, bool) {
	if c == nil {
		return nil, false
	}
	key := c.key(space, v, k)
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		ent := el.Value.(*queryCacheEntry)
		if vecEqual(ent.vec, v) {
			c.ll.MoveToFront(el)
			out := make([]search.Hit, len(ent.hits))
			copy(out, ent.hits)
			c.mu.Unlock()
			c.hits.Add(1)
			return out, true
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put stores the raw hits for (space, v, k), evicting the least recently
// used entry when full. The vector and hits are copied in, so later caller
// mutations cannot reach the cache.
func (c *queryCache) put(space string, v tensor.Vector, k int, hits []search.Hit) {
	if c == nil {
		return
	}
	key := c.key(space, v, k)
	stored := make([]search.Hit, len(hits))
	copy(stored, hits)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*queryCacheEntry).hits = stored
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&queryCacheEntry{key: key, vec: v.Clone(), hits: stored})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*queryCacheEntry).key)
	}
}

// invalidate empties the cache. Called on every index-mutating write.
func (c *queryCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	c.mu.Unlock()
}

// stats reports lifetime hits and misses.
func (c *queryCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// len reports the current entry count.
func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package lake

// Lake-level contract for disk-resident keyword postings (DESIGN.md §13):
// the knob is validated, answers are bitwise-identical to the in-memory map
// scorer, reopened lakes adopt published segments only when their per-doc
// text CRCs still match the registry's cards, and damaged or deleted segment
// files are pure acceleration state — reopen rebuilds from cards and every
// answer stays identical.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/search"
)

// kwQueries exercises common terms, rare terms, multi-token mixes, and a
// token that matches nothing.
var kwQueries = []string{
	"legal statute court",
	"medical clinical",
	"finance model",
	"transformer",
	"nonexistenttoken42",
	"legal legal court",
}

func collectKeyword(t *testing.T, l *Lake, k int) map[string][]search.Hit {
	t.Helper()
	out := map[string][]search.Hit{}
	for _, q := range kwQueries {
		hits, err := l.SearchKeywordContext(context.Background(), q, k)
		if err != nil {
			t.Fatalf("SearchKeyword(%q): %v", q, err)
		}
		out[q] = hits
	}
	return out
}

func TestDiskResidentPostingsConfigValidation(t *testing.T) {
	if _, err := Open(Config{DiskResidentPostings: true}); err == nil {
		t.Fatal("Open accepted DiskResidentPostings without Dir")
	} else if !strings.Contains(err.Error(), "requires Dir") {
		t.Fatalf("error %q does not mention requires Dir", err)
	}
}

// TestDiskPostingsLakeMatchesMapScorer ingests one population into a plain
// in-memory lake and a disk-resident-postings lake (with a tiny merge
// threshold so segments actually form at test sizes, plus mid-stream card
// replacements to force demotions) and requires bitwise-identical keyword
// answers — then again after a reopen that adopts the published segments,
// and again after every flavour of segment-file damage.
func TestDiskPostingsLakeMatchesMapScorer(t *testing.T) {
	pop := population(t, 91)
	plain, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	dir := t.TempDir()
	cfg := Config{Dir: dir, Seed: 1, DiskResidentPostings: true, KeywordMergeThreshold: 3}
	disk, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pIDs := fill(t, plain, pop)
	dIDs := fill(t, disk, pop)

	// Replace a few cards in both lakes: in the disk lake some of these
	// documents are already segment-resident, so the replace exercises the
	// demote path while the plain lake just overwrites a map entry.
	for _, i := range []int{0, 3, 7} {
		for _, pair := range []struct {
			l   *Lake
			ids map[int]string
		}{{plain, pIDs}, {disk, dIDs}} {
			c, err := pair.l.Card(pair.ids[i])
			if err != nil {
				t.Fatal(err)
			}
			c.Description = c.Description + " revised statute edition"
			if err := pair.l.PutCard(pair.ids[i], c); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Same seed, same ingest order: lake IDs are deterministic, so the two
	// lakes' answers must agree down to IDs, order, and score bits.
	compare := func(label string, got, want map[string][]search.Hit) {
		t.Helper()
		for q, wh := range want {
			sameHits(t, label+" "+q, got[q], wh)
		}
	}

	want := collectKeyword(t, plain, 5)
	nonEmpty := 0
	for _, hits := range want {
		if len(hits) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no query matched; fixture is vacuous")
	}
	compare("live", collectKeyword(t, disk, 5), want)
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "postings", "kw-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no postings segments published (err=%v); merge never ran", err)
	}

	damage := []struct {
		name string
		do   func(t *testing.T)
	}{
		{"pristine adopt", func(t *testing.T) {}},
		{"flipped byte", func(t *testing.T) {
			b, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x20
			if err := os.WriteFile(segs[0], b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T) {
			b, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segs[0], b[:len(b)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"deleted", func(t *testing.T) {
			if err := os.RemoveAll(filepath.Join(dir, "postings")); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		d.do(t)
		re, err := Open(cfg)
		if err != nil {
			t.Fatalf("%s: reopen: %v", d.name, err)
		}
		compare(d.name, collectKeyword(t, re, 5), want)

		// A card update after reopen must land in the keyword index even
		// when the document arrived via segment adoption.
		probe := dIDs[1]
		c, err := re.Card(probe)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		c.Description = c.Description + " zanzibar"
		if err := re.PutCard(probe, c); err != nil {
			t.Fatalf("%s: PutCard after reopen: %v", d.name, err)
		}
		hits, err := re.SearchKeywordContext(context.Background(), "zanzibar", 3)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if len(hits) != 1 || hits[0].ID != probe {
			t.Fatalf("%s: post-reopen card update not searchable: %+v", d.name, hits)
		}
		// Undo so the next damage round compares against the same corpus.
		c.Description = strings.TrimSuffix(c.Description, " zanzibar")
		if err := re.PutCard(probe, c); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		compare(d.name+" after undo", collectKeyword(t, re, 5), want)
		if err := re.Close(); err != nil {
			t.Fatalf("%s: close: %v", d.name, err)
		}
	}
}

// TestStalePostingsSegmentNotAdopted edits a card while the lake is closed —
// writing through a second lake handle on the same store would be the
// realistic path, but simplest is to publish segments, reopen, edit, close,
// and corrupt-check: after the edit the published segment no longer matches
// the card CRC for that doc, so the NEXT reopen must reject that shard's
// segment and serve the fresh text.
func TestStalePostingsSegmentNotAdopted(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Seed: 1, DiskResidentPostings: true, KeywordMergeThreshold: 2}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := population(t, 55)
	ids := fill(t, l, pop)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and edit one card. Close WITHOUT relying on Flush rewriting
	// every shard: delete the postings dir snapshot taken before the edit
	// is deliberately NOT done — the point is the on-disk segment from the
	// first run may now be stale for this doc.
	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := ids[2]
	c, err := l.Card(probe)
	if err != nil {
		t.Fatal(err)
	}
	c.Description = c.Description + " quetzal"
	if err := l.PutCard(probe, c); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	hits, err := l.SearchKeywordContext(context.Background(), "quetzal", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != probe {
		t.Fatalf("edited card not served after reopen: %+v", hits)
	}
}

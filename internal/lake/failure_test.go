package lake

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/registry"
)

// Failure injection: the lake must degrade loudly, not silently, when its
// storage is damaged underneath it.

func TestOpenRejectsCorruptMetadataLog(t *testing.T) {
	dir := t.TempDir()
	{
		l, err := Open(Config{Dir: dir, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pop := population(t, 501)
		fill(t, l, pop)
		l.Close()
	}
	logPath := filepath.Join(dir, "lake.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the log.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Seed: 1}); err == nil {
		t.Fatal("corrupt metadata log opened silently")
	}
}

func TestOpenSurvivesTornMetadataTail(t *testing.T) {
	dir := t.TempDir()
	var total int
	{
		l, err := Open(Config{Dir: dir, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pop := population(t, 502)
		fill(t, l, pop)
		total = l.Count()
		l.Close()
	}
	logPath := filepath.Join(dir, "lake.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut a few bytes off the end (simulates a crash mid-append). The last
	// record(s) may be lost but the lake must open.
	if err := os.WriteFile(logPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Dir: dir, Seed: 1})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer l.Close()
	if l.Count() == 0 || l.Count() > total {
		t.Fatalf("implausible count after torn tail: %d (was %d)", l.Count(), total)
	}
}

func TestTamperedWeightsDetectedOnLoad(t *testing.T) {
	dir := t.TempDir()
	var id string
	{
		l, err := Open(Config{Dir: dir, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pop := population(t, 503)
		ids := fill(t, l, pop)
		id = ids[0]
		l.Close()
	}
	// Overwrite every blob with poison (PoisonGPT weight swap).
	blobDir := filepath.Join(dir, "blobs")
	err := filepath.Walk(blobDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("poisoned weights"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	// With the integrity sweep requested, rehydration must fail loudly:
	// the checksum no longer matches.
	if _, err := Open(Config{Dir: dir, Seed: 1, VerifyBlobsOnOpen: true}); err == nil {
		t.Fatal("tampered weights loaded silently")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampering surfaced as the wrong error: %v", err)
	}
	// The default fast reopen defers content verification to first use:
	// Open succeeds (the blobs still exist), but loading the tampered
	// model must fail its checksum before any poisoned bytes are decoded.
	l, err := Open(Config{Dir: dir, Seed: 1})
	if err != nil {
		t.Fatalf("fast reopen with tampered-but-present blobs: %v", err)
	}
	defer l.Close()
	if _, err := l.Model(id); err == nil {
		t.Fatal("tampered model loaded silently on first use")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("first-use tampering surfaced as the wrong error: %v", err)
	}
}

func TestMissingBlobSurfacedAsError(t *testing.T) {
	dir := t.TempDir()
	var id string
	{
		l, err := Open(Config{Dir: dir, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		pop := population(t, 504)
		ids := fill(t, l, pop)
		id = ids[0]
		l.Close()
	}
	if err := os.RemoveAll(filepath.Join(dir, "blobs")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Seed: 1}); err == nil {
		t.Fatal("missing blobs opened silently")
	}
	_ = id
}

func TestIngestAfterCloseFails(t *testing.T) {
	l, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	pop := population(t, 505)
	if _, err := l.Ingest(pop.Members[0].Model, pop.Members[0].Card,
		registry.RegisterOptions{Name: "late"}); err == nil {
		t.Fatal("ingest after close succeeded")
	}
}

package lake

// Persisted index vectors. Alongside every open-weights registration the
// lake stores the model's content-search embeddings under vec/<id>, in the
// same atomic kvstore batch as the registry record itself. Rehydration then
// rebuilds the ANN indexes straight from the (already replayed, in-memory)
// metadata log: no record re-decode, no weight decode, no re-embedding, and
// no per-model cache-file IO — only the weights-blob checksum verification
// remains per model. The record carries the embedding namespace (every
// config knob that changes embedder output) plus per-space embedder names,
// so a lake reopened with different embedding parameters ignores the stale
// vectors and falls back to decode-and-embed for that model.

import (
	"encoding/binary"
	"fmt"
	"math"

	"modellake/internal/tensor"
)

const (
	vecPrefix     = "vec/"
	vecRecVersion = 1
)

func vecKey(id string) string { return vecPrefix + id }

// spaceVec is one embedding-space entry of a vec record: the embedder name
// ("behavior", "weight") and the vector it produced for the model.
type spaceVec struct {
	Space string
	Vec   tensor.Vector
}

// encodeVecRecord serializes the vectors with their namespace:
//
//	[u8 version][u16 nsLen][ns][u8 spaceCount]
//	per space: [u8 nameLen][name][u32 dim][dim × f64 little-endian]
//
// Binary rather than JSON because vec records are the bulk of every
// registration batch (a few KB of float64s per model) and are decoded for
// every model on every reopen.
func encodeVecRecord(ns string, vecs []spaceVec) []byte {
	size := 1 + 2 + len(ns) + 1
	for _, sv := range vecs {
		size += 1 + len(sv.Space) + 4 + 8*len(sv.Vec)
	}
	b := make([]byte, 0, size)
	b = append(b, vecRecVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ns)))
	b = append(b, ns...)
	b = append(b, byte(len(vecs)))
	for _, sv := range vecs {
		b = append(b, byte(len(sv.Space)))
		b = append(b, sv.Space...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sv.Vec)))
		for _, f := range sv.Vec {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	}
	return b
}

// decodeVecRecord parses an encodeVecRecord payload. Unknown versions and
// truncated records are errors — callers treat any decode failure as "no
// cached vectors" and fall back to re-embedding, so a corrupt or
// future-format record degrades to the slow path instead of failing Open.
func decodeVecRecord(b []byte) (ns string, vecs []spaceVec, err error) {
	fail := func() (string, []spaceVec, error) {
		return "", nil, fmt.Errorf("lake: malformed vec record")
	}
	if len(b) < 4 || b[0] != vecRecVersion {
		return fail()
	}
	nsLen := int(binary.LittleEndian.Uint16(b[1:3]))
	p := 3
	if len(b) < p+nsLen+1 {
		return fail()
	}
	ns = string(b[p : p+nsLen])
	p += nsLen
	count := int(b[p])
	p++
	vecs = make([]spaceVec, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < p+1 {
			return fail()
		}
		nameLen := int(b[p])
		p++
		if len(b) < p+nameLen+4 {
			return fail()
		}
		name := string(b[p : p+nameLen])
		p += nameLen
		dim := int(binary.LittleEndian.Uint32(b[p : p+4]))
		p += 4
		if dim < 0 || len(b) < p+8*dim {
			return fail()
		}
		v := make(tensor.Vector, dim)
		for j := 0; j < dim; j++ {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[p : p+8]))
			p += 8
		}
		vecs = append(vecs, spaceVec{Space: name, Vec: v})
	}
	if p != len(b) {
		return fail()
	}
	return ns, vecs, nil
}

package lake

// Shard-addressable surface. A cluster router (internal/cluster) composes
// lakes out of these primitives:
//
//   - WAL shipping passthroughs (WALOffset/WALNotify/ReadWAL/ApplyWAL) turn
//     any durable lake into a replication leader or follower. ApplyWAL is
//     the follower half: it lands the shipped page in the local kvstore and
//     then refreshes the in-memory indexes from the applied ops, so a
//     replica serves vector, keyword, and MLQL reads without ever taking a
//     write of its own.
//   - Scatter-gather read primitives (EmbedModelQuery, SearchByVectorSpace,
//     KeywordStatsFor, SearchKeywordWithStats, ScoresAbove, Catalog) expose
//     the per-shard halves of cluster-wide searches, factored so the router
//     can merge per-shard answers into results bitwise-identical to a
//     single-node lake over the union (see internal/cluster).

import (
	"context"
	"errors"
	"strings"
	"time"

	"modellake/internal/kvstore"
	"modellake/internal/mlql"
	"modellake/internal/provenance"
	"modellake/internal/search"
	"modellake/internal/tensor"
)

// WALOffset returns the durable end offset of the lake's metadata log — the
// replication cursor. Zero for in-memory lakes.
func (l *Lake) WALOffset() int64 { return l.kv.CommitOffset() }

// WALNotify returns the kvstore's coalesced commit-notification channel, so
// a shipper can block until there may be new log bytes instead of polling.
func (l *Lake) WALNotify() <-chan struct{} { return l.kv.CommitNotify() }

// ReadWAL returns committed metadata-log bytes from offset from, trimmed to
// whole records and about maxBytes — the leader half of WAL shipping.
func (l *Lake) ReadWAL(from int64, maxBytes int) ([]byte, error) {
	return l.kv.ReadLogRange(from, maxBytes)
}

// ApplyWAL applies a page shipped from this lake's leader: the kvstore
// validates and lands it (log append + fsync + map apply, exactly like a
// local commit), and then the in-memory search indexes absorb the new state.
// The blob store is shared with the leader (Config.BlobDir), so metadata is
// the only thing that ships.
//
// Index updates mirror commitIngest: vec/<id> records feed the content
// indexes (models become searchable by vector the moment their registration
// applies), card/<id> records feed the keyword index, and model/<id> records
// invalidate the caches that derive from the registry. The task-search
// roster takes the same lazy path rehydration uses — handles load on the
// replica's first task search, not on every shipped page.
func (l *Lake) ApplyWAL(page []byte) error {
	recs, err := kvstore.DecodePage(page)
	if err != nil {
		return err
	}
	if err := l.kv.ApplyPage(page); err != nil {
		return err
	}
	for _, ops := range recs {
		for i := range ops {
			l.applyReplicatedOp(&ops[i])
		}
	}
	l.qcache.invalidate()
	return nil
}

// applyReplicatedOp updates the in-memory indexes for one already-applied
// op. It runs after the whole page landed in the kvstore, so registry reads
// here see every key the op's batch carried.
func (l *Lake) applyReplicatedOp(op *kvstore.Op) {
	switch {
	case strings.HasPrefix(op.Key, vecPrefix):
		if op.Delete {
			return
		}
		id := op.Key[len(vecPrefix):]
		ns, vecs, err := decodeVecRecord(op.Value)
		if err != nil || ns != l.vecNS {
			return
		}
		for _, sv := range vecs {
			switch sv.Space {
			case l.behaviorCS.EmbedderName():
				if err := l.behaviorCS.AddVector(id, sv.Vec); err == nil {
					l.mu.Lock()
					l.taskPending = append(l.taskPending, id)
					l.taskReady = false
					l.mu.Unlock()
				}
			case l.weightCS.EmbedderName():
				_ = l.weightCS.AddVector(id, sv.Vec)
			}
		}
	case strings.HasPrefix(op.Key, "card/"):
		id := op.Key[len("card/"):]
		if op.Delete {
			_ = l.keyword.Remove(id)
			return
		}
		if c, err := l.reg.Card(id); err == nil {
			_ = l.keyword.Add(id, c.Text())
		}
	case strings.HasPrefix(op.Key, "model/"):
		id := op.Key[len("model/"):]
		l.mu.Lock()
		delete(l.modelCache, id) // reload lazily from the replicated record
		l.graph = nil            // population changed: cached version graph is stale
		l.mu.Unlock()
	}
}

// WALEpoch returns the replication leadership epoch last seen in the lake's
// metadata log — zero until some leader of this log's history was promoted.
func (l *Lake) WALEpoch() uint64 { return l.kv.Epoch() }

// BumpWALEpoch durably stamps a new leadership epoch into the metadata log
// (see kvstore.BumpEpoch). A promoted leader calls it immediately after
// Promote, so the stamp's byte offset marks the exact point up to which a
// deposed leader's history is authoritative.
func (l *Lake) BumpWALEpoch(epoch uint64) error { return l.kv.BumpEpoch(epoch) }

// Promote flips a Follower replica into a write-accepting leader after the
// cluster layer has fully caught it up with the dead leader's log. Two
// things distinguish a follower from a leader inside the lake itself, and
// both flip here: per-commit fsync (replicas run Sync:false and re-ship
// after a crash; a leader's acks must be durable, so sync restores the
// template's setting) and the benchmark score cache (redirected to private
// memory on a follower so the log stays a byte prefix of its leader's;
// re-pointed at the durable store now that this log IS the authoritative
// history). Everything else — indexes, registry, blob store — is already
// identical to the dead leader's state by the catch-up invariant.
func (l *Lake) Promote(sync bool) error {
	if !l.cfg.Follower {
		return errors.New("lake: Promote called on a lake that is not a follower")
	}
	l.cfg.Follower = false
	l.kv.SetSync(sync)
	l.runner.SetStore(l.kv)
	return nil
}

// EmbedModelQuery embeds lake model id into the named content space — the
// owner-shard half of a cluster model-as-query search, split from the scan
// so the query vector can fan out to every shard.
func (l *Lake) EmbedModelQuery(id, space string) (tensor.Vector, error) {
	cs, err := l.contentSearcher(space)
	if err != nil {
		return nil, err
	}
	h, err := l.Model(id)
	if err != nil {
		return nil, err
	}
	return cs.EmbedQuery(h)
}

// SearchByVectorSpace is the raw per-shard scan behind cluster
// scatter-gather: the local top-k by vector in the named space, with no
// self-exclusion (the router excludes the query model after merging). It
// shares the query-result cache with the single-node read path — same
// space-normalized key, same raw hits.
func (l *Lake) SearchByVectorSpace(ctx context.Context, space string, v tensor.Vector, k int) ([]search.Hit, error) {
	defer mSearchDurs("vector").Since(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cs, err := l.contentSearcher(space)
	if err != nil {
		return nil, err
	}
	cacheSpace := space
	if cacheSpace == "" {
		cacheSpace = "behavior"
	}
	raw, ok := l.qcache.get(cacheSpace, v, k)
	if !ok {
		raw, err = cs.SearchByVectorContext(ctx, v, k)
		if err != nil {
			return nil, err
		}
		l.qcache.put(cacheSpace, v, k, raw)
	}
	return raw, nil
}

// KeywordStatsFor returns this lake's BM25 corpus statistics for an
// already-tokenized query — phase one of an exact cluster keyword search.
func (l *Lake) KeywordStatsFor(tokens []string) search.KeywordStats {
	l.ensureKeyword()
	return l.keyword.Stats(tokens)
}

// SearchKeywordWithStats ranks this lake's documents under cluster-global
// BM25 statistics — phase two of an exact cluster keyword search. The only
// error source is a failed block read on a disk-resident postings segment.
func (l *Lake) SearchKeywordWithStats(query string, g search.KeywordStats, k int) ([]search.Hit, error) {
	l.ensureKeyword()
	return l.keyword.SearchWithStats(query, g, k)
}

// ScoresAbove returns the IDs of this lake's models scoring strictly above
// baseline on bench, skipping excludeID and (like the single-node catalog)
// models the benchmark cannot run on — the per-shard half of a cluster
// OUTPERFORMS query, with the baseline computed once on the owner shard.
func (l *Lake) ScoresAbove(bench string, baseline float64, excludeID string) (map[string]bool, error) {
	recs, err := l.Records()
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, rec := range recs {
		if rec.ID == excludeID {
			continue
		}
		s, err := l.Score(rec.ID, bench)
		if err != nil {
			continue
		}
		if s > baseline {
			out[rec.ID] = true
		}
	}
	return out, nil
}

// Catalog exposes the lake's MLQL catalog adapter, so a cluster router can
// delegate per-shard catalog primitives (candidate rows, lineage closure,
// benchmark ranking) to each shard and merge.
func (l *Lake) Catalog() mlql.Catalog { return (*catalog)(l) }

// ProvenanceWhy explains an entity from the provenance journal — the
// routable form of Provenance().Why for servers that may front a cluster
// rather than a single lake.
func (l *Lake) ProvenanceWhy(entity string) (*provenance.Explanation, error) {
	return l.prov.Why(entity)
}

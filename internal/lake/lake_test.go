package lake

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"time"

	"modellake/internal/benchmark"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/version"
)

// fill ingests a generated population into a lake, registering datasets and
// one benchmark per base domain. Returns member-index → lake ID.
func fill(t *testing.T, l *Lake, pop *lakegen.Population) map[int]string {
	t.Helper()
	for _, ds := range pop.Datasets {
		l.RegisterDataset(ds)
	}
	ids := map[int]string{}
	for i, m := range pop.Members {
		rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{
			Name: m.Truth.Name, Version: "1",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			l.RegisterBenchmark(&benchmark.Benchmark{
				ID:     "bench-" + m.Truth.Domain,
				DS:     pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	return ids
}

func population(t *testing.T, seed uint64) *lakegen.Population {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = 3
	s.ChildrenPerBase = 4
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestEndToEndPipeline(t *testing.T) {
	// The Figure 2 walk: ingest → index → search → ranked models → version
	// graph → docgen → citation → audit.
	l, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 401)
	ids := fill(t, l, pop)
	if l.Count() != len(pop.Members) {
		t.Fatalf("Count = %d, want %d", l.Count(), len(pop.Members))
	}

	// Keyword search finds documented legal models.
	hits := l.SearchKeyword("legal statute court", 5)
	if len(hits) == 0 {
		t.Fatal("keyword search found nothing")
	}

	// Model-as-query search returns same-family models first.
	var legalBase int
	for i, m := range pop.Members {
		if m.Truth.Depth == 0 && m.Truth.Domain == "legal" {
			legalBase = i
		}
	}
	related, err := l.SearchByModel(ids[legalBase], "behavior", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(related) == 0 {
		t.Fatal("related-model search found nothing")
	}

	// Task search: the best model for legal data is from the legal family.
	legalDS := pop.Datasets[pop.Members[legalBase].Truth.DatasetID]
	taskHits, err := l.SearchTask(search.DatasetAsTask(legalDS, 16), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(taskHits) == 0 {
		t.Fatal("task search found nothing")
	}

	// Version graph covers all models.
	g, err := l.VersionGraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != len(pop.Members) {
		t.Fatalf("graph has %d nodes, want %d", len(g.Nodes), len(pop.Members))
	}

	// Citation is stable until the lake changes.
	c1, err := l.Cite(ids[legalBase])
	if err != nil {
		t.Fatal(err)
	}
	c2, err := l.Cite(ids[legalBase])
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("citation not stable")
	}
	if !strings.Contains(c1.String(), "legal-base") {
		t.Fatalf("citation = %q", c1.String())
	}

	// Docgen drafts a card for a model.
	draft, err := l.GenerateCard(ids[legalBase])
	if err != nil {
		t.Fatal(err)
	}
	if draft.Card.Architecture == "" {
		t.Fatal("draft missing architecture")
	}

	// Audit runs cleanly.
	rep, err := l.Audit(ids[legalBase], nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelID != ids[legalBase] {
		t.Fatal("audit wrong model")
	}
}

func TestIngestInvalidatesGraphAndCitation(t *testing.T) {
	l, err := Open(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 402)
	ids := fill(t, l, pop)
	c1, err := l.Cite(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Ingest one more model: the graph (and hence citations) must change.
	extra := population(t, 403)
	if _, err := l.Ingest(extra.Members[0].Model, extra.Members[0].Card,
		registry.RegisterOptions{Name: "late-arrival"}); err != nil {
		t.Fatal(err)
	}
	c2, err := l.Cite(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if c1.GraphHash == c2.GraphHash {
		t.Fatal("citation hash unchanged after lake update")
	}
}

func TestQueryTrainedOn(t *testing.T) {
	l, err := Open(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 404)
	ids := fill(t, l, pop)

	// Ground truth: members whose card (declared data) names the base
	// legal dataset or a version of it.
	var base *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 && m.Truth.Domain == "legal" {
			base = m
		}
	}
	res, err := l.Query(fmt.Sprintf("FIND MODELS WHERE TRAINED ON DATASET '%s'", base.Truth.DatasetID))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, h := range res.Hits {
		found[h.ID] = true
	}
	for i, m := range pop.Members {
		declared := m.Card.TrainingData == base.Truth.DatasetID
		if declared && !found[ids[i]] {
			t.Fatalf("member %d declared-trained on %s but missing", i, base.Truth.DatasetID)
		}
		if !declared && found[ids[i]] {
			t.Fatalf("member %d not trained on %s but returned", i, base.Truth.DatasetID)
		}
	}

	// VERSIONS OF must be a superset.
	resV, err := l.Query(fmt.Sprintf("FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET '%s'", base.Truth.DatasetID))
	if err != nil {
		t.Fatal(err)
	}
	if len(resV.Hits) < len(res.Hits) {
		t.Fatalf("VERSIONS OF returned fewer hits (%d) than exact (%d)", len(resV.Hits), len(res.Hits))
	}
}

func TestQueryOutperforms(t *testing.T) {
	l, err := Open(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 405)
	ids := fill(t, l, pop)
	var base *lakegen.Member
	var baseIdx int
	for i, m := range pop.Members {
		if m.Truth.Depth == 0 && m.Truth.Domain == "medical" {
			base, baseIdx = m, i
		}
	}
	bench := "bench-" + base.Truth.Domain
	q := fmt.Sprintf("FIND MODELS WHERE OUTPERFORMS MODEL '%s' ON BENCHMARK '%s'", ids[baseIdx], bench)
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Verify every returned model really does score higher.
	baseScore, err := l.Score(ids[baseIdx], bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		s, err := l.Score(h.ID, bench)
		if err != nil {
			t.Fatal(err)
		}
		if s <= baseScore {
			t.Fatalf("%s returned but scores %v <= %v", h.ID, s, baseScore)
		}
	}
}

func TestQueryRankBySimilarity(t *testing.T) {
	l, err := Open(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 406)
	ids := fill(t, l, pop)
	q := fmt.Sprintf("FIND MODELS RANK BY SIMILARITY TO MODEL '%s' USING BEHAVIOR LIMIT 3", ids[0])
	res, err := l.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestQueryDomainFilter(t *testing.T) {
	l, err := Open(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 407)
	ids := fill(t, l, pop)
	res, err := l.Query("FIND MODELS WHERE DOMAIN = 'legal'")
	if err != nil {
		t.Fatal(err)
	}
	returned := map[string]bool{}
	for _, h := range res.Hits {
		returned[h.ID] = true
	}
	for i, m := range pop.Members {
		wantIn := m.Card.Domain == "legal"
		if wantIn != returned[ids[i]] {
			t.Fatalf("member %d (card domain %q): in result = %v", i, m.Card.Domain, returned[ids[i]])
		}
	}
}

func TestDurableLakeReopens(t *testing.T) {
	dir := t.TempDir()
	pop := population(t, 408)
	var firstID string
	{
		l, err := Open(Config{Dir: dir, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ids := fill(t, l, pop)
		firstID = ids[0]
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, err := Open(Config{Dir: dir, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Count() != len(pop.Members) {
		t.Fatalf("reopened count = %d, want %d", l.Count(), len(pop.Members))
	}
	// All search modalities still work after rehydration.
	if hits := l.SearchKeyword("legal", 3); len(hits) == 0 {
		t.Fatal("keyword index not rehydrated")
	}
	if _, err := l.SearchByModel(firstID, "behavior", 3); err != nil {
		t.Fatalf("behaviour index not rehydrated: %v", err)
	}
	if _, err := l.VersionGraph(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedWeightsModelBehaviourSearchable(t *testing.T) {
	l, err := Open(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 409)
	// Ingest the first base with withheld weights.
	m := pop.Members[0]
	rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{
		Name: m.Truth.Name, WithholdWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// It cannot be loaded as weights...
	if _, err := l.Record(rec.ID); err != nil {
		t.Fatal(err)
	}
	// ...but the live handle still answers behavioural search this session.
	for _, other := range pop.Members[1:3] {
		if _, err := l.Ingest(other.Model, other.Card, registry.RegisterOptions{Name: other.Truth.Name}); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := l.SearchByModel(rec.ID, "behavior", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("closed-weights model not behaviour-searchable")
	}
}

func TestScoreUnknownBenchmark(t *testing.T) {
	l, err := Open(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 410)
	ids := fill(t, l, pop)
	if _, err := l.Score(ids[0], "no-such-bench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := l.Score("m-999999", "bench-legal"); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("unknown model: %v", err)
	}
}

func TestProvenanceRecordedOnIngest(t *testing.T) {
	l, err := Open(Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 411)
	base := pop.Members[0]
	baseRec, err := l.Ingest(base.Model, base.Card, registry.RegisterOptions{Name: base.Truth.Name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Provenance().Get("model:" + baseRec.ID); err != nil {
		t.Fatalf("model entity not journaled: %v", err)
	}

	// A child with declared history gets activity + derivation edges.
	child := pop.Members[1]
	child.Model.Hist = &model.History{
		DatasetID:      child.Truth.DatasetID,
		DatasetDomain:  child.Truth.Domain,
		Transformation: child.Truth.Transform,
		BaseModelIDs:   []string{baseRec.ID},
	}
	childRec, err := l.Ingest(child.Model, child.Card, registry.RegisterOptions{Name: child.Truth.Name})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := l.Provenance().Why("model:" + childRec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Activity == "" {
		t.Fatal("child activity not journaled")
	}
	if len(ex.UsedInputs) == 0 {
		t.Fatal("training dataset not journaled as used input")
	}
	sources, err := l.Provenance().Sources("model:" + childRec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 || sources[0] != "model:"+baseRec.ID {
		t.Fatalf("derivation sources = %v", sources)
	}
}

func TestHybridSearch(t *testing.T) {
	l, err := Open(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 412)
	ids := fill(t, l, pop)
	hits, err := l.SearchHybrid("legal statute", ids[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("hybrid search found nothing")
	}
	if _, err := l.SearchHybrid("", "", 5); err == nil {
		t.Fatal("empty hybrid query accepted")
	}
}

func TestAuditRefutesFalseTrainingClaim(t *testing.T) {
	l, err := Open(Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	pop := population(t, 413)
	ids := fill(t, l, pop)

	// Find a base and a model from a different family, then lie: claim the
	// foreign model was trained on the base's dataset.
	var base, foreign int
	for i, m := range pop.Members {
		if m.Truth.Depth == 0 {
			if m.Truth.Domain == "legal" {
				base = i
			} else if m.Truth.Domain == "medical" {
				foreign = i
			}
		}
	}
	lyingCard, err := l.Card(ids[foreign])
	if err != nil {
		t.Fatal(err)
	}
	lyingCard.TrainingData = pop.Members[base].Truth.DatasetID
	if err := l.PutCard(ids[foreign], lyingCard); err != nil {
		t.Fatal(err)
	}
	rep, err := l.Audit(ids[foreign], nil)
	if err != nil {
		t.Fatal(err)
	}
	foundA6 := false
	for _, f := range rep.Findings {
		if f.ID == "A6" {
			foundA6 = true
		}
	}
	if !foundA6 {
		t.Fatalf("false training claim not refuted; findings: %+v", rep.Findings)
	}

	// The honest base passes A6.
	repBase, err := l.Audit(ids[base], nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range repBase.Findings {
		if f.ID == "A6" {
			t.Fatal("honest claim refuted")
		}
	}
}

func TestDatasetLineageSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	pop := population(t, 414)
	var base *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 && m.Truth.Domain == "legal" {
			base = m
		}
	}
	var wantHits int
	{
		l, err := Open(Config{Dir: dir, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		fill(t, l, pop)
		res, err := l.Query(fmt.Sprintf(
			"FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET '%s'", base.Truth.DatasetID))
		if err != nil {
			t.Fatal(err)
		}
		wantHits = len(res.Hits)
		l.Close()
	}
	// Reopen WITHOUT re-registering datasets: the version closure must come
	// from the persisted lineage.
	l, err := Open(Config{Dir: dir, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.Query(fmt.Sprintf(
		"FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET '%s'", base.Truth.DatasetID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != wantHits {
		t.Fatalf("version-closure hits after reopen = %d, want %d", len(res.Hits), wantHits)
	}
	lineage, err := l.DatasetLineage()
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != len(pop.Datasets) {
		t.Fatalf("lineage has %d datasets, want %d", len(lineage), len(pop.Datasets))
	}
}

// TestLakeAtScale exercises a 150-model lake end to end. Skipped in -short.
func TestLakeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	l, err := Open(Config{Seed: 99, UseHNSW: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := lakegen.DefaultSpec(999)
	s.NumBases = 10
	s.ChildrenPerBase = 14
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	ids := fill(t, l, pop)
	if l.Count() != 150 {
		t.Fatalf("Count = %d, want 150", l.Count())
	}

	// Content search still retrieves same-family models through the HNSW.
	good, total := 0, 0
	for i := 0; i < len(pop.Members); i += 10 {
		hits, err := l.SearchByModel(ids[i], "behavior", 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			for j, id := range ids {
				if id == h.ID {
					total++
					if pop.Members[j].Truth.Family == pop.Members[i].Truth.Family {
						good++
					}
				}
			}
		}
	}
	if frac := float64(good) / float64(total); frac < 0.7 {
		t.Fatalf("same-family fraction at scale = %.2f, want >= 0.7", frac)
	}

	// Version graph over 150 models still beats random handily.
	g, err := l.VersionGraph()
	if err != nil {
		t.Fatal(err)
	}
	truth := map[[2]string]bool{}
	for _, e := range pop.Edges {
		truth[[2]string{ids[e.Parent], ids[e.Child]}] = true
	}
	var recovered []version.Edge
	for _, e := range g.Edges {
		recovered = append(recovered, version.Edge{Parent: e.Parent, Child: e.Child})
	}
	res := version.EvaluateEdges(recovered, truth)
	if res.F1 < 0.35 {
		t.Fatalf("scale graph F1 = %.2f, want >= 0.35", res.F1)
	}

	// Declarative queries stay interactive.
	start := nowMillis()
	if _, err := l.Query("FIND MODELS WHERE DOMAIN = 'legal' LIMIT 10"); err != nil {
		t.Fatal(err)
	}
	if elapsed := nowMillis() - start; elapsed > 2000 {
		t.Fatalf("query took %dms at 150 models", elapsed)
	}
}

func nowMillis() int64 { return time.Now().UnixMilli() }

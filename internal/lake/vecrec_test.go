package lake

import (
	"fmt"
	"math"
	"testing"

	"modellake/internal/search"
	"modellake/internal/tensor"
)

func TestVecRecordRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		ns   string
		vecs []spaceVec
	}{
		{"two spaces", "in8_mc8_p32_s1", []spaceVec{
			{Space: "behavior", Vec: tensor.Vector{0.5, -1.25, 3e-9, math.MaxFloat64}},
			{Space: "weight", Vec: tensor.Vector{0, 1, 2}},
		}},
		{"single space", "ns", []spaceVec{
			{Space: "behavior", Vec: tensor.Vector{42}},
		}},
		{"empty vector", "ns", []spaceVec{
			{Space: "weight", Vec: tensor.Vector{}},
		}},
		{"no spaces", "only-ns", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := encodeVecRecord(tc.ns, tc.vecs)
			ns, vecs, err := decodeVecRecord(b)
			if err != nil {
				t.Fatal(err)
			}
			if ns != tc.ns {
				t.Fatalf("ns = %q, want %q", ns, tc.ns)
			}
			if len(vecs) != len(tc.vecs) {
				t.Fatalf("decoded %d spaces, want %d", len(vecs), len(tc.vecs))
			}
			for i := range vecs {
				if vecs[i].Space != tc.vecs[i].Space {
					t.Fatalf("space[%d] = %q, want %q", i, vecs[i].Space, tc.vecs[i].Space)
				}
				if len(vecs[i].Vec) != len(tc.vecs[i].Vec) {
					t.Fatalf("dim[%d] = %d, want %d", i, len(vecs[i].Vec), len(tc.vecs[i].Vec))
				}
				for j, f := range vecs[i].Vec {
					// Bitwise equality: rehydration must reproduce the exact
					// floats the embedder computed at ingest time.
					if math.Float64bits(f) != math.Float64bits(tc.vecs[i].Vec[j]) {
						t.Fatalf("vec[%d][%d] = %v, want %v", i, j, f, tc.vecs[i].Vec[j])
					}
				}
			}
		})
	}
}

func TestVecRecordMalformedRejected(t *testing.T) {
	good := encodeVecRecord("in8_mc8_p32_s1", []spaceVec{
		{Space: "behavior", Vec: tensor.Vector{1, 2, 3}},
		{Space: "weight", Vec: tensor.Vector{4, 5}},
	})
	// Every strict prefix must fail loudly, never decode to partial data.
	for n := 0; n < len(good); n++ {
		if _, _, err := decodeVecRecord(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := decodeVecRecord(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Fatal("record with trailing bytes decoded successfully")
	}
	// An unknown (future) version falls back rather than misparsing.
	bad := append([]byte{}, good...)
	bad[0] = vecRecVersion + 1
	if _, _, err := decodeVecRecord(bad); err == nil {
		t.Fatal("unknown version decoded successfully")
	}
}

// TestRehydrateFastMatchesEager: the vec-record fast path and the
// decode-and-embed eager path must produce byte-identical search behavior
// across every modality — the fast path is an optimization, not a different
// index.
func TestRehydrateFastMatchesEager(t *testing.T) {
	pop := population(t, 71)
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ids := fill(t, l, pop)
	l.Close()

	fast, err := Open(Config{Dir: dir, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	eager, err := Open(Config{Dir: dir, Seed: 9, EagerRehydrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()

	if fast.Count() != eager.Count() {
		t.Fatalf("counts differ: fast %d, eager %d", fast.Count(), eager.Count())
	}
	for _, space := range []string{"behavior", "weights"} {
		for _, id := range ids {
			want, err := eager.SearchByModel(id, space, 4)
			if err != nil {
				t.Fatalf("eager %s/%s: %v", space, id, err)
			}
			got, err := fast.SearchByModel(id, space, 4)
			if err != nil {
				t.Fatalf("fast %s/%s: %v", space, id, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s search for %s differs:\n eager %v\n fast  %v", space, id, want, got)
			}
		}
	}
	for _, q := range []string{"legal", "medical summarization", "finance"} {
		want := eager.SearchKeyword(q, 5)
		got := fast.SearchKeyword(q, 5)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("keyword %q differs:\n eager %v\n fast  %v", q, want, got)
		}
	}
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	examples := search.DatasetAsTask(ds, 12)
	want, err := eager.SearchTask(examples, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.SearchTask(examples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("task search differs:\n eager %v\n fast  %v", want, got)
	}
}

// TestRehydrateNamespaceMismatchFallsBack: vec records carry the embedding
// namespace; reopening with different embedding parameters must ignore the
// stale vectors and rebuild by re-embedding, not serve wrong-space results.
func TestRehydrateNamespaceMismatchFallsBack(t *testing.T) {
	pop := population(t, 72)
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Seed: 10, Probes: 16})
	if err != nil {
		t.Fatal(err)
	}
	ids := fill(t, l, pop)
	id0 := ids[0]
	l.Close()

	// Different probe count → different behavior-embedding namespace.
	re, err := Open(Config{Dir: dir, Seed: 10, Probes: 24})
	if err != nil {
		t.Fatalf("reopen with changed embedding config failed: %v", err)
	}
	defer re.Close()
	if re.Count() != len(pop.Members) {
		t.Fatalf("count = %d, want %d", re.Count(), len(pop.Members))
	}
	// The stale vec records must have been bypassed: the fallback re-embeds,
	// which shows up as embedding-cache activity (the new namespace's cache
	// starts cold, so these are misses and/or fresh hits — but not zero).
	if hits, misses := re.EmbedCacheStats(); hits+misses == 0 {
		t.Fatal("namespace mismatch did not fall back to re-embedding")
	}
	hits, err := re.SearchByModel(id0, "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("search after fallback rehydration returned nothing")
	}
	// And the rebuilt index must agree with an eager rebuild at the same
	// (new) config — the fallback path is exactly the eager path per model.
	eager, err := Open(Config{Dir: dir, Seed: 10, Probes: 24, EagerRehydrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()
	want, err := eager.SearchByModel(id0, "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(hits) != fmt.Sprint(want) {
		t.Fatalf("fallback rehydration differs from eager at same config:\n eager %v\n fast  %v", want, hits)
	}
}

package lake

import (
	"fmt"
	"testing"

	"modellake/internal/registry"
	"modellake/internal/search"
)

// fillBatch ingests a population through IngestAll (the parallel pipeline)
// instead of the serial Ingest loop fill uses.
func fillBatch(t *testing.T, l *Lake, pop []IngestItem, parallelism int) []*registry.Record {
	t.Helper()
	recs, errs := l.IngestAll(pop, parallelism)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("IngestAll[%d]: %v", i, err)
		}
	}
	return recs
}

// TestIngestAllMatchesSerialIngest: a lake populated through the parallel
// batch path must answer every search modality identically to a lake
// populated with a serial Ingest loop over the same models in the same
// order.
func TestIngestAllMatchesSerialIngest(t *testing.T) {
	pop := population(t, 61)

	serial, err := Open(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for _, m := range pop.Members {
		if _, err := serial.Ingest(m.Model, m.Card, registry.RegisterOptions{
			Name: m.Truth.Name, Version: "1",
		}); err != nil {
			t.Fatal(err)
		}
	}

	parallel, err := Open(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.Close()
	items := make([]IngestItem, len(pop.Members))
	for i, m := range pop.Members {
		items[i] = IngestItem{Model: m.Model, Card: m.Card,
			Opts: registry.RegisterOptions{Name: m.Truth.Name, Version: "1"}}
	}
	recs := fillBatch(t, parallel, items, 8)

	if serial.Count() != parallel.Count() {
		t.Fatalf("counts differ: serial %d, parallel %d", serial.Count(), parallel.Count())
	}
	compare := func(space string) {
		for _, rec := range recs {
			want, err := serial.SearchByModel(rec.ID, space, 4)
			if err != nil {
				t.Fatalf("serial search %s/%s: %v", space, rec.ID, err)
			}
			got, err := parallel.SearchByModel(rec.ID, space, 4)
			if err != nil {
				t.Fatalf("parallel search %s/%s: %v", space, rec.ID, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s search for %s differs:\n serial   %v\n parallel %v",
					space, rec.ID, want, got)
			}
		}
	}
	compare("behavior")
	compare("weights")

	// Keyword search over the batch-ingested cards matches too.
	for _, q := range []string{"legal", "medical summarization", "finance model"} {
		want := serial.SearchKeyword(q, 5)
		got := parallel.SearchKeyword(q, 5)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("keyword %q differs:\n serial   %v\n parallel %v", q, want, got)
		}
	}

	// Task search sees the same roster.
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	examples := search.DatasetAsTask(ds, 16)
	want, err := serial.SearchTask(examples, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.SearchTask(examples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("task search differs:\n serial   %v\n parallel %v", want, got)
	}
}

// TestIngestAllPartialFailure: a duplicate name@version inside the batch
// fails its slot; the rest of the batch lands.
func TestIngestAllPartialFailure(t *testing.T) {
	pop := population(t, 62)
	l, err := Open(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	items := []IngestItem{
		{Model: pop.Members[0].Model, Card: pop.Members[0].Card,
			Opts: registry.RegisterOptions{Name: "dup", Version: "1"}},
		{Model: pop.Members[1].Model, Card: pop.Members[1].Card,
			Opts: registry.RegisterOptions{Name: "dup", Version: "1"}},
		{Model: pop.Members[2].Model, Card: pop.Members[2].Card,
			Opts: registry.RegisterOptions{Name: "ok", Version: "1"}},
	}
	recs, errs := l.IngestAll(items, 4)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("clean items failed: %v", errs)
	}
	if errs[1] == nil {
		t.Fatal("duplicate name@version not reported")
	}
	if recs[1] != nil {
		t.Fatal("failed item produced a record")
	}
	if l.Count() != 2 {
		t.Fatalf("count = %d, want 2", l.Count())
	}
}

// TestLakeReindexPreservesSearch: Reindex rebuilds the content indexes from
// the registry and searches answer identically afterwards; with the
// embedding cache on, the rebuild is served from cache.
func TestLakeReindexPreservesSearch(t *testing.T) {
	pop := population(t, 63)
	l, err := Open(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ids := fill(t, l, pop)

	before, err := l.SearchByModel(ids[0], "behavior", 5)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore, _ := l.EmbedCacheStats()
	n, err := l.Reindex(4)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pop.Members) {
		t.Fatalf("reindexed %d models, want %d", n, len(pop.Members))
	}
	after, err := l.SearchByModel(ids[0], "behavior", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after) != fmt.Sprint(before) {
		t.Fatalf("reindex changed results:\n before %v\n after  %v", before, after)
	}
	hitsAfter, _ := l.EmbedCacheStats()
	if hitsAfter <= hitsBefore {
		t.Fatalf("reindex did not hit the embedding cache (hits %d -> %d)", hitsBefore, hitsAfter)
	}
	// Task search still serves the full roster after the swap.
	ds := pop.Datasets[pop.Members[0].Truth.DatasetID]
	if hits, err := l.SearchTask(search.DatasetAsTask(ds, 8), 5); err != nil || len(hits) == 0 {
		t.Fatalf("task search broken after reindex: %v %v", hits, err)
	}
}

// TestDurableLakeReopenUsesEmbedCache: the default reopen rebuilds indexes
// from the persisted vec records — zero re-embeds — and answers identically;
// an EagerRehydrate reopen re-embeds every model and serves those embeds
// from the on-disk cache.
func TestDurableLakeReopenUsesEmbedCache(t *testing.T) {
	pop := population(t, 64)
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ids := fill(t, l, pop)
	var want []search.Hit
	if want, err = l.SearchByModel(ids[0], "weights", 4); err != nil {
		t.Fatal(err)
	}
	id0 := ids[0]
	l.Close()

	re, err := Open(Config{Dir: dir, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if hits, misses := re.EmbedCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("vec-record rehydration touched the embedding cache (%d hits, %d misses)", hits, misses)
	}
	got, err := re.SearchByModel(id0, "weights", 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("vec-record rehydration changed results:\n before %v\n after  %v", want, got)
	}
	re.Close()

	eager, err := Open(Config{Dir: dir, Seed: 8, EagerRehydrate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()
	hits, misses := eager.EmbedCacheStats()
	if hits == 0 {
		t.Fatalf("eager reopen hit the embedding cache 0 times (misses %d)", misses)
	}
	got, err = eager.SearchByModel(id0, "weights", 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("eager rehydration changed results:\n before %v\n after  %v", want, got)
	}
}

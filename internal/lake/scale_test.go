package lake

// Tests for the atlas-scale configuration (DESIGN.md §12): the quantized
// read tier and disk-resident vector segments. The lake-level contract is
// (1) invalid knob combinations are rejected before any storage is touched,
// (2) a quantized lake answers content searches identically to a plain flat
// lake, and (3) segment files are pure acceleration state — damaging or
// deleting them between runs never changes an answer, because reopen
// validates and rebuilds them from the durable vec records.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modellake/internal/search"
)

func TestScaleConfigValidation(t *testing.T) {
	dir := t.TempDir()
	bad := []struct {
		name string
		cfg  Config
		want string
	}{
		{"rescore without tier", Config{RescoreFactor: 8}, "RescoreFactor requires"},
		{"rescore below floor", Config{Quantize: true, RescoreFactor: MinRescoreFactor - 1}, "below minimum"},
		{"hnsw with quantize", Config{UseHNSW: true, Quantize: true}, "incompatible"},
		{"hnsw with disk", Config{Dir: dir, UseHNSW: true, DiskResidentVectors: true}, "incompatible"},
		{"disk without dir", Config{DiskResidentVectors: true}, "requires Dir"},
		{"negative pq subspaces", Config{PQSubspaces: -1}, "negative"},
		{"pq with quantize", Config{PQSubspaces: 8, Quantize: true}, "choose one"},
		{"hnsw with pq", Config{UseHNSW: true, PQSubspaces: 8}, "incompatible"},
		{"pq rescore below floor", Config{PQSubspaces: 8, RescoreFactor: MinRescoreFactor - 1}, "below minimum"},
	}
	for _, tc := range bad {
		if _, err := Open(tc.cfg); err == nil {
			t.Fatalf("%s: Open accepted %+v", tc.name, tc.cfg)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	for _, cfg := range []Config{
		{Quantize: true},
		{Quantize: true, RescoreFactor: MinRescoreFactor},
		{Dir: t.TempDir(), DiskResidentVectors: true},
		{PQSubspaces: 8},
		{PQSubspaces: 8, RescoreFactor: MinRescoreFactor},
		{Dir: t.TempDir(), PQSubspaces: 8, DiskResidentVectors: true},
	} {
		l, err := Open(cfg)
		if err != nil {
			t.Fatalf("valid config %+v rejected: %v", cfg, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func sameHits(t *testing.T, label string, got, want []search.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s pos=%d: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// TestQuantizedLakeMatchesFlat ingests the same population into a plain
// flat lake and a quantized one and requires bitwise-identical content
// search answers in both spaces for every model-as-query.
func TestQuantizedLakeMatchesFlat(t *testing.T) {
	pop := population(t, 31)
	plain, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	quant, err := Open(Config{Seed: 1, Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer quant.Close()
	pIDs := fill(t, plain, pop)
	qIDs := fill(t, quant, pop)
	for i := range pop.Members {
		for _, space := range []string{"behavior", "weights"} {
			ph, perr := plain.SearchByModel(pIDs[i], space, 5)
			qh, qerr := quant.SearchByModel(qIDs[i], space, 5)
			if (perr == nil) != (qerr == nil) {
				t.Fatalf("member %d space %s: plain err %v, quant err %v", i, space, perr, qerr)
			}
			if perr != nil {
				continue // space cannot embed this model in either lake
			}
			sameHits(t, pop.Members[i].Truth.Name+"/"+space, qh, ph)
		}
	}
}

// TestPQLakeMatchesFlat is TestQuantizedLakeMatchesFlat for the PQ tier:
// identical content search answers in both spaces for every model-as-query.
// A population this small stays below the PQ training threshold, so this
// pins the lake wiring and the untrained-tier exactness degeneration; the
// trained ADC path's identity is property-tested at the index layer.
func TestPQLakeMatchesFlat(t *testing.T) {
	pop := population(t, 31)
	plain, err := Open(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pq, err := Open(Config{Seed: 1, PQSubspaces: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer pq.Close()
	pIDs := fill(t, plain, pop)
	qIDs := fill(t, pq, pop)
	for i := range pop.Members {
		for _, space := range []string{"behavior", "weights"} {
			ph, perr := plain.SearchByModel(pIDs[i], space, 5)
			qh, qerr := pq.SearchByModel(qIDs[i], space, 5)
			if (perr == nil) != (qerr == nil) {
				t.Fatalf("member %d space %s: plain err %v, pq err %v", i, space, perr, qerr)
			}
			if perr != nil {
				continue // space cannot embed this model in either lake
			}
			sameHits(t, pop.Members[i].Truth.Name+"/"+space, qh, ph)
		}
	}
}

// TestPQDiskLakeReopen pins the PQ + DiskResidentVectors composition: a
// disk-resident PQ lake reopens (adopting or rebuilding its segments and
// side files) and answers identically to its pre-close self.
func TestPQDiskLakeReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Seed: 1, PQSubspaces: 8, DiskResidentVectors: true}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := population(t, 5)
	ids := fill(t, l, pop)
	first, err := l.SearchByModel(ids[0], "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	again, err := l.SearchByModel(ids[0], "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "reopen", again, first)
}

// TestDiskLakeSegmentDamage pins the reopen story for disk-resident lakes:
// the on-disk vector segments are derived state. Clean reopens reuse them;
// flipped bytes, truncation, or outright deletion just cause a rebuild from
// the persisted vec records — and in every case the search answers are
// bitwise identical to the pristine lake's.
func TestDiskLakeSegmentDamage(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Seed: 1, Quantize: true, DiskResidentVectors: true}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := population(t, 77)
	ids := fill(t, l, pop)

	collect := func(l *Lake) map[string][]search.Hit {
		out := map[string][]search.Hit{}
		for i := range pop.Members {
			for _, space := range []string{"behavior", "weights"} {
				hits, err := l.SearchByModel(ids[i], space, 5)
				if err != nil {
					continue
				}
				out[ids[i]+"/"+space] = hits
			}
		}
		return out
	}
	want := collect(l)
	if len(want) == 0 {
		t.Fatal("no searchable members; fixture is vacuous")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	behaviorSeg := filepath.Join(dir, "vectors", "behavior.seg")
	weightsSeg := filepath.Join(dir, "vectors", "weights.seg")
	if _, err := os.Stat(behaviorSeg); err != nil {
		t.Fatalf("behavior segment missing after close: %v", err)
	}

	damage := []struct {
		name string
		do   func(t *testing.T)
	}{
		{"pristine", func(t *testing.T) {}},
		{"flipped byte in behavior segment", func(t *testing.T) {
			b, err := os.ReadFile(behaviorSeg)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x20
			if err := os.WriteFile(behaviorSeg, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated weights segment", func(t *testing.T) {
			b, err := os.ReadFile(weightsSeg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(weightsSeg, b[:len(b)-16], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"segments deleted", func(t *testing.T) {
			if err := os.RemoveAll(filepath.Join(dir, "vectors")); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		d.do(t)
		l, err := Open(cfg)
		if err != nil {
			t.Fatalf("%s: reopen: %v", d.name, err)
		}
		got := collect(l)
		if len(got) != len(want) {
			t.Fatalf("%s: %d searchable queries != %d", d.name, len(got), len(want))
		}
		for key, hits := range want {
			sameHits(t, d.name+"/"+key, got[key], hits)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("%s: close: %v", d.name, err)
		}
	}
}

// TestDiskLakeIngestSpills pins the memory contract of disk mode: a lake
// whose ingest outlives the spill threshold keeps its full-precision rows
// on disk, not in the tail. The threshold is the index default, so this
// test drives enough models only at tiny dimensions — the segment length
// after ingest is observed through a reopen, which must also keep answers
// identical to the pre-close lake.
func TestDiskLakeIngestSpills(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Seed: 1, Quantize: true, DiskResidentVectors: true}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop := population(t, 5)
	ids := fill(t, l, pop)
	first, err := l.SearchByModel(ids[0], "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	again, err := l.SearchByModel(ids[0], "behavior", 4)
	if err != nil {
		t.Fatal(err)
	}
	sameHits(t, "reopen", again, first)
}

package lake

import (
	"fmt"
	"strings"

	"modellake/internal/mlql"
	"modellake/internal/search"
)

// catalog adapts a Lake to the mlql.Catalog interface. The adapter resolves
// each MLQL construct to the lake capability that answers it: field
// predicates to registry/card metadata, TRAINED ON to declared history plus
// dataset-version closure, OUTPERFORMS to the benchmark runner, and RANK BY
// to the corresponding searcher.
type catalog Lake

func (c *catalog) lake() *Lake { return (*Lake)(c) }

// Candidates implements mlql.Catalog.
func (c *catalog) Candidates() ([]mlql.Row, error) {
	recs, err := c.lake().Records()
	if err != nil {
		return nil, err
	}
	rows := make([]mlql.Row, 0, len(recs))
	for _, rec := range recs {
		fields := map[string]string{
			"name": rec.Name,
			"arch": rec.Arch,
			"tag":  strings.Join(rec.Tags, " "),
		}
		if len(rec.DeclaredBases) > 0 {
			fields["base"] = rec.DeclaredBases[0]
		}
		if crd, err := c.lake().Card(rec.ID); err == nil {
			fields["domain"] = crd.Domain
			fields["task"] = crd.Task
			if crd.Transform != "" {
				fields["transform"] = crd.Transform
			}
			if fields["base"] == "" {
				fields["base"] = crd.BaseModel
			}
		}
		if fields["domain"] == "" {
			fields["domain"] = rec.Domain
		}
		rows = append(rows, mlql.Row{ID: rec.ID, Fields: fields})
	}
	return rows, nil
}

// TrainedOn implements mlql.Catalog. Version closure follows the registered
// datasets' parent links in both directions, so "versions of legal/v1"
// covers legal/v1 itself, its derivations, and (transitively) their
// derivations.
func (c *catalog) TrainedOn(dataset string, includeVersions bool) (map[string]bool, error) {
	family := map[string]bool{dataset: true}
	if includeVersions {
		lineage, err := c.lake().DatasetLineage()
		if err != nil {
			return nil, err
		}
		// Repeated closure over parent links (small dataset counts).
		changed := true
		for changed {
			changed = false
			for id, parent := range lineage {
				if parent == "" {
					continue
				}
				if family[parent] && !family[id] {
					family[id] = true
					changed = true
				}
				if family[id] && !family[parent] {
					family[parent] = true
					changed = true
				}
			}
		}
	}
	recs, err := c.lake().Records()
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, rec := range recs {
		if rec.DeclaredData != "" && family[rec.DeclaredData] {
			out[rec.ID] = true
		}
	}
	return out, nil
}

// Outperforms implements mlql.Catalog.
func (c *catalog) Outperforms(modelRef, bench string) (map[string]bool, error) {
	l := c.lake()
	// Accept either a model ID or a name (resolved at version "1").
	id := modelRef
	if _, err := l.Record(id); err != nil {
		resolved, rerr := l.Resolve(modelRef, "")
		if rerr != nil {
			return nil, fmt.Errorf("unknown model %q", modelRef)
		}
		id = resolved
	}
	baseline, err := l.Score(id, bench)
	if err != nil {
		return nil, err
	}
	recs, err := l.Records()
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, rec := range recs {
		if rec.ID == id {
			continue
		}
		s, err := l.Score(rec.ID, bench)
		if err != nil {
			continue
		}
		if s > baseline {
			out[rec.ID] = true
		}
	}
	return out, nil
}

// SimilarityRank implements mlql.Catalog.
func (c *catalog) SimilarityRank(modelRef, space string) ([]mlql.Hit, error) {
	l := c.lake()
	id := modelRef
	if _, err := l.Record(id); err != nil {
		resolved, rerr := l.Resolve(modelRef, "")
		if rerr != nil {
			return nil, fmt.Errorf("unknown model %q", modelRef)
		}
		id = resolved
	}
	if space == "cards" {
		crd, err := l.Card(id)
		if err != nil {
			return nil, fmt.Errorf("model %q has no card to rank by", id)
		}
		return toMLQLHits(l.SearchKeyword(crd.Text(), l.Count())), nil
	}
	hits, err := l.SearchByModel(id, space, l.Count())
	if err != nil {
		return nil, err
	}
	return toMLQLHits(hits), nil
}

// TextRank implements mlql.Catalog.
func (c *catalog) TextRank(text string) ([]mlql.Hit, error) {
	return toMLQLHits(c.lake().SearchKeyword(text, c.lake().Count())), nil
}

// BenchmarkRank implements mlql.Catalog.
func (c *catalog) BenchmarkRank(bench string) ([]mlql.Hit, error) {
	l := c.lake()
	recs, err := l.Records()
	if err != nil {
		return nil, err
	}
	var out []mlql.Hit
	for _, rec := range recs {
		s, err := l.Score(rec.ID, bench)
		if err != nil {
			continue
		}
		out = append(out, mlql.Hit{ID: rec.ID, Score: s})
	}
	// Sort best-first, ties by ID.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Score > out[j-1].Score ||
				(out[j].Score == out[j-1].Score && out[j].ID < out[j-1].ID) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out, nil
}

func toMLQLHits(hits []search.Hit) []mlql.Hit {
	out := make([]mlql.Hit, len(hits))
	for i, h := range hits {
		out[i] = mlql.Hit{ID: h.ID, Score: h.Score}
	}
	return out
}

// Compile-time conformance.
var _ mlql.Catalog = (*catalog)(nil)

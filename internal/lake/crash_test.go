package lake

import (
	"fmt"
	"testing"

	"strings"

	"modellake/internal/fault"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
)

// End-to-end crash sweep: every storage IO operation performed while
// ingesting models is failed in turn, and after each fault the lake must
// reopen cleanly with every *acknowledged* ingest fully intact — record,
// card, and loadable weights. An unacknowledged ingest may have left partial
// (but internally consistent) state or none at all; it must never prevent
// recovery. This is the "zero silent data loss" acceptance gate.

// crashPopulation generates a tiny two-model population: one trained base
// and one fine-tuned child, enough to exercise blob writes, registry
// multi-key commits, and provenance journaling.
func crashPopulation(t *testing.T) *lakegen.Population {
	t.Helper()
	spec := lakegen.DefaultSpec(42)
	spec.NumBases = 1
	spec.ChildrenPerBase = 1
	spec.MaxDepth = 1
	spec.TrainN = 40
	spec.BaseEpochs = 2
	spec.FTEpochs = 1
	pop, err := lakegen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// lakeWorkload opens a lake over dir with the given injected filesystem and
// ingests the population, returning name→ID for every acknowledged ingest.
// Open failing counts as nothing acknowledged.
func lakeWorkload(dir string, fsys *fault.FS, pop *lakegen.Population) map[string]string {
	acked := map[string]string{}
	l, err := Open(Config{Dir: dir, Sync: true, Seed: 1, FS: fsys})
	if err != nil {
		return acked
	}
	for _, m := range pop.Members {
		rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err == nil {
			acked[m.Truth.Name] = rec.ID
		}
	}
	l.Close()
	return acked
}

func TestLakeCrashSweep(t *testing.T) {
	pop := crashPopulation(t)

	rec := &fault.Recorder{}
	lakeWorkload(t.TempDir(), fault.New(rec), pop)
	n := len(rec.Ops())
	if n < 20 {
		t.Fatalf("ingest workload exercised only %d IO ops; sweep too small", n)
	}

	for i := 1; i <= n; i++ {
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			dir := t.TempDir()
			acked := lakeWorkload(dir, fault.New(&fault.Script{FailAt: i, Torn: 11}), pop)

			clean, err := Open(Config{Dir: dir, Sync: true, Seed: 1})
			if err != nil {
				t.Fatalf("lake must reopen after a single IO fault, got: %v", err)
			}
			defer clean.Close()
			for name, id := range acked {
				r, err := clean.Record(id)
				if err != nil {
					t.Fatalf("acknowledged model %q (%s) lost its record: %v", name, id, err)
				}
				if r.Name != name {
					t.Fatalf("record for %s has name %q, want %q", id, r.Name, name)
				}
				if _, err := clean.Model(id); err != nil {
					t.Fatalf("acknowledged model %q (%s) lost its weights: %v", name, id, err)
				}
			}
			if clean.Count() < len(acked) {
				t.Fatalf("recovered %d models, acknowledged %d", clean.Count(), len(acked))
			}
		})
	}
}

// TestLakeReopensAfterPartialIngest pins that a fault inside the registry's
// multi-key commit cannot wedge rehydration: the sweep above covers every op
// index, but this case documents the specific hazard (a record without its
// dependent keys) with a targeted mid-commit fault.
func TestLakeReopensAfterPartialIngest(t *testing.T) {
	pop := crashPopulation(t)
	dir := t.TempDir()

	// Fail the first metadata-log fsync (matched by path: ingest may sync
	// embed-cache files and weights blobs first, and those failures are
	// absorbed by design): the kvstore rolls the log back and the caller
	// gets an error with nothing committed.
	fsys := fault.New(&fault.Script{FailAt: 1, Match: func(op fault.Op, path string) bool {
		return op == fault.OpSync && strings.HasSuffix(path, "lake.log")
	}})
	l, err := Open(Config{Dir: dir, Sync: true, Seed: 1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	m := pop.Members[0]
	if _, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name}); err == nil {
		t.Fatal("injected fsync fault did not surface through Ingest")
	}
	l.Close()

	clean, err := Open(Config{Dir: dir, Sync: true, Seed: 1})
	if err != nil {
		t.Fatalf("lake must reopen after failed ingest, got: %v", err)
	}
	defer clean.Close()
	if got := clean.Count(); got != 0 {
		t.Fatalf("failed ingest left %d models behind", got)
	}
	// And the store still works: the same ingest succeeds on the clean lake.
	if _, err := clean.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name}); err != nil {
		t.Fatalf("reingest after recovery failed: %v", err)
	}
}

// TestTornEmbedCacheWriteDoesNotCorruptSearch targets the embedding-cache
// files specifically (the broad sweep above now includes them, since the
// lake routes cache IO through cfg.FS): every cache write is torn mid-file,
// yet a reopened lake must answer content search exactly like a lake that
// never had a cache fault — the cache verifies on load and recomputes
// instead of serving torn bytes.
func TestTornEmbedCacheWriteDoesNotCorruptSearch(t *testing.T) {
	pop := crashPopulation(t)

	open := func(dir string, fsys *fault.FS) (*Lake, []string) {
		l, err := Open(Config{Dir: dir, Sync: true, Seed: 1, FS: fsys})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, m := range pop.Members {
			rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, rec.ID)
		}
		return l, ids
	}

	// Reference: fault-free lake.
	refLake, refIDs := open(t.TempDir(), nil)
	defer refLake.Close()

	// Victim: every embedding-cache write is torn after 9 bytes, and the
	// fault is sticky so retries keep failing too.
	torn := &fault.Script{FailAt: 1, Torn: 9, Sticky: true,
		Match: func(op fault.Op, path string) bool {
			return op == fault.OpWrite && strings.Contains(path, "embedcache")
		}}
	dir := t.TempDir()
	victim, ids := open(dir, fault.New(torn))
	if torn.Seen() == 0 {
		t.Fatal("workload never wrote an embedding-cache file; fault not exercised")
	}
	victim.Close()

	reopened, err := Open(Config{Dir: dir, Sync: true, Seed: 1})
	if err != nil {
		t.Fatalf("lake must reopen after torn cache writes: %v", err)
	}
	defer reopened.Close()
	for i := range ids {
		for _, space := range []string{"behavior", "weights"} {
			want, err := refLake.SearchByModel(refIDs[i], space, 3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reopened.SearchByModel(ids[i], space, 3)
			if err != nil {
				t.Fatalf("%s search after torn cache: %v", space, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s search hit count %d != %d", space, len(got), len(want))
			}
			for j := range want {
				// IDs differ between the two lakes only if ingest order
				// diverged; scores must match bitwise.
				if got[j].Score != want[j].Score {
					t.Fatalf("%s search score diverged after torn cache write: %v != %v",
						space, got[j], want[j])
				}
			}
		}
	}
}

package lake

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"modellake/internal/registry"
)

// shipAll drains the leader's WAL into the replica in small pages.
func shipAll(t *testing.T, leader, replica *Lake) {
	t.Helper()
	for {
		page, err := leader.ReadWAL(replica.WALOffset(), 32<<10)
		if err != nil {
			t.Fatalf("ReadWAL: %v", err)
		}
		if len(page) == 0 {
			return
		}
		if err := replica.ApplyWAL(page); err != nil {
			t.Fatalf("ApplyWAL: %v", err)
		}
	}
}

// TestReplicaServesReadsViaWALShipping stands up a leader and a follower
// sharing one blob directory, ships the leader's metadata log page by page,
// and checks the follower answers every read modality identically —
// bit-for-bit scores included.
func TestReplicaServesReadsViaWALShipping(t *testing.T) {
	dir := t.TempDir()
	leaderDir := filepath.Join(dir, "leader")
	leader, err := Open(Config{Dir: leaderDir, Seed: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	replica, err := Open(Config{
		Dir:      filepath.Join(dir, "replica"),
		BlobDir:  filepath.Join(leaderDir, "blobs"),
		Seed:     1,
		Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	pop := population(t, 77)
	ids := fill(t, leader, pop)
	shipAll(t, leader, replica)

	if lc, rc := leader.Count(), replica.Count(); lc != rc {
		t.Fatalf("model counts differ: leader %d replica %d", lc, rc)
	}
	if lo, ro := leader.WALOffset(), replica.WALOffset(); lo != ro {
		t.Fatalf("WAL offsets differ: leader %d replica %d", lo, ro)
	}

	// Registry reads.
	for _, id := range ids {
		lr, err := leader.Record(id)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := replica.Record(id)
		if err != nil {
			t.Fatalf("replica missing record %s: %v", id, err)
		}
		if !reflect.DeepEqual(lr, rr) {
			t.Fatalf("record %s differs on replica", id)
		}
	}

	// Keyword search: same hits, same score bits.
	lh := leader.SearchKeyword("legal statute court", 8)
	rh := replica.SearchKeyword("legal statute court", 8)
	if !reflect.DeepEqual(lh, rh) {
		t.Fatalf("keyword results differ\nleader  %v\nreplica %v", lh, rh)
	}

	// Model-as-query vector search, both spaces.
	for _, space := range []string{"behavior", "weights"} {
		lv, err := leader.SearchByModel(ids[0], space, 6)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := replica.SearchByModel(ids[0], space, 6)
		if err != nil {
			t.Fatalf("replica %s search: %v", space, err)
		}
		if len(lv) == 0 || len(lv) != len(rv) {
			t.Fatalf("%s search sizes: leader %d replica %d", space, len(lv), len(rv))
		}
		for i := range lv {
			if lv[i].ID != rv[i].ID || math.Float64bits(lv[i].Score) != math.Float64bits(rv[i].Score) {
				t.Fatalf("%s search differs at rank %d: leader %+v replica %+v", space, i, lv[i], rv[i])
			}
		}
	}

	// Provenance survived the ship.
	if _, err := replica.ProvenanceWhy("model:" + ids[0]); err != nil {
		t.Fatalf("replica provenance: %v", err)
	}

	// Incremental catch-up: new writes on the leader appear after the next
	// ship, and the follower log stays aligned.
	more := population(t, 78)
	for i, m := range more.Members {
		if i >= 3 {
			break
		}
		if _, err := leader.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-x", Version: "1"}); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, leader, replica)
	if lc, rc := leader.Count(), replica.Count(); lc != rc {
		t.Fatalf("after catch-up: leader %d replica %d", lc, rc)
	}
}

// TestPromoteFlipsFollowerToLeader covers the lake half of cluster failover:
// a fully caught-up follower, once promoted, accepts writes of its own,
// stamps the new epoch durably into its log, and refuses double promotion.
func TestPromoteFlipsFollowerToLeader(t *testing.T) {
	dir := t.TempDir()
	leaderDir := filepath.Join(dir, "leader")
	leader, err := Open(Config{Dir: leaderDir, Seed: 1, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Open(Config{
		Dir:      filepath.Join(dir, "replica"),
		BlobDir:  filepath.Join(leaderDir, "blobs"),
		Seed:     1,
		Follower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	// Promote on a non-follower must refuse: only a replica may flip.
	if err := leader.Promote(true); err == nil {
		t.Fatal("Promote on a leader succeeded, want error")
	}

	pop := population(t, 79)
	ids := fill(t, leader, pop)
	shipAll(t, leader, replica)
	leader.Close()

	if err := replica.Promote(true); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := replica.Promote(true); err == nil {
		t.Fatal("second Promote succeeded, want error")
	}
	if err := replica.BumpWALEpoch(1); err != nil {
		t.Fatalf("BumpWALEpoch: %v", err)
	}
	if got := replica.WALEpoch(); got != 1 {
		t.Fatalf("WALEpoch = %d, want 1", got)
	}

	// The promoted lake takes writes — including the benchmark score cache,
	// which a follower keeps out of its log but a leader persists.
	m := population(t, 80).Members[0]
	rec, err := replica.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-p", Version: "1"})
	if err != nil {
		t.Fatalf("ingest on promoted lake: %v", err)
	}
	if _, err := replica.Record(rec.ID); err != nil {
		t.Fatalf("read-back on promoted lake: %v", err)
	}
	for _, id := range ids {
		if _, err := replica.Record(id); err != nil {
			t.Fatalf("pre-promotion record %s lost: %v", id, err)
		}
	}
}

// Package lake is the model lake itself: the facade that wires storage,
// registry, indexing, and every lake task (§3) and application (§6) into the
// system Figure 2 of the paper sketches. Users ingest models with their
// cards, then search (keyword, content-based, task-based, hybrid, or via
// declarative MLQL queries), reconstruct version graphs, attribute behaviour
// to training data, draft documentation, audit, and cite.
package lake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modellake/internal/fault"
	"modellake/internal/obs"

	"modellake/internal/attribution"
	"modellake/internal/audit"
	"modellake/internal/benchmark"
	"modellake/internal/blob"
	"modellake/internal/card"
	"modellake/internal/data"
	"modellake/internal/docgen"
	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/kvstore"
	"modellake/internal/mlql"
	"modellake/internal/model"
	"modellake/internal/provenance"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/tensor"
	"modellake/internal/version"
)

// Lake-level metrics. These time the facade operations end to end (storage
// plus embedding plus indexing), the numbers a capacity plan actually needs.
var (
	mIngests    = obs.Default().Counter("lake_ingests_total")
	mIngestDur  = obs.Default().Histogram("lake_ingest_duration_seconds", nil)
	mQueryDur   = obs.Default().Histogram("lake_query_duration_seconds", nil)
	mSearchDurs = func(kind string) *obs.Histogram {
		return obs.Default().Histogram("lake_search_duration_seconds", nil, obs.L("kind", kind))
	}
)

// Config configures a lake.
type Config struct {
	// Dir is the storage directory; empty means fully in-memory.
	Dir string
	// Sync fsyncs the metadata log on every write.
	Sync bool
	// InputDim / MaxClasses shape the shared behavioural probe space.
	// Models with other shapes are still stored and weight-indexed but not
	// behaviour-indexed. Defaults: 8 and 8.
	InputDim   int
	MaxClasses int
	// Probes is the behavioural probe count (default 32).
	Probes int
	// Seed drives all lake-internal randomness (ANN level assignment,
	// probe generation, weight-space probes).
	Seed uint64
	// UseHNSW selects the approximate index for content search (exact flat
	// scan otherwise). Flat is the default: exact and fast below ~10k
	// models.
	UseHNSW bool
	// IngestParallelism bounds the embedding worker pool used by batch
	// ingest, reindexing, and rehydration. Zero or negative means
	// GOMAXPROCS. Single-model Ingest is unaffected.
	IngestParallelism int
	// DisableEmbedCache turns off the content-addressed embedding cache.
	// By default embeddings are cached keyed by (embedder, weights hash) —
	// in memory always, and on disk under Dir/embedcache for durable
	// lakes — so reindexing and repeated experiments skip recomputation.
	DisableEmbedCache bool
	// DisableQueryCache turns off the invalidate-on-write LRU over
	// content-search results (keyed by space + query-vector hash + k).
	// By default repeated related-model queries against an unchanged lake
	// are served from the cache without touching the ANN index.
	DisableQueryCache bool
	// QueryCacheSize caps the query-result cache entry count. Zero or
	// negative means the default (1024).
	QueryCacheSize int
	// FS routes all storage IO (metadata log and blob store) through a
	// fault-injectable filesystem — the test hook behind the lake's
	// crash-consistency suite. Nil uses the real filesystem.
	FS *fault.FS
}

func (c Config) withDefaults() Config {
	if c.InputDim <= 0 {
		c.InputDim = 8
	}
	if c.MaxClasses <= 0 {
		c.MaxClasses = 8
	}
	if c.Probes <= 0 {
		c.Probes = 32
	}
	return c
}

// Lake is a model lake instance. It is safe for concurrent use.
type Lake struct {
	cfg    Config
	kv     *kvstore.Store
	blobs  blob.Store
	reg    *registry.Registry
	prov   *provenance.Journal
	runner *benchmark.Runner

	keyword    *search.ShardedKeywordIndex
	behaviorCS *search.ContentSearcher
	weightCS   *search.ContentSearcher
	taskSearch *search.TaskSearcher
	embedCache *embedding.VectorCache // nil when disabled
	qcache     *queryCache            // nil when disabled

	mu         sync.RWMutex
	closed     bool
	modelCache map[string]*model.Model // live models (incl. closed-weight ones)
	benchmarks map[string]*benchmark.Benchmark
	datasets   map[string]*data.Dataset
	graph      *version.Graph // cached reconstruction; nil when stale
}

// Open creates or opens a lake.
func Open(cfg Config) (*Lake, error) {
	cfg = cfg.withDefaults()
	var kv *kvstore.Store
	var blobs blob.Store
	if cfg.Dir == "" {
		kv = kvstore.OpenMemory()
		blobs = blob.NewMemStore()
	} else {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("lake: create directory: %w", err)
		}
		var err error
		kv, err = kvstore.Open(filepath.Join(cfg.Dir, "lake.log"), kvstore.Options{Sync: cfg.Sync, FS: cfg.FS})
		if err != nil {
			return nil, fmt.Errorf("lake: open metadata: %w", err)
		}
		blobs, err = blob.NewFileStoreFS(filepath.Join(cfg.Dir, "blobs"), cfg.FS)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("lake: open blobs: %w", err)
		}
	}
	l := &Lake{
		cfg:        cfg,
		kv:         kv,
		blobs:      blobs,
		reg:        registry.New(kv, blobs),
		prov:       provenance.NewJournal(kv),
		runner:     benchmark.NewRunner(kv),
		keyword:    search.NewShardedKeywordIndex(0),
		taskSearch: &search.TaskSearcher{},
		modelCache: map[string]*model.Model{},
		benchmarks: map[string]*benchmark.Benchmark{},
		datasets:   map[string]*data.Dataset{},
	}
	if !cfg.DisableEmbedCache {
		cacheDir := ""
		if cfg.Dir != "" {
			cacheDir = filepath.Join(cfg.Dir, "embedcache")
		}
		// The namespace folds in every config knob that changes embedder
		// output, so a lake reopened with different embedding parameters
		// can never read vectors computed under the old ones.
		ns := fmt.Sprintf("in%d_mc%d_p%d_s%d", cfg.InputDim, cfg.MaxClasses, cfg.Probes, cfg.Seed)
		l.embedCache = embedding.NewVectorCache(cacheDir, ns, cfg.FS)
	}
	if !cfg.DisableQueryCache {
		l.qcache = newQueryCache(cfg.QueryCacheSize)
	}
	l.behaviorCS = search.NewContentSearcher(
		embedding.NewCached(
			embedding.NewBehaviorEmbedder(cfg.InputDim, cfg.Probes, cfg.MaxClasses, cfg.Seed),
			l.embedCache),
		l.newIndex())
	l.weightCS = search.NewContentSearcher(
		embedding.NewCached(
			embedding.NewWeightEmbedder(32, 4, cfg.Seed+1),
			l.embedCache),
		l.newIndex())

	// Rehydrate indexes from a previously persisted lake.
	if err := l.rehydrate(); err != nil {
		kv.Close()
		return nil, err
	}
	// Export the embedding-cache counters. CounterFunc replaces the reader
	// on re-registration, so in a process that opens several lakes the
	// metrics follow the most recently opened one (zeros when its cache is
	// disabled) instead of pinning a closed lake's cache alive.
	obs.Default().CounterFunc("lake_embed_cache_hits_total", func() float64 {
		h, _ := l.EmbedCacheStats()
		return float64(h)
	})
	obs.Default().CounterFunc("lake_embed_cache_misses_total", func() float64 {
		_, m := l.EmbedCacheStats()
		return float64(m)
	})
	obs.Default().CounterFunc("lake_query_cache_hits_total", func() float64 {
		h, _ := l.QueryCacheStats()
		return float64(h)
	})
	obs.Default().CounterFunc("lake_query_cache_misses_total", func() float64 {
		_, m := l.QueryCacheStats()
		return float64(m)
	})
	return l, nil
}

func (l *Lake) newIndex() index.Index {
	if l.cfg.UseHNSW {
		return index.NewHNSW(index.Cosine, index.HNSWConfig{Seed: l.cfg.Seed})
	}
	return index.NewFlat(index.Cosine)
}

// rehydrate rebuilds the in-memory indexes from the durable registry. The
// embedding stage — the expensive part — runs through the parallel batch
// path, so reopening a big lake uses every core (and the embedding cache,
// when the lake has one, turns reopen embeddings into cache hits).
func (l *Lake) rehydrate() error {
	recs, err := l.reg.List()
	if err != nil {
		return fmt.Errorf("lake: rehydrate: %w", err)
	}
	var handles []*model.Handle
	for _, rec := range recs {
		if c, err := l.reg.Card(rec.ID); err == nil {
			l.keyword.Add(rec.ID, c.Text())
		}
		m, err := l.reg.LoadModel(rec.ID)
		if err != nil {
			if errors.Is(err, registry.ErrNoWeights) {
				continue // closed-weights model: behaviour is gone across restarts
			}
			return fmt.Errorf("lake: rehydrate %s: %w", rec.ID, err)
		}
		l.modelCache[rec.ID] = m
		handles = append(handles, model.NewHandle(m))
	}
	l.indexModels(handles)
	return nil
}

// indexModel adds a model to whichever content indexes can embed it.
// Failures to embed in a given space are expected (wrong input dimension,
// withheld weights) and simply skip that space.
func (l *Lake) indexModel(m *model.Model) {
	h := model.NewHandle(m)
	if err := l.behaviorCS.Add(h); err == nil {
		l.taskSearch.Add(h)
	}
	_ = l.weightCS.Add(h) // error = not weight-indexable; acceptable
}

// indexModels is the batch form of indexModel: models are embedded
// concurrently and indexed in input order, so the resulting indexes are
// identical to a serial indexModel loop over the same slice.
func (l *Lake) indexModels(handles []*model.Handle) {
	if len(handles) == 0 {
		return
	}
	p := l.cfg.IngestParallelism
	for i, err := range l.behaviorCS.AddAll(handles, p) {
		if err == nil {
			l.taskSearch.Add(handles[i])
		}
	}
	_ = l.weightCS.AddAll(handles, p) // per-model errors = not weight-indexable; acceptable
}

// Close releases the lake's storage.
func (l *Lake) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.kv.Close()
}

// Ready reports whether the lake can serve requests: the metadata store is
// open and the in-memory indexes are built (rehydration completes inside
// Open, so an open lake is an indexed lake). It backs the server's /readyz
// readiness probe; Close flips it permanently.
func (l *Lake) Ready() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return errors.New("lake: closed")
	}
	if _, err := l.kv.Get("meta/seq"); err != nil && errors.Is(err, kvstore.ErrClosed) {
		return fmt.Errorf("lake: metadata store: %w", err)
	}
	return nil
}

// Count returns the number of models in the lake.
func (l *Lake) Count() int { return l.reg.Count() }

// Ingest registers a model with its card, indexes it for every search
// modality, and journals its provenance. It returns the registry record.
func (l *Lake) Ingest(m *model.Model, c *card.Card, opts registry.RegisterOptions) (*registry.Record, error) {
	start := time.Now()
	defer mIngestDur.Since(start)
	mIngests.Inc()
	rec, err := l.reg.Register(m, c, opts)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.modelCache[rec.ID] = m
	l.graph = nil // new model invalidates the cached version graph
	l.mu.Unlock()

	if c != nil {
		cc := c.Clone()
		cc.ModelID = rec.ID
		l.keyword.Add(rec.ID, cc.Text())
	}
	l.indexModel(m)
	l.qcache.invalidate() // new vectors can change any content-search answer

	if err := l.journalProvenance(rec, m); err != nil {
		return nil, err
	}
	return rec, nil
}

// journalProvenance records the model entity, its creating activity, and
// declared inputs in the provenance journal.
func (l *Lake) journalProvenance(rec *registry.Record, m *model.Model) error {
	if _, err := l.prov.Put("model:"+rec.ID, provenance.Entity, rec.Name, map[string]string{
		"arch": rec.Arch, "version": rec.Version,
	}); err != nil {
		return fmt.Errorf("lake: provenance: %w", err)
	}
	if m.Hist != nil {
		act := "activity:" + rec.ID + "/" + m.Hist.Transformation
		if _, err := l.prov.Put(act, provenance.Activity, m.Hist.Transformation, nil); err != nil {
			return err
		}
		if err := l.prov.Relate(provenance.WasGeneratedBy, "model:"+rec.ID, act); err != nil {
			return err
		}
		if m.Hist.DatasetID != "" {
			dsEnt := "dataset:" + m.Hist.DatasetID
			if _, err := l.prov.Put(dsEnt, provenance.Entity, m.Hist.DatasetID, nil); err != nil {
				return err
			}
			if err := l.prov.Relate(provenance.Used, act, dsEnt); err != nil {
				return err
			}
		}
		for _, base := range m.Hist.BaseModelIDs {
			baseEnt := "model:" + base
			if l.kv.Has("prov/rec/" + baseEnt) {
				if err := l.prov.Relate(provenance.WasDerivedFrom, "model:"+rec.ID, baseEnt); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// IngestItem is one model in a batch ingest.
type IngestItem struct {
	Model *model.Model
	Card  *card.Card
	Opts  registry.RegisterOptions
}

// IngestAll is the batch form of Ingest: registration and provenance are
// journaled serially (they append to the metadata log), then every
// registered model is embedded concurrently and indexed in input order, so
// the resulting indexes are identical to a serial Ingest loop. The returned
// slices are aligned with items; a nil error means that model was fully
// ingested. parallelism <= 0 uses the lake's configured IngestParallelism
// (and GOMAXPROCS when that is unset too).
func (l *Lake) IngestAll(items []IngestItem, parallelism int) ([]*registry.Record, []error) {
	start := time.Now()
	defer mIngestDur.Since(start)
	mIngests.Add(uint64(len(items)))
	recs := make([]*registry.Record, len(items))
	errs := make([]error, len(items))
	var handles []*model.Handle
	for i, it := range items {
		rec, err := l.reg.Register(it.Model, it.Card, it.Opts)
		if err != nil {
			errs[i] = err
			continue
		}
		recs[i] = rec
		l.mu.Lock()
		l.modelCache[rec.ID] = it.Model
		l.graph = nil
		l.mu.Unlock()
		if it.Card != nil {
			cc := it.Card.Clone()
			cc.ModelID = rec.ID
			l.keyword.Add(rec.ID, cc.Text())
		}
		if err := l.journalProvenance(rec, it.Model); err != nil {
			errs[i] = err
			continue
		}
		handles = append(handles, model.NewHandle(it.Model))
	}
	if parallelism <= 0 {
		parallelism = l.cfg.IngestParallelism
	}
	// Content-index failures are viewpoint gaps (wrong input dimension,
	// withheld weights), not ingest errors — same policy as indexModel.
	for j, err := range l.behaviorCS.AddAll(handles, parallelism) {
		if err == nil {
			l.taskSearch.Add(handles[j])
		}
	}
	_ = l.weightCS.AddAll(handles, parallelism)
	l.qcache.invalidate()
	return recs, errs
}

// Reindex rebuilds both content indexes (and the task-search roster) from
// the registry with up to parallelism embedding workers, swapping the fresh
// indexes in atomically; searches keep hitting the old ones until then.
// With the embedding cache enabled the rebuild is almost pure cache hits.
// It returns the number of models reindexed.
func (l *Lake) Reindex(parallelism int) (int, error) {
	recs, err := l.reg.List()
	if err != nil {
		return 0, err
	}
	var handles []*model.Handle
	for _, rec := range recs {
		h, err := l.Model(rec.ID)
		if err != nil {
			continue // closed-weights model: nothing content-indexable survives restarts
		}
		handles = append(handles, h)
	}
	if parallelism <= 0 {
		parallelism = l.cfg.IngestParallelism
	}
	var taskRoster []*model.Handle
	for i, err := range l.behaviorCS.Reindex(handles, l.newIndex(), parallelism) {
		if err == nil {
			taskRoster = append(taskRoster, handles[i])
		}
	}
	_ = l.weightCS.Reindex(handles, l.newIndex(), parallelism)
	l.taskSearch.Reset(taskRoster)
	l.qcache.invalidate()
	return len(handles), nil
}

// EmbedCacheStats reports embedding-cache hits and misses since the lake
// was opened (zeros when the cache is disabled).
func (l *Lake) EmbedCacheStats() (hits, misses uint64) {
	if l.embedCache == nil {
		return 0, 0
	}
	return l.embedCache.Stats()
}

// Model returns a full-view handle for a lake model.
func (l *Lake) Model(id string) (*model.Handle, error) {
	l.mu.RLock()
	m, ok := l.modelCache[id]
	l.mu.RUnlock()
	if ok {
		return model.NewHandle(m), nil
	}
	m, err := l.reg.LoadModel(id)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.modelCache[id] = m
	l.mu.Unlock()
	return model.NewHandle(m), nil
}

// Record returns a model's registry record.
func (l *Lake) Record(id string) (*registry.Record, error) { return l.reg.Get(id) }

// Records lists all registry records.
func (l *Lake) Records() ([]*registry.Record, error) { return l.reg.List() }

// Card returns a model's card.
func (l *Lake) Card(id string) (*card.Card, error) { return l.reg.Card(id) }

// PutCard replaces a model's card and refreshes the keyword index.
func (l *Lake) PutCard(id string, c *card.Card) error {
	if err := l.reg.PutCard(id, c); err != nil {
		return err
	}
	l.keyword.Add(id, c.Text())
	return nil
}

// Resolve maps name@version to a model ID.
func (l *Lake) Resolve(name, ver string) (string, error) { return l.reg.Resolve(name, ver) }

// datasetMeta is the durable record of a registered dataset: enough for
// version-closure reasoning and cataloging without persisting the feature
// matrices themselves.
type datasetMeta struct {
	ID       string `json:"id"`
	ParentID string `json:"parent_id,omitempty"`
	Domain   string `json:"domain,omitempty"`
	Rows     int    `json:"rows"`
	Classes  int    `json:"classes"`
}

// RegisterDataset makes a dataset known to the lake (for TRAINED ON queries
// and dataset-version reasoning). Its metadata — including the version
// lineage — is persisted, so declarative queries over dataset versions keep
// working after the lake is reopened.
func (l *Lake) RegisterDataset(ds *data.Dataset) error {
	l.mu.Lock()
	l.datasets[ds.ID] = ds
	l.mu.Unlock()
	meta := datasetMeta{ID: ds.ID, ParentID: ds.ParentID, Domain: ds.Domain,
		Rows: ds.Len(), Classes: ds.NumClasses}
	b, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("lake: marshal dataset meta: %w", err)
	}
	if err := l.kv.Put("dataset/"+ds.ID, b); err != nil {
		return fmt.Errorf("lake: persist dataset %s: %w", ds.ID, err)
	}
	return nil
}

// DatasetLineage returns the persisted (ID → parent ID) map of all
// registered datasets, the basis for "VERSIONS OF" query closure.
func (l *Lake) DatasetLineage() (map[string]string, error) {
	out := map[string]string{}
	var decodeErr error
	err := l.kv.Scan("dataset/", func(k string, v []byte) bool {
		var meta datasetMeta
		if err := json.Unmarshal(v, &meta); err != nil {
			decodeErr = fmt.Errorf("lake: decode %s: %w", k, err)
			return false
		}
		out[meta.ID] = meta.ParentID
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, decodeErr
}

// RegisterBenchmark adds a benchmark to the lake's suite.
func (l *Lake) RegisterBenchmark(b *benchmark.Benchmark) {
	l.mu.Lock()
	l.benchmarks[b.ID] = b
	l.mu.Unlock()
}

// Benchmarks lists registered benchmarks sorted by ID.
func (l *Lake) Benchmarks() []*benchmark.Benchmark {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*benchmark.Benchmark, 0, len(l.benchmarks))
	for _, b := range l.benchmarks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Score runs (or fetches the cached score of) a model on a benchmark.
func (l *Lake) Score(modelID, benchID string) (float64, error) {
	l.mu.RLock()
	b, ok := l.benchmarks[benchID]
	l.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("lake: unknown benchmark %q", benchID)
	}
	h, err := l.Model(modelID)
	if err != nil {
		return 0, err
	}
	return l.runner.Score(h, b)
}

// SearchKeyword is metadata search over cards (the status-quo baseline).
func (l *Lake) SearchKeyword(query string, k int) []search.Hit {
	hits, _ := l.SearchKeywordContext(context.Background(), query, k)
	return hits
}

// SearchKeywordContext is SearchKeyword honoring a request context, so a
// timed-out request is refused instead of burning index time on an answer
// nobody is waiting for.
func (l *Lake) SearchKeywordContext(ctx context.Context, query string, k int) ([]search.Hit, error) {
	defer mSearchDurs("keyword").Since(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.keyword.Search(query, k), nil
}

// contentSearcher maps an embedding-space name to its searcher.
func (l *Lake) contentSearcher(space string) (*search.ContentSearcher, error) {
	switch space {
	case "", "behavior":
		return l.behaviorCS, nil
	case "weights":
		return l.weightCS, nil
	}
	return nil, fmt.Errorf("lake: unknown embedding space %q", space)
}

// searchContent is the shared model-as-query read path: embed the query
// (embedding cache), consult the query-result cache for the raw top-(k+1)
// hits, fall through to the ANN index on a miss, then drop the query model's
// own entry. Cached and uncached answers are identical by construction — the
// cache stores the raw index response, and the same ExcludeSelf
// post-processing runs either way.
func (l *Lake) searchContent(ctx context.Context, space string, h *model.Handle, k int) ([]search.Hit, error) {
	defer mSearchDurs("model").Since(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cs, err := l.contentSearcher(space)
	if err != nil {
		return nil, err
	}
	v, err := cs.EmbedQuery(h)
	if err != nil {
		return nil, err
	}
	// The cache key includes the searcher's space name; normalize "" so the
	// default space shares entries with its explicit spelling.
	cacheSpace := space
	if cacheSpace == "" {
		cacheSpace = "behavior"
	}
	raw, ok := l.qcache.get(cacheSpace, v, k+1)
	if !ok {
		raw, err = cs.SearchByVectorContext(ctx, v, k+1)
		if err != nil {
			return nil, err
		}
		l.qcache.put(cacheSpace, v, k+1, raw)
	}
	return search.ExcludeSelf(raw, h.ID(), k), nil
}

// SearchByModel is model-as-query related-model search in the given space
// ("behavior", the default, or "weights").
func (l *Lake) SearchByModel(id, space string, k int) ([]search.Hit, error) {
	return l.SearchByModelContext(context.Background(), id, space, k)
}

// SearchByModelContext is SearchByModel honoring a request context.
func (l *Lake) SearchByModelContext(ctx context.Context, id, space string, k int) ([]search.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := l.Model(id)
	if err != nil {
		return nil, err
	}
	return l.searchContent(ctx, space, h, k)
}

// SearchByHandle is model-as-query search with an external query model (one
// that is not necessarily in the lake), e.g. "find models like this one I
// built locally".
func (l *Lake) SearchByHandle(h *model.Handle, space string, k int) ([]search.Hit, error) {
	return l.SearchByHandleContext(context.Background(), h, space, k)
}

// SearchByHandleContext is SearchByHandle honoring a request context.
func (l *Lake) SearchByHandleContext(ctx context.Context, h *model.Handle, space string, k int) ([]search.Hit, error) {
	return l.searchContent(ctx, space, h, k)
}

// SearchByModelMany answers a batch of model-as-query searches in one call,
// fanning the per-query work (embed, cache lookup, index scan) across a
// bounded worker pool. Hits and errors are aligned with ids; one model's
// failure does not abort the batch. parallelism <= 0 means GOMAXPROCS.
// Every answer is identical to a serial SearchByModelContext call.
func (l *Lake) SearchByModelMany(ctx context.Context, ids []string, space string, k, parallelism int) ([][]search.Hit, []error) {
	hits := make([][]search.Hit, len(ids))
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return hits, errs
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(ids) {
		parallelism = len(ids)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				hits[i], errs[i] = l.SearchByModelContext(ctx, ids[i], space, k)
			}
		}()
	}
	wg.Wait()
	return hits, errs
}

// QueryCacheStats reports query-result-cache hits and misses since the lake
// was opened (zeros when the cache is disabled).
func (l *Lake) QueryCacheStats() (hits, misses uint64) {
	return l.qcache.stats()
}

// SearchTask ranks models by behavioural fit to labeled task examples.
func (l *Lake) SearchTask(examples []search.TaskExample, k int) ([]search.Hit, error) {
	defer mSearchDurs("task").Since(time.Now())
	return l.taskSearch.Search(examples, k)
}

// SearchHybrid fuses keyword and behavioural rankings with reciprocal-rank
// fusion: text finds documented models, behaviour finds similar ones.
func (l *Lake) SearchHybrid(query string, queryModelID string, k int) ([]search.Hit, error) {
	defer mSearchDurs("hybrid").Since(time.Now())
	var rankings [][]search.Hit
	if query != "" {
		rankings = append(rankings, l.keyword.Search(query, k*4))
	}
	if queryModelID != "" {
		h, err := l.Model(queryModelID)
		if err != nil {
			return nil, err
		}
		content, err := l.behaviorCS.SearchByModel(h, k*4)
		if err != nil {
			return nil, err
		}
		rankings = append(rankings, content)
	}
	if len(rankings) == 0 {
		return nil, fmt.Errorf("lake: hybrid search needs a text query or a query model")
	}
	fused := search.FuseRRF(0, rankings...)
	if k < len(fused) {
		fused = fused[:k]
	}
	return fused, nil
}

// VersionGraph reconstructs (and caches) the directed Model Graph over every
// open-weights model in the lake.
func (l *Lake) VersionGraph() (*version.Graph, error) {
	return l.VersionGraphContext(context.Background())
}

// VersionGraphContext is VersionGraph honoring a request context: the
// reconstruction is abandoned between models if ctx is canceled, so a slow
// graph build cannot outlive its HTTP request.
func (l *Lake) VersionGraphContext(ctx context.Context) (*version.Graph, error) {
	l.mu.RLock()
	if l.graph != nil {
		g := l.graph
		l.mu.RUnlock()
		return g, nil
	}
	l.mu.RUnlock()

	recs, err := l.reg.List()
	if err != nil {
		return nil, err
	}
	var nodes []version.Node
	for _, rec := range recs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h, err := l.Model(rec.ID)
		if err != nil {
			continue
		}
		net, err := h.Network()
		if err != nil {
			continue
		}
		nodes = append(nodes, version.Node{ID: rec.ID, Net: net})
	}
	if len(nodes) == 0 {
		return &version.Graph{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := version.Reconstruct(nodes, version.Config{ClassifyEdges: true, Seed: l.cfg.Seed})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.graph = g
	l.mu.Unlock()
	return g, nil
}

// Attribute computes gradient-influence attribution of the model's behaviour
// at (x, y) over the given training dataset.
func (l *Lake) Attribute(modelID string, train *data.Dataset, x tensor.Vector, y int) ([]float64, error) {
	h, err := l.Model(modelID)
	if err != nil {
		return nil, err
	}
	net, err := h.Network()
	if err != nil {
		return nil, fmt.Errorf("lake: attribution needs intrinsics: %w", err)
	}
	return attribution.GradientInfluence(net, train, x, y)
}

// GenerateCard drafts documentation for a model from lake analyses.
func (l *Lake) GenerateCard(modelID string) (*docgen.Draft, error) {
	return l.GenerateCardContext(context.Background(), modelID)
}

// GenerateCardContext is GenerateCard honoring a request context.
func (l *Lake) GenerateCardContext(ctx context.Context, modelID string) (*docgen.Draft, error) {
	h, err := l.Model(modelID)
	if err != nil {
		return nil, err
	}
	existing, err := l.Card(modelID)
	if err != nil && !errors.Is(err, registry.ErrNotFound) {
		return nil, err
	}
	g, err := l.VersionGraphContext(ctx)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gen := &docgen.Generator{
		Peers:      l.peers(),
		Graph:      g,
		Runner:     l.runner,
		Benchmarks: l.Benchmarks(),
		Behavior:   embedding.NewBehaviorEmbedder(l.cfg.InputDim, l.cfg.Probes, l.cfg.MaxClasses, l.cfg.Seed),
		ProbeSeed:  l.cfg.Seed + 2,
	}
	return gen.Draft(h, existing)
}

func (l *Lake) peers() []docgen.Peer {
	recs, _ := l.reg.List()
	var out []docgen.Peer
	for _, rec := range recs {
		h, err := l.Model(rec.ID)
		if err != nil {
			continue
		}
		c, err := l.Card(rec.ID)
		if err != nil {
			c = nil
		}
		out = append(out, docgen.Peer{Handle: h, Card: c})
	}
	return out
}

// Audit runs the compliance audit for a model. flagged maps known-risky
// model IDs to reasons; risk propagates over the *recovered* version graph.
func (l *Lake) Audit(modelID string, flagged map[string]string) (*audit.Report, error) {
	return l.AuditContext(context.Background(), modelID, flagged)
}

// AuditContext is Audit honoring a request context.
func (l *Lake) AuditContext(ctx context.Context, modelID string, flagged map[string]string) (*audit.Report, error) {
	c, err := l.Card(modelID)
	if err != nil {
		c = nil
	}
	g, err := l.VersionGraphContext(ctx)
	if err != nil {
		return nil, err
	}
	var docFlags []string
	if draft, err := l.GenerateCardContext(ctx, modelID); err == nil {
		docFlags = draft.Flags
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Behavioural verification of the declared training data, when the
	// claimed dataset is registered with the lake.
	var claim audit.ClaimCheck
	if c != nil && c.TrainingData != "" {
		l.mu.RLock()
		ds := l.datasets[c.TrainingData]
		l.mu.RUnlock()
		if ds != nil {
			if h, err := l.Model(modelID); err == nil {
				if verdict, acc, err := docgen.VerifyTrainingClaim(h, ds); err == nil {
					claim = audit.ClaimCheck{Claim: c.TrainingData, Verdict: string(verdict), Evidence: acc}
				}
			}
		}
	}
	return audit.Run(audit.Input{
		ModelID:       modelID,
		Card:          c,
		Graph:         g,
		Flagged:       flagged,
		MembershipAUC: -1,
		DocFlags:      docFlags,
		TrainingClaim: claim,
	}), nil
}

// Cite produces a version-graph-anchored citation for a model.
func (l *Lake) Cite(modelID string) (provenance.Citation, error) {
	rec, err := l.reg.Get(modelID)
	if err != nil {
		return provenance.Citation{}, err
	}
	g, err := l.VersionGraph()
	if err != nil {
		return provenance.Citation{}, err
	}
	return provenance.Cite(rec.ID, rec.Name, rec.Version, g, rec.Seq), nil
}

// Provenance exposes the journal for why/where queries.
func (l *Lake) Provenance() *provenance.Journal { return l.prov }

// Query parses and executes an MLQL query against the lake.
func (l *Lake) Query(q string) (*mlql.Result, error) {
	return l.QueryContext(context.Background(), q)
}

// QueryContext is Query honoring a request context: the executor checks the
// context between candidate-filtering stages, so a canceled or timed-out
// request abandons the query promptly.
func (l *Lake) QueryContext(ctx context.Context, q string) (*mlql.Result, error) {
	defer mQueryDur.Since(time.Now())
	return mlql.RunContext(ctx, q, (*catalog)(l))
}

// Explain parses a query and renders its evaluation plan without running it.
func (l *Lake) Explain(q string) (string, error) {
	parsed, err := mlql.Parse(q)
	if err != nil {
		return "", err
	}
	return mlql.Explain(parsed), nil
}

// Compact rewrites the metadata log to contain only live records — useful
// after heavy card churn or score-cache turnover on a long-lived lake.
func (l *Lake) Compact() error { return l.kv.Compact() }

// Package lake is the model lake itself: the facade that wires storage,
// registry, indexing, and every lake task (§3) and application (§6) into the
// system Figure 2 of the paper sketches. Users ingest models with their
// cards, then search (keyword, content-based, task-based, hybrid, or via
// declarative MLQL queries), reconstruct version graphs, attribute behaviour
// to training data, draft documentation, audit, and cite.
package lake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modellake/internal/fault"
	"modellake/internal/obs"

	"modellake/internal/attribution"
	"modellake/internal/audit"
	"modellake/internal/benchmark"
	"modellake/internal/blob"
	"modellake/internal/card"
	"modellake/internal/data"
	"modellake/internal/docgen"
	"modellake/internal/embedding"
	"modellake/internal/index"
	"modellake/internal/kvstore"
	"modellake/internal/mlql"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/provenance"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/tensor"
	"modellake/internal/version"
)

// Lake-level metrics. These time the facade operations end to end (storage
// plus embedding plus indexing), the numbers a capacity plan actually needs.
var (
	mIngests    = obs.Default().Counter("lake_ingests_total")
	mIngestDur  = obs.Default().Histogram("lake_ingest_duration_seconds", nil)
	mQueryDur   = obs.Default().Histogram("lake_query_duration_seconds", nil)
	mSearchDurs = func(kind string) *obs.Histogram {
		return obs.Default().Histogram("lake_search_duration_seconds", nil, obs.L("kind", kind))
	}
)

// Config configures a lake.
type Config struct {
	// Dir is the storage directory; empty means fully in-memory.
	Dir string
	// Sync fsyncs the metadata log on every write.
	Sync bool
	// InputDim / MaxClasses shape the shared behavioural probe space.
	// Models with other shapes are still stored and weight-indexed but not
	// behaviour-indexed. Defaults: 8 and 8.
	InputDim   int
	MaxClasses int
	// Probes is the behavioural probe count (default 32).
	Probes int
	// Seed drives all lake-internal randomness (ANN level assignment,
	// probe generation, weight-space probes).
	Seed uint64
	// UseHNSW selects the approximate index for content search (exact flat
	// scan otherwise). Flat is the default: exact and fast below ~10k
	// models. Incompatible with Quantize and DiskResidentVectors.
	UseHNSW bool
	// Quantize enables the int8 quantized read tier on the flat content
	// indexes (DESIGN.md §12): searches rank every row by an approximate
	// int8 distance, keep a k·RescoreFactor shortlist, and rescore it with
	// the exact full-precision arithmetic. Answers are bitwise identical to
	// the plain flat scan whenever the true top-k survives the shortlist
	// cut, which the over-fetch factor buys with overwhelming probability.
	Quantize bool
	// PQSubspaces selects the product-quantized read tier (DESIGN.md §14)
	// instead of the int8 one: each content vector is coded as this many
	// one-byte subspace centroids (values above the vector dimension clamp
	// to it), an ADC lookup-table scan picks the k·RescoreFactor shortlist,
	// and the exact rescore phase is unchanged — so answers carry the same
	// bitwise-identity guarantee as Quantize at a fraction of the resident
	// bytes. Codebooks train deterministically from Seed once an index holds
	// 256 rows; below that searches are plain exact scans. Composes with
	// DiskResidentVectors; incompatible with Quantize (the tiers are
	// alternatives) and UseHNSW.
	PQSubspaces int
	// RescoreFactor overrides the quantized tier's shortlist over-fetch
	// multiplier. Zero means the index default
	// (index.DefaultRescoreFactor); non-zero values require Quantize,
	// PQSubspaces, or DiskResidentVectors and must be at least
	// MinRescoreFactor.
	RescoreFactor int
	// DiskResidentVectors moves the full-precision content vectors into
	// page-cache-friendly on-disk segments (Dir/vectors/<space>.seg): the
	// int8 quantized tier stays resident (1 byte per component instead of
	// 8) and only the shortlist rows are paged in for the exact rescore.
	// Requires Dir; implies the quantized read path. Models ingested after
	// Open are served from an in-RAM tail until the next reopen folds them
	// into the segment — the persisted vec records stay the durable source
	// of truth, so a torn or stale segment is simply rebuilt.
	DiskResidentVectors bool
	// DiskResidentPostings moves the keyword index's compact postings
	// segments onto disk (Dir/postings/kw-NN.seg): merges publish
	// checksummed segment files and queries pread only the blocks the
	// block-max scorer cannot prune, so a 100k+ lake no longer holds all
	// BM25 postings on heap. Requires Dir. Answers are bitwise-identical
	// to the in-RAM index; segments are derived state, verified against
	// the current cards on reopen and rebuilt from them on any damage.
	DiskResidentPostings bool
	// KeywordMergeThreshold overrides how many documents a keyword shard's
	// live map tier absorbs before merging into its compact segment. Zero
	// means the default (search.DefaultKeywordMergeThreshold); negative
	// disables merging, keeping the pure map-tier behaviour.
	KeywordMergeThreshold int
	// IngestParallelism bounds the embedding worker pool used by batch
	// ingest, reindexing, and rehydration. Zero or negative means
	// GOMAXPROCS. Single-model Ingest is unaffected.
	IngestParallelism int
	// DisableEmbedCache turns off the content-addressed embedding cache.
	// By default embeddings are cached keyed by (embedder, weights hash) —
	// in memory always, and on disk under Dir/embedcache for durable
	// lakes — so reindexing and repeated experiments skip recomputation.
	DisableEmbedCache bool
	// DisableQueryCache turns off the invalidate-on-write LRU over
	// content-search results (keyed by space + query-vector hash + k).
	// By default repeated related-model queries against an unchanged lake
	// are served from the cache without touching the ANN index.
	DisableQueryCache bool
	// QueryCacheSize caps the query-result cache entry count. Zero or
	// negative means the default (1024).
	QueryCacheSize int
	// EagerRehydrate forces reopen to decode and re-embed every stored
	// model instead of rebuilding the content indexes from the persisted
	// vec/<id> records. The results are identical either way; the eager
	// path only exists as the measured baseline for the E14 write-path
	// experiment and as a belt-and-braces escape hatch if persisted
	// vectors are ever suspect.
	EagerRehydrate bool
	// VerifyBlobsOnOpen makes reopen read and checksum-verify every
	// weights blob (a full integrity sweep, O(total weight bytes)). By
	// default reopen only checks that every registered blob exists:
	// blob writes are atomic, every read checksum-verifies before
	// returning, so tampering is still detected on first use — while
	// Open stays O(records) no matter how large the weights are.
	VerifyBlobsOnOpen bool
	// FS routes all storage IO (metadata log and blob store) through a
	// fault-injectable filesystem — the test hook behind the lake's
	// crash-consistency suite. Nil uses the real filesystem.
	FS *fault.FS
	// BlobDir overrides the blob store location (default Dir/blobs). A
	// replica lake points it at its leader's blob directory: blobs are
	// immutable and content-addressed, so sharing the directory is the
	// embedded equivalent of leader and replicas reading one object store,
	// and WAL shipping only needs to carry metadata. Ignored for in-memory
	// lakes (empty Dir).
	BlobDir string
	// Follower marks this lake a WAL-shipping replica: its log must stay a
	// byte-identical prefix of its leader's, so nothing on the read path may
	// append to it. The one read path that writes is benchmark scoring
	// (scores cache durably); Follower redirects that cache to a private
	// in-memory store. Scores are deterministic, so a replica recomputing
	// one returns bit-identical results to the leader's cached copy.
	Follower bool
}

func (c Config) withDefaults() Config {
	if c.InputDim <= 0 {
		c.InputDim = 8
	}
	if c.MaxClasses <= 0 {
		c.MaxClasses = 8
	}
	if c.Probes <= 0 {
		c.Probes = 32
	}
	return c
}

// MinRescoreFactor is the lowest shortlist over-fetch multiplier a lake
// accepts for its quantized read tier. The index layer allows factor 1 so
// tests can construct recall misses on purpose; a production lake gets the
// floor, below which adversarially bunched vectors can push the true top-k
// out of the quantized shortlist and silently degrade exactness.
const MinRescoreFactor = 4

// validate rejects config combinations the lake cannot honor, before any
// storage is touched.
func (c Config) validate() error {
	if c.PQSubspaces < 0 {
		return fmt.Errorf("lake: PQSubspaces %d is negative", c.PQSubspaces)
	}
	if c.PQSubspaces > 0 && c.Quantize {
		return errors.New("lake: PQSubspaces and Quantize are alternative resident tiers; choose one")
	}
	if c.RescoreFactor != 0 {
		if !c.Quantize && c.PQSubspaces == 0 && !c.DiskResidentVectors {
			return errors.New("lake: RescoreFactor requires Quantize, PQSubspaces, or DiskResidentVectors")
		}
		if c.RescoreFactor < MinRescoreFactor {
			return fmt.Errorf("lake: RescoreFactor %d below minimum %d", c.RescoreFactor, MinRescoreFactor)
		}
	}
	if c.UseHNSW && (c.Quantize || c.PQSubspaces > 0 || c.DiskResidentVectors) {
		return errors.New("lake: UseHNSW is incompatible with the quantized read tier")
	}
	if c.DiskResidentVectors && c.Dir == "" {
		return errors.New("lake: DiskResidentVectors requires Dir")
	}
	if c.DiskResidentPostings && c.Dir == "" {
		return errors.New("lake: DiskResidentPostings requires Dir")
	}
	return nil
}

// Lake is a model lake instance. It is safe for concurrent use.
type Lake struct {
	cfg    Config
	kv     *kvstore.Store
	blobs  blob.Store
	reg    *registry.Registry
	prov   *provenance.Journal
	runner *benchmark.Runner

	keyword    *search.ShardedKeywordIndex
	behaviorCS *search.ContentSearcher
	weightCS   *search.ContentSearcher
	taskSearch *search.TaskSearcher
	embedCache *embedding.VectorCache // nil when disabled
	qcache     *queryCache            // nil when disabled
	vecNS      string                 // namespace stamped into persisted vec records

	mu         sync.RWMutex
	closed     bool
	modelCache map[string]*model.Model // live models (incl. closed-weight ones)
	benchmarks map[string]*benchmark.Benchmark
	datasets   map[string]*data.Dataset
	graph      *version.Graph // cached reconstruction; nil when stale

	// Task-search roster, built lazily after a fast rehydrate: taskPending
	// holds behaviour-indexed model IDs whose handles have not been loaded
	// yet; the first SearchTask (or a Reindex) drains it. rosterMu
	// serializes the drain so concurrent searches never see a half-built
	// roster.
	rosterMu    sync.Mutex
	taskReady   bool     // guarded by mu
	taskPending []string // guarded by mu

	// Keyword index backlog, same lazy pattern: card loads and tokenization
	// move off the reopen path onto the first keyword (or hybrid) search.
	kwMu      sync.Mutex
	kwReady   bool     // guarded by mu
	kwPending []string // guarded by mu
}

// Open creates or opens a lake.
func Open(cfg Config) (*Lake, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var kv *kvstore.Store
	var blobs blob.Store
	if cfg.Dir == "" {
		kv = kvstore.OpenMemory()
		blobs = blob.NewMemStore()
	} else {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("lake: create directory: %w", err)
		}
		var err error
		kv, err = kvstore.Open(filepath.Join(cfg.Dir, "lake.log"), kvstore.Options{Sync: cfg.Sync, FS: cfg.FS})
		if err != nil {
			return nil, fmt.Errorf("lake: open metadata: %w", err)
		}
		blobDir := cfg.BlobDir
		if blobDir == "" {
			blobDir = filepath.Join(cfg.Dir, "blobs")
		}
		blobs, err = blob.NewFileStoreFS(blobDir, cfg.FS)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("lake: open blobs: %w", err)
		}
	}
	scoreKV := kv
	if cfg.Follower {
		scoreKV = kvstore.OpenMemory()
	}
	kwCfg := search.KeywordConfig{MergeThreshold: cfg.KeywordMergeThreshold}
	if cfg.DiskResidentPostings {
		kwCfg.Dir = filepath.Join(cfg.Dir, "postings")
		kwCfg.FS = cfg.FS
	}
	l := &Lake{
		cfg:        cfg,
		kv:         kv,
		blobs:      blobs,
		reg:        registry.New(kv, blobs),
		prov:       provenance.NewJournal(kv),
		runner:     benchmark.NewRunner(scoreKV),
		keyword:    search.NewShardedKeywordIndexConfig(kwCfg),
		taskSearch: &search.TaskSearcher{},
		modelCache: map[string]*model.Model{},
		benchmarks: map[string]*benchmark.Benchmark{},
		datasets:   map[string]*data.Dataset{},
		taskReady:  true,
		kwReady:    true,
	}
	// The namespace folds in every config knob that changes embedder
	// output, so a lake reopened with different embedding parameters can
	// never read vectors computed under the old ones — neither from the
	// embedding cache nor from the persisted vec records.
	ns := fmt.Sprintf("in%d_mc%d_p%d_s%d", cfg.InputDim, cfg.MaxClasses, cfg.Probes, cfg.Seed)
	l.vecNS = ns
	if !cfg.DisableEmbedCache {
		cacheDir := ""
		if cfg.Dir != "" {
			cacheDir = filepath.Join(cfg.Dir, "embedcache")
		}
		l.embedCache = embedding.NewVectorCache(cacheDir, ns, cfg.FS)
	}
	if !cfg.DisableQueryCache {
		l.qcache = newQueryCache(cfg.QueryCacheSize)
	}
	l.behaviorCS = search.NewContentSearcher(
		embedding.NewCached(
			embedding.NewBehaviorEmbedder(cfg.InputDim, cfg.Probes, cfg.MaxClasses, cfg.Seed),
			l.embedCache),
		l.newIndex())
	l.weightCS = search.NewContentSearcher(
		embedding.NewCached(
			embedding.NewWeightEmbedder(32, 4, cfg.Seed+1),
			l.embedCache),
		l.newIndex())

	// Rehydrate indexes from a previously persisted lake.
	if err := l.rehydrate(); err != nil {
		kv.Close()
		return nil, err
	}
	// Export the embedding-cache counters. CounterFunc replaces the reader
	// on re-registration, so in a process that opens several lakes the
	// metrics follow the most recently opened one (zeros when its cache is
	// disabled) instead of pinning a closed lake's cache alive.
	obs.Default().CounterFunc("lake_embed_cache_hits_total", func() float64 {
		h, _ := l.EmbedCacheStats()
		return float64(h)
	})
	obs.Default().CounterFunc("lake_embed_cache_misses_total", func() float64 {
		_, m := l.EmbedCacheStats()
		return float64(m)
	})
	obs.Default().CounterFunc("lake_query_cache_hits_total", func() float64 {
		h, _ := l.QueryCacheStats()
		return float64(h)
	})
	obs.Default().CounterFunc("lake_query_cache_misses_total", func() float64 {
		_, m := l.QueryCacheStats()
		return float64(m)
	})
	return l, nil
}

func (l *Lake) newIndex() index.Index {
	if l.cfg.UseHNSW {
		return index.NewHNSW(index.Cosine, index.HNSWConfig{Seed: l.cfg.Seed})
	}
	if l.cfg.PQSubspaces > 0 {
		return index.NewFlatPQ(index.Cosine, l.quantConfig())
	}
	if l.cfg.Quantize || l.cfg.DiskResidentVectors {
		return index.NewFlatQuantized(index.Cosine, l.quantConfig())
	}
	return index.NewFlat(index.Cosine)
}

func (l *Lake) quantConfig() index.QuantConfig {
	return index.QuantConfig{
		RescoreFactor: l.cfg.RescoreFactor,
		PQSubspaces:   l.cfg.PQSubspaces,
		Seed:          l.cfg.Seed,
	}
}

// hydrated is the per-record product of the parallel rehydrate stage.
type hydrated struct {
	bvec, wvec tensor.Vector // content-index vectors; nil = space not indexable
	m          *model.Model  // non-nil when the fallback decode ran
	err        error         // hard failure: Open must not succeed
}

// rehydrate rebuilds the in-memory indexes from the durable registry.
//
// The per-model work — weights-blob checksum verification plus either a
// persisted-vector decode (the fast path) or a full model decode + embed
// (the fallback) — runs on a bounded worker pool; the index inserts then
// happen serially in record order, so the resulting indexes are identical to
// a serial loop no matter how the workers interleaved.
//
// The fast path reads the vec/<id> record written in the same atomic batch
// as the registration: when its namespace matches the lake's embedding
// config, the stored vectors go straight into the ANN indexes and the model
// is never decoded (handles load lazily on first use). Weights blobs are
// existence-checked — a registered blob that went missing fails Open loudly
// — but their contents are not re-read unless VerifyBlobsOnOpen requests
// the full integrity sweep: blob writes are atomic and every later Get
// checksum-verifies, so fast Open stays O(records) instead of O(weight
// bytes). Records without usable vectors (pre-vec lakes, changed
// embedding config, EagerRehydrate) read, verify, decode, and re-embed,
// with the embedding cache softening the cost.
func (l *Lake) rehydrate() error {
	recs, err := l.reg.List()
	if err != nil {
		return fmt.Errorf("lake: rehydrate: %w", err)
	}
	if len(recs) == 0 {
		// Even an empty disk-resident lake adopts (possibly empty) on-disk
		// segments so that post-open ingests land in the spilling disk tier
		// instead of accumulating full-precision rows in RAM forever.
		if l.cfg.DiskResidentVectors {
			if err := l.adoptDiskIndex(l.behaviorCS, "behavior", nil, nil); err != nil {
				return err
			}
			if err := l.adoptDiskIndex(l.weightCS, "weights", nil, nil); err != nil {
				return err
			}
		}
		return nil
	}
	// Adopt published keyword postings segments before queuing the keyword
	// backlog: a segment whose covered documents all still match their
	// current card text (by CRC) serves those documents straight from
	// disk, and only the uncovered rest goes onto the lazy kwPending
	// queue. A stale or damaged segment file is rejected whole and its
	// documents rebuild from cards like any other reopen.
	kwCovered := map[string]bool{}
	if l.cfg.DiskResidentPostings {
		for _, id := range l.keyword.AdoptSegments(func(docID string, crc uint64) bool {
			c, err := l.reg.Card(docID)
			return err == nil && search.TextCRC(c.Text()) == crc
		}) {
			kwCovered[id] = true
		}
	}
	// One directory sweep answers every existence check: bulk-listing the
	// blob store costs a few hundred syscalls where per-record Stat calls
	// would cost one each. The snapshot is taken before hydration starts;
	// Open is not concurrent with ingest on the same Lake, so it cannot
	// miss a registered blob.
	var known map[blob.ID]struct{}
	if lister, ok := l.blobs.(interface{ IDs() []blob.ID }); ok && !l.cfg.VerifyBlobsOnOpen {
		ids := lister.IDs()
		known = make(map[blob.ID]struct{}, len(ids))
		for _, id := range ids {
			known[id] = struct{}{}
		}
	}
	res := make([]hydrated, len(recs))
	runParallel(len(recs), l.cfg.IngestParallelism, func(i int) {
		res[i] = l.hydrateOne(recs[i], known)
	})
	// Pre-size the content indexes: the exact add counts and dimensions are
	// known, so the packed flat storage allocates once instead of doubling
	// its way up through a few thousand appends. Disk-resident lakes skip
	// this — their rehydrated vectors go into on-disk segments, not the
	// (about to be replaced) in-RAM indexes.
	disk := l.cfg.DiskResidentVectors
	if !disk {
		var nb, nw, db, dw int
		for i := range res {
			if res[i].bvec != nil {
				nb, db = nb+1, len(res[i].bvec)
			}
			if res[i].wvec != nil {
				nw, dw = nw+1, len(res[i].wvec)
			}
		}
		l.behaviorCS.Reserve(nb, db)
		l.weightCS.Reserve(nw, dw)
	}
	// Commit in record order. Keyword entries (for every carded model,
	// closed-weights included) are deferred to the first keyword search;
	// content vectors insert now, only where a space could embed the model.
	// In disk mode the vectors are collected in the same record order and
	// handed to the segment adoption below instead of inserted row by row.
	var bIDs, wIDs []string
	var bVecs, wVecs []tensor.Vector
	for i, rec := range recs {
		if !kwCovered[rec.ID] {
			l.kwPending = append(l.kwPending, rec.ID)
			l.kwReady = false
		}
		if res[i].err != nil {
			return res[i].err
		}
		if res[i].m != nil {
			l.modelCache[rec.ID] = res[i].m
		}
		if res[i].bvec != nil {
			if disk {
				bIDs = append(bIDs, rec.ID)
				bVecs = append(bVecs, res[i].bvec)
				l.taskPending = append(l.taskPending, rec.ID)
				l.taskReady = false
			} else if err := l.behaviorCS.AddVector(rec.ID, res[i].bvec); err == nil {
				// Defer handle loading: the task roster materializes on
				// first SearchTask instead of costing every reopen a
				// model decode per behaviour-indexed record.
				l.taskPending = append(l.taskPending, rec.ID)
				l.taskReady = false
			}
		}
		if res[i].wvec != nil {
			if disk {
				wIDs = append(wIDs, rec.ID)
				wVecs = append(wVecs, res[i].wvec)
			} else {
				_ = l.weightCS.AddVector(rec.ID, res[i].wvec)
			}
		}
	}
	if disk {
		if err := l.adoptDiskIndex(l.behaviorCS, "behavior", bIDs, bVecs); err != nil {
			return err
		}
		if err := l.adoptDiskIndex(l.weightCS, "weights", wIDs, wVecs); err != nil {
			return err
		}
	}
	return nil
}

// adoptDiskIndex points a content searcher at the on-disk vector segment for
// its space. A segment left by a previous run is reused only when its stored
// checksums and row count prove it holds exactly the rehydrated vectors —
// anything else (torn write, stale contents, changed embedding config) is
// discarded and rebuilt from the vectors just decoded out of the durable
// vec records, so a corrupt segment can never be served. Spaces with no
// vectors adopt an empty segment: post-open ingests then land in the
// segment's bounded, self-spilling in-RAM tail rather than a pure in-RAM
// index.
func (l *Lake) adoptDiskIndex(cs *search.ContentSearcher, space string, ids []string, vecs []tensor.Vector) error {
	path := filepath.Join(l.cfg.Dir, "vectors", space+".seg")
	row := func(i int) []float64 { return vecs[i] }
	wantIDs, wantData := index.SegmentChecksums(ids, row)
	if df, err := index.OpenDiskFlat(path, l.cfg.FS, index.Cosine, l.quantConfig()); err == nil {
		gotIDs, gotData := df.Checksums()
		if df.SegmentLen() == len(ids) && gotIDs == wantIDs && gotData == wantData {
			cs.AdoptIndex(df, ids)
			return nil
		}
		df.Close()
	}
	df, err := index.BuildDiskFlat(path, l.cfg.FS, index.Cosine, l.quantConfig(), ids, row)
	if err != nil {
		return fmt.Errorf("lake: build %s vector segment: %w", space, err)
	}
	cs.AdoptIndex(df, ids)
	return nil
}

// hydrateOne performs the parallelizable part of rehydrating one record.
// known, when non-nil, is a point-in-time snapshot of the blob store's
// contents used to answer existence checks without touching the filesystem.
func (l *Lake) hydrateOne(rec *registry.Record, known map[blob.ID]struct{}) hydrated {
	if rec.Weights == "" {
		return hydrated{} // closed-weights model: behaviour is gone across restarts
	}
	if l.cfg.EagerRehydrate {
		// The pre-vec-record path, kept intact as the measured baseline:
		// record re-read, blob read + verify, weight decode, re-embed.
		m, err := l.reg.LoadModel(rec.ID)
		if err != nil {
			return hydrated{err: fmt.Errorf("lake: rehydrate %s: %w", rec.ID, err)}
		}
		return l.embedHydrated(m)
	}
	if b, err := l.kv.Get(vecKey(rec.ID)); err == nil {
		if ns, vecs, err := decodeVecRecord(b); err == nil && ns == l.vecNS {
			var h hydrated
			for _, sv := range vecs {
				switch sv.Space {
				case l.behaviorCS.EmbedderName():
					h.bvec = sv.Vec
				case l.weightCS.EmbedderName():
					h.wvec = sv.Vec
				}
			}
			if h.bvec != nil || h.wvec != nil {
				// A registered blob that vanished — the crash-consistency
				// hazard a reopen must catch — fails Open loudly. Content
				// verification is deferred to the first read unless
				// VerifyBlobsOnOpen asks for the full integrity sweep:
				// blob writes are atomic (temp + rename), so a present
				// blob was written whole, and every Get checksum-verifies
				// before returning. Skipping the full read keeps fast
				// Open O(records), not O(weight bytes).
				if l.cfg.VerifyBlobsOnOpen {
					if _, err := l.blobs.Get(rec.Weights); err != nil {
						return hydrated{err: fmt.Errorf("lake: rehydrate %s: %w", rec.ID, err)}
					}
				} else {
					exists := false
					if known != nil {
						_, exists = known[rec.Weights]
					} else {
						exists = l.blobs.Has(rec.Weights)
					}
					if !exists {
						return hydrated{err: fmt.Errorf("lake: rehydrate %s: %w: %s",
							rec.ID, blob.ErrNotFound, rec.Weights)}
					}
				}
				return h
			}
		}
	}
	// Fallback (pre-vec lakes, changed embedding config): read + verify the
	// blob, decode the model, and embed it like ingest would.
	raw, err := l.blobs.Get(rec.Weights)
	if err != nil {
		return hydrated{err: fmt.Errorf("lake: rehydrate %s: %w", rec.ID, err)}
	}
	net, err := nn.DecodeMLP(raw)
	if err != nil {
		return hydrated{err: fmt.Errorf("lake: rehydrate %s: decode weights: %w", rec.ID, err)}
	}
	return l.embedHydrated(&model.Model{ID: rec.ID, Name: rec.Name, Net: net, Hist: rec.Hist})
}

// embedHydrated embeds a decoded model for both content spaces — the shared
// tail of the eager and fallback rehydrate paths.
func (l *Lake) embedHydrated(m *model.Model) hydrated {
	h := hydrated{m: m}
	mh := model.NewHandle(m)
	if v, err := l.behaviorCS.EmbedQuery(mh); err == nil {
		h.bvec = v
	}
	if v, err := l.weightCS.EmbedQuery(mh); err == nil {
		h.wvec = v
	}
	return h
}

// runParallel runs fn(0..n-1) across a bounded worker pool. parallelism <= 0
// means GOMAXPROCS; fn must synchronize any shared state itself.
func runParallel(n, parallelism int, fn func(int)) {
	if n == 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ensureTaskRoster materializes the task-search roster deferred by a fast
// rehydrate: model handles load on first task search instead of on every
// reopen. Models that fail to load (e.g. deleted since) are skipped, which
// matches the eager path's "nothing content-indexable survives" policy.
func (l *Lake) ensureTaskRoster() {
	l.mu.RLock()
	ready := l.taskReady
	l.mu.RUnlock()
	if ready {
		return
	}
	l.rosterMu.Lock()
	defer l.rosterMu.Unlock()
	l.mu.Lock()
	pending := l.taskPending
	l.taskPending = nil
	l.taskReady = true
	l.mu.Unlock()
	for _, id := range pending {
		h, err := l.Model(id)
		if err != nil {
			continue
		}
		l.taskSearch.Add(h)
	}
}

// ensureKeyword materializes the keyword index deferred by rehydrate: cards
// load and tokenize on the first keyword search instead of on every reopen.
// A PutCard racing the drain is safe — keyword.Add replaces a model's
// document, and the drain reads the registry's current (already updated)
// card.
func (l *Lake) ensureKeyword() {
	l.mu.RLock()
	ready := l.kwReady
	l.mu.RUnlock()
	if ready {
		return
	}
	l.kwMu.Lock()
	defer l.kwMu.Unlock()
	l.mu.Lock()
	pending := l.kwPending
	l.kwPending = nil
	l.kwReady = true
	l.mu.Unlock()
	for _, id := range pending {
		if c, err := l.reg.Card(id); err == nil {
			// Drained documents are fresh to the index (adopted segments
			// were excluded from the backlog), so Add's only failure mode
			// — a disk demote during replace — cannot occur.
			_ = l.keyword.Add(id, c.Text())
		}
	}
}

// taskSearchAdd routes a freshly ingested behaviour-indexed model into the
// task roster: directly when the roster is live, or onto the pending queue
// when rehydration deferred it (keeping roster order = ingest order).
func (l *Lake) taskSearchAdd(m *model.Model) {
	l.mu.Lock()
	if !l.taskReady {
		l.taskPending = append(l.taskPending, m.ID)
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	l.taskSearch.Add(model.NewHandle(m))
}

// Close releases the lake's storage: the metadata store and, for
// disk-resident lakes, the segment files the content indexes keep open for
// pread rescoring.
func (l *Lake) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	var err error
	if l.cfg.DiskResidentPostings {
		// Publish the keyword map tiers so the next Open adopts complete
		// segments instead of re-tokenizing the corpus. Flush failures are
		// not fatal to Close — segments are derived state and whatever
		// did not publish simply rebuilds from cards.
		err = l.keyword.Flush()
	}
	l.keyword.Close()
	if cerr := l.kv.Close(); err == nil {
		err = cerr
	}
	if cerr := l.behaviorCS.Close(); err == nil {
		err = cerr
	}
	if cerr := l.weightCS.Close(); err == nil {
		err = cerr
	}
	return err
}

// Ready reports whether the lake can serve requests: the metadata store is
// open and the in-memory indexes are built (rehydration completes inside
// Open, so an open lake is an indexed lake). It backs the server's /readyz
// readiness probe; Close flips it permanently.
func (l *Lake) Ready() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return errors.New("lake: closed")
	}
	if _, err := l.kv.Get("meta/seq"); err != nil && errors.Is(err, kvstore.ErrClosed) {
		return fmt.Errorf("lake: metadata store: %w", err)
	}
	return nil
}

// Count returns the number of models in the lake.
func (l *Lake) Count() int { return l.reg.Count() }

// TierMemStats breaks the lake's index-resident heap down by storage tier.
// All three fields use the same accounting heuristics (16-byte string
// headers, 48-byte map buckets), so the numbers are comparable across tiers
// and across lake configurations — a disk-resident lake's vector and
// postings tiers shrink to their in-RAM metadata while KV stays put.
type TierMemStats struct {
	VectorBytes   int64 `json:"vector_bytes"`   // both content-space ANN indexes
	PostingsBytes int64 `json:"postings_bytes"` // keyword index, map tier + segments
	KVBytes       int64 `json:"kv_bytes"`       // metadata store's live key/value map
}

// TierMemStats reports the lake's current per-tier index memory. The keyword
// tier is drained first so a freshly opened lake reports its real postings
// footprint rather than the lazy-rehydrate queue's zero.
func (l *Lake) TierMemStats() TierMemStats {
	l.ensureKeyword()
	return TierMemStats{
		VectorBytes:   l.behaviorCS.MemBytes() + l.weightCS.MemBytes(),
		PostingsBytes: l.keyword.MemBytes(),
		KVBytes:       l.kv.ApproxMemBytes(),
	}
}

// embedded holds the ID-independent per-model work a batch ingest can do
// concurrently before any durable state is touched: the content-space
// embeddings and the weights fingerprint.
type embedded struct {
	bvec, wvec tensor.Vector
	fp         string
	done       bool
}

// preparedIngest is one model's fully staged ingest: registry ops, the
// vec-record and provenance ops that commit atomically with them, and the
// in-memory bookkeeping inputs for after the batch lands.
type preparedIngest struct {
	pend  *registry.Pending
	extra []kvstore.Op // vec record + provenance, same atomic batch
	bvec  tensor.Vector
	wvec  tensor.Vector
	m     *model.Model
	c     *card.Card
}

// embedItem computes a model's content-space vectors and weights
// fingerprint. All of it is independent of the (not yet assigned) model ID,
// which is what lets batch ingest run this stage on a worker pool.
func (l *Lake) embedItem(m *model.Model) embedded {
	e := embedded{done: true}
	if m == nil {
		return e
	}
	h := model.NewHandle(m)
	if v, err := l.behaviorCS.EmbedQuery(h); err == nil {
		e.bvec = v
	}
	if v, err := l.weightCS.EmbedQuery(h); err == nil {
		e.wvec = v
	}
	if fp, ok := embedding.Fingerprint(h); ok {
		e.fp = fp
	}
	return e
}

// prepareIngest stages one model for commit: registry Prepare (ID + seq
// assignment, record/card/name ops), the persisted-vector record, and the
// provenance journal entries. pending carries provenance entity IDs staged
// earlier in the same batch, so in-batch derivations relate exactly like a
// serial ingest loop would. Nothing durable happens here beyond sequence
// leases; the caller owns blob writes and the atomic Apply.
func (l *Lake) prepareIngest(m *model.Model, c *card.Card, opts registry.RegisterOptions, e embedded, pending map[string]bool) (*preparedIngest, error) {
	if !e.done {
		e = l.embedItem(m)
	}
	if e.fp != "" && opts.WeightsFP == "" {
		opts.WeightsFP = e.fp
	}
	pend, err := l.reg.Prepare(m, c, opts)
	if err != nil {
		return nil, err
	}
	p := &preparedIngest{pend: pend, bvec: e.bvec, wvec: e.wvec, m: m, c: c}
	if pend.Rec.Weights != "" && (e.bvec != nil || e.wvec != nil) {
		// Persist the vectors for open-weights models only: closed-weights
		// behaviour intentionally does not survive restarts.
		var vecs []spaceVec
		if e.bvec != nil {
			vecs = append(vecs, spaceVec{Space: l.behaviorCS.EmbedderName(), Vec: e.bvec})
		}
		if e.wvec != nil {
			vecs = append(vecs, spaceVec{Space: l.weightCS.EmbedderName(), Vec: e.wvec})
		}
		p.extra = append(p.extra, kvstore.Op{Key: vecKey(pend.Rec.ID), Value: encodeVecRecord(l.vecNS, vecs)})
	}
	provOps, err := l.provenanceOps(pend.Rec, m, pending)
	if err != nil {
		return nil, err
	}
	p.extra = append(p.extra, provOps...)
	return p, nil
}

// commitIngest applies the in-memory effects of a landed ingest batch entry,
// in the same order the old serial path did. The caller invalidates the
// query cache (once per batch, not per model).
func (l *Lake) commitIngest(p *preparedIngest) {
	rec := p.pend.Rec
	p.m.ID = rec.ID
	l.mu.Lock()
	l.modelCache[rec.ID] = p.m
	l.graph = nil // new model invalidates the cached version graph
	l.mu.Unlock()
	if p.c != nil {
		cc := p.c.Clone()
		cc.ModelID = rec.ID
		// A freshly minted ID is never segment-resident, so Add cannot
		// need the (fallible) demote path.
		_ = l.keyword.Add(rec.ID, cc.Text())
	}
	if p.bvec != nil {
		if err := l.behaviorCS.AddVector(rec.ID, p.bvec); err == nil {
			l.taskSearchAdd(p.m)
		}
	}
	if p.wvec != nil {
		_ = l.weightCS.AddVector(rec.ID, p.wvec)
	}
}

// Ingest registers a model with its card, indexes it for every search
// modality, and journals its provenance. The registry record, name mapping,
// card, persisted index vectors, and provenance entries commit in ONE atomic
// kvstore batch: a crash anywhere leaves either the whole model or none of
// it, never a half-registered ghost. It returns the registry record.
func (l *Lake) Ingest(m *model.Model, c *card.Card, opts registry.RegisterOptions) (*registry.Record, error) {
	start := time.Now()
	defer mIngestDur.Since(start)
	mIngests.Inc()
	p, err := l.prepareIngest(m, c, opts, embedded{}, map[string]bool{})
	if err != nil {
		return nil, err
	}
	if p.pend.EncodedWeights != nil {
		if _, err := l.blobs.Put(p.pend.EncodedWeights); err != nil {
			return nil, fmt.Errorf("registry: store weights: %w", err)
		}
	}
	if err := l.kv.Apply(append(p.pend.Ops, p.extra...)); err != nil {
		return nil, err
	}
	l.commitIngest(p)
	l.qcache.invalidate() // new vectors can change any content-search answer
	return p.pend.Rec, nil
}

// IngestContext is Ingest with a context boundary check: a request whose
// caller has already gone away (canceled, deadline expired) is refused
// before any durable work starts, instead of committing a write nobody will
// see acknowledged. The ingest itself is not interruptible mid-commit — an
// atomic batch either fully lands or doesn't — so the check is at the
// boundary, mirroring the cluster write path.
func (l *Lake) IngestContext(ctx context.Context, m *model.Model, c *card.Card, opts registry.RegisterOptions) (*registry.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Ingest(m, c, opts)
}

// provenanceOps builds the journal writes for a model's provenance — the
// model entity, its creating activity, and declared inputs — without
// committing them, so they ride in the registration's atomic batch. pending
// vouches for entity IDs staged earlier in the same batch.
func (l *Lake) provenanceOps(rec *registry.Record, m *model.Model, pending map[string]bool) ([]kvstore.Op, error) {
	var ops []kvstore.Op
	put := func(id string, kind provenance.Kind, label string, attrs map[string]string) error {
		_, op, err := l.prov.PutOps(id, kind, label, attrs)
		if err != nil {
			return fmt.Errorf("lake: provenance: %w", err)
		}
		ops = append(ops, op)
		pending[id] = true
		return nil
	}
	relate := func(typ provenance.RelationType, subject, object string) error {
		op, err := l.prov.RelateOps(typ, subject, object, func(id string) bool { return pending[id] })
		if err != nil {
			return err
		}
		ops = append(ops, op)
		return nil
	}
	ent := "model:" + rec.ID
	if err := put(ent, provenance.Entity, rec.Name, map[string]string{
		"arch": rec.Arch, "version": rec.Version,
	}); err != nil {
		return nil, err
	}
	if m.Hist != nil {
		act := "activity:" + rec.ID + "/" + m.Hist.Transformation
		if err := put(act, provenance.Activity, m.Hist.Transformation, nil); err != nil {
			return nil, err
		}
		if err := relate(provenance.WasGeneratedBy, ent, act); err != nil {
			return nil, err
		}
		if m.Hist.DatasetID != "" {
			dsEnt := "dataset:" + m.Hist.DatasetID
			if err := put(dsEnt, provenance.Entity, m.Hist.DatasetID, nil); err != nil {
				return nil, err
			}
			if err := relate(provenance.Used, act, dsEnt); err != nil {
				return nil, err
			}
		}
		for _, base := range m.Hist.BaseModelIDs {
			baseEnt := "model:" + base
			if l.kv.Has("prov/rec/"+baseEnt) || pending[baseEnt] {
				if err := relate(provenance.WasDerivedFrom, ent, baseEnt); err != nil {
					return nil, err
				}
			}
		}
	}
	return ops, nil
}

// IngestItem is one model in a batch ingest.
type IngestItem struct {
	Model *model.Model
	Card  *card.Card
	Opts  registry.RegisterOptions
}

// Batch-ingest chunking: each chunk of staged models commits as one atomic
// multi-record kvstore batch (one fsync under Sync). Bounds keep a chunk
// comfortably under the store's record-size ceiling while amortizing the
// commit cost across many models.
const (
	ingestChunkModels = 128
	ingestChunkBytes  = 4 << 20
)

// IngestAll is the batch form of Ingest, rebuilt around the write path's
// batch primitives: models are embedded concurrently (stage 1), staged
// serially in input order so IDs and sequence numbers match a serial Ingest
// loop exactly (stage 2), their weights land with coalesced shard-directory
// fsyncs (stage 3), and registration + card + persisted vectors + provenance
// commit in chunked atomic kvstore batches before the in-memory indexes
// update in input order (stage 4). Each chunk is all-or-nothing; the
// returned slices are aligned with items and a nil error means that model
// was fully ingested. parallelism <= 0 uses the lake's configured
// IngestParallelism (and GOMAXPROCS when that is unset too).
func (l *Lake) IngestAll(items []IngestItem, parallelism int) ([]*registry.Record, []error) {
	start := time.Now()
	defer mIngestDur.Since(start)
	mIngests.Add(uint64(len(items)))
	recs := make([]*registry.Record, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return recs, errs
	}
	if parallelism <= 0 {
		parallelism = l.cfg.IngestParallelism
	}

	// Stage 1: embeddings and fingerprints, concurrently — none of it needs
	// the model IDs assigned in stage 2.
	emb := make([]embedded, len(items))
	runParallel(len(items), parallelism, func(i int) {
		emb[i] = l.embedItem(items[i].Model)
	})

	// Stage 2: stage registrations serially in input order. The registry's
	// durable duplicate check cannot see uncommitted batch entries, so
	// in-batch name@version collisions are caught here.
	pres := make([]*preparedIngest, len(items))
	seen := map[string]bool{}
	pendingProv := map[string]bool{}
	var weights [][]byte
	for i, it := range items {
		if it.Model != nil {
			name := it.Opts.Name
			if name == "" {
				name = it.Model.Name
			}
			ver := it.Opts.Version
			if ver == "" {
				ver = "1"
			}
			nv := name + "@" + ver
			if name != "" && seen[nv] {
				errs[i] = fmt.Errorf("%w: %s", registry.ErrDuplicate, nv)
				continue
			}
			seen[nv] = true
		}
		p, err := l.prepareIngest(it.Model, it.Card, it.Opts, emb[i], pendingProv)
		if err != nil {
			errs[i] = err
			continue
		}
		pres[i] = p
		if p.pend.EncodedWeights != nil {
			weights = append(weights, p.pend.EncodedWeights)
		}
	}

	// Stage 3: all weights blobs in one batch write — per-blob atomic, but
	// the shard-directory fsyncs coalesce across the batch.
	if len(weights) > 0 {
		if _, err := l.blobs.PutAll(weights); err != nil {
			for i := range pres {
				if pres[i] != nil {
					errs[i] = fmt.Errorf("registry: store weights: %w", err)
					pres[i] = nil
				}
			}
			return recs, errs
		}
	}

	// Stage 4: chunked atomic commits, then in-memory bookkeeping in input
	// order (so the indexes are identical to a serial Ingest loop).
	flush := func(chunk []int, ops []kvstore.Op) {
		if len(chunk) == 0 {
			return
		}
		if err := l.kv.Apply(ops); err != nil {
			for _, i := range chunk {
				errs[i] = err
			}
			return
		}
		for _, i := range chunk {
			l.commitIngest(pres[i])
			recs[i] = pres[i].pend.Rec
		}
	}
	var chunk []int
	var ops []kvstore.Op
	var opBytes int
	for i := range pres {
		if pres[i] == nil {
			continue
		}
		itemOps := append(append([]kvstore.Op(nil), pres[i].pend.Ops...), pres[i].extra...)
		sz := 0
		for _, op := range itemOps {
			sz += len(op.Key) + len(op.Value)
		}
		if len(chunk) > 0 && (len(chunk) >= ingestChunkModels || opBytes+sz > ingestChunkBytes) {
			flush(chunk, ops)
			chunk, ops, opBytes = nil, nil, 0
		}
		chunk = append(chunk, i)
		ops = append(ops, itemOps...)
		opBytes += sz
	}
	flush(chunk, ops)
	l.qcache.invalidate()
	return recs, errs
}

// IngestAllContext is IngestAll with the same boundary context check as
// IngestContext: a dead context fails every item up front with the context
// error rather than committing a batch for a caller that has gone away.
func (l *Lake) IngestAllContext(ctx context.Context, items []IngestItem, parallelism int) ([]*registry.Record, []error) {
	if err := ctx.Err(); err != nil {
		recs := make([]*registry.Record, len(items))
		errs := make([]error, len(items))
		for i := range errs {
			errs[i] = err
		}
		return recs, errs
	}
	return l.IngestAll(items, parallelism)
}

// Reindex rebuilds both content indexes (and the task-search roster) from
// the registry with up to parallelism embedding workers, swapping the fresh
// indexes in atomically; searches keep hitting the old ones until then.
// With the embedding cache enabled the rebuild is almost pure cache hits.
// It returns the number of models reindexed.
func (l *Lake) Reindex(parallelism int) (int, error) {
	recs, err := l.reg.List()
	if err != nil {
		return 0, err
	}
	var handles []*model.Handle
	for _, rec := range recs {
		h, err := l.Model(rec.ID)
		if err != nil {
			continue // closed-weights model: nothing content-indexable survives restarts
		}
		handles = append(handles, h)
	}
	if parallelism <= 0 {
		parallelism = l.cfg.IngestParallelism
	}
	var taskRoster []*model.Handle
	for i, err := range l.behaviorCS.Reindex(handles, l.newIndex(), parallelism) {
		if err == nil {
			taskRoster = append(taskRoster, handles[i])
		}
	}
	_ = l.weightCS.Reindex(handles, l.newIndex(), parallelism)
	l.taskSearch.Reset(taskRoster)
	// The reset roster is complete: drop any rehydrate-deferred entries so
	// a later SearchTask doesn't re-add them on top.
	l.mu.Lock()
	l.taskPending = nil
	l.taskReady = true
	l.mu.Unlock()
	l.qcache.invalidate()
	return len(handles), nil
}

// EmbedCacheStats reports embedding-cache hits and misses since the lake
// was opened (zeros when the cache is disabled).
func (l *Lake) EmbedCacheStats() (hits, misses uint64) {
	if l.embedCache == nil {
		return 0, 0
	}
	return l.embedCache.Stats()
}

// Model returns a full-view handle for a lake model.
func (l *Lake) Model(id string) (*model.Handle, error) {
	l.mu.RLock()
	m, ok := l.modelCache[id]
	l.mu.RUnlock()
	if ok {
		return model.NewHandle(m), nil
	}
	m, err := l.reg.LoadModel(id)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.modelCache[id] = m
	l.mu.Unlock()
	return model.NewHandle(m), nil
}

// Record returns a model's registry record.
func (l *Lake) Record(id string) (*registry.Record, error) { return l.reg.Get(id) }

// Records lists all registry records.
func (l *Lake) Records() ([]*registry.Record, error) { return l.reg.List() }

// Card returns a model's card.
func (l *Lake) Card(id string) (*card.Card, error) { return l.reg.Card(id) }

// PutCard replaces a model's card and refreshes the keyword index.
func (l *Lake) PutCard(id string, c *card.Card) error {
	if err := l.reg.PutCard(id, c); err != nil {
		return err
	}
	if err := l.keyword.Add(id, c.Text()); err != nil {
		return fmt.Errorf("lake: refresh keyword index: %w", err)
	}
	return nil
}

// Resolve maps name@version to a model ID.
func (l *Lake) Resolve(name, ver string) (string, error) { return l.reg.Resolve(name, ver) }

// datasetMeta is the durable record of a registered dataset: enough for
// version-closure reasoning and cataloging without persisting the feature
// matrices themselves.
type datasetMeta struct {
	ID       string `json:"id"`
	ParentID string `json:"parent_id,omitempty"`
	Domain   string `json:"domain,omitempty"`
	Rows     int    `json:"rows"`
	Classes  int    `json:"classes"`
}

// RegisterDataset makes a dataset known to the lake (for TRAINED ON queries
// and dataset-version reasoning). Its metadata — including the version
// lineage — is persisted, so declarative queries over dataset versions keep
// working after the lake is reopened.
func (l *Lake) RegisterDataset(ds *data.Dataset) error {
	l.mu.Lock()
	l.datasets[ds.ID] = ds
	l.mu.Unlock()
	meta := datasetMeta{ID: ds.ID, ParentID: ds.ParentID, Domain: ds.Domain,
		Rows: ds.Len(), Classes: ds.NumClasses}
	b, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("lake: marshal dataset meta: %w", err)
	}
	if err := l.kv.Put("dataset/"+ds.ID, b); err != nil {
		return fmt.Errorf("lake: persist dataset %s: %w", ds.ID, err)
	}
	return nil
}

// DatasetLineage returns the persisted (ID → parent ID) map of all
// registered datasets, the basis for "VERSIONS OF" query closure.
func (l *Lake) DatasetLineage() (map[string]string, error) {
	out := map[string]string{}
	var decodeErr error
	err := l.kv.Scan("dataset/", func(k string, v []byte) bool {
		var meta datasetMeta
		if err := json.Unmarshal(v, &meta); err != nil {
			decodeErr = fmt.Errorf("lake: decode %s: %w", k, err)
			return false
		}
		out[meta.ID] = meta.ParentID
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, decodeErr
}

// RegisterBenchmark adds a benchmark to the lake's suite.
func (l *Lake) RegisterBenchmark(b *benchmark.Benchmark) {
	l.mu.Lock()
	l.benchmarks[b.ID] = b
	l.mu.Unlock()
}

// Benchmarks lists registered benchmarks sorted by ID.
func (l *Lake) Benchmarks() []*benchmark.Benchmark {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*benchmark.Benchmark, 0, len(l.benchmarks))
	for _, b := range l.benchmarks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Score runs (or fetches the cached score of) a model on a benchmark.
func (l *Lake) Score(modelID, benchID string) (float64, error) {
	l.mu.RLock()
	b, ok := l.benchmarks[benchID]
	l.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("lake: unknown benchmark %q", benchID)
	}
	h, err := l.Model(modelID)
	if err != nil {
		return 0, err
	}
	return l.runner.Score(h, b)
}

// SearchKeyword is metadata search over cards (the status-quo baseline).
func (l *Lake) SearchKeyword(query string, k int) []search.Hit {
	hits, _ := l.SearchKeywordContext(context.Background(), query, k)
	return hits
}

// SearchKeywordContext is SearchKeyword honoring a request context, so a
// timed-out request is refused instead of burning index time on an answer
// nobody is waiting for.
func (l *Lake) SearchKeywordContext(ctx context.Context, query string, k int) ([]search.Hit, error) {
	defer mSearchDurs("keyword").Since(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.ensureKeyword()
	return l.keyword.Search(query, k)
}

// contentSearcher maps an embedding-space name to its searcher.
func (l *Lake) contentSearcher(space string) (*search.ContentSearcher, error) {
	switch space {
	case "", "behavior":
		return l.behaviorCS, nil
	case "weights":
		return l.weightCS, nil
	}
	return nil, fmt.Errorf("lake: unknown embedding space %q", space)
}

// searchContent is the shared model-as-query read path: embed the query
// (embedding cache), consult the query-result cache for the raw top-(k+1)
// hits, fall through to the ANN index on a miss, then drop the query model's
// own entry. Cached and uncached answers are identical by construction — the
// cache stores the raw index response, and the same ExcludeSelf
// post-processing runs either way.
func (l *Lake) searchContent(ctx context.Context, space string, h *model.Handle, k int) ([]search.Hit, error) {
	defer mSearchDurs("model").Since(time.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cs, err := l.contentSearcher(space)
	if err != nil {
		return nil, err
	}
	v, err := cs.EmbedQuery(h)
	if err != nil {
		return nil, err
	}
	// The cache key includes the searcher's space name; normalize "" so the
	// default space shares entries with its explicit spelling.
	cacheSpace := space
	if cacheSpace == "" {
		cacheSpace = "behavior"
	}
	raw, ok := l.qcache.get(cacheSpace, v, k+1)
	if !ok {
		raw, err = cs.SearchByVectorContext(ctx, v, k+1)
		if err != nil {
			return nil, err
		}
		l.qcache.put(cacheSpace, v, k+1, raw)
	}
	return search.ExcludeSelf(raw, h.ID(), k), nil
}

// SearchByModel is model-as-query related-model search in the given space
// ("behavior", the default, or "weights").
func (l *Lake) SearchByModel(id, space string, k int) ([]search.Hit, error) {
	return l.SearchByModelContext(context.Background(), id, space, k)
}

// SearchByModelContext is SearchByModel honoring a request context.
func (l *Lake) SearchByModelContext(ctx context.Context, id, space string, k int) ([]search.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := l.Model(id)
	if err != nil {
		return nil, err
	}
	return l.searchContent(ctx, space, h, k)
}

// SearchByHandle is model-as-query search with an external query model (one
// that is not necessarily in the lake), e.g. "find models like this one I
// built locally".
func (l *Lake) SearchByHandle(h *model.Handle, space string, k int) ([]search.Hit, error) {
	return l.SearchByHandleContext(context.Background(), h, space, k)
}

// SearchByHandleContext is SearchByHandle honoring a request context.
func (l *Lake) SearchByHandleContext(ctx context.Context, h *model.Handle, space string, k int) ([]search.Hit, error) {
	return l.searchContent(ctx, space, h, k)
}

// SearchByModelMany answers a batch of model-as-query searches in one call,
// fanning the per-query work (embed, cache lookup, index scan) across a
// bounded worker pool. Hits and errors are aligned with ids; one model's
// failure does not abort the batch. parallelism <= 0 means GOMAXPROCS.
// Every answer is identical to a serial SearchByModelContext call.
func (l *Lake) SearchByModelMany(ctx context.Context, ids []string, space string, k, parallelism int) ([][]search.Hit, []error) {
	hits := make([][]search.Hit, len(ids))
	errs := make([]error, len(ids))
	if len(ids) == 0 {
		return hits, errs
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(ids) {
		parallelism = len(ids)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				hits[i], errs[i] = l.SearchByModelContext(ctx, ids[i], space, k)
			}
		}()
	}
	wg.Wait()
	return hits, errs
}

// QueryCacheStats reports query-result-cache hits and misses since the lake
// was opened (zeros when the cache is disabled).
func (l *Lake) QueryCacheStats() (hits, misses uint64) {
	return l.qcache.stats()
}

// SearchTask ranks models by behavioural fit to labeled task examples. The
// first task search after a reopen materializes the deferred roster (see
// ensureTaskRoster); answers are identical to an eagerly built roster
// because task ranking sorts by score with ID tie-breaks, independent of
// roster order.
func (l *Lake) SearchTask(examples []search.TaskExample, k int) ([]search.Hit, error) {
	defer mSearchDurs("task").Since(time.Now())
	l.ensureTaskRoster()
	return l.taskSearch.Search(examples, k)
}

// SearchHybrid fuses keyword and behavioural rankings with reciprocal-rank
// fusion: text finds documented models, behaviour finds similar ones.
func (l *Lake) SearchHybrid(query string, queryModelID string, k int) ([]search.Hit, error) {
	defer mSearchDurs("hybrid").Since(time.Now())
	var rankings [][]search.Hit
	if query != "" {
		l.ensureKeyword()
		kw, err := l.keyword.Search(query, k*4)
		if err != nil {
			return nil, err
		}
		rankings = append(rankings, kw)
	}
	if queryModelID != "" {
		h, err := l.Model(queryModelID)
		if err != nil {
			return nil, err
		}
		content, err := l.behaviorCS.SearchByModel(h, k*4)
		if err != nil {
			return nil, err
		}
		rankings = append(rankings, content)
	}
	if len(rankings) == 0 {
		return nil, fmt.Errorf("lake: hybrid search needs a text query or a query model")
	}
	fused := search.FuseRRF(0, rankings...)
	if k < len(fused) {
		fused = fused[:k]
	}
	return fused, nil
}

// VersionGraph reconstructs (and caches) the directed Model Graph over every
// open-weights model in the lake.
func (l *Lake) VersionGraph() (*version.Graph, error) {
	return l.VersionGraphContext(context.Background())
}

// VersionGraphContext is VersionGraph honoring a request context: the
// reconstruction is abandoned between models if ctx is canceled, so a slow
// graph build cannot outlive its HTTP request.
func (l *Lake) VersionGraphContext(ctx context.Context) (*version.Graph, error) {
	l.mu.RLock()
	if l.graph != nil {
		g := l.graph
		l.mu.RUnlock()
		return g, nil
	}
	l.mu.RUnlock()

	recs, err := l.reg.List()
	if err != nil {
		return nil, err
	}
	var nodes []version.Node
	for _, rec := range recs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h, err := l.Model(rec.ID)
		if err != nil {
			continue
		}
		net, err := h.Network()
		if err != nil {
			continue
		}
		nodes = append(nodes, version.Node{ID: rec.ID, Net: net})
	}
	if len(nodes) == 0 {
		return &version.Graph{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := version.Reconstruct(nodes, version.Config{ClassifyEdges: true, Seed: l.cfg.Seed})
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.graph = g
	l.mu.Unlock()
	return g, nil
}

// Attribute computes gradient-influence attribution of the model's behaviour
// at (x, y) over the given training dataset.
func (l *Lake) Attribute(modelID string, train *data.Dataset, x tensor.Vector, y int) ([]float64, error) {
	h, err := l.Model(modelID)
	if err != nil {
		return nil, err
	}
	net, err := h.Network()
	if err != nil {
		return nil, fmt.Errorf("lake: attribution needs intrinsics: %w", err)
	}
	return attribution.GradientInfluence(net, train, x, y)
}

// GenerateCard drafts documentation for a model from lake analyses.
func (l *Lake) GenerateCard(modelID string) (*docgen.Draft, error) {
	return l.GenerateCardContext(context.Background(), modelID)
}

// GenerateCardContext is GenerateCard honoring a request context.
func (l *Lake) GenerateCardContext(ctx context.Context, modelID string) (*docgen.Draft, error) {
	h, err := l.Model(modelID)
	if err != nil {
		return nil, err
	}
	existing, err := l.Card(modelID)
	if err != nil && !errors.Is(err, registry.ErrNotFound) {
		return nil, err
	}
	g, err := l.VersionGraphContext(ctx)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gen := &docgen.Generator{
		Peers:      l.peers(),
		Graph:      g,
		Runner:     l.runner,
		Benchmarks: l.Benchmarks(),
		Behavior:   embedding.NewBehaviorEmbedder(l.cfg.InputDim, l.cfg.Probes, l.cfg.MaxClasses, l.cfg.Seed),
		ProbeSeed:  l.cfg.Seed + 2,
	}
	return gen.Draft(h, existing)
}

func (l *Lake) peers() []docgen.Peer {
	recs, _ := l.reg.List()
	var out []docgen.Peer
	for _, rec := range recs {
		h, err := l.Model(rec.ID)
		if err != nil {
			continue
		}
		c, err := l.Card(rec.ID)
		if err != nil {
			c = nil
		}
		out = append(out, docgen.Peer{Handle: h, Card: c})
	}
	return out
}

// Audit runs the compliance audit for a model. flagged maps known-risky
// model IDs to reasons; risk propagates over the *recovered* version graph.
func (l *Lake) Audit(modelID string, flagged map[string]string) (*audit.Report, error) {
	return l.AuditContext(context.Background(), modelID, flagged)
}

// AuditContext is Audit honoring a request context.
func (l *Lake) AuditContext(ctx context.Context, modelID string, flagged map[string]string) (*audit.Report, error) {
	c, err := l.Card(modelID)
	if err != nil {
		c = nil
	}
	g, err := l.VersionGraphContext(ctx)
	if err != nil {
		return nil, err
	}
	var docFlags []string
	if draft, err := l.GenerateCardContext(ctx, modelID); err == nil {
		docFlags = draft.Flags
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Behavioural verification of the declared training data, when the
	// claimed dataset is registered with the lake.
	var claim audit.ClaimCheck
	if c != nil && c.TrainingData != "" {
		l.mu.RLock()
		ds := l.datasets[c.TrainingData]
		l.mu.RUnlock()
		if ds != nil {
			if h, err := l.Model(modelID); err == nil {
				if verdict, acc, err := docgen.VerifyTrainingClaim(h, ds); err == nil {
					claim = audit.ClaimCheck{Claim: c.TrainingData, Verdict: string(verdict), Evidence: acc}
				}
			}
		}
	}
	return audit.Run(audit.Input{
		ModelID:       modelID,
		Card:          c,
		Graph:         g,
		Flagged:       flagged,
		MembershipAUC: -1,
		DocFlags:      docFlags,
		TrainingClaim: claim,
	}), nil
}

// Cite produces a version-graph-anchored citation for a model.
func (l *Lake) Cite(modelID string) (provenance.Citation, error) {
	rec, err := l.reg.Get(modelID)
	if err != nil {
		return provenance.Citation{}, err
	}
	g, err := l.VersionGraph()
	if err != nil {
		return provenance.Citation{}, err
	}
	return provenance.Cite(rec.ID, rec.Name, rec.Version, g, rec.Seq), nil
}

// Provenance exposes the journal for why/where queries.
func (l *Lake) Provenance() *provenance.Journal { return l.prov }

// Query parses and executes an MLQL query against the lake.
func (l *Lake) Query(q string) (*mlql.Result, error) {
	return l.QueryContext(context.Background(), q)
}

// QueryContext is Query honoring a request context: the executor checks the
// context between candidate-filtering stages, so a canceled or timed-out
// request abandons the query promptly.
func (l *Lake) QueryContext(ctx context.Context, q string) (*mlql.Result, error) {
	defer mQueryDur.Since(time.Now())
	return mlql.RunContext(ctx, q, (*catalog)(l))
}

// Explain parses a query and renders its evaluation plan without running it.
func (l *Lake) Explain(q string) (string, error) {
	parsed, err := mlql.Parse(q)
	if err != nil {
		return "", err
	}
	return mlql.Explain(parsed), nil
}

// Compact rewrites the metadata log to contain only live records — useful
// after heavy card churn or score-cache turnover on a long-lived lake.
func (l *Lake) Compact() error { return l.kv.Compact() }

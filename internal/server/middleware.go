// Serving-hardening middleware: the layers between the listener and the
// lake handlers that keep one bad request (a panic, a slow query, a
// stampede) from taking the whole platform down. Assembled in Handler();
// each layer is independently testable.
package server

import (
	"bytes"
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"modellake/internal/obs"
)

// recoverMiddleware converts a handler panic into a logged 500 so the
// process survives; the stack goes to the log, never to the client.
func recoverMiddleware(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				// The sentinel the net/http machinery uses to abort a
				// response cleanly; suppressing it would hide the abort.
				panic(p)
			}
			mPanics.Inc()
			logger.Printf("panic serving %s %s (request %s): %v\n%s",
				r.Method, r.URL.Path, obs.RequestID(r.Context()), p, debug.Stack())
			// Best effort: if the handler already started the response the
			// status cannot change, but the connection still closes sanely.
			writeJSON(w, http.StatusInternalServerError, httpError{Error: "internal server error"})
		}()
		next.ServeHTTP(w, r)
	})
}

// limitMiddleware caps concurrently served requests. Excess requests are
// rejected immediately with 429 and a Retry-After hint — shedding load
// beats queueing it when the lake is saturated. Health probes and the
// metrics endpoint are exempt so orchestrators (and whatever is scraping
// metrics) can still see a saturated-but-alive server.
func limitMiddleware(maxInflight int, next http.Handler) http.Handler {
	sem := make(chan struct{}, maxInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			mShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, httpError{Error: "server overloaded, retry later"})
		}
	})
}

// timeoutMiddleware enforces a per-request deadline. The handler runs with
// a deadline-carrying context (which the lake's query paths honor) and its
// response is buffered; if the deadline passes first the client gets a 504
// and whatever the handler writes afterwards is discarded.
func timeoutMiddleware(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		tw := &timeoutWriter{h: make(http.Header)}
		done := make(chan struct{})
		panicCh := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicCh <- p
				}
			}()
			next.ServeHTTP(tw, r)
			close(done)
		}()
		select {
		case p := <-panicCh:
			panic(p) // re-panic on the serving goroutine for recoverMiddleware
		case <-done:
			tw.copyTo(w)
		case <-ctx.Done():
			tw.timeOut()
			timeoutCounter("deadline").Inc()
			writeJSON(w, http.StatusGatewayTimeout, httpError{Error: "request timed out"})
		}
	})
}

// timeoutWriter buffers a handler's response so timeoutMiddleware can
// atomically either deliver it or replace it with a 504.
type timeoutWriter struct {
	mu       sync.Mutex
	h        http.Header
	buf      bytes.Buffer
	status   int
	timedOut bool
}

func (tw *timeoutWriter) Header() http.Header { return tw.h }

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status == 0 {
		tw.status = code
	}
}

func (tw *timeoutWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.buf.Write(p)
}

func (tw *timeoutWriter) timeOut() {
	tw.mu.Lock()
	tw.timedOut = true
	tw.mu.Unlock()
}

func (tw *timeoutWriter) copyTo(w http.ResponseWriter) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	for k, vv := range tw.h {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	w.WriteHeader(tw.status)
	_, _ = w.Write(tw.buf.Bytes())
}

package server

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"modellake/internal/lake"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// TestPanicRecovery: a panicking handler yields a 500 with the stack logged,
// and the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	mux.HandleFunc("/fine", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	})
	ts := httptest.NewServer(recoverMiddleware(log.New(&logBuf, "", 0), mux))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(logBuf.String(), "handler exploded") {
		t.Fatal("panic value not logged")
	}
	if !strings.Contains(logBuf.String(), "middleware_test.go") {
		t.Fatal("stack trace not logged")
	}
	// The process (and the server goroutine pool) survived.
	resp2, err := http.Get(ts.URL + "/fine")
	if err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("request after panic = %d", resp2.StatusCode)
	}
}

// TestPanicRecoveryThroughTimeout: a panic inside the timeout middleware's
// handler goroutine must propagate to the recovery layer, not kill the
// process or hang the request.
func TestPanicRecoveryThroughTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("deep panic")
	})
	h := recoverMiddleware(quietLogger(), timeoutMiddleware(5*time.Second, mux))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil))
	if rr.Code != 500 {
		t.Fatalf("panic through timeout = %d, want 500", rr.Code)
	}
}

// TestRequestTimeout: a handler that outlives the deadline gets its context
// canceled and the client gets a 504; the handler's late write is discarded.
func TestRequestTimeout(t *testing.T) {
	ctxCanceled := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		close(ctxCanceled)
		w.WriteHeader(200) // too late; must not reach the client
	})
	h := timeoutMiddleware(20*time.Millisecond, mux)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/slow", nil))
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow handler = %d, want 504", rr.Code)
	}
	select {
	case <-ctxCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("handler context never canceled")
	}
}

// TestTimeoutDeliversFastResponses: the buffered writer must pass through
// status, headers, and body for handlers that beat the deadline.
func TestTimeoutDeliversFastResponses(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/fast", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "body bytes")
	})
	h := timeoutMiddleware(5*time.Second, mux)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/fast", nil))
	if rr.Code != http.StatusTeapot || rr.Body.String() != "body bytes" || rr.Header().Get("X-Custom") != "yes" {
		t.Fatalf("buffered response mangled: %d %q %q", rr.Code, rr.Body.String(), rr.Header().Get("X-Custom"))
	}
}

// TestConcurrencyLimit: with 2 slots occupied by parked requests, a third
// request is shed with 429 + Retry-After, while health probes pass through.
func TestConcurrencyLimit(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	mux := http.NewServeMux()
	mux.HandleFunc("/park", func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(200)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	})
	ts := httptest.NewServer(limitMiddleware(2, mux))
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/park")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-entered
	<-entered // both slots held

	resp, err := http.Get(ts.URL + "/park")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After hint")
	}

	// Probes bypass the limiter: orchestrators still see the server.
	probe, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	probe.Body.Close()
	if probe.StatusCode != 200 {
		t.Fatalf("healthz under saturation = %d, want 200", probe.StatusCode)
	}

	close(release)
	wg.Wait()

	// Slots freed: normal traffic flows again.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

// TestDrainFlipsReadiness: Drain turns /readyz into 503 (stop routing to me)
// while /healthz stays 200 (but don't restart me) and real requests still
// complete — the contract a rolling deploy depends on.
func TestDrainFlipsReadiness(t *testing.T) {
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	srv := NewWith(lk, Config{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz before drain = %d", code)
	}
	srv.Drain()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/v1/models", nil); code != 200 {
		t.Fatalf("in-flight traffic during drain = %d, want 200", code)
	}
}

// TestReadyzReportsClosedLake: a lake that lost its store must flip
// readiness without affecting liveness.
func TestReadyzReportsClosedLake(t *testing.T) {
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(lk, Config{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lk.Close()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz with closed lake = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz with closed lake = %d, want 200", code)
	}
}

// TestGracefulShutdownDrainsInflight: http.Server.Shutdown must let a
// request that is already being served run to completion.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		time.Sleep(100 * time.Millisecond)
		io.WriteString(w, "drained fine")
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Start()
	defer ts.Close()

	type result struct {
		body string
		code int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/slow")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{body: string(b), code: resp.StatusCode}
	}()
	<-entered // request is in-flight

	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request killed by shutdown: %v", res.err)
	}
	if res.code != 200 || res.body != "drained fine" {
		t.Fatalf("in-flight request mangled: %d %q", res.code, res.body)
	}
}

// TestIngestBodyLimit: an over-limit ingest body is rejected with 413, not
// read to completion.
func TestIngestBodyLimit(t *testing.T) {
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	srv := NewWith(lk, Config{MaxBodyBytes: 128, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"name":"x","weights_b64":"` + strings.Repeat("A", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d, want 413", resp.StatusCode)
	}
}

// Observability wiring for the HTTP layer: request IDs, the structured
// access log, and per-route RED metrics (rate, errors, duration) recorded
// into the process-wide obs registry that GET /metrics exposes.
package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"modellake/internal/obs"
)

// Request-level metrics. Per-route series are looked up per request (a map
// read under a mutex) — cheap next to any lake operation.
var (
	mInflight   = obs.Default().Gauge("http_requests_inflight")
	mEncodeErrs = obs.Default().Counter("http_response_encode_errors_total")
	mPanics     = obs.Default().Counter("http_panics_total")
	mShed       = obs.Default().Counter("http_load_shed_total")
)

func requestCounter(route, method, class string) *obs.Counter {
	return obs.Default().Counter("http_requests_total",
		obs.L("route", route), obs.L("method", method), obs.L("class", class))
}

func durationHist(route string) *obs.Histogram {
	return obs.Default().Histogram("http_request_duration_seconds", nil, obs.L("route", route))
}

// timeoutCounter counts requests lost to the clock: kind "deadline" for
// expired per-request deadlines (mapped to 504) and "canceled" for clients
// that went away (mapped to 408).
func timeoutCounter(kind string) *obs.Counter {
	return obs.Default().Counter("http_request_timeouts_total", obs.L("kind", kind))
}

// statusClass buckets a status code for the requests counter ("2xx", "4xx",
// ...) so per-route cardinality stays bounded.
func statusClass(status int) string {
	if status < 100 || status > 599 {
		return "other"
	}
	return strconv.Itoa(status/100) + "xx"
}

// routeLabel maps a request path back to its route pattern so metric labels
// have bounded cardinality: every /v1/models/{id}/card hit shares one
// series no matter the id. Unknown paths collapse into "other".
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/readyz", "/metrics",
		"/v1/models", "/v1/models/batch",
		"/v1/search", "/v1/related", "/v1/related/batch", "/v1/query", "/v1/graph":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/models/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch sub := rest[i+1:]; sub {
			case "card", "cite", "draft", "audit", "provenance":
				return "/v1/models/{id}/" + sub
			}
			return "other"
		}
		return "/v1/models/{id}"
	}
	return "other"
}

// statusRecorder captures the status and body size a handler produced so
// the observe middleware can label its metrics and access-log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// observeMiddleware is the outermost layer: it assigns/propagates the
// request ID, counts the request into the per-route metrics, and emits the
// access-log line. Sitting outside the recovery middleware means recovered
// panics are recorded as the 500s the client saw; the deferred recording
// also survives the http.ErrAbortHandler re-panic.
func (s *Server) observeMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		rec := &statusRecorder{ResponseWriter: w}
		mInflight.Inc()
		defer func() {
			mInflight.Dec()
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			route := routeLabel(r)
			dur := time.Since(start)
			requestCounter(route, r.Method, statusClass(status)).Inc()
			durationHist(route).ObserveDuration(dur)
			s.access.Log(obs.AccessEntry{
				Time:       start,
				RequestID:  id,
				Remote:     r.RemoteAddr,
				Method:     r.Method,
				Path:       r.URL.Path,
				Route:      route,
				Status:     status,
				Bytes:      rec.bytes,
				DurationMS: float64(dur) / float64(time.Millisecond),
			})
		}()
		next.ServeHTTP(rec, r)
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestRelatedBatch checks the fan-out endpoint answers every query in one
// round trip, agrees with the single-query endpoint, and reports per-ID
// failures as 207 without failing the healthy queries.
func TestRelatedBatch(t *testing.T) {
	ts, _, _, ids := testServer(t)

	body, _ := json.Marshal(BatchRelatedRequest{
		IDs: []string{ids[0], ids[1], ids[2]}, K: 3, Parallelism: 2,
	})
	resp, err := http.Post(ts.URL+"/v1/related/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Results []BatchRelatedResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("result %d failed: %s", i, res.Error)
		}
		if len(res.Hits) == 0 {
			t.Fatalf("result %d has no hits", i)
		}
	}

	// The batch answer must match the single-query endpoint.
	var single []struct {
		ID    string  `json:"id"`
		Score float64 `json:"score"`
	}
	if code := getJSON(t, ts.URL+"/v1/related?id="+ids[0]+"&k=3", &single); code != 200 {
		t.Fatalf("single related = %d", code)
	}
	if len(single) != len(out.Results[0].Hits) {
		t.Fatalf("batch %d hits vs single %d", len(out.Results[0].Hits), len(single))
	}
	for i := range single {
		if single[i].ID != out.Results[0].Hits[i].ID || single[i].Score != out.Results[0].Hits[i].Score {
			t.Fatalf("hit %d: batch %+v vs single %+v", i, out.Results[0].Hits[i], single[i])
		}
	}

	// Partial failure: unknown ID yields 207 with that ID's error set.
	body, _ = json.Marshal(BatchRelatedRequest{IDs: []string{ids[0], "no-such-model"}, K: 3})
	resp2, err := http.Post(ts.URL+"/v1/related/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMultiStatus {
		t.Fatalf("partial-failure status = %d, want 207", resp2.StatusCode)
	}
	out.Results = nil
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != "" || len(out.Results[0].Hits) == 0 {
		t.Fatalf("healthy query dropped in partial failure: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Fatalf("unknown ID did not error: %+v", out.Results[1])
	}

	// Validation: empty IDs and negative k are 400s.
	for _, bad := range []string{`{}`, `{"ids":["x"],"k":-1}`} {
		resp3, err := http.Post(ts.URL+"/v1/related/batch", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status = %d, want 400", bad, resp3.StatusCode)
		}
	}
}

package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"modellake/internal/benchmark"
	"modellake/internal/card"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/nn"
	"modellake/internal/registry"
	"modellake/internal/search"
)

// testServer spins up a lake with a generated population behind httptest.
func testServer(t *testing.T) (*httptest.Server, *lake.Lake, *lakegen.Population, map[int]string) {
	t.Helper()
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lk.Close() })
	spec := lakegen.DefaultSpec(701)
	spec.NumBases = 3
	spec.ChildrenPerBase = 3
	pop, err := lakegen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]string{}
	for _, ds := range pop.Datasets {
		lk.RegisterDataset(ds)
	}
	for i, m := range pop.Members {
		rec, err := lk.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			lk.RegisterBenchmark(&benchmark.Benchmark{
				ID: "bench-" + m.Truth.Domain, DS: pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	ts := httptest.NewServer(New(lk).Handler())
	t.Cleanup(ts.Close)
	return ts, lk, pop, ids
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndList(t *testing.T) {
	ts, lk, _, _ := testServer(t)
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("health status = %v", health["status"])
	}
	var ready map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	if int(ready["models"].(float64)) != lk.Count() {
		t.Fatalf("ready models = %v", ready["models"])
	}
	var recs []registry.Record
	if code := getJSON(t, ts.URL+"/v1/models", &recs); code != 200 {
		t.Fatalf("list = %d", code)
	}
	if len(recs) != lk.Count() {
		t.Fatalf("listed %d records, want %d", len(recs), lk.Count())
	}
}

func TestModelAndCardRoutes(t *testing.T) {
	ts, _, pop, ids := testServer(t)
	var rec registry.Record
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0], &rec); code != 200 {
		t.Fatalf("model = %d", code)
	}
	if rec.Name != pop.Members[0].Truth.Name {
		t.Fatalf("record name = %q", rec.Name)
	}
	var c card.Card
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0]+"/card", &c); code != 200 {
		t.Fatalf("card = %d", code)
	}
	// Markdown rendering.
	resp, err := http.Get(ts.URL + "/v1/models/" + ids[0] + "/card?format=markdown")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	md, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "# Model Card:") {
		t.Fatalf("markdown card missing header: %.80s", md)
	}
	// Missing model → 404 with JSON error.
	if code := getJSON(t, ts.URL+"/v1/models/m-999999", nil); code != 404 {
		t.Fatalf("missing model = %d, want 404", code)
	}
}

func TestSearchRelatedQueryGraph(t *testing.T) {
	ts, _, _, ids := testServer(t)
	var hits []search.Hit
	if code := getJSON(t, ts.URL+"/v1/search?q=legal&k=3", &hits); code != 200 {
		t.Fatalf("search = %d", code)
	}
	if len(hits) == 0 {
		t.Fatal("search returned nothing")
	}
	if code := getJSON(t, ts.URL+"/v1/search", nil); code != 400 {
		t.Fatalf("missing q = %d, want 400", code)
	}

	var related []search.Hit
	if code := getJSON(t, ts.URL+"/v1/related?id="+ids[0]+"&k=3", &related); code != 200 {
		t.Fatalf("related = %d", code)
	}
	if len(related) != 3 {
		t.Fatalf("related hits = %d", len(related))
	}
	if code := getJSON(t, ts.URL+"/v1/related", nil); code != 400 {
		t.Fatalf("missing id = %d, want 400", code)
	}

	var queryResp struct {
		Query string       `json:"query"`
		Hits  []search.Hit `json:"hits"`
	}
	q := "FIND MODELS WHERE DOMAIN = 'legal' LIMIT 5"
	if code := getJSON(t, ts.URL+"/v1/query?q="+strings.ReplaceAll(q, " ", "+"), &queryResp); code != 200 {
		t.Fatalf("query = %d", code)
	}
	if len(queryResp.Hits) == 0 {
		t.Fatal("query returned nothing")
	}
	if code := getJSON(t, ts.URL+"/v1/query?q=NONSENSE", nil); code != 400 {
		t.Fatalf("bad MLQL = %d, want 400", code)
	}

	var graph struct {
		Nodes []string `json:"Nodes"`
	}
	if code := getJSON(t, ts.URL+"/v1/graph", &graph); code != 200 {
		t.Fatalf("graph = %d", code)
	}
	if len(graph.Nodes) == 0 {
		t.Fatal("graph empty")
	}
}

func TestCiteDraftAuditProvenance(t *testing.T) {
	ts, _, _, ids := testServer(t)
	var cite struct {
		Text string `json:"text"`
	}
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0]+"/cite", &cite); code != 200 {
		t.Fatalf("cite = %d", code)
	}
	if cite.Text == "" {
		t.Fatal("empty citation")
	}
	var draft struct {
		Card card.Card `json:"card"`
	}
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[1]+"/draft", &draft); code != 200 {
		t.Fatalf("draft = %d", code)
	}
	if draft.Card.ModelID != ids[1] {
		t.Fatalf("draft for wrong model: %q", draft.Card.ModelID)
	}
	var audit struct {
		ModelID  string `json:"ModelID"`
		Findings []struct{ ID string }
	}
	url := fmt.Sprintf("%s/v1/models/%s/audit?flag=%s=poisoned", ts.URL, ids[1], ids[0])
	if code := getJSON(t, url, &audit); code != 200 {
		t.Fatalf("audit = %d", code)
	}
	if audit.ModelID != ids[1] {
		t.Fatalf("audit for wrong model: %q", audit.ModelID)
	}
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0]+"/provenance", nil); code != 200 {
		t.Fatalf("provenance = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/models/m-404/provenance", nil); code != 404 {
		t.Fatalf("missing provenance = %d, want 404", code)
	}
}

func TestIngestOverHTTP(t *testing.T) {
	ts, lk, pop, _ := testServer(t)
	before := lk.Count()

	net := pop.Members[0].Model.Net.Clone()
	raw, err := nn.EncodeMLP(net)
	if err != nil {
		t.Fatal(err)
	}
	req := IngestRequest{
		Name:       "uploaded-model",
		Card:       &card.Card{Name: "uploaded-model", Domain: "legal", License: "mit"},
		WeightsB64: base64.StdEncoding.EncodeToString(raw),
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	var rec registry.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if lk.Count() != before+1 {
		t.Fatalf("count = %d, want %d", lk.Count(), before+1)
	}
	// The uploaded model is immediately searchable.
	var hits []search.Hit
	if code := getJSON(t, ts.URL+"/v1/related?id="+rec.ID+"&k=2", &hits); code != 200 || len(hits) == 0 {
		t.Fatalf("uploaded model not searchable: %d %v", code, hits)
	}

	// Duplicate name@version → 409.
	resp2, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ingest = %d, want 409", resp2.StatusCode)
	}
}

func TestIngestValidation(t *testing.T) {
	ts, _, _, _ := testServer(t)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/models", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != 400 {
		t.Fatalf("bad json = %d", code)
	}
	if code := post(`{"weights_b64":"aaaa"}`); code != 400 {
		t.Fatalf("missing name = %d", code)
	}
	if code := post(`{"name":"x","weights_b64":"!!!"}`); code != 400 {
		t.Fatalf("bad base64 = %d", code)
	}
	if code := post(`{"name":"x","weights_b64":"aGVsbG8="}`); code != 400 {
		t.Fatalf("bad weights = %d", code)
	}
}

func TestBatchIngestOverHTTP(t *testing.T) {
	ts, lk, pop, _ := testServer(t)
	before := lk.Count()

	encode := func(i int) string {
		raw, err := nn.EncodeMLP(pop.Members[i].Model.Net.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return base64.StdEncoding.EncodeToString(raw)
	}
	req := BatchIngestRequest{
		Parallelism: 4,
		Models: []IngestRequest{
			{Name: "batch-a", Card: &card.Card{Name: "batch-a", Domain: "legal"}, WeightsB64: encode(0)},
			{Name: "batch-b", Card: &card.Card{Name: "batch-b", Domain: "medical"}, WeightsB64: encode(1)},
			{Name: "batch-c", WeightsB64: encode(2)},
		},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/models/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("batch ingest = %d", resp.StatusCode)
	}
	var out struct {
		Created int                 `json:"created"`
		Results []BatchIngestResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Created != 3 || len(out.Results) != 3 {
		t.Fatalf("created %d of %d", out.Created, len(out.Results))
	}
	if lk.Count() != before+3 {
		t.Fatalf("count = %d, want %d", lk.Count(), before+3)
	}
	// Every batch-ingested model is immediately searchable.
	var hits []search.Hit
	if code := getJSON(t, ts.URL+"/v1/related?id="+out.Results[0].Record.ID+"&k=2", &hits); code != 200 || len(hits) == 0 {
		t.Fatalf("batch model not searchable: %d %v", code, hits)
	}
}

func TestBatchIngestPartialFailure(t *testing.T) {
	ts, lk, pop, _ := testServer(t)
	before := lk.Count()
	raw, err := nn.EncodeMLP(pop.Members[0].Model.Net.Clone())
	if err != nil {
		t.Fatal(err)
	}
	good := base64.StdEncoding.EncodeToString(raw)
	req := BatchIngestRequest{Models: []IngestRequest{
		{Name: "ok-model", WeightsB64: good},
		{Name: "", WeightsB64: good},             // missing name
		{Name: "bad-weights", WeightsB64: "!!!"}, // bad base64
		{Name: "ok-model", WeightsB64: good},     // duplicate name@version in batch
	}}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/models/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("partial batch = %d, want 207", resp.StatusCode)
	}
	var out struct {
		Created int                 `json:"created"`
		Results []BatchIngestResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Created != 1 {
		t.Fatalf("created = %d, want 1", out.Created)
	}
	if out.Results[0].Error != "" || out.Results[1].Error == "" ||
		out.Results[2].Error == "" || out.Results[3].Error == "" {
		t.Fatalf("per-item outcomes wrong: %+v", out.Results)
	}
	if lk.Count() != before+1 {
		t.Fatalf("count = %d, want %d", lk.Count(), before+1)
	}

	// An empty batch is a 400.
	resp2, err := http.Post(ts.URL+"/v1/models/batch", "application/json", strings.NewReader(`{"models":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("empty batch = %d, want 400", resp2.StatusCode)
	}
}

package server

import (
	"context"

	"modellake/internal/audit"
	"modellake/internal/card"
	"modellake/internal/cluster"
	"modellake/internal/docgen"
	"modellake/internal/lake"
	"modellake/internal/mlql"
	"modellake/internal/model"
	"modellake/internal/provenance"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/version"
)

// LakeAPI is the serving boundary between the HTTP layer and the lake: the
// exact read/write surface the handlers need, and nothing else. A
// single-node *lake.Lake and a sharded *cluster.Cluster both implement it,
// which is what makes the server/lake boundary RPC-able — every method is a
// routable request/response over IDs and plain data, with no shared memory
// beyond the arguments.
type LakeAPI interface {
	Ready() error
	Count() int

	Records() ([]*registry.Record, error)
	Record(id string) (*registry.Record, error)
	Card(id string) (*card.Card, error)
	Cite(id string) (provenance.Citation, error)
	ProvenanceWhy(entity string) (*provenance.Explanation, error)
	GenerateCardContext(ctx context.Context, id string) (*docgen.Draft, error)
	AuditContext(ctx context.Context, id string, flagged map[string]string) (*audit.Report, error)

	SearchKeywordContext(ctx context.Context, query string, k int) ([]search.Hit, error)
	SearchByModelContext(ctx context.Context, id, space string, k int) ([]search.Hit, error)
	SearchByModelMany(ctx context.Context, ids []string, space string, k, parallelism int) ([][]search.Hit, []error)
	QueryContext(ctx context.Context, q string) (*mlql.Result, error)
	VersionGraphContext(ctx context.Context) (*version.Graph, error)

	IngestContext(ctx context.Context, m *model.Model, c *card.Card, opts registry.RegisterOptions) (*registry.Record, error)
	IngestAllContext(ctx context.Context, items []lake.IngestItem, parallelism int) ([]*registry.Record, []error)
}

// Compile-time conformance: the two deployment shapes the server fronts.
var (
	_ LakeAPI = (*lake.Lake)(nil)
	_ LakeAPI = (*cluster.Cluster)(nil)
)

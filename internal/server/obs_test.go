package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modellake/internal/lake"
	"modellake/internal/obs"
	"modellake/internal/registry"
)

// TestIntParamValidation pins the strict ?k= contract on the search and
// related routes: absent means default, anything malformed or non-positive is
// the client's 400, never a silent fallback.
func TestIntParamValidation(t *testing.T) {
	ts, _, _, ids := testServer(t)
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"search default k", "/v1/search?q=legal", 200},
		{"search valid k", "/v1/search?q=legal&k=3", 200},
		{"search non-integer k", "/v1/search?q=legal&k=abc", 400},
		{"search negative k", "/v1/search?q=legal&k=-1", 400},
		{"search zero k", "/v1/search?q=legal&k=0", 400},
		{"search float k", "/v1/search?q=legal&k=1.5", 400},
		{"related default k", "/v1/related?id=" + ids[0], 200},
		{"related valid k", "/v1/related?id=" + ids[0] + "&k=2", 200},
		{"related non-integer k", "/v1/related?id=" + ids[0] + "&k=abc", 400},
		{"related negative k", "/v1/related?id=" + ids[0] + "&k=-7", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s = %d, want %d", tc.url, resp.StatusCode, tc.want)
			}
			if tc.want == 400 {
				var he httpError
				if err := json.NewDecoder(resp.Body).Decode(&he); err != nil {
					t.Fatalf("400 body not a JSON error envelope: %v", err)
				}
				if !strings.Contains(he.Error, "k") {
					t.Fatalf("error %q does not name the parameter", he.Error)
				}
			}
		})
	}
}

// TestWriteErrStatusMapping pins the error→status table, including the
// context errors that used to collapse into 500.
func TestWriteErrStatusMapping(t *testing.T) {
	s := NewWith(nil, Config{Logger: log.New(io.Discard, "", 0)})
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"not found", registry.ErrNotFound, http.StatusNotFound},
		{"duplicate", registry.ErrDuplicate, http.StatusConflict},
		{"deadline exceeded", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, http.StatusRequestTimeout},
		{"wrapped deadline", errors.New("x: " + context.DeadlineExceeded.Error()), http.StatusInternalServerError},
		{"unknown", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.writeErr(rec, tc.err)
			if rec.Code != tc.want {
				t.Fatalf("writeErr(%v) = %d, want %d", tc.err, rec.Code, tc.want)
			}
			var he httpError
			if err := json.Unmarshal(rec.Body.Bytes(), &he); err != nil || he.Error == "" {
				t.Fatalf("error envelope missing: %q (%v)", rec.Body.String(), err)
			}
		})
	}
}

// TestWriteErrCountsTimeouts asserts the timeout counters move with the
// context-error mappings.
func TestWriteErrCountsTimeouts(t *testing.T) {
	s := NewWith(nil, Config{Logger: log.New(io.Discard, "", 0)})
	deadlineBefore := timeoutCounter("deadline").Value()
	canceledBefore := timeoutCounter("canceled").Value()
	s.writeErr(httptest.NewRecorder(), context.DeadlineExceeded)
	s.writeErr(httptest.NewRecorder(), context.Canceled)
	if got := timeoutCounter("deadline").Value(); got != deadlineBefore+1 {
		t.Fatalf("deadline counter = %d, want %d", got, deadlineBefore+1)
	}
	if got := timeoutCounter("canceled").Value(); got != canceledBefore+1 {
		t.Fatalf("canceled counter = %d, want %d", got, canceledBefore+1)
	}
}

// TestQueryDeadlineMapsTo504 drives handleQuery with an already-expired
// request context: the query executor surfaces context.DeadlineExceeded and
// the handler must answer 504, not the 400 it used to return for every
// QueryContext error.
func TestQueryDeadlineMapsTo504(t *testing.T) {
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lk.Close() })
	s := NewWith(lk, Config{Logger: log.New(io.Discard, "", 0)})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/query?q=FIND+MODELS+LIMIT+5", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired query = %d, want 504 (body %q)", rec.Code, rec.Body.String())
	}

	// A canceled (client went away) context maps to 408.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	req = httptest.NewRequest("GET", "/v1/query?q=FIND+MODELS+LIMIT+5", nil).WithContext(cctx)
	rec = httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("canceled query = %d, want 408 (body %q)", rec.Code, rec.Body.String())
	}

	// A plain parse error is still the client's 400.
	req = httptest.NewRequest("GET", "/v1/query?q=NONSENSE", nil)
	rec = httptest.NewRecorder()
	s.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error = %d, want 400", rec.Code)
	}
}

// failingWriter drops the connection mid-body, the way a gone client does.
type failingWriter struct {
	h      http.Header
	status int
}

func (f *failingWriter) Header() http.Header       { return f.h }
func (f *failingWriter) WriteHeader(code int)      { f.status = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("connection reset") }

// TestWriteJSONEncodeErrorCounted asserts a failed response encode is logged
// and counted instead of vanishing.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	var logBuf bytes.Buffer
	logger := log.New(&logBuf, "", 0)
	before := mEncodeErrs.Value()
	writeJSONLogged(&failingWriter{h: make(http.Header)}, http.StatusOK, map[string]string{"a": "b"}, logger)
	if got := mEncodeErrs.Value(); got != before+1 {
		t.Fatalf("encode error counter = %d, want %d", got, before+1)
	}
	if !strings.Contains(logBuf.String(), "response encode failed") {
		t.Fatalf("encode failure not logged: %q", logBuf.String())
	}
	// A nil logger must not panic; the error goes to the process default.
	writeJSON(&failingWriter{h: make(http.Header)}, http.StatusOK, map[string]string{"a": "b"})
	if got := mEncodeErrs.Value(); got != before+2 {
		t.Fatalf("encode error counter = %d, want %d", got, before+2)
	}
}

// TestMetricsEndpoint asserts GET /metrics serves Prometheus text including
// the per-route latency histograms and the storage/cache families the lower
// layers register.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _, _ := testServer(t)
	// Generate at least one observed request so per-route series exist.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{route="/healthz",le="+Inf"}`,
		`http_requests_total{class="2xx",method="GET",route="/healthz"}`,
		"lake_embed_cache_hits_total",
		"lake_embed_cache_misses_total",
		"# TYPE kvstore_fsync_duration_seconds histogram",
		"kvstore_fsync_duration_seconds_count",
		"# TYPE kvstore_commit_batch_size histogram",
		"kvstore_commit_batch_size_count",
		"# TYPE kvstore_commit_waiters gauge",
		"kvstore_commit_waiters",
		"http_requests_inflight",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q in:\n%s", want, text)
		}
	}
	// Basic exposition-format sanity: every non-comment line is "name value"
	// or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestRequestIDHeader pins accept-or-generate semantics for X-Request-ID.
func TestRequestIDHeader(t *testing.T) {
	ts, _, _, _ := testServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-id" {
		t.Fatalf("request id not propagated: %q", got)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("no request id generated")
	}
}

// TestAccessLogLines asserts the access log emits one parseable JSON line
// per request with the route template, status, and the request ID the client
// saw.
func TestAccessLogLines(t *testing.T) {
	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lk.Close() })
	var buf bytes.Buffer
	s := NewWith(lk, Config{AccessLog: &buf, Logger: log.New(io.Discard, "", 0)})
	h := s.Handler()

	req := httptest.NewRequest("GET", "/v1/models/m-does-not-exist", nil)
	req.Header.Set("X-Request-ID", "log-test-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}

	var entry obs.AccessEntry
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v (%q)", err, buf.String())
	}
	if entry.RequestID != "log-test-id" {
		t.Fatalf("logged request id = %q", entry.RequestID)
	}
	if entry.Status != http.StatusNotFound {
		t.Fatalf("logged status = %d", entry.Status)
	}
	if entry.Route != "/v1/models/{id}" {
		t.Fatalf("logged route = %q", entry.Route)
	}
	if entry.Method != "GET" || entry.Path != "/v1/models/m-does-not-exist" {
		t.Fatalf("logged method/path = %q %q", entry.Method, entry.Path)
	}
}

// TestTimeoutMiddleware504Counted asserts a request killed by the
// per-request deadline surfaces as 504 and moves the timeout counter.
func TestTimeoutMiddleware504Counted(t *testing.T) {
	before := timeoutCounter("deadline").Value()
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "too late"})
	})
	h := timeoutMiddleware(10*time.Millisecond, slow)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/graph", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request = %d, want 504", rec.Code)
	}
	if got := timeoutCounter("deadline").Value(); got <= before {
		t.Fatalf("deadline counter = %d, want > %d", got, before)
	}
}

// TestRouteLabelBoundsCardinality pins the path→route normalization that
// keeps metric labels bounded.
func TestRouteLabelBoundsCardinality(t *testing.T) {
	cases := []struct{ path, want string }{
		{"/healthz", "/healthz"},
		{"/v1/search", "/v1/search"},
		{"/v1/models/m-000042", "/v1/models/{id}"},
		{"/v1/models/m-000042/card", "/v1/models/{id}/card"},
		{"/v1/models/m-000042/audit", "/v1/models/{id}/audit"},
		{"/v1/models/m-000042/unknown", "other"},
		{"/debug/pprof/heap", "/debug/pprof"},
		{"/totally/unknown", "other"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("GET", tc.path, nil)
		if got := routeLabel(r); got != tc.want {
			t.Fatalf("routeLabel(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}
